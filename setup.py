"""Legacy setuptools shim.

This environment is offline and lacks the ``wheel`` package, so PEP 517/660
builds cannot run; ``pip install -e .`` uses this file via the legacy
``setup.py develop`` path instead. Metadata mirrors pyproject.toml.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Instruction Scheduling for the GPU on the GPU' "
        "(CGO 2024): GPU-parallel ACO register-pressure-aware instruction "
        "scheduling on a simulated SIMT device"
    ),
    python_requires=">=3.9",
    install_requires=["numpy"],
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    entry_points={"console_scripts": ["repro=repro.cli:main"]},
)
