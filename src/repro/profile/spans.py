"""The hierarchical span profiler.

Spans form a tree: region -> pass -> iteration -> kernel/transfer leaves.
Because every second in this reproduction comes from the deterministic cost
models in :mod:`repro.timing` (there is no wall clock anywhere in the
simulated pipeline), the profiler does not *measure* time — instrumentation
sites **charge** the simulated seconds they just computed to the span that
is currently open. Two consequences fall out of that design:

* profiles are bit-reproducible: the same seed yields the same tree with
  the same numbers, on any machine, at any load;
* enabling the profiler cannot perturb the run — it only accumulates
  floats that the cost models produced anyway, and it never touches an
  RNG, a schedule or a cost model.

Spans with the same name under the same parent **merge**: the second
``span("iteration")`` under one pass increments the existing node's count
instead of growing the tree, so a 64-iteration pass is one ``iteration``
node with ``count == 64``. This keeps profiles bounded by the shape of the
instrumentation, not by the length of the run.

Like :mod:`repro.telemetry`, the profiler is process-wide but injectable:
the inert :class:`NullProfiler` is installed by default and costs one
attribute check per instrumentation site; install a live
:class:`SpanProfiler` with :func:`set_profiler` / :func:`profile_session`.
"""

from __future__ import annotations

import functools
from contextlib import contextmanager
from typing import Dict, Iterator, Optional, Tuple

from ..errors import ProfileError
from ..obs.context import current_trace


class Span:
    """One node of the profile tree.

    ``self_seconds`` is the simulated time charged directly to this span;
    ``total_seconds`` adds every descendant's. ``count`` is how many times
    the span was entered (or, for leaves, charged). ``trace_id`` is the
    trace the span belongs to (inherited from the parent when the child
    is opened without an ambient trace context), or None outside any
    trace.
    """

    __slots__ = ("name", "category", "children", "self_seconds", "count", "trace_id")

    def __init__(self, name: str, category: str = "span",
                 trace_id: Optional[str] = None):
        self.name = name
        self.category = category
        self.children: Dict[object, "Span"] = {}
        self.self_seconds = 0.0
        self.count = 0
        self.trace_id = trace_id

    @property
    def total_seconds(self) -> float:
        return self.self_seconds + sum(c.total_seconds for c in self.children.values())

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def child(self, name: str, category: str = "span",
              trace_id: Optional[str] = None) -> "Span":
        """Get or create (merge) the child span called ``name``.

        Merging is by name *within* a trace: a child opened under a
        different ambient trace than its parent is keyed by
        ``(name, trace_id)``, so same-named spans from different regions
        (two regions called ``reduce_3`` in different kernels, or two
        seeded recompilations of one region) no longer conflate and
        per-region attribution stays separable. With no trace context —
        manual profiler use, and every span whose trace matches its
        parent's — the historical merge-by-name behavior is unchanged.
        """
        tid = trace_id if trace_id is not None else self.trace_id
        key: object = name if (tid is None or tid == self.trace_id) else (name, tid)
        node = self.children.get(key)
        if node is None:
            node = self.children[key] = Span(name, category, trace_id=tid)
        return node

    def walk(self, path: Tuple[str, ...] = ()) -> Iterator[Tuple[Tuple[str, ...], "Span"]]:
        """Yield ``(path, span)`` pairs in depth-first insertion order."""
        here = path + (self.name,)
        yield here, self
        for node in self.children.values():
            yield from node.walk(here)

    def leaf_seconds(self) -> float:
        """Simulated seconds attributed to leaf spans in this subtree."""
        if self.is_leaf:
            return self.self_seconds
        return sum(c.leaf_seconds() for c in self.children.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Span(%r, self=%.3gs, total=%.3gs, count=%d)" % (
            self.name, self.self_seconds, self.total_seconds, self.count,
        )


class SpanProfiler:
    """A live profiler: a span stack over a merge-by-name span tree."""

    enabled = True

    def __init__(self, root_name: str = "run"):
        self.root = Span(root_name, "root")
        self.root.count = 1
        self._stack = [self.root]

    @property
    def current(self) -> Span:
        """The innermost open span (the root when none is open)."""
        return self._stack[-1]

    def push(self, name: str, category: str = "span") -> Span:
        """Open a child span without a ``with`` block (pair with :meth:`pop`).

        For instrumentation that brackets a region across statements (a
        scheduler pass around its iteration loop). An exception escaping
        between push and pop leaves the stack stale — acceptable, since it
        also aborts the run being profiled; prefer :meth:`span` where a
        ``with`` block fits.
        """
        context = current_trace()
        node = self.current.child(
            name, category, trace_id=context.trace_id if context else None
        )
        node.count += 1
        self._stack.append(node)
        return node

    def pop(self) -> Span:
        """Close the innermost span opened with :meth:`push`."""
        if len(self._stack) == 1:
            raise ProfileError("pop() with no open span")
        return self._stack.pop()

    @contextmanager
    def span(self, name: str, category: str = "span"):
        """Open a child span of the current span for the ``with`` block."""
        node = self.push(name, category)
        try:
            yield node
        finally:
            popped = self._stack.pop()
            if popped is not node:  # pragma: no cover - structural bug guard
                raise ProfileError("span stack corrupted at %r" % name)

    def charge(self, seconds: float) -> None:
        """Charge simulated ``seconds`` to the currently open span."""
        self.current.self_seconds += seconds

    def charge_leaf(self, name: str, seconds: float, category: str = "leaf") -> None:
        """Charge simulated ``seconds`` to a (merged) leaf child of the
        current span, without pushing it on the stack."""
        context = current_trace()
        node = self.current.child(
            name, category, trace_id=context.trace_id if context else None
        )
        node.count += 1
        node.self_seconds += seconds


class _NullContext:
    """A reusable, allocation-free null context manager."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


_NULL_CONTEXT = _NullContext()


class NullProfiler:
    """The inert default: every operation is a no-op."""

    enabled = False

    def span(self, name: str, category: str = "span"):
        return _NULL_CONTEXT

    def push(self, name: str, category: str = "span") -> None:
        return None

    def pop(self) -> None:
        return None

    def charge(self, seconds: float) -> None:
        pass

    def charge_leaf(self, name: str, seconds: float, category: str = "leaf") -> None:
        pass


#: The process-wide default: inert.
_GLOBAL = NullProfiler()


def get_profiler():
    """The currently installed process-wide profiler."""
    return _GLOBAL


def set_profiler(profiler) -> object:
    """Install ``profiler`` process-wide (None restores the inert default).

    Returns the previously installed instance so callers can restore it.
    """
    global _GLOBAL
    previous = _GLOBAL
    _GLOBAL = profiler if profiler is not None else NullProfiler()
    return previous


@contextmanager
def profile_session(profiler: SpanProfiler):
    """Install ``profiler`` for the duration of a ``with`` block."""
    previous = set_profiler(profiler)
    try:
        yield profiler
    finally:
        set_profiler(previous)


def profiled(name: Optional[str] = None, category: str = "function"):
    """Decorator: run the wrapped function inside a span.

    The profiler is resolved at *call* time, so decorating a function has
    zero effect until a live profiler is installed::

        @profiled("closure")
        def transitive_closure(ddg): ...
    """

    def decorate(func):
        label = name or func.__qualname__

        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            profiler = get_profiler()
            if not profiler.enabled:
                return func(*args, **kwargs)
            with profiler.span(label, category):
                return func(*args, **kwargs)

        return wrapper

    return decorate
