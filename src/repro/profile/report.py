"""Rendering profiles: terminal trees, collapsed stacks, attribution.

* :func:`render_tree` — an indented self/total/count table of the span
  tree, children ranked by total time, long sibling lists collapsed into
  one ``(+N more)`` line;
* :func:`collapsed_stacks` — the classic semicolon-separated collapsed-
  stack format (``run;region;pass1;construct 1234``, value = self time in
  integer microseconds) consumed by ``flamegraph.pl`` and speedscope's
  Brendan-Gregg importer;
* :func:`attribution` — how much of the tree's simulated time lands on
  *leaf* spans (the acceptance metric: a healthy instrumentation charges
  everything to leaves, so the fraction sits at ~1.0).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Union

from .spans import Span, SpanProfiler


def _root_of(source: Union[Span, SpanProfiler]) -> Span:
    return source.root if isinstance(source, SpanProfiler) else source


@dataclass(frozen=True)
class Attribution:
    """Leaf-attribution summary of one span tree."""

    total_seconds: float
    leaf_seconds: float

    @property
    def fraction(self) -> float:
        """Share of total simulated time attributed to leaf spans."""
        return self.leaf_seconds / self.total_seconds if self.total_seconds else 1.0


def attribution(source: Union[Span, SpanProfiler]) -> Attribution:
    root = _root_of(source)
    return Attribution(
        total_seconds=root.total_seconds, leaf_seconds=root.leaf_seconds()
    )


def _format_us(seconds: float) -> str:
    return "%.1f" % (seconds * 1e6)


def render_tree(
    source: Union[Span, SpanProfiler],
    max_children: int = 12,
    min_fraction: float = 0.0005,
) -> str:
    """The terminal profile: one line per span, ranked siblings.

    ``max_children`` bounds how many children of one parent are listed
    (the rest fold into a ``(+N more)`` line); ``min_fraction`` folds
    children below that share of the root's total time.
    """
    root = _root_of(source)
    grand_total = root.total_seconds
    lines: List[str] = []
    lines.append(
        "span profile: %.1f us simulated across %d span(s)"
        % (grand_total * 1e6, sum(1 for _ in root.walk()))
    )
    lines.append(
        "  %12s  %12s  %7s  %6s  span" % ("total(us)", "self(us)", "count", "%")
    )

    def emit(span: Span, depth: int) -> None:
        total = span.total_seconds
        share = 100.0 * total / grand_total if grand_total else 0.0
        lines.append(
            "  %12s  %12s  %7d  %5.1f%%  %s%s"
            % (
                _format_us(total),
                _format_us(span.self_seconds),
                span.count,
                share,
                "  " * depth,
                span.name,
            )
        )
        children = sorted(
            span.children.values(), key=lambda c: -c.total_seconds
        )
        shown = [
            c
            for c in children[:max_children]
            if grand_total == 0 or c.total_seconds >= min_fraction * grand_total
        ]
        hidden = [c for c in children if c not in shown]
        for child in shown:
            emit(child, depth + 1)
        if hidden:
            lines.append(
                "  %12s  %12s  %7d  %5.1f%%  %s(+%d more)"
                % (
                    _format_us(sum(c.total_seconds for c in hidden)),
                    _format_us(sum(c.self_seconds for c in hidden)),
                    sum(c.count for c in hidden),
                    100.0 * sum(c.total_seconds for c in hidden) / grand_total
                    if grand_total
                    else 0.0,
                    "  " * (depth + 1),
                    len(hidden),
                )
            )

    emit(root, 0)
    stats = attribution(root)
    lines.append(
        "leaf attribution: %.2f%% of %.1f us"
        % (100.0 * stats.fraction, stats.total_seconds * 1e6)
    )
    return "\n".join(lines) + "\n"


def collapsed_stacks(
    source: Union[Span, SpanProfiler], scale: float = 1e6
) -> List[str]:
    """Collapsed-stack lines (``a;b;c VALUE``) for flamegraph/speedscope.

    ``VALUE`` is the span's *self* time scaled by ``scale`` (default:
    microseconds) and rounded to an integer; zero-valued frames are
    omitted, as the format expects.
    """
    root = _root_of(source)
    lines: List[str] = []
    for path, span in root.walk():
        value = int(round(span.self_seconds * scale))
        if value > 0:
            lines.append("%s %d" % (";".join(path), value))
    return lines


def write_collapsed(path: str, source: Union[Span, SpanProfiler]) -> int:
    """Write collapsed stacks to ``path``; returns the line count."""
    lines = collapsed_stacks(source)
    with open(path, "w") as handle:
        for line in lines:
            handle.write(line + "\n")
    return len(lines)


def top_leaves(
    source: Union[Span, SpanProfiler], top: Optional[int] = None
) -> List[tuple]:
    """``(path, seconds)`` for leaf spans, heaviest first (rollup input)."""
    root = _root_of(source)
    leaves = [
        ("/".join(path), span.self_seconds)
        for path, span in root.walk()
        if span.is_leaf and span.self_seconds > 0
    ]
    leaves.sort(key=lambda item: -item[1])
    return leaves[:top] if top else leaves
