"""Kernel cost attribution: per-category seconds and per-phase rollups.

:class:`~repro.gpusim.kernel.KernelAccounting` keeps a per-*category*
cycle breakdown (compute / memory / alloc / uniform), but a launch's
execution time is the batch-wise *maximum* over wavefronts, not the cycle
sum — so cycles do not convert to seconds directly. The attribution rule
here splits a launch's kernel seconds across categories **proportionally
to the category cycle shares**, which is exact when wavefronts are
balanced and a faithful estimate under divergence (the serialized waves
inflate every category's share alike).

The same rule applied to recorded ``kernel_launch`` trace events gives
:func:`kernel_phase_rollup`: per-pass totals of kernel/transfer/launch
time, attributed per-category seconds, divergence serialization and dead
ants. It needs only the schema-v1 fields, so traces recorded before the
profiler existed still attribute their cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

#: Cycle-category keys of ``KernelAccounting.charge_totals()``, in stable
#: report order; attribute names drop the ``_cycles`` suffix.
CYCLE_CATEGORIES = ("compute_cycles", "memory_cycles", "alloc_cycles", "uniform_cycles")


def attribute_seconds(kernel_seconds: float, charge_totals: Dict[str, float]) -> Dict[str, float]:
    """Split ``kernel_seconds`` across categories by cycle share.

    Keys are category names without the ``_cycles`` suffix; the values sum
    to ``kernel_seconds`` up to float rounding (compute absorbs everything
    when no cycles were charged).
    """
    total_cycles = sum(charge_totals.get(key, 0.0) for key in CYCLE_CATEGORIES)
    out: Dict[str, float] = {}
    if total_cycles <= 0.0:
        for key in CYCLE_CATEGORIES:
            out[key[: -len("_cycles")]] = 0.0
        out["compute"] = kernel_seconds
        return out
    for key in CYCLE_CATEGORIES:
        out[key[: -len("_cycles")]] = (
            kernel_seconds * charge_totals.get(key, 0.0) / total_cycles
        )
    return out


@dataclass
class PhaseRollup:
    """Aggregated launch costs for one ACO pass (the per-phase rollup)."""

    pass_index: int
    launches: int = 0
    iterations: int = 0
    wavefronts: int = 0
    kernel_seconds: float = 0.0
    transfer_seconds: float = 0.0
    launch_seconds: float = 0.0
    #: Cycle totals per category, summed across launches.
    cycles: Dict[str, float] = field(default_factory=dict)
    #: Attributed seconds per category, summed across launches.
    seconds: Dict[str, float] = field(default_factory=dict)
    serialized_selection_waves: int = 0
    serialized_stall_waves: int = 0
    dead_ants: int = 0
    #: Execution batches (capacity waves), when the trace recorded them
    #: (an optional field newer traces carry).
    batches: int = 0
    #: Kernel seconds per engine backend. ``backend`` is an optional
    #: schema-v1 extra: launches recorded without it (older traces, or
    #: producers that never learned the field) land under ``"unknown"``
    #: rather than being dropped or crashing the rollup.
    backend_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return self.kernel_seconds + self.transfer_seconds + self.launch_seconds


def kernel_phase_rollup(records: Iterable[Dict]) -> Dict[int, PhaseRollup]:
    """Aggregate ``kernel_launch`` events per ``pass_index``.

    Consumes any iterable of schema-v1 records (other event types are
    ignored), so it works on ``read_trace`` output, lenient reads of
    damaged traces, and in-memory ``MemorySink`` record lists alike.
    """
    rollups: Dict[int, PhaseRollup] = {}
    for record in records:
        if record.get("event") != "kernel_launch":
            continue
        phase = rollups.setdefault(
            record["pass_index"], PhaseRollup(pass_index=record["pass_index"])
        )
        phase.launches += 1
        phase.iterations += record["iterations"]
        phase.wavefronts += record["wavefronts"]
        phase.kernel_seconds += record["kernel_seconds"]
        phase.transfer_seconds += record["transfer_seconds"]
        phase.launch_seconds += record["launch_seconds"]
        totals = {key: record.get(key, 0.0) for key in CYCLE_CATEGORIES}
        for key, value in totals.items():
            phase.cycles[key] = phase.cycles.get(key, 0.0) + value
        for name, value in attribute_seconds(record["kernel_seconds"], totals).items():
            phase.seconds[name] = phase.seconds.get(name, 0.0) + value
        phase.serialized_selection_waves += record["serialized_selection_waves"]
        phase.serialized_stall_waves += record["serialized_stall_waves"]
        phase.dead_ants += record["dead_ants"]
        phase.batches += record.get("batches", 0)
        backend = record.get("backend", "unknown")
        phase.backend_seconds[backend] = (
            phase.backend_seconds.get(backend, 0.0) + record["kernel_seconds"]
        )
    return rollups


def fault_loss_rollup(records: Iterable[Dict]) -> Dict[str, float]:
    """Seconds burned by injected faults, keyed by the attempt's backend.

    ``fault`` events carry the backend of the attempt that burned the time
    (the resilience ladder's current rung); older traces without the label
    land under ``"unknown"``, mirroring the kernel-launch fallback.
    """
    lost: Dict[str, float] = {}
    for record in records:
        if record.get("event") != "fault":
            continue
        backend = record.get("backend") or record.get("rung") or "unknown"
        lost[backend] = lost.get(backend, 0.0) + record["seconds"]
    return lost


def render_kernel_rollup(
    rollups: Dict[int, PhaseRollup],
    lost: Optional[Dict[str, float]] = None,
) -> str:
    """A text table of the per-phase launch-cost rollups."""
    if not rollups:
        return "(no kernel_launch events — nothing to attribute)\n"
    lines: List[str] = []
    for pass_index in sorted(rollups):
        phase = rollups[pass_index]
        lines.append(
            "pass %d: %d launch(es), %d iteration(s), %d wavefront(s)"
            % (pass_index, phase.launches, phase.iterations, phase.wavefronts)
        )
        lines.append(
            "  time split: kernel %.1f us, transfer %.1f us, launch %.1f us"
            % (
                phase.kernel_seconds * 1e6,
                phase.transfer_seconds * 1e6,
                phase.launch_seconds * 1e6,
            )
        )
        total = phase.kernel_seconds or 1.0
        parts = ", ".join(
            "%s %.1f us (%.0f%%)"
            % (name, seconds * 1e6, 100.0 * seconds / total)
            for name, seconds in sorted(phase.seconds.items(), key=lambda kv: -kv[1])
        )
        lines.append("  kernel attribution: %s" % parts)
        if phase.backend_seconds:
            mix = ", ".join(
                "%s %.1f us (%.0f%%)" % (name, seconds * 1e6, 100.0 * seconds / total)
                for name, seconds in sorted(
                    phase.backend_seconds.items(), key=lambda kv: (-kv[1], kv[0])
                )
            )
            lines.append("  backend mix: %s" % mix)
        lines.append(
            "  divergence: %d selection wave(s), %d stall wave(s), %d dead ant(s)"
            % (
                phase.serialized_selection_waves,
                phase.serialized_stall_waves,
                phase.dead_ants,
            )
        )
        if phase.batches:
            lines.append("  execution batches: %d" % phase.batches)
    if lost:
        total_lost = sum(lost.values())
        mix = ", ".join(
            "%s %.1f us (%.0f%%)"
            % (name, seconds * 1e6, 100.0 * seconds / total_lost)
            for name, seconds in sorted(lost.items(), key=lambda kv: (-kv[1], kv[0]))
        )
        lines.append("fault-lost seconds by backend: %s" % mix)
    return "\n".join(lines) + "\n"
