"""Performance observability: span profiling and kernel cost attribution.

Layered on :mod:`repro.telemetry` (events record *what happened*, spans
record *where the simulated time went*). Three pieces:

* :mod:`repro.profile.spans` — the hierarchical span profiler
  (context-manager + decorator API, merge-by-name tree, inert default);
* :mod:`repro.profile.report` — terminal tree rendering, collapsed-stack
  (flamegraph/speedscope) export, leaf-attribution accounting;
* :mod:`repro.profile.attribution` — kernel cost attribution: per-category
  seconds from :class:`~repro.gpusim.kernel.KernelAccounting` breakdowns
  and per-phase rollups over recorded traces.

Enable from the CLI with ``repro <experiment> --profile`` (tree report)
and ``--profile-stacks PATH`` (collapsed stacks); programmatically::

    from repro.profile import SpanProfiler, profile_session, render_tree

    with profile_session(SpanProfiler()) as prof:
        CompilePipeline(machine, scheduler=...).compile_suite(suite)
    print(render_tree(prof))

Seeded results are bit-identical with profiling on or off: spans only
accumulate seconds the deterministic cost models already computed.
"""

from .attribution import (
    CYCLE_CATEGORIES,
    PhaseRollup,
    attribute_seconds,
    kernel_phase_rollup,
    render_kernel_rollup,
)
from .report import (
    Attribution,
    attribution,
    collapsed_stacks,
    render_tree,
    top_leaves,
    write_collapsed,
)
from .spans import (
    NullProfiler,
    Span,
    SpanProfiler,
    get_profiler,
    profile_session,
    profiled,
    set_profiler,
)

__all__ = [
    "Span",
    "SpanProfiler",
    "NullProfiler",
    "get_profiler",
    "set_profiler",
    "profile_session",
    "profiled",
    "Attribution",
    "attribution",
    "render_tree",
    "collapsed_stacks",
    "write_collapsed",
    "top_leaves",
    "CYCLE_CATEGORIES",
    "PhaseRollup",
    "attribute_seconds",
    "kernel_phase_rollup",
    "render_kernel_rollup",
]
