"""The :class:`Telemetry` object: one tracer + one metrics registry.

Process-wide but injectable: every instrumented component resolves its
telemetry at *use* time — an explicitly injected instance wins, otherwise
the process-wide instance installed with :func:`set_telemetry` /
:func:`telemetry_session` (default: an inert one). With the default
:class:`~repro.telemetry.sinks.NullSink` and metric collection off, the
whole layer reduces to one boolean attribute check per instrumentation
site, and — crucially for reproducibility — it never touches an RNG or a
cost model, so enabling it cannot change schedules, costs or simulated
timings.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from typing import Dict, List, Optional, Tuple

from ..obs.context import current_trace, current_worker
from .metrics import ITERATION_BUCKETS, MetricsRegistry
from .schema import SCHEMA_VERSION, validate_event
from .sinks import NullSink, Sink


class Telemetry:
    """A structured event tracer plus a metrics registry.

    ``collect_metrics`` defaults to the sink's enabled-ness: a live sink
    implies live metrics, the NullSink default leaves both off. Pass
    ``collect_metrics=True`` with a NullSink for metrics-only profiling
    (the CLI's bare ``--metrics``).
    """

    def __init__(self, sink: Optional[Sink] = None, collect_metrics: Optional[bool] = None):
        self.sink = sink or NullSink()
        self.collect_metrics = (
            bool(self.sink.enabled) if collect_metrics is None else collect_metrics
        )
        self.metrics = MetricsRegistry()
        self._seq = 0

    # -- liveness -----------------------------------------------------------

    @property
    def tracing(self) -> bool:
        """True when emitted events reach a live sink."""
        return self.sink.enabled

    @property
    def active(self) -> bool:
        """True when instrumentation sites should do any work at all."""
        return self.sink.enabled or self.collect_metrics

    # -- events -------------------------------------------------------------

    def emit(self, event: str, **fields) -> None:
        """Emit one schema-validated event record (no-op when not tracing).

        When a trace context is installed (see :mod:`repro.obs.context`)
        the record is stamped with ``trace_id``/``span_id``/``parent_id``
        — optional envelope extras under schema v1's forward-compatibility
        rule. Explicitly passed ids win over the ambient context (scopes
        stamp their own child span ids).
        """
        if not self.sink.enabled:
            return
        record = {"v": SCHEMA_VERSION, "seq": self._seq, "event": event}
        record.update(fields)
        context = current_trace()
        if context is not None:
            record.setdefault("trace_id", context.trace_id)
            record.setdefault("span_id", context.span_id)
            if context.parent_id is not None:
                record.setdefault("parent_id", context.parent_id)
        worker = current_worker()
        if worker is not None:
            record.setdefault("worker", worker)
        validate_event(record)
        self._seq += 1
        self.sink.write(record)

    def pass_scope(
        self,
        region: str,
        pass_index: int,
        scheduler: str,
        lower_bound: float,
        initial_cost: float,
        strategy: Optional[str] = None,
    ) -> "PassScope":
        """Open a per-pass scope (emits ``pass_start`` when tracing).

        ``strategy`` labels the pass with its pheromone-update strategy
        ("as"/"mmas") — an optional schema-v1 extra on ``pass_start``.
        """
        return PassScope(
            self, region, pass_index, scheduler, lower_bound, initial_cost,
            strategy=strategy,
        )

    def close(self) -> None:
        self.sink.close()


class PassScope:
    """Recorder for one ACO pass on one region.

    The scope *always* records its iteration events locally — the
    schedulers derive the backward-compatible ``PassResult.trace`` tuple
    from them — and forwards each to the telemetry sink when tracing. A
    ``winner_cost`` of None marks an iteration where every ant died
    (trace derivation maps it back to +infinity).
    """

    def __init__(
        self,
        telemetry: Telemetry,
        region: str,
        pass_index: int,
        scheduler: str,
        lower_bound: float,
        initial_cost: float,
        strategy: Optional[str] = None,
    ):
        self.telemetry = telemetry
        self.region = region
        self.pass_index = pass_index
        self.events: List[Dict] = []
        # One child span per pass: pass_start/iteration/pass_end share a
        # span id under the ambient region span (empty when no context).
        context = current_trace()
        self._trace_fields: Dict[str, str] = (
            context.child("pass%d" % pass_index).fields() if context is not None else {}
        )
        extra: Dict[str, str] = {} if strategy is None else {"strategy": strategy}
        telemetry.emit(
            "pass_start",
            region=region,
            pass_index=pass_index,
            scheduler=scheduler,
            lower_bound=float(lower_bound),
            initial_cost=float(initial_cost),
            **extra,
            **self._trace_fields,
        )

    def iteration(self, winner_cost: float, best_cost: float) -> None:
        """Record one iteration's winner (None/inf when every ant died)."""
        dead = winner_cost is None or not math.isfinite(winner_cost)
        record = {
            "region": self.region,
            "pass_index": self.pass_index,
            "iteration": len(self.events),
            "winner_cost": None if dead else float(winner_cost),
            "best_cost": float(best_cost),
        }
        self.events.append(record)
        self.telemetry.emit("iteration", **record, **self._trace_fields)

    @property
    def trace(self) -> Tuple[float, ...]:
        """The per-iteration winner costs, derived from the recorded events."""
        return tuple(
            float("inf") if e["winner_cost"] is None else e["winner_cost"]
            for e in self.events
        )

    def end(
        self,
        invoked: bool,
        iterations: int,
        final_cost: float,
        hit_lower_bound: bool,
        seconds: float,
        **extra,
    ) -> None:
        """Close the scope: emit ``pass_end`` and update the pass metrics."""
        telemetry = self.telemetry
        telemetry.emit(
            "pass_end",
            region=self.region,
            pass_index=self.pass_index,
            invoked=bool(invoked),
            iterations=int(iterations),
            final_cost=float(final_cost),
            hit_lower_bound=bool(hit_lower_bound),
            seconds=float(seconds),
            **self._trace_fields,
            **extra,
        )
        if telemetry.collect_metrics and invoked:
            m = telemetry.metrics
            prefix = "aco.pass%d" % self.pass_index
            m.histogram(prefix + ".iterations", ITERATION_BUCKETS).observe(iterations)
            m.counter(prefix + ".regions").inc()
            if hit_lower_bound:
                m.counter(prefix + ".hit_lower_bound").inc()
            m.counter(prefix + ".simulated_us").inc(seconds * 1e6)
            dead = sum(1 for e in self.events if e["winner_cost"] is None)
            if dead:
                m.counter(prefix + ".dead_iterations").inc(dead)


#: The process-wide default: inert (NullSink, metrics off).
_GLOBAL = Telemetry()


def get_telemetry() -> Telemetry:
    """The currently installed process-wide telemetry."""
    return _GLOBAL


def set_telemetry(telemetry: Optional[Telemetry]) -> Telemetry:
    """Install ``telemetry`` process-wide (None restores the inert default).

    Returns the previously installed instance so callers can restore it.
    """
    global _GLOBAL
    previous = _GLOBAL
    _GLOBAL = telemetry if telemetry is not None else Telemetry()
    return previous


@contextmanager
def telemetry_session(telemetry: Telemetry):
    """Install ``telemetry`` for the duration of a ``with`` block.

    Closes the telemetry's sink on exit and restores the previous
    process-wide instance.
    """
    previous = set_telemetry(telemetry)
    try:
        yield telemetry
    finally:
        set_telemetry(previous)
        telemetry.close()
