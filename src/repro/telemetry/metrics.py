"""The metrics registry: counters, gauges and fixed-bucket histograms.

Metrics complement the event tracer (:mod:`repro.telemetry.core`): events
record *what happened when*, metrics record *how much of it happened*
without retaining per-occurrence records. All metric types are plain
in-process accumulators — there is no background thread, no I/O and no
locking (the reproduction is single-threaded by design), so updating a
metric costs one dict lookup and one addition.

Histograms use **fixed bucket layouts** declared at creation time so that
two runs (or two schedulers within one run) always produce comparable
distributions. The canonical layouts used by the instrumentation live in
:data:`ITERATION_BUCKETS`, :data:`OCCUPANCY_PCT_BUCKETS` and
:data:`MICROSECOND_BUCKETS`.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import TelemetryError

#: Buckets for iterations-to-convergence histograms (upper bounds).
ITERATION_BUCKETS: Tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64)

#: Buckets for percentage-valued histograms (e.g. ready-list occupancy
#: relative to the transitive-closure bound).
OCCUPANCY_PCT_BUCKETS: Tuple[float, ...] = (10, 25, 50, 75, 90, 100)

#: Buckets for simulated-microsecond histograms (launch/copy/kernel times).
MICROSECOND_BUCKETS: Tuple[float, ...] = (1, 10, 50, 100, 500, 1000, 10000)


class Counter:
    """A monotonically increasing sum."""

    kind = "counter"

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise TelemetryError("counter %r cannot decrease" % self.name)
        self.value += amount


class Gauge:
    """A last-value metric that also remembers its extremes."""

    kind = "gauge"

    def __init__(self, name: str):
        self.name = name
        self.value: Optional[float] = None
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def set(self, value: float) -> None:
        value = float(value)
        self.value = value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)


class Histogram:
    """A fixed-bucket histogram with count/sum/min/max.

    ``buckets`` are inclusive upper bounds; one implicit overflow bucket
    catches everything above the last bound.
    """

    kind = "histogram"

    def __init__(self, name: str, buckets: Iterable[float]):
        self.name = name
        self.buckets: Tuple[float, ...] = tuple(float(b) for b in buckets)
        if not self.buckets:
            raise TelemetryError("histogram %r needs at least one bucket" % name)
        if list(self.buckets) != sorted(self.buckets):
            raise TelemetryError("histogram %r buckets must be sorted" % name)
        self.counts: List[int] = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._finite = 0

    def observe(self, value: float) -> None:
        value = float(value)
        if not math.isfinite(value):
            # Non-finite observations (dead iterations) land in overflow.
            self.counts[-1] += 1
            self.count += 1
            return
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
                break
        else:
            self.counts[-1] += 1
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        self._finite += 1

    @property
    def mean(self) -> float:
        """Mean of the *finite* observations (dead iterations excluded)."""
        return self.sum / self._finite if self._finite else 0.0


class MetricsRegistry:
    """Name -> metric map with get-or-create accessors.

    A name is bound to one metric kind for the registry's lifetime;
    re-requesting it with a different kind (or different histogram buckets)
    is a programming error and raises :class:`TelemetryError`.
    """

    def __init__(self):
        self._metrics: Dict[str, object] = {}

    def _get(self, name: str, kind: str):
        metric = self._metrics.get(name)
        if metric is not None and metric.kind != kind:
            raise TelemetryError(
                "metric %r is a %s, not a %s" % (name, metric.kind, kind)
            )
        return metric

    def counter(self, name: str) -> Counter:
        metric = self._get(name, "counter")
        if metric is None:
            metric = self._metrics[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._get(name, "gauge")
        if metric is None:
            metric = self._metrics[name] = Gauge(name)
        return metric

    def histogram(self, name: str, buckets: Iterable[float]) -> Histogram:
        metric = self._get(name, "histogram")
        if metric is None:
            metric = self._metrics[name] = Histogram(name, buckets)
        elif metric.buckets != tuple(float(b) for b in buckets):
            raise TelemetryError(
                "histogram %r re-requested with different buckets" % name
            )
        return metric

    def get(self, name: str):
        """The metric registered under ``name``, or None."""
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """A plain-dict dump of every metric (stable across versions)."""
        out: Dict[str, Dict[str, object]] = {}
        for name in self.names():
            metric = self._metrics[name]
            if metric.kind == "counter":
                out[name] = {"kind": "counter", "value": metric.value}
            elif metric.kind == "gauge":
                out[name] = {
                    "kind": "gauge",
                    "value": metric.value,
                    "min": metric.min,
                    "max": metric.max,
                }
            else:
                out[name] = {
                    "kind": "histogram",
                    "buckets": list(metric.buckets),
                    "counts": list(metric.counts),
                    "count": metric.count,
                    "sum": metric.sum,
                    "min": metric.min,
                    "max": metric.max,
                }
        return out
