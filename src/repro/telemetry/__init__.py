"""Structured telemetry: metrics, typed trace events and pluggable sinks.

The observability layer of the reproduction (see the "Observability"
sections of README.md and DESIGN.md). The paper's speedup story lives in
*mechanisms* — iterations to convergence, wavefront serialization,
launch/copy overheads, ready-list occupancy against the transitive-closure
bound — and this package makes them visible without perturbing them:

* :class:`Telemetry` — one metrics registry + one event tracer, installed
  process-wide with :func:`set_telemetry` / :func:`telemetry_session` or
  injected per component;
* sinks — :class:`NullSink` (inert default), :class:`MemorySink` (tests),
  :class:`JSONLSink` (the ``--trace`` file format, schema-versioned in
  :mod:`repro.telemetry.schema`);
* :mod:`repro.telemetry.report` — human-readable profiles from traces and
  metric registries.

Disabled telemetry (the default) is a single attribute check per
instrumentation site and never touches an RNG or a cost model, so seeded
runs are bit-identical with it on or off.
"""

from .core import PassScope, Telemetry, get_telemetry, set_telemetry, telemetry_session
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    ITERATION_BUCKETS,
    MICROSECOND_BUCKETS,
    MetricsRegistry,
    OCCUPANCY_PCT_BUCKETS,
)
from .schema import (
    EVENT_TYPES,
    SCHEMA_VERSION,
    iter_trace,
    read_trace,
    validate_event,
    validate_trace,
)
from .sinks import JSONLSink, MemorySink, NullSink, Sink, TeeSink

__all__ = [
    "Telemetry",
    "PassScope",
    "get_telemetry",
    "set_telemetry",
    "telemetry_session",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "ITERATION_BUCKETS",
    "OCCUPANCY_PCT_BUCKETS",
    "MICROSECOND_BUCKETS",
    "Sink",
    "NullSink",
    "MemorySink",
    "JSONLSink",
    "TeeSink",
    "SCHEMA_VERSION",
    "EVENT_TYPES",
    "validate_event",
    "validate_trace",
    "read_trace",
    "iter_trace",
]
