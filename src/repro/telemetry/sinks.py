"""Event sinks: where the tracer's records go.

The default :class:`NullSink` is inert and advertises ``enabled = False``,
which lets every instrumentation site skip event construction entirely — a
single attribute check is the whole cost of disabled telemetry.
:class:`MemorySink` retains records for tests and in-process analysis;
:class:`JSONLSink` streams them to a file, one JSON object per line, in the
versioned schema of :mod:`repro.telemetry.schema`.
"""

from __future__ import annotations

import json
import math
from typing import Dict, List, Optional

from ..errors import TelemetryError


class Sink:
    """Base sink interface."""

    #: Instrumentation sites skip event construction when this is False.
    enabled = True

    def write(self, record: Dict) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources (idempotent)."""


class NullSink(Sink):
    """Discards everything; the near-zero-overhead default."""

    enabled = False

    def write(self, record: Dict) -> None:
        pass


class MemorySink(Sink):
    """Keeps every record in a list (tests, in-process summaries)."""

    def __init__(self):
        self.records: List[Dict] = []

    def write(self, record: Dict) -> None:
        self.records.append(record)

    def by_type(self, event_type: str) -> List[Dict]:
        return [r for r in self.records if r.get("event") == event_type]


def _json_safe(value):
    """Replace non-finite floats with None so the output is strict JSON."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {k: _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return value


class JSONLSink(Sink):
    """Appends one JSON object per line to ``path``.

    The file is opened lazily on the first write and truncated then, so
    creating a sink that never fires leaves no file behind.
    """

    def __init__(self, path: str):
        self.path = str(path)
        self._handle = None
        self._count = 0

    def write(self, record: Dict) -> None:
        if self._handle is None:
            try:
                self._handle = open(self.path, "w")
            except OSError as exc:
                raise TelemetryError(
                    "cannot open trace file %r: %s" % (self.path, exc)
                ) from exc
        self._handle.write(json.dumps(_json_safe(record), sort_keys=True))
        self._handle.write("\n")
        self._count += 1

    @property
    def records_written(self) -> int:
        return self._count

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class TeeSink(Sink):
    """Fans every record out to several sinks (e.g. memory + file)."""

    def __init__(self, *sinks: Sink):
        self.sinks = tuple(sinks)
        self.enabled = any(s.enabled for s in self.sinks)

    def write(self, record: Dict) -> None:
        for sink in self.sinks:
            if sink.enabled:
                sink.write(record)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()
