"""Human-readable profiles from traces and metric registries.

:func:`summarize_trace` turns a JSONL trace (or an in-memory record list)
into the profile a perf investigation starts from: top regions by
simulated scheduling time, the kernel/transfer/launch split, the
divergence breakdown and iterations-to-convergence histograms.
:func:`render_metrics` dumps a :class:`~repro.telemetry.metrics.MetricsRegistry`
as an aligned text table.

Also runnable as ``python -m repro.telemetry.report TRACE.jsonl`` to
profile a recorded trace from the shell.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Union

from ..errors import TelemetryError
from .metrics import MetricsRegistry
from .schema import read_trace_lenient, validate_event

_BAR_WIDTH = 30


def _bar(fraction: float, width: int = _BAR_WIDTH) -> str:
    filled = int(round(max(0.0, min(1.0, fraction)) * width))
    return "#" * filled + "." * (width - filled)


def _histogram_lines(counts: Dict[int, int], label: str) -> List[str]:
    lines = ["%s iterations-to-convergence:" % label]
    total = sum(counts.values()) or 1
    for iterations in sorted(counts):
        n = counts[iterations]
        lines.append(
            "  %4d iter  %6d  |%s|" % (iterations, n, _bar(n / total))
        )
    return lines


def summarize_trace(source: Union[str, Iterable[Dict]], top: int = 10) -> str:
    """Render the profile of one trace (a path or an iterable of records).

    Reading is *lenient*: unparsable or schema-invalid records — a trace
    truncated by a killed run, or a file that is not a trace at all — are
    skipped and counted instead of raising, and an empty trace yields a
    friendly one-line summary.
    """
    if isinstance(source, str):
        records, skipped = read_trace_lenient(source)
    else:
        records = []
        skipped = 0
        for record in source:
            try:
                validate_event(record)
            except TelemetryError:
                skipped += 1
                continue
            records.append(record)

    if not records:
        line = "trace summary: no valid records"
        if skipped:
            line += " (skipped %d invalid or truncated line(s))" % skipped
        return line + "\n"

    by_type: Dict[str, int] = defaultdict(int)
    region_seconds: Dict[str, float] = defaultdict(float)
    region_iterations: Dict[str, int] = defaultdict(int)
    convergence: Dict[int, Dict[int, int]] = {1: defaultdict(int), 2: defaultdict(int)}
    kernel = transfer = launch = 0.0
    sel_waves = stall_waves = dead_ants = total_ants = 0
    launches = 0
    decisions: Dict[str, int] = defaultdict(int)

    for record in records:
        event = record["event"]
        by_type[event] += 1
        if event == "pass_end" and record["invoked"]:
            region_seconds[record["region"]] += record["seconds"]
            region_iterations[record["region"]] += record["iterations"]
            convergence[record["pass_index"]][record["iterations"]] += 1
        elif event == "kernel_launch":
            launches += 1
            kernel += record["kernel_seconds"]
            transfer += record["transfer_seconds"]
            launch += record["launch_seconds"]
            sel_waves += record["serialized_selection_waves"]
            stall_waves += record["serialized_stall_waves"]
            dead_ants += record["dead_ants"]
            total_ants += record["ants"] * record["iterations"]
        elif event == "region_end":
            decisions[record["decision"]] += 1

    lines: List[str] = []
    lines.append("trace summary: %d record(s)" % len(records))
    if skipped:
        lines.append("  skipped %d invalid or truncated line(s)" % skipped)
    lines.append(
        "  events: "
        + ", ".join("%s=%d" % (t, by_type[t]) for t in sorted(by_type))
    )

    if region_seconds:
        lines.append("")
        lines.append("top %d regions by simulated scheduling time:" % top)
        worst = max(region_seconds.values())
        ranked = sorted(region_seconds.items(), key=lambda kv: -kv[1])[:top]
        for name, seconds in ranked:
            lines.append(
                "  %-28s %10.1f us  %4d iter  |%s|"
                % (
                    name[:28],
                    seconds * 1e6,
                    region_iterations[name],
                    _bar(seconds / worst if worst else 0.0),
                )
            )

    if launches:
        total = kernel + transfer + launch
        lines.append("")
        lines.append("GPU time split over %d simulated launch(es):" % launches)
        for label, value in (("kernel", kernel), ("transfer", transfer), ("launch", launch)):
            lines.append(
                "  %-8s %12.1f us  |%s|"
                % (label, value * 1e6, _bar(value / total if total else 0.0))
            )
        lines.append("divergence breakdown:")
        lines.append("  serialized explore/exploit wavefront-steps: %d" % sel_waves)
        lines.append("  serialized stall-path wavefront-steps:      %d" % stall_waves)
        if total_ants:
            lines.append(
                "  dead ants: %d of %d constructions (%.2f%%)"
                % (dead_ants, total_ants, 100.0 * dead_ants / total_ants)
            )

    for pass_index in (1, 2):
        if convergence[pass_index]:
            lines.append("")
            lines.extend(
                _histogram_lines(convergence[pass_index], "pass %d" % pass_index)
            )

    if decisions:
        lines.append("")
        lines.append("pipeline decisions:")
        for name in sorted(decisions):
            lines.append("  %-20s %6d" % (name, decisions[name]))

    return "\n".join(lines) + "\n"


def render_metrics(registry: MetricsRegistry) -> str:
    """An aligned text dump of every metric in the registry."""
    if not len(registry):
        return "(no metrics collected)\n"
    lines: List[str] = []
    width = max(len(name) for name in registry.names())
    for name in registry.names():
        metric = registry.get(name)
        pad = name.ljust(width)
        if metric.kind == "counter":
            lines.append("%s  counter    %14.6g" % (pad, metric.value))
        elif metric.kind == "gauge":
            lines.append(
                "%s  gauge      %14.6g  (min %.6g, max %.6g)"
                % (pad, metric.value, metric.min, metric.max)
            )
        else:
            lines.append(
                "%s  histogram  count=%d mean=%.6g min=%s max=%s"
                % (pad, metric.count, metric.mean, metric.min, metric.max)
            )
            for bound, count in zip(
                list(metric.buckets) + [float("inf")], metric.counts
            ):
                if count:
                    lines.append("%s    <= %-8g %6d" % (" " * width, bound, count))
    return "\n".join(lines) + "\n"


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.telemetry.report",
        description="Summarize a JSONL telemetry trace.",
    )
    parser.add_argument("trace", help="path to a JSONL trace file")
    parser.add_argument(
        "--top", type=int, default=10, help="regions to rank (default 10)"
    )
    parser.add_argument(
        "--kernels",
        action="store_true",
        help="also print the per-pass kernel cost attribution rollup",
    )
    args = parser.parse_args(argv)
    import sys

    try:
        print(summarize_trace(args.trace, top=args.top), end="")
        if args.kernels:
            from ..profile.attribution import (
                fault_loss_rollup,
                kernel_phase_rollup,
                render_kernel_rollup,
            )
            from .schema import read_trace_lenient as _read

            records, _skipped = _read(args.trace)
            print()
            print(
                render_kernel_rollup(
                    kernel_phase_rollup(records), lost=fault_loss_rollup(records)
                ),
                end="",
            )
    except (OSError, TelemetryError) as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
