"""The versioned trace-event schema.

Every record emitted by :class:`repro.telemetry.Telemetry` is a flat JSON
object with three envelope fields —

* ``v``     — the schema version (:data:`SCHEMA_VERSION`),
* ``seq``   — a monotonically increasing per-telemetry sequence number
  (the reproduction is deterministic, so traces carry no wall-clock
  timestamps; ``seq`` is the causal order),
* ``event`` — the record type, one of :data:`EVENT_TYPES` —

plus the type's required fields listed below. Producers may add extra
fields; consumers must ignore fields they do not know (the usual
forward-compatibility rule). ``winner_cost: null`` in an ``iteration``
record means the iteration produced no feasible schedule (every ant died);
readers should treat it as +infinity.

Under that rule, records emitted while a :mod:`repro.obs.context` trace
context is installed carry three *optional* envelope extras —
``trace_id``, ``span_id`` and ``parent_id`` (see
:data:`TRACE_CONTEXT_FIELDS`) — correlating every event of one region's
journey (passes, launches, faults, retries, checkpoint resumes,
downgrades) under one deterministic trace id. They are additive in schema
v1: no version bump, and traces recorded without a context stay valid.

Event types (schema v1):

========================  ====================================================
``suite_start/_end``      one compilation of the whole suite
``region_start/_end``     one region through the pipeline (decision, quality)
``pass_start/_end``       one ACO pass on one region (bounds, convergence)
``iteration``             one ACO iteration (the winner's cost)
``kernel_launch``         one simulated GPU launch (time + divergence split)
``transfer``              one host<->device copy set (bytes, calls)
``batch_start/_end``      one multi-region batched launch
``verify``                one independent verification pass (checks, violations)
``reinit``                one MMAS pheromone reinitialization (stagnation restart)
``fault``                 one injected fault detected (class, attempt, cost)
``retry``                 one retry attempt starting (seed, resumed or fresh)
``degrade``               one degradation-ladder step (from rung -> to rung)
``deadline``              one soft-deadline stop (budget spent, partial result)
``fleet_start/_end``      one sharded batch under the fleet supervisor
``shard_dispatch``        one region handed to one shard worker
``worker_fault``          one worker-level fault (crash/hang/corrupt result)
``worker_restart``        one dead worker brought back after backoff
``reassign``              one region re-dispatched after a worker fault
``straggler``             one worker flagged slow relative to the fleet
========================  ====================================================

Records emitted while a :func:`repro.obs.context.worker_scope` is
installed additionally carry a ``worker`` field (the shard worker id), so
a fleet run's kernel launches, iterations and faults attribute to the
worker that produced them — same forward-compatibility rule as the trace
context extras.

The resilience events (``fault``/``retry``/``degrade``/``deadline``) are
additive in schema v1: old consumers never see them unless the resilience
layer is active, and the forward-compatibility rule covers new readers.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, Iterator, List, Tuple, Union

from ..errors import TelemetryError

#: Version stamped into every record; bump on incompatible field changes.
SCHEMA_VERSION = 1

#: Envelope fields present on every record.
ENVELOPE_FIELDS: Tuple[str, ...] = ("v", "seq", "event")

#: Optional envelope extras stamped when a trace context is installed
#: (``parent_id`` is omitted on a trace's root span).
TRACE_CONTEXT_FIELDS: Tuple[str, ...] = ("trace_id", "span_id", "parent_id")

#: event type -> required (non-envelope) field names.
EVENT_TYPES: Dict[str, Tuple[str, ...]] = {
    "suite_start": ("scheduler", "num_kernels"),
    "suite_end": ("scheduler", "num_kernels", "scheduling_seconds", "base_seconds"),
    "region_start": ("region", "size", "scheduler"),
    "region_end": (
        "region",
        "size",
        "decision",
        "aco_invoked",
        "heuristic_length",
        "final_length",
        "heuristic_occupancy",
        "final_occupancy",
        "scheduling_seconds",
    ),
    "pass_start": ("region", "pass_index", "scheduler", "lower_bound", "initial_cost"),
    "iteration": ("region", "pass_index", "iteration", "winner_cost", "best_cost"),
    "pass_end": (
        "region",
        "pass_index",
        "invoked",
        "iterations",
        "final_cost",
        "hit_lower_bound",
        "seconds",
    ),
    "kernel_launch": (
        "region",
        "pass_index",
        "wavefronts",
        "ants",
        "iterations",
        "kernel_seconds",
        "transfer_seconds",
        "launch_seconds",
        "compute_cycles",
        "memory_cycles",
        "alloc_cycles",
        "uniform_cycles",
        "serialized_selection_waves",
        "serialized_stall_waves",
        "dead_ants",
        "ready_peak",
        "ready_capacity",
    ),
    "transfer": ("region", "pass_index", "bytes", "calls", "seconds"),
    "batch_start": ("num_regions", "blocks_per_region"),
    "batch_end": ("num_regions", "seconds", "unbatched_seconds", "amortization_speedup"),
    "verify": ("region", "checks", "violations"),
    "reinit": ("region", "pass_index", "iteration", "tau_max"),
    "fault": ("region", "fault_class", "attempt", "seconds"),
    "retry": ("region", "attempt", "seed", "resumed"),
    "degrade": ("region", "from_rung", "to_rung", "attempt"),
    "deadline": ("region", "pass_index", "deadline_seconds", "spent_seconds"),
    "fleet_start": ("num_shards", "num_regions"),
    "fleet_end": (
        "num_shards",
        "num_regions",
        "seconds",
        "recovered_regions",
        "reassignments",
    ),
    "shard_dispatch": ("worker", "region", "dispatch", "blocks"),
    "worker_fault": ("worker", "fault_class", "dispatch", "seconds"),
    "worker_restart": ("worker", "restarts", "backoff_seconds"),
    "reassign": ("region", "from_worker", "epoch"),
    "straggler": ("worker", "epoch", "busy_seconds", "median_seconds"),
}


def validate_event(record: Dict) -> None:
    """Raise :class:`TelemetryError` unless ``record`` is schema-valid."""
    if not isinstance(record, dict):
        raise TelemetryError("trace record must be an object, got %r" % type(record))
    for field in ENVELOPE_FIELDS:
        if field not in record:
            raise TelemetryError("trace record missing envelope field %r" % field)
    if record["v"] != SCHEMA_VERSION:
        raise TelemetryError(
            "unsupported schema version %r (supported: %d)"
            % (record["v"], SCHEMA_VERSION)
        )
    event = record["event"]
    required = EVENT_TYPES.get(event)
    if required is None:
        raise TelemetryError("unknown event type %r" % event)
    missing = [f for f in required if f not in record]
    if missing:
        raise TelemetryError(
            "event %r missing required field(s): %s" % (event, ", ".join(missing))
        )


def iter_trace(path: str) -> Iterator[Dict]:
    """Yield validated records from a JSONL trace file.

    Raises :class:`TelemetryError` on unparsable lines or schema-invalid
    records, identifying the offending line number.
    """
    with open(path) as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError as exc:
                raise TelemetryError(
                    "%s:%d: not valid JSON: %s" % (path, lineno, exc)
                ) from exc
            try:
                validate_event(record)
            except TelemetryError as exc:
                raise TelemetryError("%s:%d: %s" % (path, lineno, exc)) from exc
            yield record


def read_trace(path: str) -> List[Dict]:
    """All validated records of a JSONL trace file, in file order."""
    return list(iter_trace(path))


def read_trace_lenient(path: str) -> Tuple[List[Dict], int]:
    """Best-effort trace reading: ``(valid records, skipped line count)``.

    Unparsable or schema-invalid lines are counted and skipped instead of
    raising, so a truncated trace (a run killed mid-write) still yields the
    records that made it to disk. Use :func:`read_trace` when corruption
    should be an error.
    """
    records: List[Dict] = []
    skipped = 0
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                validate_event(record)
            except (ValueError, TelemetryError):
                skipped += 1
                continue
            records.append(record)
    return records, skipped


def validate_trace(source: Union[str, Iterable[Dict]]) -> int:
    """Validate a trace file path or an iterable of records.

    Returns the number of valid records; raises on the first invalid one.
    """
    if isinstance(source, str):
        records: Iterable[Dict] = iter_trace(source)
        return sum(1 for _ in records)
    count = 0
    for record in source:
        validate_event(record)
        count += 1
    return count
