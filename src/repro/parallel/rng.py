"""Spawn-indexed per-ant RNG streams.

Both construction backends (:mod:`~repro.parallel.vectorized` and
:mod:`~repro.parallel.loop`) must make *exactly* the same random decisions
for a given seed, or the differential harness cannot demand bit-identical
schedules. A single shared generator cannot provide that: the vectorized
engine draws step-major (one batch across all ants per step) while a
scalar engine naturally draws ant-major, so the two would interleave one
stream differently.

The fix is one independent stream per ant *slot*, spawned from the launch
seed with :meth:`numpy.random.SeedSequence.spawn` semantics: ant ``i``
always owns spawn child ``i``. Consequences, each pinned by a regression
test:

* ant ``i``'s draw sequence depends only on ``(seed, i)`` — never on how
  many ants run beside it or how they are grouped into wavefronts;
* a batch draw across the population equals the ant-by-ant scalar draws,
  so backend equivalence holds by construction at the RNG layer and the
  differential harness only has to prove the *state evolution* equal;
* wavefront-level decisions (Section V-B) are drawn from the wavefront
  leader's stream (lane 0), keeping them lockstep-uniform without a
  second stream family.

The per-step draw discipline shared by both backends:

====== =====================================================================
pass 1 exploit decision (leader stream per wavefront, or every ant's
       stream at thread level), then one roulette draw per ant
pass 2 one stall draw per ant (only on steps where any ant considers a
       stall), then the pass-1 sequence
====== =====================================================================

Every ant draws on every step it is charged for — including exploiting
ants' unused roulette draws and inactive lanes' draws — exactly like the
paper's kernel, where a masked-off lane still executes the wavefront's
RNG instructions.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from ..errors import ConfigError
from ..obs import record as _record

SeedLike = Union[int, np.random.Generator, "AntRngStreams"]


class AntRngStreams:
    """One independent ``numpy.random.Generator`` per ant slot.

    ``seed`` may be an integer launch seed or an already-seeded
    :class:`numpy.random.Generator` (its spawn children are used, which
    for ``default_rng(s)`` equals spawning ``SeedSequence(s)`` directly).
    """

    def __init__(self, seed: SeedLike, num_ants: int):
        if num_ants < 1:
            raise ConfigError("need at least one ant stream")
        if isinstance(seed, np.random.Generator):
            root = seed
        else:
            root = np.random.default_rng(seed)
        self.num_ants = num_ants
        #: Stream ``i`` belongs to ant slot ``i`` (spawn-indexed: the first
        #: ``k`` streams are identical for every population size >= k).
        self.generators = tuple(root.spawn(num_ants))

    @classmethod
    def coerce(cls, rng: SeedLike, num_ants: int) -> "AntRngStreams":
        """Wrap a seed or generator; pass an existing stream set through."""
        if isinstance(rng, AntRngStreams):
            if rng.num_ants != num_ants:
                raise ConfigError(
                    "stream set has %d ants, launch needs %d"
                    % (rng.num_ants, num_ants)
                )
            return rng
        return cls(rng, num_ants)

    # -- state capture (checkpointed recovery) ------------------------------

    def state(self) -> list:
        """Every stream's bit-generator state, in ant-slot order.

        The returned structure is JSON-serializable (PCG64 state is a dict
        of ints), so a checkpoint can round-trip it losslessly; restoring
        it with :meth:`restore` continues each ant's draw sequence exactly
        where it stopped.
        """
        return [g.bit_generator.state for g in self.generators]

    def restore(self, states: list) -> None:
        """Restore a :meth:`state` capture into this stream set."""
        if len(states) != self.num_ants:
            raise ConfigError(
                "checkpoint has %d ant streams, launch needs %d"
                % (len(states), self.num_ants)
            )
        for generator, state in zip(self.generators, states):
            generator.bit_generator.state = state

    # -- draw primitives (the only ways the colonies consume randomness) ----

    def uniform_ants(self) -> np.ndarray:
        """One U[0,1) draw from every ant's stream, in ant-slot order."""
        values = np.array([g.random() for g in self.generators], dtype=np.float64)
        recorder = _record.get_recorder()
        if recorder is not None:
            # Observed *after* the streams advanced, so the recorded
            # sequence is exactly what the colony consumed; with no ambient
            # recorder the draw path is untouched (recording off stays
            # bit-identical).
            for ant, value in enumerate(values):
                recorder.observe_draw(ant, float(value))
        return values

    def uniform_ant(self, ant: int) -> float:
        """One U[0,1) draw from a single ant's stream (scalar engines)."""
        value = float(self.generators[ant].random())
        recorder = _record.get_recorder()
        if recorder is not None:
            recorder.observe_draw(ant, value)
        return value

    def uniform_wavefront_leaders(
        self, num_wavefronts: int, wavefront_size: int
    ) -> np.ndarray:
        """One draw per wavefront, taken from its lane-0 (leader) stream."""
        if num_wavefronts * wavefront_size != self.num_ants:
            raise ConfigError(
                "wavefront geometry %dx%d does not cover %d ant streams"
                % (num_wavefronts, wavefront_size, self.num_ants)
            )
        values = np.array(
            [
                self.generators[w * wavefront_size].random()
                for w in range(num_wavefronts)
            ],
            dtype=np.float64,
        )
        recorder = _record.get_recorder()
        if recorder is not None:
            for w in range(num_wavefronts):
                recorder.observe_draw(w * wavefront_size, float(values[w]))
        return values
