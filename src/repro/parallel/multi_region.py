"""Multi-region batch scheduling — the paper's stated future work.

Section VII: *"we will work on maximizing the utilization of the GPU by
scheduling multiple regions in parallel."* With one region per launch, a
small region leaves most of the device idle and still pays the full kernel
launch and transfer overheads; those fixed costs are exactly what limits
the speedup on the [1-49] size class (Table 3).

:class:`MultiRegionScheduler` batches several regions into one cooperative
launch:

* the launch overhead is paid **once** per batch;
* every region's device image travels in **one** batched transfer;
* the batch's wavefronts are partitioned across regions (at least one
  block each, more for bigger regions), and regions run concurrently on
  the device — the batch's kernel time is the *maximum* of its regions'
  kernel times per capacity wave, not their sum.

The trade-off is ants-per-region: a region in a batch of eight gets an
eighth of the colony, which can cost schedule quality on hard regions. The
``benchmarks/bench_multi_region.py`` harness measures both sides.

Sharded execution (``repro.fleet``) rides on two invariants this module
maintains:

* the block partition is a pure function of the batch — computed **once**
  over all items via :func:`partition_blocks`, never per shard — so a
  region's block count (and hence its schedule) is independent of how the
  batch is split across workers;
* each slot runs through one shared runner (:meth:`MultiRegionScheduler
  .run_slot`) whose outcome depends only on ``(ddg, seed, blocks, params,
  fault_plan, resilience)`` — never on which worker ran it or when.

Together they make the fleet's merged result bit-identical to the
single-device run for any shard count. ``schedule_batch`` delegates to the
fleet supervisor when sharding is requested (the ``fleet`` argument or the
``REPRO_SHARDS`` environment override).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from ..config import ACOParams, FleetParams, GPUParams, ResilienceParams, replace_params
from ..ddg.graph import DDG
from ..errors import GPUSimError, InjectedFault, RegionUnrecoverable
from ..gpusim.device import GPUDevice
from ..gpusim.faults import FaultPlan
from ..machine.model import MachineModel
from ..obs.context import region_trace
from ..obs.record import get_recorder
from ..profile import get_profiler
from ..resilience.log import get_resilience_log
from ..schedule.schedule import Schedule
from ..telemetry import Telemetry, get_telemetry
from ..timing import HostSecondsLedger
from ..aco.sequential import ACOResult
from .scheduler import ParallelACOResult, ParallelACOScheduler

#: A batch slot's result: GPU-scheduled normally; a region rescued by the
#: resilience ladder's ``sequential`` rung carries a CPU :class:`ACOResult`.
RegionResult = Union[ParallelACOResult, ACOResult]


def partition_blocks(sizes: Sequence[int], total_blocks: int) -> List[int]:
    """Proportional-to-size split of a launch's blocks, >= 1 each.

    Pure function of ``(sizes, total_blocks)`` — the fleet layer relies on
    that: the partition is computed once over the whole batch, so every
    shard sees the same per-region block counts the single-device run
    would use. Remainder blocks go to the largest regions first; the
    trim loop shrinks the smallest multi-block regions when the floor of
    one-block-each overshoots.
    """
    if not sizes:
        raise GPUSimError("empty batch")
    if len(sizes) > total_blocks:
        raise GPUSimError(
            "batch of %d regions needs at least %d blocks (have %d)"
            % (len(sizes), len(sizes), total_blocks)
        )
    total_size = sum(sizes)
    blocks = [max(1, (total_blocks * size) // total_size) for size in sizes]
    # Distribute the remainder to the largest regions first.
    order = sorted(range(len(sizes)), key=lambda i: -sizes[i])
    index = 0
    while sum(blocks) < total_blocks:
        blocks[order[index % len(order)]] += 1
        index += 1
    while sum(blocks) > total_blocks:
        candidates = [i for i in order if blocks[i] > 1]
        if not candidates:
            break
        blocks[candidates[-1]] -= 1
    return blocks


@dataclass
class BatchItem:
    """One region's scheduling request within a batch."""

    ddg: DDG
    seed: int = 0
    initial_order: Optional[Tuple[int, ...]] = None
    reference_schedule: Optional[Schedule] = None


@dataclass
class SlotOutcome:
    """One batch slot's full outcome (the shared slot-runner's return).

    ``attempts`` counts engine attempts (1 on the fault-free fast path;
    the ladder's total across rungs when resilience is active).
    ``final_backend`` names the engine that shipped the region —
    ``vectorized``/``loop``/``sequential``/``heuristic`` — or None when
    the slot failed outright. ``seconds`` is the slot's charged simulated
    time (retry overhead included under resilience).
    """

    result: Optional[RegionResult]
    error: Optional[str]
    attempts: int
    final_backend: Optional[str]
    seconds: float


@dataclass
class BatchResult:
    """Outcome of one batched launch.

    A failed region does not take the batch down: its slot in ``results``
    is None and ``errors`` carries the per-region failure description
    (aligned index-for-index with the batch items). Fault-free batches
    keep the historical shape — every slot a result, ``errors`` all None.
    A slot rescued by the resilience ladder's CPU rung holds a sequential
    :class:`~repro.aco.sequential.ACOResult`; its time counts as host-side
    work serial with the batch.

    ``attempts``/``final_backends`` extend the per-region error records:
    aligned index-for-index with ``results``, they say how many engine
    attempts each slot took and which engine finally shipped it (None for
    a slot that failed outright). Both default empty for compatibility
    with callers constructing historical-shape results.
    """

    results: Tuple[Optional[RegionResult], ...]
    #: Wavefronts assigned to each region.
    blocks_per_region: Tuple[int, ...]
    #: Modelled GPU seconds for the whole batch (shared launch + transfer +
    #: concurrent kernels).
    seconds: float
    #: What the same regions would cost as individual launches (the paper's
    #: current design) — the amortization baseline.
    unbatched_seconds: float
    #: Per-region error description, or None where the region scheduled.
    errors: Tuple[Optional[str], ...] = ()
    #: Per-region engine attempts (1 = first try; empty when untracked).
    attempts: Tuple[int, ...] = ()
    #: Per-region shipping engine, or None for a failed slot.
    final_backends: Tuple[Optional[str], ...] = ()

    @property
    def amortization_speedup(self) -> float:
        return self.unbatched_seconds / self.seconds if self.seconds > 0 else 1.0

    @property
    def failed_regions(self) -> int:
        return sum(1 for r in self.results if r is None)

    @property
    def scheduled(self) -> Tuple[RegionResult, ...]:
        """The successful results only (order preserved)."""
        return tuple(r for r in self.results if r is not None)

    @property
    def retried_regions(self) -> int:
        """Regions that needed more than one engine attempt."""
        return sum(1 for a in self.attempts if a > 1)


class MultiRegionScheduler:
    """Schedules batches of regions in single launches."""

    name = "parallel-aco-multi-region"

    def __init__(
        self,
        machine: MachineModel,
        params: Optional[ACOParams] = None,
        gpu_params: Optional[GPUParams] = None,
        device: Optional[GPUDevice] = None,
        telemetry: Optional[Telemetry] = None,
    ):
        self.machine = machine
        self.params = params or ACOParams()
        self.device = device or GPUDevice()
        self.gpu_params = gpu_params or GPUParams()
        self.gpu_params.validate(self.device.wavefront_size)
        self._telemetry = telemetry

    @property
    def telemetry(self) -> Telemetry:
        """The injected telemetry, or the process-wide one (resolved late)."""
        return self._telemetry if self._telemetry is not None else get_telemetry()

    def _partition_blocks(self, items: Sequence[BatchItem]) -> List[int]:
        """Proportional-to-size split of the launch's blocks, >= 1 each."""
        return partition_blocks(
            [item.ddg.num_instructions for item in items], self.gpu_params.blocks
        )

    def _region_scheduler(self, blocks: int) -> ParallelACOScheduler:
        gpu = replace_params(self.gpu_params, blocks=blocks)
        return ParallelACOScheduler(
            self.machine,
            params=self.params,
            gpu_params=gpu,
            device=self.device,
            telemetry=self._telemetry,
        )

    def run_slot(
        self,
        item: BatchItem,
        blocks: int,
        fault_plan: Optional[FaultPlan] = None,
        resilience: Optional[ResilienceParams] = None,
    ) -> SlotOutcome:
        """Schedule one batch slot (the shared slot runner).

        With ``resilience`` active the slot runs the full retry ladder
        (its own blocks partition, shared fault plan); with only a
        ``fault_plan`` a single attempt is made and an injected fault
        becomes the slot's error instead of aborting the batch.

        Each slot gets its own trace context (unless the caller already
        installed one): a batch of N regions is N traces, and each slot's
        faults/retries/downgrades correlate under that slot's trace id.

        The outcome is a pure function of ``(ddg, seed, blocks, params,
        fault_plan, resilience)`` — region-level fault sites are keyed by
        (region, pass, attempt), never by caller identity — which is the
        contract the fleet layer's re-dispatch correctness rests on: any
        worker (or the serial host fallback) re-running a slot reproduces
        it bit-identically.
        """
        with region_trace(item.ddg.region.name, item.ddg.num_instructions, item.seed):
            return self._run_slot_traced(item, blocks, fault_plan, resilience)

    # Backward-compatible alias for the pre-fleet internal API.
    def _region_result(
        self,
        item: BatchItem,
        blocks: int,
        fault_plan: Optional[FaultPlan] = None,
        resilience: Optional[ResilienceParams] = None,
    ) -> Tuple[Optional[RegionResult], Optional[str]]:
        outcome = self.run_slot(item, blocks, fault_plan=fault_plan, resilience=resilience)
        return outcome.result, outcome.error

    def _run_slot_traced(
        self,
        item: BatchItem,
        blocks: int,
        fault_plan: Optional[FaultPlan] = None,
        resilience: Optional[ResilienceParams] = None,
    ) -> SlotOutcome:
        scheduler = self._region_scheduler(blocks)
        region_name = item.ddg.region.name
        if resilience is not None and resilience.active:
            from ..resilience.ladder import schedule_with_resilience

            try:
                outcome = schedule_with_resilience(
                    scheduler,
                    item.ddg,
                    item.seed,
                    resilience,
                    initial_order=item.initial_order,
                    reference_schedule=item.reference_schedule,
                    telemetry=self.telemetry,
                    fault_plan=fault_plan,
                )
            except RegionUnrecoverable as exc:
                return SlotOutcome(
                    result=None,
                    error="unrecoverable: %s" % exc,
                    attempts=max(1, len(exc.causes)),
                    final_backend=None,
                    seconds=exc.spent_seconds,
                )
            if outcome.result is None:
                return SlotOutcome(
                    result=None,
                    error="degraded: ladder shipped no ACO schedule",
                    attempts=max(1, outcome.attempts),
                    final_backend=outcome.final_backend,
                    seconds=outcome.spent_seconds,
                )
            return SlotOutcome(
                result=outcome.result,
                error=None,
                attempts=outcome.attempts,
                final_backend=outcome.final_backend,
                seconds=outcome.spent_seconds,
            )
        try:
            result = scheduler.schedule(
                item.ddg,
                seed=item.seed,
                initial_order=item.initial_order,
                reference_schedule=item.reference_schedule,
                fault_plan=fault_plan,
            )
            return SlotOutcome(
                result=result,
                error=None,
                attempts=1,
                final_backend=scheduler.backend,
                seconds=result.seconds,
            )
        except InjectedFault as exc:
            get_resilience_log().record_fault(exc.fault_class)
            tele = self.telemetry
            tele.emit(
                "fault",
                region=region_name,
                fault_class=exc.fault_class,
                attempt=0,
                seconds=exc.seconds,
                backend=scheduler.backend,
            )
            if tele.collect_metrics:
                tele.metrics.counter("resilience.faults." + exc.fault_class).inc()
            return SlotOutcome(
                result=None,
                error="%s: %s" % (exc.fault_class, exc),
                attempts=1,
                final_backend=None,
                seconds=exc.seconds,
            )

    @staticmethod
    def _kernel_and_transfer(result: ParallelACOResult) -> Tuple[float, float, int]:
        """(kernel seconds, transfer bytes-time, invoked passes) of a result."""
        kernel = 0.0
        transfer = 0.0
        passes = 0
        for p in (result.pass1, result.pass2):
            if p.invoked:
                kernel += p.kernel_seconds
                transfer += p.transfer_seconds
                passes += 1
        return kernel, transfer, passes

    def schedule_batch(
        self,
        items: Sequence[BatchItem],
        fault_plan: Optional[FaultPlan] = None,
        resilience: Optional[ResilienceParams] = None,
        fleet: Optional[FleetParams] = None,
    ) -> BatchResult:
        """Schedule all ``items`` as one batched launch (per invoked pass).

        A region that faults (chaos mode) no longer aborts the batch: the
        other regions still schedule, the failed slot reports its error,
        and the batch's time accounting covers the work that ran. Pass
        ``resilience`` to give each slot the full retry ladder instead of
        a single attempt.

        Pass ``fleet`` (or set ``REPRO_SHARDS`` > 1) to shard the batch
        across supervised workers — the merged result is bit-identical to
        this single-device path; only the fleet's own wall-model timing
        differs, reported separately on the supervisor's FleetResult.
        """
        if not items:
            raise GPUSimError("empty batch")
        fleet_params = fleet if fleet is not None else FleetParams.from_env()
        if fleet_params.num_shards > 1:
            from ..fleet.supervisor import FleetSupervisor

            supervised = FleetSupervisor(self, fleet_params).schedule_batch(
                items, fault_plan=fault_plan, resilience=resilience
            )
            return supervised.batch
        blocks = self._partition_blocks(items)
        tele = self.telemetry
        tele.emit(
            "batch_start",
            num_regions=len(items),
            blocks_per_region=list(blocks),
        )
        prof = get_profiler()
        outcomes: List[SlotOutcome] = []
        with prof.span("batch", "batch"):
            for item, b in zip(items, blocks):
                outcomes.append(
                    self.run_slot(item, b, fault_plan=fault_plan, resilience=resilience)
                )
        return self.assemble_batch(items, blocks, outcomes)

    def assemble_batch(
        self,
        items: Sequence[BatchItem],
        blocks: Sequence[int],
        outcomes: Sequence[SlotOutcome],
    ) -> BatchResult:
        """Reduce per-slot outcomes (in slot order) into one BatchResult.

        Shared by the local path and the fleet supervisor's merge — the
        batch's derived timing is a pure function of the slot outcomes and
        the block partition, so a fleet run reduces to the *same* numbers
        as the single-device run. Also records the per-slot ``batch``
        schedule entries and publishes the ``batch_end`` telemetry.
        """
        results = [outcome.result for outcome in outcomes]
        errors = [outcome.error for outcome in outcomes]
        recorder = get_recorder()
        if recorder is not None:
            for item, b, outcome in zip(items, blocks, outcomes):
                recorder.record_schedule(
                    "batch",
                    region=item.ddg.region.name,
                    seed=item.seed,
                    blocks=b,
                    error=outcome.error,
                )

        cost = self.device.cost
        launch = cost.launch_overhead
        # Batched transfer: one call for all images; byte time adds up. The
        # per-region transfer model already used one call + bytes, so strip
        # the per-call component down to a single shared call.
        total_kernel = 0.0
        max_kernel = 0.0
        total_transfer = 0.0
        unbatched = 0.0
        host = HostSecondsLedger()
        any_invoked = 0
        for result in results:
            if result is None:
                continue
            if not isinstance(result, ParallelACOResult):
                # A CPU rescue (resilience ladder's sequential rung): no
                # device work to batch; its time is serial host time.
                host.charge(result.seconds)
                unbatched += result.seconds
                continue
            kernel, transfer, passes = self._kernel_and_transfer(result)
            total_kernel += kernel
            max_kernel = max(max_kernel, kernel)
            total_transfer += max(0.0, transfer - 2 * cost.per_copy_call * passes)
            unbatched += result.seconds
            any_invoked += passes

        tele = self.telemetry
        attempts = tuple(outcome.attempts for outcome in outcomes)
        backends = tuple(outcome.final_backend for outcome in outcomes)
        if any_invoked == 0:
            batch = BatchResult(
                results=tuple(results),
                blocks_per_region=tuple(blocks),
                seconds=host.total,
                unbatched_seconds=unbatched,
                errors=tuple(errors),
                attempts=attempts,
                final_backends=backends,
            )
            self._publish_batch(tele, batch)
            return batch

        # Regions run concurrently: with the block partition summing to the
        # configured launch size, every wavefront is resident at once (up to
        # device capacity), so the batch kernel time is the slowest region's
        # kernel time, scaled by how many capacity waves the launch needs.
        waves = self.device.batches(self.gpu_params.blocks)
        batch_seconds = (
            2 * launch  # one launch per pass (RP pass + ILP pass)
            + 2 * cost.per_copy_call
            + total_transfer
            + waves * max_kernel
        )
        batch = BatchResult(
            results=tuple(results),
            blocks_per_region=tuple(blocks),
            seconds=batch_seconds,
            unbatched_seconds=unbatched,
            errors=tuple(errors),
            attempts=attempts,
            final_backends=backends,
        )
        self._publish_batch(tele, batch)
        return batch

    def _publish_batch(self, tele: Telemetry, batch: BatchResult) -> None:
        """Export one batch outcome (batch_end event + batch.* metrics)."""
        if not tele.active:
            return
        tele.emit(
            "batch_end",
            num_regions=len(batch.results),
            seconds=batch.seconds,
            unbatched_seconds=batch.unbatched_seconds,
            amortization_speedup=batch.amortization_speedup,
            failed_regions=batch.failed_regions,
        )
        if tele.collect_metrics:
            m = tele.metrics
            m.counter("batch.launches").inc()
            m.counter("batch.regions").inc(len(batch.results))
            m.counter("batch.batched_us").inc(batch.seconds * 1e6)
            m.counter("batch.unbatched_us").inc(batch.unbatched_seconds * 1e6)
            m.gauge("batch.amortization_speedup").set(batch.amortization_speedup)
