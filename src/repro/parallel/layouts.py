"""The region's device image: padded structure-of-arrays buffers.

Section V-A: the parallel scheduler allocates nothing on the device.
Everything an ant needs — operand tables, successor lists, critical-path
heights, occupancy lookup tables — is packed into fixed-size arrays on the
host and copied over once, and per-ant dynamic state (ready lists, pressure
counters) lives in preallocated 2-D arrays whose widths are *upper bounds*:
the ready/available list is sized by the transitive-closure bound
(:meth:`repro.ddg.closure.TransitiveClosure.ready_list_upper_bound`) when
the ``tight_ready_list_bound`` optimization is on, or by the trivial bound
``n`` otherwise.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..ddg.closure import TransitiveClosure
from ..ddg.analysis import critical_path_info
from ..ddg.graph import DDG
from ..ir.registers import RegisterClass, VirtualRegister
from ..machine.model import MachineModel


def _pad_lists(lists, pad_value=-1, dtype=np.int32, min_width=1):
    width = max(min_width, max((len(l) for l in lists), default=0))
    out = np.full((len(lists), width), pad_value, dtype=dtype)
    for row, items in enumerate(lists):
        for col, value in enumerate(items):
            out[row, col] = value
    return out


class RegionDeviceData:
    """Read-only per-region arrays shared by all ants (the device image)."""

    def __init__(self, ddg: DDG, machine: MachineModel, tight_ready_bound: bool = True):
        self.ddg = ddg
        self.machine = machine
        region = ddg.region
        n = ddg.num_instructions
        self.num_instructions = n

        # Dense register universe.
        registers: Tuple[VirtualRegister, ...] = tuple(sorted(region.all_registers))
        self.registers = registers
        self.reg_index: Dict[VirtualRegister, int] = {
            reg: i for i, reg in enumerate(registers)
        }
        self.num_registers = len(registers)

        classes = machine.classes()
        self.classes: Tuple[RegisterClass, ...] = classes
        self.num_classes = len(classes)
        class_index = {cls: i for i, cls in enumerate(classes)}
        # Registers of classes the machine does not constrain get class -1
        # and are ignored by the pressure counters.
        self.reg_class = np.array(
            [class_index.get(reg.reg_class, -1) for reg in registers], dtype=np.int32
        )

        # Operand tables (padded; -1 terminates).
        self.uses = _pad_lists(
            [[self.reg_index[r] for r in inst.uses] for inst in region]
        )
        self.defs = _pad_lists(
            [[self.reg_index[r] for r in inst.defs] for inst in region]
        )

        # uses_redefined[i, s]: operand slot s of instruction i names a
        # register i itself redefines (kill-before-def must not free it).
        self.uses_redefined = np.zeros_like(self.uses, dtype=bool)
        for inst in region:
            def_ids = {self.reg_index[r] for r in inst.defs}
            for slot, reg in enumerate(inst.uses):
                if self.reg_index[reg] in def_ids:
                    self.uses_redefined[inst.index, slot] = True

        # Static per-class def counts (the stall heuristic's "opens" preview).
        self.defs_per_class = np.zeros((n, self.num_classes), dtype=np.int32)
        for inst in region:
            for reg in inst.defs:
                ci = class_index.get(reg.reg_class, -1)
                if ci >= 0:
                    self.defs_per_class[inst.index, ci] += 1

        # Dependence structure.
        self.succ_ids = _pad_lists([[s for s, _l in ddg.successors[i]] for i in range(n)])
        self.succ_lat = _pad_lists(
            [[l for _s, l in ddg.successors[i]] for i in range(n)], pad_value=0
        )
        self.pred_count = np.array(ddg.num_predecessors, dtype=np.int32)
        self.succ_count = np.array([len(ddg.successors[i]) for i in range(n)], dtype=np.int32)
        self.roots = np.array(ddg.roots, dtype=np.int32)

        # Guiding-heuristic inputs.
        cp = critical_path_info(ddg)
        self.heights = np.array(cp.height, dtype=np.float64)
        self.score_scale = float(max(cp.height) + 1)
        self.num_uses = np.count_nonzero(self.uses >= 0, axis=1).astype(np.float64)
        self.num_defs = np.count_nonzero(self.defs >= 0, axis=1).astype(np.float64)

        # Liveness inputs.
        self.total_use_counts = np.zeros(self.num_registers, dtype=np.int32)
        for inst in region:
            for reg in inst.uses:
                self.total_use_counts[self.reg_index[reg]] += 1
        self.live_out_mask = np.zeros(self.num_registers, dtype=bool)
        for reg in region.live_out:
            self.live_out_mask[self.reg_index[reg]] = True
        self.live_in_ids = np.array(
            sorted(self.reg_index[reg] for reg in region.live_in), dtype=np.int32
        )

        # Occupancy / APRP lookup tables, one row per class; index = pressure
        # clamped to the table width (beyond-table pressure -> occupancy 0).
        max_p = max(machine.table_for(cls).max_pressure for cls in classes)
        self.lut_width = max_p + 2
        self.occ_lut = np.zeros((self.num_classes, self.lut_width), dtype=np.int32)
        self.aprp_lut = np.zeros((self.num_classes, self.lut_width), dtype=np.int32)
        for ci, cls in enumerate(classes):
            table = machine.table_for(cls)
            for p in range(self.lut_width):
                self.occ_lut[ci, p] = table.occupancy(p)
                self.aprp_lut[ci, p] = table.aprp(p)
        self.max_occupancy = machine.max_occupancy

        # The available-list bound of Section V-A. Available = ready and
        # semi-ready instructions, which are pairwise independent, so the
        # transitive-closure bound applies to the combined list.
        closure = TransitiveClosure(ddg)
        self.tight_ready_bound = tight_ready_bound
        tight = closure.ready_list_upper_bound()
        self.ready_capacity = min(n, tight) if tight_ready_bound else n

    # -- transfer accounting ------------------------------------------------

    def device_arrays(self):
        """The arrays copied host->device (for transfer accounting)."""
        return (
            self.reg_class,
            self.uses,
            self.defs,
            self.succ_ids,
            self.succ_lat,
            self.pred_count,
            self.succ_count,
            self.roots,
            self.heights,
            self.num_uses,
            self.num_defs,
            self.total_use_counts,
            self.live_out_mask,
            self.live_in_ids,
            self.occ_lut,
            self.aprp_lut,
        )

    def per_ant_state_bytes(self, num_ants: int) -> int:
        """Preallocated per-ant state copied/zeroed on the device.

        Dominated by the available-list arrays of width ``ready_capacity``
        (this is where the tight bound pays off) plus the order/cycle
        buffers and the register bitmaps.
        """
        cap = self.ready_capacity
        per_ant = (
            cap * 4 * 2  # available ids + release cycles
            + self.num_instructions * 4 * 3  # order, cycles, pred counters
            + self.num_registers * (4 + 1)  # remaining uses + live flags
            + self.num_classes * 4 * 2  # current + peak pressure
            + 64  # scalars
        )
        return per_ant * num_ants
