"""The GPU-parallel ACO scheduler (Sections IV-B and V).

One ant per GPU thread, 64-thread single-wavefront blocks, lane-vectorized
lockstep execution on the simulated device of :mod:`repro.gpusim`:

* :mod:`~repro.parallel.layouts` — the region's "device image": padded
  structure-of-arrays buffers sized with the transitive-closure ready-list
  bound (the Section V-A memory optimizations, togglable for Table 4.a);
* :mod:`~repro.parallel.divergence` — the Section V-B divergence policy
  (wavefront-level explore/exploit, stall-wavefront fraction, early
  wavefront termination, heuristic diversity), togglable for Table 4.b;
* :mod:`~repro.parallel.rng` — spawn-indexed per-ant RNG streams shared by
  both construction backends, so their draw orders coincide per ant;
* :mod:`~repro.parallel.vectorized` — the batch construction engine: every
  lane of every wavefront advances in lockstep numpy operations while the
  kernel accounting charges the optimized (wave-max) cost model;
* :mod:`~repro.parallel.loop` — the scalar per-ant reference engine with
  the divergent (serialized-lane) cost model, bit-identical in its
  decisions to the vectorized engine;
* :mod:`~repro.parallel.colony` — the backend registry
  (``backend="loop"|"vectorized"``) and the historical ``Colony`` name;
* :mod:`~repro.parallel.scheduler` — the two-pass driver mirroring
  :class:`~repro.aco.sequential.SequentialACOScheduler`.
"""

from .layouts import RegionDeviceData
from .divergence import DivergencePolicy
from .rng import AntRngStreams
from .vectorized import VectorizedColony
from .loop import LoopColony
from .colony import BACKENDS, Colony, ColonyIterationResult, resolve_backend
from .scheduler import ParallelACOScheduler, ParallelACOResult, ParallelPassResult
from .multi_region import (
    BatchItem,
    BatchResult,
    MultiRegionScheduler,
    SlotOutcome,
    partition_blocks,
)

__all__ = [
    "RegionDeviceData",
    "DivergencePolicy",
    "AntRngStreams",
    "VectorizedColony",
    "LoopColony",
    "BACKENDS",
    "resolve_backend",
    "Colony",
    "ColonyIterationResult",
    "ParallelACOScheduler",
    "ParallelACOResult",
    "ParallelPassResult",
    "BatchItem",
    "BatchResult",
    "MultiRegionScheduler",
    "SlotOutcome",
    "partition_blocks",
]
