"""The GPU-parallel ACO scheduler (Sections IV-B and V).

One ant per GPU thread, 64-thread single-wavefront blocks, lane-vectorized
lockstep execution on the simulated device of :mod:`repro.gpusim`:

* :mod:`~repro.parallel.layouts` — the region's "device image": padded
  structure-of-arrays buffers sized with the transitive-closure ready-list
  bound (the Section V-A memory optimizations, togglable for Table 4.a);
* :mod:`~repro.parallel.divergence` — the Section V-B divergence policy
  (wavefront-level explore/exploit, stall-wavefront fraction, early
  wavefront termination, heuristic diversity), togglable for Table 4.b;
* :mod:`~repro.parallel.colony` — the vectorized ant colony: every lane of
  every wavefront constructs a schedule in lockstep while the kernel
  accounting charges cycles under the device's divergence/coalescing rules;
* :mod:`~repro.parallel.scheduler` — the two-pass driver mirroring
  :class:`~repro.aco.sequential.SequentialACOScheduler`.
"""

from .layouts import RegionDeviceData
from .divergence import DivergencePolicy
from .colony import Colony, ColonyIterationResult
from .scheduler import ParallelACOScheduler, ParallelACOResult, ParallelPassResult
from .multi_region import BatchItem, BatchResult, MultiRegionScheduler

__all__ = [
    "RegionDeviceData",
    "DivergencePolicy",
    "Colony",
    "ColonyIterationResult",
    "ParallelACOScheduler",
    "ParallelACOResult",
    "ParallelPassResult",
    "BatchItem",
    "BatchResult",
    "MultiRegionScheduler",
]
