"""The scalar per-ant reference engine (``backend="loop"``).

:class:`LoopColony` constructs each ant with explicit Python loops — one
ant at a time, one ready-list slot at a time — exactly the control flow a
naive one-thread-per-ant GPU kernel would execute with full divergence.
It shares the iteration drivers, state arrays, reset/cost logic and the
per-ant RNG streams with :class:`~repro.parallel.vectorized.VectorizedColony`
and overrides only the per-step primitives, which keeps the two backends'
*semantics* aligned by construction while making every per-ant decision
individually followable.

Two properties make it the differential-testing reference:

* **Bit-identical decisions.** Each override performs the same IEEE-754
  operations on one ant's row that the vectorized engine performs on the
  whole population array (elementwise float ops, ``cumsum``, first-max
  ``argmax`` are all row-independent), and draws from the same per-ant
  stream in the same per-stream order (see :mod:`repro.parallel.rng`).
  ``tests/test_differential.py`` asserts the resulting schedules equal the
  vectorized backend's bit for bit.

* **Divergent cost model.** The loop engine charges the *unoptimized*
  kernel's cost: every lane's work is serialized within its wavefront
  (sum over lanes, via ``KernelAccounting.charge_lane_*``) instead of
  running in lockstep (max over lanes). The committed
  ``BENCH_backend.json`` baseline quantifies the resulting gap — the
  paper's Section V argument, reproduced as a measurement.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .vectorized import (
    _BASE_STEP_OPS,
    _SELECT_OPS_PER_CANDIDATE,
    _STALL_PATH_OPS,
    _STATE_WORDS_BASE,
    _UPDATE_OPS_PER_SUCCESSOR,
    VectorizedColony,
)


class LoopColony(VectorizedColony):
    """Scalar per-ant construction with serialized-lane cost accounting."""

    backend_name = "loop"

    # -- score computation (one ant row at a time) ---------------------------

    def _eta_row(self, ant: int, cand: np.ndarray, valid: np.ndarray, primary: str) -> np.ndarray:
        d = self.data
        safe = np.where(valid, cand, 0)
        cp_eta = 1.0 + d.heights[safe]
        use_luc = (primary == "luc") == (self.heuristic_of_ant[ant] == 0)
        if not use_luc:
            return cp_eta
        closes = np.zeros(cand.shape, dtype=np.float64)
        for slot in range(d.uses.shape[1]):
            u = d.uses[safe, slot]
            m = valid & (u >= 0) & ~d.uses_redefined[safe, slot]
            um = np.where(m, u, 0)
            pred_kill = (
                m
                & (self.remaining_uses[ant, um] == 1)
                & ~d.live_out_mask[um]
                & self.live[ant, um]
            )
            closes += pred_kill
        net = closes - d.num_defs[safe]
        luc_score = (net + d.num_uses[safe] + 1.0) * d.score_scale + d.heights[safe] / d.score_scale
        return np.maximum(1e-6, 1.0 + luc_score)

    def _scores(
        self, tau: np.ndarray, cand: np.ndarray, valid: np.ndarray, primary: str
    ) -> np.ndarray:
        scores = np.zeros((self.num_ants, cand.shape[1]), dtype=np.float64)
        for ant in range(self.num_ants):
            row_valid = valid[ant]
            safe = np.where(row_valid, cand[ant], 0)
            tau_vals = tau[self.prev_inst[ant], safe]
            eta = self._eta_row(ant, cand[ant], row_valid, primary)
            row = tau_vals * eta**self.params.heuristic_weight
            row[~row_valid] = 0.0
            scores[ant] = row
        return scores

    def _select(self, scores: np.ndarray, doers: np.ndarray) -> np.ndarray:
        q0 = self.params.exploitation_prob
        exploit = np.zeros(self.num_ants, dtype=bool)
        if self.policy.wavefront_level_choice:
            for w in range(self.num_wavefronts):
                draw = self.streams.uniform_ant(w * self.wavefront_size)
                lo = w * self.wavefront_size
                exploit[lo : lo + self.wavefront_size] = draw < q0
        else:
            for ant in range(self.num_ants):
                exploit[ant] = self.streams.uniform_ant(ant) < q0
        if self.sanitizer is not None and self.policy.wavefront_level_choice:
            self.sanitizer.check_exploit_uniform(
                exploit, self.num_wavefronts, self.wavefront_size
            )
        sel = np.zeros(self.num_ants, dtype=np.int64)
        for ant in range(self.num_ants):
            # Every ant burns its roulette draw every step — like a
            # masked-off GPU lane, and like the vectorized batch draw.
            draw = self.streams.uniform_ant(ant)
            row = scores[ant]
            if exploit[ant]:
                sel[ant] = int(np.argmax(row))
            else:
                cum = np.cumsum(row)
                total = cum[-1]
                scaled = draw * max(total, 1e-300)
                sel[ant] = min(int((cum <= scaled).sum()), row.shape[0] - 1)
        # Divergence counters are a property of the decisions, not of the
        # engine, so both backends report the same values.
        if not self.policy.wavefront_level_choice:
            lanes = (exploit & doers).reshape(self.num_wavefronts, -1)
            lanes_other = (~exploit & doers).reshape(self.num_wavefronts, -1)
            both = lanes.any(axis=1) & lanes_other.any(axis=1)
            self._divergent_selection = both
            self.serialized_selection_waves += int(both.sum())
        else:
            self._divergent_selection = np.zeros(self.num_wavefronts, dtype=bool)
        return sel

    # -- state mutation ------------------------------------------------------

    def _schedule_chosen(self, doers: np.ndarray, chosen: np.ndarray, cycle: int) -> None:
        d = self.data
        for ant in range(self.num_ants):
            if not doers[ant]:
                continue
            pick = int(chosen[ant])
            self.order_buf[ant, self.scheduled[ant]] = pick
            self.cycles_buf[ant, pick] = cycle
            self.scheduled[ant] += 1
            self.prev_inst[ant] = pick

            for slot in range(d.uses.shape[1]):
                u = int(d.uses[pick, slot])
                if u < 0:
                    continue
                self.remaining_uses[ant, u] -= 1
                if (
                    self.remaining_uses[ant, u] == 0
                    and not d.live_out_mask[u]
                    and not d.uses_redefined[pick, slot]
                    and self.live[ant, u]
                ):
                    self.live[ant, u] = False
                    cls = int(d.reg_class[u])
                    if cls >= 0:
                        self.current[ant, cls] -= 1
            for slot in range(d.defs.shape[1]):
                r = int(d.defs[pick, slot])
                if r < 0:
                    continue
                if not self.live[ant, r]:
                    self.live[ant, r] = True
                    cls = int(d.reg_class[r])
                    if cls >= 0:
                        self.current[ant, cls] += 1
            self.peak[ant] = np.maximum(self.peak[ant], self.current[ant])
            for slot in range(d.defs.shape[1]):
                r = int(d.defs[pick, slot])
                if r < 0:
                    continue
                if (
                    self.remaining_uses[ant, r] == 0
                    and not d.live_out_mask[r]
                    and self.live[ant, r]
                ):
                    self.live[ant, r] = False
                    cls = int(d.reg_class[r])
                    if cls >= 0:
                        self.current[ant, cls] -= 1

            for slot in range(d.succ_ids.shape[1]):
                s = int(d.succ_ids[pick, slot])
                if s < 0:
                    continue
                release = cycle + int(d.succ_lat[pick, slot])
                if release > self.earliest[ant, s]:
                    self.earliest[ant, s] = release
                self.pred_remaining[ant, s] -= 1
                if self.pred_remaining[ant, s] == 0:
                    pos = int(self.avail_len[ant])
                    self.avail_ids[ant, pos] = s
                    self.avail_release[ant, pos] = self.earliest[ant, s]
                    self.avail_len[ant] += 1

    def _remove_from_avail(self, doers: np.ndarray, sel: np.ndarray) -> np.ndarray:
        chosen = np.full(self.num_ants, -1, dtype=np.int32)
        for ant in range(self.num_ants):
            if not doers[ant]:
                continue
            col = int(sel[ant])
            chosen[ant] = int(self.avail_ids[ant, col])
            last = int(self.avail_len[ant]) - 1
            self.avail_ids[ant, col] = self.avail_ids[ant, last]
            self.avail_release[ant, col] = self.avail_release[ant, last]
            self.avail_ids[ant, last] = -1
            self.avail_len[ant] -= 1
        return chosen

    # -- pass 2 primitives ---------------------------------------------------

    def _candidate_excess(
        self, any_cand: np.ndarray, target: np.ndarray
    ) -> np.ndarray:
        d = self.data
        excess = np.full(
            (self.num_ants, any_cand.shape[1]), -(10**9), dtype=np.int64
        )
        for ant in range(self.num_ants):
            m_any = any_cand[ant]
            safe = np.where(m_any, self.avail_ids[ant], 0)
            row_ex = excess[ant]
            for ci in range(d.num_classes):
                closes = np.zeros(safe.shape, dtype=np.int64)
                for slot in range(d.uses.shape[1]):
                    u = d.uses[safe, slot]
                    m = m_any & (u >= 0) & (d.reg_class[np.where(u >= 0, u, 0)] == ci)
                    um = np.where(m, u, 0)
                    pred_kill = (
                        m
                        & (self.remaining_uses[ant, um] == 1)
                        & ~d.live_out_mask[um]
                        & ~d.uses_redefined[safe, slot]
                        & self.live[ant, um]
                    )
                    closes += pred_kill
                after = self.current[ant, ci] + d.defs_per_class[safe, ci] - closes
                row_ex = np.maximum(row_ex, after - target[ci])
            excess[ant] = row_ex
        return excess

    def _stall_decisions(
        self,
        considering: np.ndarray,
        ready_mask: np.ndarray,
        semi_mask: np.ndarray,
        excess: np.ndarray,
    ) -> np.ndarray:
        if not considering.any():
            return np.zeros(self.num_ants, dtype=bool)
        big = 10**9
        out = np.zeros(self.num_ants, dtype=bool)
        for ant in range(self.num_ants):
            draw = self.streams.uniform_ant(ant)
            ready_excess = np.where(ready_mask[ant], excess[ant], big).min()
            semi_excess = np.where(semi_mask[ant], excess[ant], big).min()
            helpful = (
                bool(considering[ant])
                and ready_excess >= 0
                and semi_excess < ready_excess
            )
            budget = max(0.0, 1.0 - self.optional_stalls[ant] / self._max_stalls)
            if ready_excess > 0:
                prob = budget
            else:
                prob = self.params.optional_stall_prob * budget
            out[ant] = helpful and draw < prob
        return out

    # -- accounting: the divergent serialized-lane model ---------------------

    def _charge_step(
        self,
        active: np.ndarray,
        scan: np.ndarray,
        doers: np.ndarray,
        chosen: np.ndarray,
        stalling: Optional[np.ndarray] = None,
    ) -> None:
        """Charge every lane's work, serialized within its wavefront.

        Same per-lane operation counts as the vectorized engine, but summed
        over lanes (``charge_lane_*``) instead of wave-maxed: a divergent
        kernel executes one lane's step while the other 63 wait.
        """
        d = self.data
        lane_scan = np.where(active, scan, 0).astype(np.float64)
        succ = np.zeros(self.num_ants, dtype=np.float64)
        succ[doers] = d.succ_count[chosen[doers]]
        per_inst = (d.uses.shape[1] + d.defs.shape[1]) * 2.0

        ops = np.where(
            active,
            _BASE_STEP_OPS
            + lane_scan * _SELECT_OPS_PER_CANDIDATE
            + succ * _UPDATE_OPS_PER_SUCCESSOR
            + per_inst,
            0.0,
        )
        if stalling is not None:
            ops = ops + _STALL_PATH_OPS * stalling
            wave_stall = stalling.reshape(self.num_wavefronts, -1).any(axis=1)
            wave_sched = doers.reshape(self.num_wavefronts, -1).any(axis=1)
            self.serialized_stall_waves += int((wave_stall & wave_sched).sum())
        self.accounting.charge_lane_compute(ops.reshape(self.num_wavefronts, -1))

        words = np.where(
            active,
            _STATE_WORDS_BASE
            + lane_scan
            + succ
            + d.uses.shape[1]
            + d.defs.shape[1],
            0.0,
        )
        self.accounting.charge_lane_memory(words.reshape(self.num_wavefronts, -1))
        self.accounting.charge_lane_alloc(succ.reshape(self.num_wavefronts, -1))
