"""The two-pass GPU-parallel ACO scheduler (Section IV-B).

Mirrors :class:`~repro.aco.sequential.SequentialACOScheduler` — same lower
bounds, same termination conditions, same pheromone rules — but each
iteration constructs ``blocks * 64`` schedules at once with the vectorized
colony, and scheduling time comes from the simulated device: one kernel
launch per invoked pass (the paper launches a single cooperative kernel
whose main loop runs all iterations on-device), one host->device transfer
of the region image and the preallocated per-ant state, per-iteration
reduction and pheromone-update costs, and the per-step lockstep cycle
charges accumulated by the colony.

Memory-optimization toggles map onto the simulation as follows
(Section V-A): with ``soa_layout`` off, the naive baseline is simulated —
array-of-structures state (uncoalesced transactions) with linked lists kept
through device-side dynamic allocation; with ``tight_ready_list_bound`` off
the per-ant buffers are sized by the trivial bound ``n``; with
``batched_transfers`` off every device array is copied with its own call.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..aco.pheromone import PheromoneTable
from ..analysis.sanitizer import ColonySanitizer, verification_enabled
from ..analysis.verifier import verify_aco_result, verify_order
from ..aco.sequential import PassResult
from ..aco.strategy import (
    make_strategy,
    publish_reinit,
    resolve_strategy,
    strategy_from_env,
)
from ..aco.termination import TerminationTracker
from ..config import ACOParams, GPUParams
from ..ddg.graph import DDG
from ..ddg.lower_bounds import RegionBounds, region_bounds
from ..errors import CorruptionDetected, DeviceHangError, KernelLaunchError, ResilienceError
from ..gpusim.device import GPUDevice
from ..gpusim.faults import FaultPlan, FaultyDevice
from ..gpusim.kernel import KernelAccounting, TransferAccounting
from ..gpusim.reduction import reduction_cycles
from ..heuristics.list_scheduler import schedule_in_order
from ..ir.registers import RegisterClass
from ..machine.model import MachineModel
from ..obs.context import region_trace
from ..obs.record import get_recorder
from ..profile import get_profiler
from ..resilience.checkpoint import RegionCheckpoint
from ..resilience.log import get_resilience_log
from ..resilience.watchdog import DeadlineBudget
from ..rp.cost import rp_cost, rp_cost_lower_bound
from ..rp.liveness import peak_pressure
from ..schedule.schedule import Schedule
from ..telemetry import OCCUPANCY_PCT_BUCKETS, Telemetry, get_telemetry
from .colony import Colony, resolve_backend
from .divergence import DivergencePolicy
from .layouts import RegionDeviceData
from .rng import AntRngStreams


def backend_from_env() -> Optional[str]:
    """The ``REPRO_BACKEND`` override, or ``None`` when unset/empty."""
    import os

    value = os.environ.get("REPRO_BACKEND", "").strip()
    return value or None


@dataclass
class ParallelPassResult(PassResult):
    """Pass outcome plus the GPU time breakdown."""

    transfer_seconds: float = 0.0
    kernel_seconds: float = 0.0
    launch_seconds: float = 0.0


def pass_result_payload(result: PassResult) -> Dict:
    """JSON-serializable dict of a completed pass result.

    A pass-2 checkpoint embeds the *finished* pass-1 result this way, so a
    resume skips pass 1 entirely and still reports it faithfully. Covers
    the common :class:`~repro.aco.sequential.PassResult` fields plus the
    parallel time breakdown when present (construction stats are dropped —
    they are observability, not search state).
    """
    payload = {
        "invoked": result.invoked,
        "iterations": result.iterations,
        "initial_cost": result.initial_cost,
        "final_cost": result.final_cost,
        "hit_lower_bound": result.hit_lower_bound,
        "seconds": result.seconds,
        "trace": list(result.trace),
        "deadline_hit": result.deadline_hit,
    }
    if isinstance(result, ParallelPassResult):
        payload["transfer_seconds"] = result.transfer_seconds
        payload["kernel_seconds"] = result.kernel_seconds
        payload["launch_seconds"] = result.launch_seconds
    return payload


def pass_result_from_payload(payload: Dict) -> ParallelPassResult:
    """Rebuild a pass result from :func:`pass_result_payload`."""
    return ParallelPassResult(
        invoked=bool(payload["invoked"]),
        iterations=int(payload["iterations"]),
        initial_cost=payload["initial_cost"],
        final_cost=payload["final_cost"],
        hit_lower_bound=bool(payload["hit_lower_bound"]),
        seconds=float(payload["seconds"]),
        trace=tuple(payload.get("trace", ())),
        deadline_hit=bool(payload.get("deadline_hit", False)),
        transfer_seconds=float(payload.get("transfer_seconds", 0.0)),
        kernel_seconds=float(payload.get("kernel_seconds", 0.0)),
        launch_seconds=float(payload.get("launch_seconds", 0.0)),
    )


@dataclass
class ParallelACOResult:
    """Final outcome of GPU-parallel two-pass scheduling on one region."""

    schedule: Schedule
    peak: Dict[RegisterClass, int]
    rp_cost_value: int
    pass1: ParallelPassResult
    pass2: ParallelPassResult

    @property
    def seconds(self) -> float:
        return self.pass1.seconds + self.pass2.seconds

    @property
    def length(self) -> int:
        return self.schedule.length


class ParallelACOScheduler:
    """Two-pass ACO scheduling on the simulated GPU."""

    name = "parallel-aco"

    def __init__(
        self,
        machine: MachineModel,
        params: Optional[ACOParams] = None,
        gpu_params: Optional[GPUParams] = None,
        device: Optional[GPUDevice] = None,
        telemetry: Optional[Telemetry] = None,
        verify: Optional[bool] = None,
        backend: Optional[str] = None,
        strategy: Optional[str] = None,
    ):
        self.machine = machine
        self.params = params or ACOParams()
        self.params.validate()
        self.device = device or GPUDevice()
        self.gpu_params = gpu_params or GPUParams()
        self.gpu_params.validate(self.device.wavefront_size)
        self._telemetry = telemetry
        self._verify = verify
        self._backend = backend
        if backend is not None:
            resolve_backend(backend)  # fail fast on unknown names
        self._strategy = strategy
        if strategy is not None:
            resolve_strategy(strategy)  # fail fast on unknown names

    @property
    def telemetry(self) -> Telemetry:
        """The injected telemetry, or the process-wide one (resolved late)."""
        return self._telemetry if self._telemetry is not None else get_telemetry()

    @property
    def verify_enabled(self) -> bool:
        """Explicit ``verify`` argument, else ``REPRO_VERIFY`` (resolved late)."""
        return self._verify if self._verify is not None else verification_enabled()

    @property
    def backend(self) -> str:
        """Engine selection: explicit argument, else ``REPRO_BACKEND``, else
        ``gpu_params.backend`` (resolved late, like telemetry/verify)."""
        if self._backend is not None:
            return self._backend
        return backend_from_env() or self.gpu_params.backend

    @property
    def strategy_name(self) -> str:
        """Pheromone-update strategy: explicit argument, else
        ``REPRO_STRATEGY``, else the ``gpu_params.strategy`` device
        override, else ``params.strategy`` (resolved late)."""
        if self._strategy is not None:
            return self._strategy
        return (
            strategy_from_env()
            or self.gpu_params.strategy
            or self.params.strategy
        )

    def _publish_launch(
        self,
        tele: Telemetry,
        region_name: str,
        pass_index: int,
        colony: Colony,
        accounting: KernelAccounting,
        transfer: TransferAccounting,
        data: RegionDeviceData,
        iterations: int,
        kernel_seconds: float,
        transfer_seconds: float,
        launch_seconds: float,
    ) -> None:
        """Export one simulated launch: kernel/transfer events + gpusim.*
        and parallel.* metrics (divergence, dead ants, ready-list bound)."""
        if not tele.active:
            return
        totals = accounting.charge_totals()
        # Optional (schema-v1 extra) attribution fields: the full cost
        # breakdown travels with the event so a trace alone can attribute
        # every launch's seconds (see repro.profile.attribution).
        attributed = {
            name + "_seconds": value
            for name, value in accounting.attributed_seconds().items()
        }
        tele.emit(
            "kernel_launch",
            region=region_name,
            pass_index=pass_index,
            backend=colony.backend_name,
            strategy=self.strategy_name,
            wavefronts=accounting.num_wavefronts,
            ants=colony.num_ants,
            iterations=iterations,
            kernel_seconds=kernel_seconds,
            transfer_seconds=transfer_seconds,
            launch_seconds=launch_seconds,
            serialized_selection_waves=colony.serialized_selection_waves,
            serialized_stall_waves=colony.serialized_stall_waves,
            dead_ants=colony.dead_ants_total,
            ready_peak=colony.ready_peak,
            ready_capacity=data.ready_capacity,
            batches=accounting.batches(),
            coalesced=accounting.coalesced,
            coalescing_factor=(
                1.0 if accounting.coalesced else self.device.cost.uncoalesced_factor
            ),
            **totals,
            **attributed,
        )
        tele.emit(
            "transfer",
            region=region_name,
            pass_index=pass_index,
            bytes=transfer.total_bytes,
            calls=transfer.array_count,
            seconds=transfer_seconds,
        )
        if tele.collect_metrics:
            m = tele.metrics
            m.counter("gpusim.launches").inc()
            m.counter("gpusim.kernel_us").inc(kernel_seconds * 1e6)
            m.counter("gpusim.transfer_us").inc(transfer_seconds * 1e6)
            m.counter("gpusim.launch_us").inc(launch_seconds * 1e6)
            m.counter("gpusim.transfer_bytes").inc(transfer.total_bytes)
            for name, value in totals.items():
                m.counter("gpusim." + name).inc(value)
            m.counter("parallel.constructions").inc(colony.constructions_total)
            m.counter("parallel.dead_ants").inc(colony.dead_ants_total)
            m.counter("parallel.serialized_selection_waves").inc(
                colony.serialized_selection_waves
            )
            m.counter("parallel.serialized_stall_waves").inc(
                colony.serialized_stall_waves
            )
            m.histogram(
                "parallel.ready_occupancy_pct", OCCUPANCY_PCT_BUCKETS
            ).observe(100.0 * colony.ready_peak / data.ready_capacity)

    def _profile_launch(
        self,
        pass_index: int,
        accounting: KernelAccounting,
        transfer_seconds: float,
        launch_seconds: float,
    ) -> None:
        """Charge one simulated launch to the span profiler.

        The pass's whole modelled time lands on leaf spans: transfer and
        launch overhead directly, kernel time split per cost category by
        cycle share (so region -> pass -> kernel/compute etc. nest under
        whatever span the caller — usually the pipeline's region span —
        has open). Inside the kernel span, the ant-construction hot path
        (compute/memory/alloc — the per-step work the backends execute
        differently) is grouped under a ``construct`` span so profiles and
        ``repro.bench``'s backend comparison can read it off directly;
        wavefront-uniform overhead (reductions, pheromone, barriers) stays
        a direct kernel leaf.
        """
        prof = get_profiler()
        if not prof.enabled:
            return
        attributed = accounting.attributed_seconds()
        with prof.span("pass%d" % pass_index, "pass"):
            prof.charge_leaf("transfer", transfer_seconds, "transfer")
            prof.charge_leaf("launch", launch_seconds, "launch")
            with prof.span("kernel", "kernel"):
                with prof.span("construct", "kernel"):
                    for category in ("compute", "memory", "alloc"):
                        prof.charge_leaf(category, attributed[category], "kernel")
                prof.charge_leaf("uniform", attributed["uniform"], "kernel")

    # -- shared plumbing -----------------------------------------------------

    def _transfer(self, data: RegionDeviceData, num_ants: int) -> TransferAccounting:
        """Host->device copy of the region image.

        The per-ant state is *not* copied: the kernel's threads initialize
        their own preallocated buffers on the device (Section V-A allocates
        on the host but a single contiguous block, and re-initialization
        between iterations happens in the kernel) — its cost is charged as
        cycles in :meth:`_iteration_overhead_cycles`.
        """
        transfer = TransferAccounting(self.device, self.gpu_params.batched_transfers)
        for array in data.device_arrays():
            transfer.add_ndarray(np.asarray(array))
        return transfer

    def _iteration_overhead_cycles(self, data: RegionDeviceData, num_ants: int) -> float:
        """Per-iteration costs outside construction: per-ant state reset,
        the winner reduction, the pheromone decay/deposit and the barriers."""
        cost = self.device.cost
        n = data.num_instructions
        entries = (n + 1) * n
        per_thread_rows = math.ceil(entries / num_ants)
        pheromone = per_thread_rows * (2 * cost.cycles_per_op + cost.cycles_per_transaction / 8.0)
        barriers = 3 * cost.cycles_per_transaction
        # Lane-local state reset: one coalesced store per word row.
        init_words = 2 * data.ready_capacity + 2 * n + 2 * data.num_registers + 8
        init = init_words * (cost.cycles_per_transaction / 4.0)
        return reduction_cycles(num_ants, cost) + pheromone + barriers + init

    def _make_colony(
        self, data: RegionDeviceData, seed: int
    ) -> Tuple[Colony, KernelAccounting]:
        policy = DivergencePolicy.from_params(self.gpu_params)
        accounting = KernelAccounting(
            self.device,
            policy.num_wavefronts,
            coalesced=self.gpu_params.soa_layout,
            dynamic_alloc=not self.gpu_params.soa_layout,
        )
        rng = AntRngStreams(seed, policy.num_ants)
        # In verify mode, sanitize the colony too; otherwise leave resolution
        # to the colony itself (the REPRO_SANITIZE knob).
        sanitizer = ColonySanitizer() if self.verify_enabled else None
        colony_cls = resolve_backend(self.backend)
        colony = colony_cls(
            data, self.params, policy, accounting, rng, sanitizer=sanitizer
        )
        return colony, accounting

    # -- resilience plumbing -------------------------------------------------

    def _check_launch(
        self,
        faulty: Optional[FaultyDevice],
        region_name: str,
        pass_index: int,
        attempt: int,
        budget: Optional[DeadlineBudget],
    ) -> None:
        """Simulated launch API call; a failed launch still burns its
        fixed overhead, charged to the budget before the raise."""
        if faulty is None:
            return
        try:
            faulty.check_launch(region_name, pass_index, attempt)
        except KernelLaunchError:
            if budget is not None:
                budget.charge(self.device.cost.launch_overhead)
            raise

    def _resume_state(
        self,
        resume: RegionCheckpoint,
        region_name: str,
        pheromone: PheromoneTable,
        tracker: TerminationTracker,
        colony: Colony,
    ) -> None:
        """Restore checkpointed search state into a freshly built pass.

        Pheromone and tracker counters always carry over; the per-ant RNG
        streams continue draw-for-draw only when the population matches
        (:meth:`RegionCheckpoint.exact_rng_resume`) — otherwise the resumed
        attempt keeps the learned state but re-explores with fresh streams.
        """
        if resume.region != region_name:
            raise ResilienceError(
                "checkpoint is for region %r, not %r" % (resume.region, region_name)
            )
        if resume.tau.shape != pheromone.tau.shape:
            raise ResilienceError(
                "checkpoint pheromone shape %s does not match region shape %s"
                % (resume.tau.shape, pheromone.tau.shape)
            )
        pheromone.tau[:] = resume.tau
        tracker.iterations = resume.iteration
        tracker.iterations_without_improvement = resume.without_improvement
        tracker.best_cost = resume.best_cost
        if resume.exact_rng_resume(colony.num_ants):
            colony.streams.restore(resume.rng_state)

    def _trip_deadline(
        self, tele: Telemetry, region_name: str, pass_index: int, budget: DeadlineBudget
    ) -> None:
        """Record a soft-deadline stop (event + metric + process-wide log)."""
        get_resilience_log().deadline_trips += 1
        tele.emit(
            "deadline",
            region=region_name,
            pass_index=pass_index,
            deadline_seconds=budget.deadline,
            spent_seconds=budget.spent,
        )
        if tele.collect_metrics:
            tele.metrics.counter("resilience.deadline_trips").inc()

    def _hang(
        self,
        faulty: FaultyDevice,
        budget: Optional[DeadlineBudget],
        checkpoint: RegionCheckpoint,
        accounting: KernelAccounting,
        transfer: TransferAccounting,
        attempt: int,
    ) -> DeviceHangError:
        """Build the watchdog's hang error: charge the heartbeat timeout,
        report everything the dead attempt burned, attach the checkpoint."""
        penalty = faulty.plan.hang_seconds
        if budget is not None:
            budget.charge(penalty)
        burned = (
            accounting.kernel_seconds()
            + transfer.seconds()
            + self.device.cost.launch_overhead
            + penalty
        )
        return DeviceHangError(
            "watchdog: injected hang in region %r pass %d attempt %d at iteration %d"
            % (
                checkpoint.region,
                checkpoint.pass_index,
                attempt,
                checkpoint.iteration,
            ),
            seconds=burned,
            checkpoint=checkpoint,
        )

    def _capture_rp_checkpoint(
        self,
        region_name: str,
        seed: int,
        colony: Colony,
        pheromone: PheromoneTable,
        tracker: TerminationTracker,
        best_order: Tuple[int, ...],
        best_peak: Dict[RegisterClass, int],
    ) -> RegionCheckpoint:
        """Snapshot pass-1 search state at the current iteration boundary."""
        return RegionCheckpoint(
            region=region_name,
            scheduler=self.name,
            backend=colony.backend_name,
            seed=seed,
            pass_index=1,
            iteration=tracker.iterations,
            tau=pheromone.tau.copy(),
            best_cost=tracker.best_cost,
            without_improvement=tracker.iterations_without_improvement,
            best_order=tuple(best_order),
            best_peak=dict(best_peak),
            rng_state=colony.streams.state(),
            num_ants=colony.num_ants,
        )

    def _capture_ilp_checkpoint(
        self,
        region_name: str,
        seed: int,
        colony: Colony,
        pheromone: PheromoneTable,
        tracker: TerminationTracker,
        best_order: Tuple[int, ...],
        best_peak: Dict[RegisterClass, int],
        best_schedule: Schedule,
    ) -> RegionCheckpoint:
        """Snapshot pass-2 search state. ``best_order``/``best_peak`` are
        the pass-2 *inputs* (pass 1's final answer) — a resume re-enters
        pass 2 with them unchanged; the evolving best lives in
        ``best_cycles``/``best_cost``. The caller (:meth:`schedule`)
        attaches the completed pass-1 result payload."""
        return RegionCheckpoint(
            region=region_name,
            scheduler=self.name,
            backend=colony.backend_name,
            seed=seed,
            pass_index=2,
            iteration=tracker.iterations,
            tau=pheromone.tau.copy(),
            best_cost=tracker.best_cost,
            without_improvement=tracker.iterations_without_improvement,
            best_order=tuple(best_order),
            best_peak=dict(best_peak),
            best_cycles=tuple(best_schedule.cycles),
            rng_state=colony.streams.state(),
            num_ants=colony.num_ants,
        )

    # -- pass 1 ----------------------------------------------------------------

    def _run_rp_pass(
        self,
        ddg: DDG,
        data: RegionDeviceData,
        bounds: RegionBounds,
        initial_order: Tuple[int, ...],
        seed: int,
        faulty: Optional[FaultyDevice] = None,
        budget: Optional[DeadlineBudget] = None,
        attempt: int = 0,
        resume: Optional[RegionCheckpoint] = None,
    ) -> Tuple[Tuple[int, ...], Dict[RegisterClass, int], ParallelPassResult]:
        region = ddg.region
        lb_cost = rp_cost_lower_bound(bounds, self.machine)
        initial_schedule = Schedule.from_order(region, initial_order)
        best_peak = peak_pressure(initial_schedule)
        best_cost = rp_cost(best_peak, self.machine)
        best_order = tuple(initial_order)
        tele = self.telemetry
        if best_cost <= lb_cost:
            tele.emit(
                "pass_end",
                region=region.name,
                pass_index=1,
                invoked=False,
                iterations=0,
                final_cost=float(best_cost),
                hit_lower_bound=True,
                seconds=0.0,
            )
            result = ParallelPassResult(False, 0, best_cost, best_cost, True, 0.0)
            return best_order, best_peak, result

        strategy = make_strategy(self.strategy_name, self.params, ddg.num_instructions)
        scope = tele.pass_scope(
            region.name, 1, self.name, lb_cost, best_cost, strategy=strategy.name
        )
        self._check_launch(faulty, region.name, 1, attempt, budget)
        colony, accounting = self._make_colony(data, seed)
        transfer = self._transfer(data, colony.num_ants)
        # Injected hazards for this attempt: a corrupted host->device copy
        # stays silent until the integrity check at copy-back; a hang fires
        # after a fixed number of this attempt's iterations.
        corrupted = (
            faulty.transfer_corrupted(region.name, 1, attempt)
            if faulty is not None
            else False
        )
        hang_after = (
            faulty.hang_iteration(region.name, 1, attempt)
            if faulty is not None
            else None
        )
        pheromone = PheromoneTable(ddg.num_instructions, self.params)
        tracker = TerminationTracker(
            lower_bound=lb_cost,
            stagnation_limit=strategy.stagnation_limit(
                self.params.termination_condition(len(region))
            ),
            best_cost=best_cost,
        )
        if resume is not None:
            self._resume_state(resume, region.name, pheromone, tracker, colony)
            best_order = tuple(resume.best_order)
            best_peak = dict(resume.best_peak)
        hang_at = None if hang_after is None else tracker.iterations + hang_after
        if budget is not None:
            budget.charge(transfer.seconds() + self.device.cost.launch_overhead)
        deadline_hit = False
        charged_kernel = 0.0
        while not tracker.should_stop() and tracker.iterations < self.params.max_iterations:
            if budget is not None and budget.exhausted:
                deadline_hit = True
                self._trip_deadline(tele, region.name, 1, budget)
                break
            if hang_at is not None and tracker.iterations >= hang_at:
                raise self._hang(
                    faulty,
                    budget,
                    self._capture_rp_checkpoint(
                        region.name, seed, colony, pheromone, tracker,
                        best_order, best_peak,
                    ),
                    accounting,
                    transfer,
                    attempt,
                )
            recorder = get_recorder()
            if recorder is not None:
                recorder.begin_iteration(region.name, 1, tracker.iterations)
            result = colony.run_rp_iteration(pheromone.tau)
            accounting.charge_uniform_cycles(
                self._iteration_overhead_cycles(data, colony.num_ants)
            )
            assert result.winner_order is not None
            if tracker.record_iteration(result.winner_cost):
                best_order = result.winner_order
                best_peak = result.winner_peak
            reinitialized = strategy.update(
                pheromone,
                winner_order=result.winner_order,
                winner_gap=result.winner_cost - lb_cost,
                best_order=best_order,
                best_gap=tracker.best_cost - lb_cost,
                without_improvement=tracker.iterations_without_improvement,
            )
            if reinitialized:
                publish_reinit(
                    tele, region.name, 1, tracker.iterations,
                    strategy.tau_max(tracker.best_cost - lb_cost),
                )
            scope.iteration(float(result.winner_cost), tracker.best_cost)
            if budget is not None:
                kernel_now = accounting.kernel_seconds()
                budget.charge(kernel_now - charged_kernel)
                charged_kernel = kernel_now
        if corrupted:
            raise CorruptionDetected(
                "integrity check at copy-back: corrupted transfer in region %r "
                "pass 1 attempt %d" % (region.name, attempt),
                seconds=accounting.kernel_seconds()
                + transfer.seconds()
                + self.device.cost.launch_overhead,
            )
        kernel_seconds = accounting.kernel_seconds()
        transfer_seconds = transfer.seconds()
        launch_seconds = self.device.cost.launch_overhead
        self._profile_launch(1, accounting, transfer_seconds, launch_seconds)
        pass_result = ParallelPassResult(
            invoked=True,
            iterations=tracker.iterations,
            initial_cost=best_cost,
            final_cost=tracker.best_cost,
            hit_lower_bound=tracker.hit_lower_bound,
            seconds=kernel_seconds + transfer_seconds + launch_seconds,
            transfer_seconds=transfer_seconds,
            kernel_seconds=kernel_seconds,
            launch_seconds=launch_seconds,
            trace=scope.trace,
            deadline_hit=deadline_hit,
        )
        scope.end(
            invoked=True,
            iterations=tracker.iterations,
            final_cost=float(tracker.best_cost),
            hit_lower_bound=tracker.hit_lower_bound,
            seconds=pass_result.seconds,
            kernel_seconds=kernel_seconds,
            transfer_seconds=transfer_seconds,
            launch_seconds=launch_seconds,
        )
        self._publish_launch(
            tele,
            region.name,
            1,
            colony,
            accounting,
            transfer,
            data,
            tracker.iterations,
            kernel_seconds,
            transfer_seconds,
            launch_seconds,
        )
        return best_order, best_peak, pass_result

    # -- pass 2 ----------------------------------------------------------------

    def _run_ilp_pass(
        self,
        ddg: DDG,
        data: RegionDeviceData,
        bounds: RegionBounds,
        best_order: Tuple[int, ...],
        best_peak: Dict[RegisterClass, int],
        seed: int,
        reference_schedule: Optional[Schedule] = None,
        faulty: Optional[FaultyDevice] = None,
        budget: Optional[DeadlineBudget] = None,
        attempt: int = 0,
        resume: Optional[RegionCheckpoint] = None,
    ) -> Tuple[Schedule, ParallelPassResult]:
        region = ddg.region
        length_lb = bounds.length
        target = self.machine.aprp(best_peak)
        initial_schedule = schedule_in_order(ddg, best_order)
        # Prefer the heuristic's latency-aware schedule as the starting
        # point when it satisfies the pressure target and is shorter.
        if reference_schedule is not None and reference_schedule.length < initial_schedule.length:
            ref_peak = peak_pressure(reference_schedule)
            if all(ref_peak.get(cls, 0) <= limit for cls, limit in target.items()):
                initial_schedule = reference_schedule
        best_schedule = initial_schedule
        best_length = initial_schedule.length
        tele = self.telemetry
        if best_length <= length_lb:
            tele.emit(
                "pass_end",
                region=region.name,
                pass_index=2,
                invoked=False,
                iterations=0,
                final_cost=float(best_length),
                hit_lower_bound=True,
                seconds=0.0,
            )
            result = ParallelPassResult(False, 0, best_length, best_length, True, 0.0)
            return best_schedule, result

        strategy = make_strategy(self.strategy_name, self.params, ddg.num_instructions)
        scope = tele.pass_scope(
            region.name, 2, self.name, length_lb, best_length, strategy=strategy.name
        )
        self._check_launch(faulty, region.name, 2, attempt, budget)
        colony, accounting = self._make_colony(data, seed + 1)
        transfer = self._transfer(data, colony.num_ants)
        corrupted = (
            faulty.transfer_corrupted(region.name, 2, attempt)
            if faulty is not None
            else False
        )
        hang_after = (
            faulty.hang_iteration(region.name, 2, attempt)
            if faulty is not None
            else None
        )
        pheromone = PheromoneTable(ddg.num_instructions, self.params)
        tracker = TerminationTracker(
            lower_bound=length_lb,
            stagnation_limit=strategy.stagnation_limit(
                self.params.termination_condition(len(region))
            ),
            best_cost=best_length,
        )
        # The schedule-length cap derives from the *pass-start* best — it is
        # recomputed identically on resume (same pass-1 order, same
        # reference), keeping resumed searches draw-for-draw compatible.
        max_length = max(2 * best_length, best_length + 16)
        if resume is not None:
            self._resume_state(resume, region.name, pheromone, tracker, colony)
            if resume.best_cycles is not None:
                best_schedule = Schedule(region, resume.best_cycles)
                best_length = int(resume.best_cost)
        hang_at = None if hang_after is None else tracker.iterations + hang_after
        if budget is not None:
            budget.charge(transfer.seconds() + self.device.cost.launch_overhead)
        deadline_hit = False
        charged_kernel = 0.0
        while not tracker.should_stop() and tracker.iterations < self.params.max_iterations:
            if budget is not None and budget.exhausted:
                deadline_hit = True
                self._trip_deadline(tele, region.name, 2, budget)
                break
            if hang_at is not None and tracker.iterations >= hang_at:
                raise self._hang(
                    faulty,
                    budget,
                    self._capture_ilp_checkpoint(
                        region.name, seed, colony, pheromone, tracker,
                        best_order, best_peak, best_schedule,
                    ),
                    accounting,
                    transfer,
                    attempt,
                )
            recorder = get_recorder()
            if recorder is not None:
                recorder.begin_iteration(region.name, 2, tracker.iterations)
            result = colony.run_ilp_iteration(pheromone.tau, target, max_length)
            accounting.charge_uniform_cycles(
                self._iteration_overhead_cycles(data, colony.num_ants)
            )
            if result.winner_order is None:
                tracker.record_iteration(tracker.best_cost)
                reinitialized = strategy.update_no_winner(
                    pheromone,
                    best_order=tuple(best_schedule.order),
                    best_gap=tracker.best_cost - length_lb,
                    without_improvement=tracker.iterations_without_improvement,
                )
                if reinitialized:
                    publish_reinit(
                        tele, region.name, 2, tracker.iterations,
                        strategy.tau_max(tracker.best_cost - length_lb),
                    )
                scope.iteration(float("inf"), tracker.best_cost)
                if budget is not None:
                    kernel_now = accounting.kernel_seconds()
                    budget.charge(kernel_now - charged_kernel)
                    charged_kernel = kernel_now
                continue
            if tracker.record_iteration(result.winner_cost):
                assert result.winner_cycles is not None
                best_schedule = Schedule(region, result.winner_cycles)
                best_length = int(result.winner_cost)
            reinitialized = strategy.update(
                pheromone,
                winner_order=result.winner_order,
                winner_gap=result.winner_cost - length_lb,
                best_order=tuple(best_schedule.order),
                best_gap=tracker.best_cost - length_lb,
                without_improvement=tracker.iterations_without_improvement,
            )
            if reinitialized:
                publish_reinit(
                    tele, region.name, 2, tracker.iterations,
                    strategy.tau_max(tracker.best_cost - length_lb),
                )
            scope.iteration(float(result.winner_cost), tracker.best_cost)
            if budget is not None:
                kernel_now = accounting.kernel_seconds()
                budget.charge(kernel_now - charged_kernel)
                charged_kernel = kernel_now
        if corrupted:
            raise CorruptionDetected(
                "integrity check at copy-back: corrupted transfer in region %r "
                "pass 2 attempt %d" % (region.name, attempt),
                seconds=accounting.kernel_seconds()
                + transfer.seconds()
                + self.device.cost.launch_overhead,
            )
        kernel_seconds = accounting.kernel_seconds()
        transfer_seconds = transfer.seconds()
        launch_seconds = self.device.cost.launch_overhead
        self._profile_launch(2, accounting, transfer_seconds, launch_seconds)
        pass_result = ParallelPassResult(
            invoked=True,
            iterations=tracker.iterations,
            initial_cost=initial_schedule.length,
            final_cost=best_length,
            hit_lower_bound=tracker.hit_lower_bound,
            seconds=kernel_seconds + transfer_seconds + launch_seconds,
            transfer_seconds=transfer_seconds,
            kernel_seconds=kernel_seconds,
            launch_seconds=launch_seconds,
            trace=scope.trace,
            deadline_hit=deadline_hit,
        )
        scope.end(
            invoked=True,
            iterations=tracker.iterations,
            final_cost=float(best_length),
            hit_lower_bound=tracker.hit_lower_bound,
            seconds=pass_result.seconds,
            kernel_seconds=kernel_seconds,
            transfer_seconds=transfer_seconds,
            launch_seconds=launch_seconds,
        )
        self._publish_launch(
            tele,
            region.name,
            2,
            colony,
            accounting,
            transfer,
            data,
            tracker.iterations,
            kernel_seconds,
            transfer_seconds,
            launch_seconds,
        )
        return best_schedule, pass_result

    # -- public entry point ---------------------------------------------------------

    def schedule(
        self,
        ddg: DDG,
        seed: int = 0,
        initial_order: Optional[Tuple[int, ...]] = None,
        bounds: Optional[RegionBounds] = None,
        reference_schedule: Optional[Schedule] = None,
        fault_plan: Optional[FaultPlan] = None,
        budget: Optional[DeadlineBudget] = None,
        attempt: int = 0,
        resume: Optional[RegionCheckpoint] = None,
    ) -> ParallelACOResult:
        """Run both passes on one region, on the simulated GPU.

        The resilience arguments all default to None/0 and add nothing to
        the fault-free path: ``fault_plan`` wraps the device in a
        :class:`FaultyDevice` (chaos mode), ``budget`` enforces the
        region's deadline in cost-model seconds, ``attempt`` names the
        retry attempt for fault-site derivation and ``resume`` restores a
        checkpointed search instead of starting over.

        Every telemetry event and profiler span the call produces carries
        the region's trace context — installed here for direct callers,
        inherited (so a ladder retry's rotated seed keeps the original
        trace id) when the pipeline/ladder already opened one.
        """
        with region_trace(ddg.region.name, ddg.num_instructions, seed):
            return self._schedule_traced(
                ddg, seed, initial_order, bounds, reference_schedule,
                fault_plan=fault_plan, budget=budget, attempt=attempt,
                resume=resume,
            )

    def _schedule_traced(
        self,
        ddg: DDG,
        seed: int,
        initial_order: Optional[Tuple[int, ...]],
        bounds: Optional[RegionBounds],
        reference_schedule: Optional[Schedule],
        fault_plan: Optional[FaultPlan] = None,
        budget: Optional[DeadlineBudget] = None,
        attempt: int = 0,
        resume: Optional[RegionCheckpoint] = None,
    ) -> ParallelACOResult:
        if bounds is None:
            bounds = region_bounds(ddg)
        if initial_order is None:
            from ..heuristics.list_scheduler import order_schedule
            from ..heuristics.luc import LastUseCountHeuristic

            initial_order = order_schedule(ddg, heuristic=LastUseCountHeuristic()).order

        data = RegionDeviceData(
            ddg, self.machine, tight_ready_bound=self.gpu_params.tight_ready_list_bound
        )
        faulty = (
            FaultyDevice(self.device, fault_plan) if fault_plan is not None else None
        )
        if faulty is not None:
            # Section V-A preallocates the whole per-ant state in one block;
            # that is the allocation that can fail.
            policy = DivergencePolicy.from_params(self.gpu_params)
            per_ant_words = (
                2 * data.ready_capacity
                + 2 * data.num_instructions
                + 2 * data.num_registers
                + 8
            )
            faulty.check_preallocation(
                ddg.region.name,
                attempt,
                requested_bytes=4 * per_ant_words * policy.num_ants,
            )
        if resume is not None and resume.region != ddg.region.name:
            raise ResilienceError(
                "checkpoint is for region %r, not %r"
                % (resume.region, ddg.region.name)
            )
        resume1 = resume if resume is not None and resume.pass_index == 1 else None
        resume2 = resume if resume is not None and resume.pass_index == 2 else None
        if resume2 is not None and resume2.pass1 is not None:
            # Pass 1 finished before the interruption; its result and
            # outputs ride in the checkpoint, so resume re-enters pass 2
            # directly.
            pass1 = pass_result_from_payload(resume2.pass1)
            best_order = tuple(resume2.best_order)
            best_peak = dict(resume2.best_peak)
        else:
            resume2 = None
            best_order, best_peak, pass1 = self._run_rp_pass(
                ddg, data, bounds, tuple(initial_order), seed,
                faulty=faulty, budget=budget, attempt=attempt, resume=resume1,
            )
        try:
            schedule, pass2 = self._run_ilp_pass(
                ddg, data, bounds, best_order, best_peak, seed, reference_schedule,
                faulty=faulty, budget=budget, attempt=attempt, resume=resume2,
            )
        except DeviceHangError as exc:
            if exc.checkpoint is not None and exc.checkpoint.pass1 is None:
                exc.checkpoint.pass1 = pass_result_payload(pass1)
            raise
        final_peak = peak_pressure(schedule)
        result = ParallelACOResult(
            schedule=schedule,
            peak=final_peak,
            rp_cost_value=rp_cost(final_peak, self.machine),
            pass1=pass1,
            pass2=pass2,
        )
        recorder = get_recorder()
        if recorder is not None:
            recorder.record_schedule(
                "search",
                region=ddg.region.name,
                seed=seed,
                scheduler=self.name,
                backend=self.backend,
                order=list(schedule.order),
                cycles=list(schedule.cycles),
                length=schedule.length,
                rp_cost=result.rp_cost_value,
            )
        if self.verify_enabled:
            report = verify_order(ddg, best_order)
            report.merge(
                verify_aco_result(
                    result, ddg, self.machine,
                    target_aprp=self.machine.aprp(best_peak),
                )
            )
            report.publish(self.telemetry, ddg.region.name)
            report.raise_if_failed()
        return result
