"""The two-pass GPU-parallel ACO scheduler (Section IV-B).

Mirrors :class:`~repro.aco.sequential.SequentialACOScheduler` — same lower
bounds, same termination conditions, same pheromone rules — but each
iteration constructs ``blocks * 64`` schedules at once with the vectorized
colony, and scheduling time comes from the simulated device: one kernel
launch per invoked pass (the paper launches a single cooperative kernel
whose main loop runs all iterations on-device), one host->device transfer
of the region image and the preallocated per-ant state, per-iteration
reduction and pheromone-update costs, and the per-step lockstep cycle
charges accumulated by the colony.

Memory-optimization toggles map onto the simulation as follows
(Section V-A): with ``soa_layout`` off, the naive baseline is simulated —
array-of-structures state (uncoalesced transactions) with linked lists kept
through device-side dynamic allocation; with ``tight_ready_list_bound`` off
the per-ant buffers are sized by the trivial bound ``n``; with
``batched_transfers`` off every device array is copied with its own call.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..aco.pheromone import PheromoneTable
from ..analysis.sanitizer import ColonySanitizer, verification_enabled
from ..analysis.verifier import verify_aco_result, verify_order
from ..aco.sequential import PassResult
from ..aco.termination import TerminationTracker
from ..config import ACOParams, GPUParams
from ..ddg.graph import DDG
from ..ddg.lower_bounds import RegionBounds, region_bounds
from ..gpusim.device import GPUDevice
from ..gpusim.kernel import KernelAccounting, TransferAccounting
from ..gpusim.reduction import reduction_cycles
from ..heuristics.list_scheduler import schedule_in_order
from ..ir.registers import RegisterClass
from ..machine.model import MachineModel
from ..profile import get_profiler
from ..rp.cost import rp_cost, rp_cost_lower_bound
from ..rp.liveness import peak_pressure
from ..schedule.schedule import Schedule
from ..telemetry import OCCUPANCY_PCT_BUCKETS, Telemetry, get_telemetry
from .colony import Colony, resolve_backend
from .divergence import DivergencePolicy
from .layouts import RegionDeviceData
from .rng import AntRngStreams


def backend_from_env() -> Optional[str]:
    """The ``REPRO_BACKEND`` override, or ``None`` when unset/empty."""
    import os

    value = os.environ.get("REPRO_BACKEND", "").strip()
    return value or None


@dataclass
class ParallelPassResult(PassResult):
    """Pass outcome plus the GPU time breakdown."""

    transfer_seconds: float = 0.0
    kernel_seconds: float = 0.0
    launch_seconds: float = 0.0


@dataclass
class ParallelACOResult:
    """Final outcome of GPU-parallel two-pass scheduling on one region."""

    schedule: Schedule
    peak: Dict[RegisterClass, int]
    rp_cost_value: int
    pass1: ParallelPassResult
    pass2: ParallelPassResult

    @property
    def seconds(self) -> float:
        return self.pass1.seconds + self.pass2.seconds

    @property
    def length(self) -> int:
        return self.schedule.length


class ParallelACOScheduler:
    """Two-pass ACO scheduling on the simulated GPU."""

    name = "parallel-aco"

    def __init__(
        self,
        machine: MachineModel,
        params: Optional[ACOParams] = None,
        gpu_params: Optional[GPUParams] = None,
        device: Optional[GPUDevice] = None,
        telemetry: Optional[Telemetry] = None,
        verify: Optional[bool] = None,
        backend: Optional[str] = None,
    ):
        self.machine = machine
        self.params = params or ACOParams()
        self.params.validate()
        self.device = device or GPUDevice()
        self.gpu_params = gpu_params or GPUParams()
        self.gpu_params.validate(self.device.wavefront_size)
        self._telemetry = telemetry
        self._verify = verify
        self._backend = backend
        if backend is not None:
            resolve_backend(backend)  # fail fast on unknown names

    @property
    def telemetry(self) -> Telemetry:
        """The injected telemetry, or the process-wide one (resolved late)."""
        return self._telemetry if self._telemetry is not None else get_telemetry()

    @property
    def verify_enabled(self) -> bool:
        """Explicit ``verify`` argument, else ``REPRO_VERIFY`` (resolved late)."""
        return self._verify if self._verify is not None else verification_enabled()

    @property
    def backend(self) -> str:
        """Engine selection: explicit argument, else ``REPRO_BACKEND``, else
        ``gpu_params.backend`` (resolved late, like telemetry/verify)."""
        if self._backend is not None:
            return self._backend
        return backend_from_env() or self.gpu_params.backend

    def _publish_launch(
        self,
        tele: Telemetry,
        region_name: str,
        pass_index: int,
        colony: Colony,
        accounting: KernelAccounting,
        transfer: TransferAccounting,
        data: RegionDeviceData,
        iterations: int,
        kernel_seconds: float,
        transfer_seconds: float,
        launch_seconds: float,
    ) -> None:
        """Export one simulated launch: kernel/transfer events + gpusim.*
        and parallel.* metrics (divergence, dead ants, ready-list bound)."""
        if not tele.active:
            return
        totals = accounting.charge_totals()
        # Optional (schema-v1 extra) attribution fields: the full cost
        # breakdown travels with the event so a trace alone can attribute
        # every launch's seconds (see repro.profile.attribution).
        attributed = {
            name + "_seconds": value
            for name, value in accounting.attributed_seconds().items()
        }
        tele.emit(
            "kernel_launch",
            region=region_name,
            pass_index=pass_index,
            backend=colony.backend_name,
            wavefronts=accounting.num_wavefronts,
            ants=colony.num_ants,
            iterations=iterations,
            kernel_seconds=kernel_seconds,
            transfer_seconds=transfer_seconds,
            launch_seconds=launch_seconds,
            serialized_selection_waves=colony.serialized_selection_waves,
            serialized_stall_waves=colony.serialized_stall_waves,
            dead_ants=colony.dead_ants_total,
            ready_peak=colony.ready_peak,
            ready_capacity=data.ready_capacity,
            batches=accounting.batches(),
            coalesced=accounting.coalesced,
            coalescing_factor=(
                1.0 if accounting.coalesced else self.device.cost.uncoalesced_factor
            ),
            **totals,
            **attributed,
        )
        tele.emit(
            "transfer",
            region=region_name,
            pass_index=pass_index,
            bytes=transfer.total_bytes,
            calls=transfer.array_count,
            seconds=transfer_seconds,
        )
        if tele.collect_metrics:
            m = tele.metrics
            m.counter("gpusim.launches").inc()
            m.counter("gpusim.kernel_us").inc(kernel_seconds * 1e6)
            m.counter("gpusim.transfer_us").inc(transfer_seconds * 1e6)
            m.counter("gpusim.launch_us").inc(launch_seconds * 1e6)
            m.counter("gpusim.transfer_bytes").inc(transfer.total_bytes)
            for name, value in totals.items():
                m.counter("gpusim." + name).inc(value)
            m.counter("parallel.constructions").inc(colony.constructions_total)
            m.counter("parallel.dead_ants").inc(colony.dead_ants_total)
            m.counter("parallel.serialized_selection_waves").inc(
                colony.serialized_selection_waves
            )
            m.counter("parallel.serialized_stall_waves").inc(
                colony.serialized_stall_waves
            )
            m.histogram(
                "parallel.ready_occupancy_pct", OCCUPANCY_PCT_BUCKETS
            ).observe(100.0 * colony.ready_peak / data.ready_capacity)

    def _profile_launch(
        self,
        pass_index: int,
        accounting: KernelAccounting,
        transfer_seconds: float,
        launch_seconds: float,
    ) -> None:
        """Charge one simulated launch to the span profiler.

        The pass's whole modelled time lands on leaf spans: transfer and
        launch overhead directly, kernel time split per cost category by
        cycle share (so region -> pass -> kernel/compute etc. nest under
        whatever span the caller — usually the pipeline's region span —
        has open). Inside the kernel span, the ant-construction hot path
        (compute/memory/alloc — the per-step work the backends execute
        differently) is grouped under a ``construct`` span so profiles and
        ``repro.bench``'s backend comparison can read it off directly;
        wavefront-uniform overhead (reductions, pheromone, barriers) stays
        a direct kernel leaf.
        """
        prof = get_profiler()
        if not prof.enabled:
            return
        attributed = accounting.attributed_seconds()
        with prof.span("pass%d" % pass_index, "pass"):
            prof.charge_leaf("transfer", transfer_seconds, "transfer")
            prof.charge_leaf("launch", launch_seconds, "launch")
            with prof.span("kernel", "kernel"):
                with prof.span("construct", "kernel"):
                    for category in ("compute", "memory", "alloc"):
                        prof.charge_leaf(category, attributed[category], "kernel")
                prof.charge_leaf("uniform", attributed["uniform"], "kernel")

    # -- shared plumbing -----------------------------------------------------

    def _transfer(self, data: RegionDeviceData, num_ants: int) -> TransferAccounting:
        """Host->device copy of the region image.

        The per-ant state is *not* copied: the kernel's threads initialize
        their own preallocated buffers on the device (Section V-A allocates
        on the host but a single contiguous block, and re-initialization
        between iterations happens in the kernel) — its cost is charged as
        cycles in :meth:`_iteration_overhead_cycles`.
        """
        transfer = TransferAccounting(self.device, self.gpu_params.batched_transfers)
        for array in data.device_arrays():
            transfer.add_ndarray(np.asarray(array))
        return transfer

    def _iteration_overhead_cycles(self, data: RegionDeviceData, num_ants: int) -> float:
        """Per-iteration costs outside construction: per-ant state reset,
        the winner reduction, the pheromone decay/deposit and the barriers."""
        cost = self.device.cost
        n = data.num_instructions
        entries = (n + 1) * n
        per_thread_rows = math.ceil(entries / num_ants)
        pheromone = per_thread_rows * (2 * cost.cycles_per_op + cost.cycles_per_transaction / 8.0)
        barriers = 3 * cost.cycles_per_transaction
        # Lane-local state reset: one coalesced store per word row.
        init_words = 2 * data.ready_capacity + 2 * n + 2 * data.num_registers + 8
        init = init_words * (cost.cycles_per_transaction / 4.0)
        return reduction_cycles(num_ants, cost) + pheromone + barriers + init

    def _make_colony(
        self, data: RegionDeviceData, seed: int
    ) -> Tuple[Colony, KernelAccounting]:
        policy = DivergencePolicy.from_params(self.gpu_params)
        accounting = KernelAccounting(
            self.device,
            policy.num_wavefronts,
            coalesced=self.gpu_params.soa_layout,
            dynamic_alloc=not self.gpu_params.soa_layout,
        )
        rng = AntRngStreams(seed, policy.num_ants)
        # In verify mode, sanitize the colony too; otherwise leave resolution
        # to the colony itself (the REPRO_SANITIZE knob).
        sanitizer = ColonySanitizer() if self.verify_enabled else None
        colony_cls = resolve_backend(self.backend)
        colony = colony_cls(
            data, self.params, policy, accounting, rng, sanitizer=sanitizer
        )
        return colony, accounting

    # -- pass 1 ----------------------------------------------------------------

    def _run_rp_pass(
        self,
        ddg: DDG,
        data: RegionDeviceData,
        bounds: RegionBounds,
        initial_order: Tuple[int, ...],
        seed: int,
    ) -> Tuple[Tuple[int, ...], Dict[RegisterClass, int], ParallelPassResult]:
        region = ddg.region
        lb_cost = rp_cost_lower_bound(bounds, self.machine)
        initial_schedule = Schedule.from_order(region, initial_order)
        best_peak = peak_pressure(initial_schedule)
        best_cost = rp_cost(best_peak, self.machine)
        best_order = tuple(initial_order)
        tele = self.telemetry
        if best_cost <= lb_cost:
            tele.emit(
                "pass_end",
                region=region.name,
                pass_index=1,
                invoked=False,
                iterations=0,
                final_cost=float(best_cost),
                hit_lower_bound=True,
                seconds=0.0,
            )
            result = ParallelPassResult(False, 0, best_cost, best_cost, True, 0.0)
            return best_order, best_peak, result

        scope = tele.pass_scope(region.name, 1, self.name, lb_cost, best_cost)
        colony, accounting = self._make_colony(data, seed)
        transfer = self._transfer(data, colony.num_ants)
        pheromone = PheromoneTable(ddg.num_instructions, self.params)
        tracker = TerminationTracker(
            lower_bound=lb_cost,
            stagnation_limit=self.params.termination_condition(len(region)),
            best_cost=best_cost,
        )
        while not tracker.should_stop() and tracker.iterations < self.params.max_iterations:
            result = colony.run_rp_iteration(pheromone.tau)
            accounting.charge_uniform_cycles(
                self._iteration_overhead_cycles(data, colony.num_ants)
            )
            pheromone.decay()
            assert result.winner_order is not None
            pheromone.deposit(result.winner_order, result.winner_cost - lb_cost)
            if tracker.record_iteration(result.winner_cost):
                best_order = result.winner_order
                best_peak = result.winner_peak
            scope.iteration(float(result.winner_cost), tracker.best_cost)
        kernel_seconds = accounting.kernel_seconds()
        transfer_seconds = transfer.seconds()
        launch_seconds = self.device.cost.launch_overhead
        self._profile_launch(1, accounting, transfer_seconds, launch_seconds)
        pass_result = ParallelPassResult(
            invoked=True,
            iterations=tracker.iterations,
            initial_cost=best_cost,
            final_cost=tracker.best_cost,
            hit_lower_bound=tracker.hit_lower_bound,
            seconds=kernel_seconds + transfer_seconds + launch_seconds,
            transfer_seconds=transfer_seconds,
            kernel_seconds=kernel_seconds,
            launch_seconds=launch_seconds,
            trace=scope.trace,
        )
        scope.end(
            invoked=True,
            iterations=tracker.iterations,
            final_cost=float(tracker.best_cost),
            hit_lower_bound=tracker.hit_lower_bound,
            seconds=pass_result.seconds,
            kernel_seconds=kernel_seconds,
            transfer_seconds=transfer_seconds,
            launch_seconds=launch_seconds,
        )
        self._publish_launch(
            tele,
            region.name,
            1,
            colony,
            accounting,
            transfer,
            data,
            tracker.iterations,
            kernel_seconds,
            transfer_seconds,
            launch_seconds,
        )
        return best_order, best_peak, pass_result

    # -- pass 2 ----------------------------------------------------------------

    def _run_ilp_pass(
        self,
        ddg: DDG,
        data: RegionDeviceData,
        bounds: RegionBounds,
        best_order: Tuple[int, ...],
        best_peak: Dict[RegisterClass, int],
        seed: int,
        reference_schedule: Optional[Schedule] = None,
    ) -> Tuple[Schedule, ParallelPassResult]:
        region = ddg.region
        length_lb = bounds.length
        target = self.machine.aprp(best_peak)
        initial_schedule = schedule_in_order(ddg, best_order)
        # Prefer the heuristic's latency-aware schedule as the starting
        # point when it satisfies the pressure target and is shorter.
        if reference_schedule is not None and reference_schedule.length < initial_schedule.length:
            ref_peak = peak_pressure(reference_schedule)
            if all(ref_peak.get(cls, 0) <= limit for cls, limit in target.items()):
                initial_schedule = reference_schedule
        best_schedule = initial_schedule
        best_length = initial_schedule.length
        tele = self.telemetry
        if best_length <= length_lb:
            tele.emit(
                "pass_end",
                region=region.name,
                pass_index=2,
                invoked=False,
                iterations=0,
                final_cost=float(best_length),
                hit_lower_bound=True,
                seconds=0.0,
            )
            result = ParallelPassResult(False, 0, best_length, best_length, True, 0.0)
            return best_schedule, result

        scope = tele.pass_scope(region.name, 2, self.name, length_lb, best_length)
        colony, accounting = self._make_colony(data, seed + 1)
        transfer = self._transfer(data, colony.num_ants)
        pheromone = PheromoneTable(ddg.num_instructions, self.params)
        tracker = TerminationTracker(
            lower_bound=length_lb,
            stagnation_limit=self.params.termination_condition(len(region)),
            best_cost=best_length,
        )
        max_length = max(2 * best_length, best_length + 16)
        while not tracker.should_stop() and tracker.iterations < self.params.max_iterations:
            result = colony.run_ilp_iteration(pheromone.tau, target, max_length)
            accounting.charge_uniform_cycles(
                self._iteration_overhead_cycles(data, colony.num_ants)
            )
            pheromone.decay()
            if result.winner_order is None:
                tracker.record_iteration(tracker.best_cost)
                scope.iteration(float("inf"), tracker.best_cost)
                continue
            pheromone.deposit(result.winner_order, result.winner_cost - length_lb)
            if tracker.record_iteration(result.winner_cost):
                assert result.winner_cycles is not None
                best_schedule = Schedule(region, result.winner_cycles)
                best_length = int(result.winner_cost)
            scope.iteration(float(result.winner_cost), tracker.best_cost)
        kernel_seconds = accounting.kernel_seconds()
        transfer_seconds = transfer.seconds()
        launch_seconds = self.device.cost.launch_overhead
        self._profile_launch(2, accounting, transfer_seconds, launch_seconds)
        pass_result = ParallelPassResult(
            invoked=True,
            iterations=tracker.iterations,
            initial_cost=initial_schedule.length,
            final_cost=best_length,
            hit_lower_bound=tracker.hit_lower_bound,
            seconds=kernel_seconds + transfer_seconds + launch_seconds,
            transfer_seconds=transfer_seconds,
            kernel_seconds=kernel_seconds,
            launch_seconds=launch_seconds,
            trace=scope.trace,
        )
        scope.end(
            invoked=True,
            iterations=tracker.iterations,
            final_cost=float(best_length),
            hit_lower_bound=tracker.hit_lower_bound,
            seconds=pass_result.seconds,
            kernel_seconds=kernel_seconds,
            transfer_seconds=transfer_seconds,
            launch_seconds=launch_seconds,
        )
        self._publish_launch(
            tele,
            region.name,
            2,
            colony,
            accounting,
            transfer,
            data,
            tracker.iterations,
            kernel_seconds,
            transfer_seconds,
            launch_seconds,
        )
        return best_schedule, pass_result

    # -- public entry point ---------------------------------------------------------

    def schedule(
        self,
        ddg: DDG,
        seed: int = 0,
        initial_order: Optional[Tuple[int, ...]] = None,
        bounds: Optional[RegionBounds] = None,
        reference_schedule: Optional[Schedule] = None,
    ) -> ParallelACOResult:
        """Run both passes on one region, on the simulated GPU."""
        if bounds is None:
            bounds = region_bounds(ddg)
        if initial_order is None:
            from ..heuristics.list_scheduler import order_schedule
            from ..heuristics.luc import LastUseCountHeuristic

            initial_order = order_schedule(ddg, heuristic=LastUseCountHeuristic()).order

        data = RegionDeviceData(
            ddg, self.machine, tight_ready_bound=self.gpu_params.tight_ready_list_bound
        )
        best_order, best_peak, pass1 = self._run_rp_pass(
            ddg, data, bounds, tuple(initial_order), seed
        )
        schedule, pass2 = self._run_ilp_pass(
            ddg, data, bounds, best_order, best_peak, seed, reference_schedule
        )
        final_peak = peak_pressure(schedule)
        result = ParallelACOResult(
            schedule=schedule,
            peak=final_peak,
            rp_cost_value=rp_cost(final_peak, self.machine),
            pass1=pass1,
            pass2=pass2,
        )
        if self.verify_enabled:
            report = verify_order(ddg, best_order)
            report.merge(
                verify_aco_result(
                    result, ddg, self.machine,
                    target_aprp=self.machine.aprp(best_peak),
                )
            )
            report.publish(self.telemetry, ddg.region.name)
            report.raise_if_failed()
        return result
