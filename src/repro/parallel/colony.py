"""Backend registry and compatibility façade for the colony engines.

The ant-construction engine lives in two interchangeable implementations:

* :class:`~repro.parallel.vectorized.VectorizedColony` — the batch engine
  (all ants advance in lockstep numpy operations, wave-max cost model);
* :class:`~repro.parallel.loop.LoopColony` — the scalar per-ant reference
  engine (explicit Python loops, serialized-lane divergent cost model).

Both construct bit-identical seeded schedules (proven by
``tests/test_differential.py``); they differ only in execution style and
in which kernel the cost accounting simulates. ``BACKENDS`` maps the
public backend names (``GPUParams.backend``, ``--backend``,
``REPRO_BACKEND``) to engine classes; :data:`Colony` keeps the historical
name importable and bound to the default engine.
"""

from __future__ import annotations

from typing import Dict, Type

from ..errors import ConfigError
from .loop import LoopColony
from .vectorized import ColonyIterationResult, VectorizedColony

#: Public backend name -> engine class.
BACKENDS: Dict[str, Type[VectorizedColony]] = {
    "vectorized": VectorizedColony,
    "loop": LoopColony,
}

#: Historical name for the default (vectorized) engine.
Colony = VectorizedColony


def resolve_backend(name: str) -> Type[VectorizedColony]:
    """Map a backend name to its engine class (``ConfigError`` if unknown)."""
    try:
        return BACKENDS[name]
    except KeyError:
        raise ConfigError(
            "unknown backend %r (choose from %s)"
            % (name, ", ".join(sorted(BACKENDS)))
        ) from None


__all__ = [
    "BACKENDS",
    "Colony",
    "ColonyIterationResult",
    "LoopColony",
    "VectorizedColony",
    "resolve_backend",
]
