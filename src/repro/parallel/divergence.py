"""The thread-divergence policy of Section V-B.

Bundles the four divergence optimizations as explicit, individually
togglable decisions (Table 4.b ablates them as a group, Table 6 sweeps the
stall-wavefront fraction):

1. **wavefront-level explore/exploit** — one draw per wavefront per step
   instead of one per thread, so the two selection formulas never serialize
   within a wavefront;
2. **stall-wavefront fraction** — only this fraction of wavefronts may
   insert optional stalls in pass 2 (the paper's best value: 25%);
3. **early wavefront termination** — a wavefront stops as soon as one of
   its lanes completes a valid schedule (no other lane can win the
   iteration, since they would finish later and thus longer);
4. **heuristic diversity** — wavefront group ``g`` is guided by heuristic
   ``g mod len(heuristics)``, keeping behaviour uniform inside a wavefront
   while still exploring differently across wavefronts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import GPUParams


@dataclass(frozen=True)
class DivergencePolicy:
    """Resolved per-launch divergence decisions."""

    wavefront_level_choice: bool
    stall_wavefront_fraction: float
    early_wavefront_termination: bool
    heuristic_diversity: bool
    num_wavefronts: int
    wavefront_size: int

    @classmethod
    def from_params(cls, gpu: GPUParams) -> "DivergencePolicy":
        return cls(
            wavefront_level_choice=gpu.wavefront_level_choice,
            stall_wavefront_fraction=gpu.stall_wavefront_fraction,
            early_wavefront_termination=gpu.early_wavefront_termination,
            heuristic_diversity=gpu.heuristic_diversity,
            num_wavefronts=gpu.wavefronts,
            wavefront_size=gpu.threads_per_block,
        )

    @property
    def num_ants(self) -> int:
        return self.num_wavefronts * self.wavefront_size

    def stall_wavefront_mask(self) -> np.ndarray:
        """Which wavefronts may insert optional stalls (evenly spread)."""
        allowed = int(round(self.stall_wavefront_fraction * self.num_wavefronts))
        mask = np.zeros(self.num_wavefronts, dtype=bool)
        if allowed <= 0:
            return mask
        stride = self.num_wavefronts / allowed
        positions = (np.arange(allowed) * stride).astype(int)
        mask[np.clip(positions, 0, self.num_wavefronts - 1)] = True
        return mask

    def heuristic_assignment(self, num_heuristics: int) -> np.ndarray:
        """Heuristic index per wavefront (all zeros when diversity is off)."""
        if not self.heuristic_diversity or num_heuristics <= 1:
            return np.zeros(self.num_wavefronts, dtype=np.int32)
        return (np.arange(self.num_wavefronts) % num_heuristics).astype(np.int32)

    def exploit_draw(self, rng: np.random.Generator, q0: float) -> np.ndarray:
        """Per-ant exploit decisions for one step (shared-generator form).

        Wavefront-level: one draw per wavefront broadcast to its lanes.
        Thread-level: an independent draw per lane (the divergent baseline).
        """
        if self.wavefront_level_choice:
            per_wave = rng.random(self.num_wavefronts) < q0
            return np.repeat(per_wave, self.wavefront_size)
        return rng.random(self.num_ants) < q0

    def exploit_draw_streams(self, streams, q0: float) -> np.ndarray:
        """Per-ant exploit decisions drawn from per-ant RNG streams.

        Wavefront-level: the wavefront leader's (lane 0) stream decides for
        all its lanes. Thread-level: every ant draws from its own stream.
        Unlike :meth:`exploit_draw`, the draw order is per-stream, so the
        scalar and vectorized engines consume identical randomness (see
        :mod:`repro.parallel.rng`).
        """
        if self.wavefront_level_choice:
            per_wave = streams.uniform_wavefront_leaders(
                self.num_wavefronts, self.wavefront_size
            )
            return np.repeat(per_wave < q0, self.wavefront_size)
        return streams.uniform_ants() < q0
