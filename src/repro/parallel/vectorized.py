"""The vectorized wavefront ant-construction engine (``backend="vectorized"``).

Every GPU thread simulates one ant (Section IV-B). This engine executes all
``blocks * 64`` ants in lockstep with numpy arrays whose leading axis is the
ant index — the exact analogue of the SIMD execution the paper's HIP kernel
gets from the hardware, and the same data layout (structure-of-arrays,
fixed-capacity available lists) the paper's Section V-A prescribes. Each
construction step is a handful of dense batch operations over the whole
population: a batched ready-list mask over the SoA layouts, one batched
pheromone x heuristic scoring pass, a wavefront-uniform (or per-thread)
explore/exploit split, batched roulette selection from the per-ant RNG
streams, and an array reduction for the iteration winner.

:mod:`repro.parallel.loop` implements the same construction semantics as a
scalar per-ant reference engine; the differential test harness
(``tests/test_differential.py``) proves the two produce bit-identical
seeded schedules. Randomness comes from the spawn-indexed per-ant streams
of :mod:`repro.parallel.rng`, so the batch draws here equal the reference
engine's scalar draws by construction.

While constructing, the engine reports abstract operations to
:class:`~repro.gpusim.kernel.KernelAccounting`, charging the *optimized*
kernel's cost: lockstep lanes execute each step's array operation once per
wavefront, so

* a wavefront's ready-list scan costs its **longest** lane's list;
* thread-level explore/exploit draws serialize the two selection paths
  (an extra scan) whenever a wavefront contains both kinds of lane;
* in pass 2, wavefronts containing both scheduling and stalling lanes pay
  the serialized stall path on top;
* each ready-list insertion allocates when the naive (dynamic-allocation)
  memory mode is simulated.

(The loop backend charges the unoptimized divergent kernel instead — every
lane serialized — which is what ``BENCH_backend.json`` quantifies.)

Dead ants (pressure-constraint violations) and finished lanes stay in
lockstep as inactive lanes — they occupy their wavefront's slot without
contributing, exactly like masked-off GPU lanes — until the wavefront
finishes or early termination retires it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..analysis.sanitizer import ColonySanitizer, checked, sanitize_enabled
from ..config import ACOParams
from ..gpusim.kernel import KernelAccounting
from ..ir.registers import RegisterClass
from ..rp.cost import OCCUPANCY_WEIGHT
from .divergence import DivergencePolicy
from .layouts import RegionDeviceData
from .rng import AntRngStreams

_BASE_STEP_OPS = 8.0
_SELECT_OPS_PER_CANDIDATE = 2.0
_UPDATE_OPS_PER_SUCCESSOR = 2.0
_STALL_PATH_OPS = 4.0
_STATE_WORDS_BASE = 4.0


@dataclass
class ColonyIterationResult:
    """Winner and liveness data of one colony iteration."""

    winner_order: Optional[Tuple[int, ...]]
    winner_cycles: Optional[Tuple[int, ...]]
    winner_cost: float
    winner_peak: Dict[RegisterClass, int]
    num_alive: int
    steps: int


class VectorizedColony:
    """Per-region vectorized colony state (reused across iterations)."""

    #: Backend identifier exported through telemetry and the scheduler.
    backend_name = "vectorized"

    def __init__(
        self,
        data: RegionDeviceData,
        params: ACOParams,
        policy: DivergencePolicy,
        accounting: KernelAccounting,
        rng,
        sanitizer: Optional[ColonySanitizer] = None,
    ):
        self.data = data
        self.params = params
        self.policy = policy
        self.accounting = accounting
        if sanitizer is None and sanitize_enabled():
            sanitizer = ColonySanitizer()
        self.sanitizer = sanitizer

        self.num_ants = policy.num_ants
        self.num_wavefronts = policy.num_wavefronts
        self.wavefront_size = policy.wavefront_size
        #: Per-ant spawn-indexed RNG streams (accepts a seed, a Generator,
        #: or a prebuilt stream set — see repro.parallel.rng).
        self.streams = AntRngStreams.coerce(rng, self.num_ants)

        d = data
        a = self.num_ants
        self._ants = np.arange(a)
        self._max_stalls = max(1, int(np.ceil(params.optional_stall_budget * d.num_instructions)))

        # Persistent per-ant state (reset each iteration).
        self.avail_ids = np.zeros((a, d.ready_capacity), dtype=np.int32)
        self.avail_release = np.zeros((a, d.ready_capacity), dtype=np.int32)
        self.avail_len = np.zeros(a, dtype=np.int32)
        self.pred_remaining = np.zeros((a, d.num_instructions), dtype=np.int32)
        self.earliest = np.zeros((a, d.num_instructions), dtype=np.int32)
        self.remaining_uses = np.zeros((a, d.num_registers), dtype=np.int32)
        self.live = np.zeros((a, d.num_registers), dtype=bool)
        self.current = np.zeros((a, d.num_classes), dtype=np.int32)
        self.peak = np.zeros((a, d.num_classes), dtype=np.int32)
        self.order_buf = np.full((a, d.num_instructions), -1, dtype=np.int32)
        self.cycles_buf = np.zeros((a, d.num_instructions), dtype=np.int32)
        self.prev_inst = np.zeros(a, dtype=np.int32)
        self.scheduled = np.zeros(a, dtype=np.int32)
        self.active = np.zeros(a, dtype=bool)
        self.dead = np.zeros(a, dtype=bool)
        self.optional_stalls = np.zeros(a, dtype=np.int32)

        # Static per-launch assignments.
        self.heuristic_of_wavefront = policy.heuristic_assignment(2)
        self.heuristic_of_ant = np.repeat(self.heuristic_of_wavefront, self.wavefront_size)
        self.stall_wavefronts = policy.stall_wavefront_mask()
        self.stall_allowed_ant = np.repeat(self.stall_wavefronts, self.wavefront_size)

        # Launch-lifetime observability counters, exported through the
        # telemetry layer by the scheduler (kernel_launch events and the
        # parallel.* metrics). Pure observation: nothing here feeds back
        # into selection, accounting or the RNG stream.
        self.serialized_selection_waves = 0
        self.serialized_stall_waves = 0
        self.ready_peak = 0
        self.dead_ants_total = 0
        self.constructions_total = 0

        if self.sanitizer is not None:
            # Sanitize mode: per-ant SoA state goes behind checked accessors
            # (a computed index of -1 is an uninitialized-slot read that
            # plain numpy would silently wrap to the last element).
            self.avail_ids = checked(self.avail_ids, "avail_ids")
            self.avail_release = checked(self.avail_release, "avail_release")
            self.pred_remaining = checked(self.pred_remaining, "pred_remaining")
            self.earliest = checked(self.earliest, "earliest")
            self.remaining_uses = checked(self.remaining_uses, "remaining_uses")
            self.live = checked(self.live, "live")
            self.order_buf = checked(self.order_buf, "order_buf")
            self.cycles_buf = checked(self.cycles_buf, "cycles_buf")
            self.sanitizer.audit_layout(self)

    # -- per-iteration reset ---------------------------------------------------

    def _reset(self) -> None:
        d = self.data
        self.avail_ids[:] = -1
        self.avail_release[:] = 0
        roots = d.roots
        self.avail_ids[:, : len(roots)] = roots[None, :]
        self.avail_len[:] = len(roots)
        self.pred_remaining[:] = d.pred_count[None, :]
        self.earliest[:] = 0
        self.remaining_uses[:] = d.total_use_counts[None, :]
        self.live[:] = False
        if len(d.live_in_ids):
            self.live[:, d.live_in_ids] = True
        self.current[:] = 0
        for ci in range(d.num_classes):
            if len(d.live_in_ids):
                self.current[:, ci] = int(
                    np.count_nonzero(d.reg_class[d.live_in_ids] == ci)
                )
        self.peak[:] = self.current
        self.order_buf[:] = -1
        self.cycles_buf[:] = 0
        self.prev_inst[:] = d.num_instructions  # virtual start row
        self.scheduled[:] = 0
        self.active[:] = True
        self.dead[:] = False
        self.optional_stalls[:] = 0

    # -- score computation -------------------------------------------------------

    def _eta(self, cand: np.ndarray, valid: np.ndarray, primary: str) -> np.ndarray:
        """Per-candidate eta for each ant's assigned heuristic.

        ``primary`` is the pass's base heuristic (``"luc"`` for pass 1,
        ``"cp"`` for pass 2); with heuristic diversity on, wavefronts with
        assignment 1 use the other heuristic.
        """
        d = self.data
        safe = np.where(valid, cand, 0)
        cp_eta = 1.0 + d.heights[safe]
        need_luc = primary == "luc" or bool(self.heuristic_of_ant.any())
        if not need_luc:
            return cp_eta
        closes = np.zeros(cand.shape, dtype=np.float64)
        ants_col = self._ants[:, None]
        for slot in range(d.uses.shape[1]):
            u = d.uses[safe, slot]
            m = valid & (u >= 0) & ~d.uses_redefined[safe, slot]
            um = np.where(m, u, 0)
            pred_kill = (
                m
                & (self.remaining_uses[ants_col, um] == 1)
                & ~d.live_out_mask[um]
                & self.live[ants_col, um]
            )
            closes += pred_kill
        net = closes - d.num_defs[safe]
        luc_score = (net + d.num_uses[safe] + 1.0) * d.score_scale + d.heights[safe] / d.score_scale
        luc_eta = np.maximum(1e-6, 1.0 + luc_score)
        if primary == "luc":
            return np.where((self.heuristic_of_ant == 0)[:, None], luc_eta, cp_eta)
        return np.where((self.heuristic_of_ant == 0)[:, None], cp_eta, luc_eta)

    def _scores(
        self, tau: np.ndarray, cand: np.ndarray, valid: np.ndarray, primary: str
    ) -> np.ndarray:
        safe = np.where(valid, cand, 0)
        tau_vals = tau[self.prev_inst[:, None], safe]
        eta = self._eta(cand, valid, primary)
        scores = tau_vals * eta**self.params.heuristic_weight
        scores[~valid] = 0.0
        return scores

    def _select(self, scores: np.ndarray, doers: np.ndarray) -> np.ndarray:
        """Pick a candidate column per ant (exploit argmax / explore roulette)."""
        exploit = self.policy.exploit_draw_streams(
            self.streams, self.params.exploitation_prob
        )
        if self.sanitizer is not None and self.policy.wavefront_level_choice:
            self.sanitizer.check_exploit_uniform(
                exploit, self.num_wavefronts, self.wavefront_size
            )
        sel_exploit = np.argmax(scores, axis=1)
        cum = np.cumsum(scores, axis=1)
        total = cum[:, -1]
        draws = self.streams.uniform_ants() * np.maximum(total, 1e-300)
        sel_explore = np.minimum(
            (cum <= draws[:, None]).sum(axis=1), scores.shape[1] - 1
        )
        sel = np.where(exploit, sel_exploit, sel_explore)
        # Divergence accounting: thread-level draws serialize the two
        # selection formulas whenever a wavefront holds both kinds of lane.
        if not self.policy.wavefront_level_choice:
            lanes = (exploit & doers).reshape(self.num_wavefronts, -1)
            lanes_other = (~exploit & doers).reshape(self.num_wavefronts, -1)
            both = lanes.any(axis=1) & lanes_other.any(axis=1)
            self._divergent_selection = both
            self.serialized_selection_waves += int(both.sum())
        else:
            self._divergent_selection = np.zeros(self.num_wavefronts, dtype=bool)
        return sel

    # -- state mutation ------------------------------------------------------------

    def _schedule_chosen(self, doers: np.ndarray, chosen: np.ndarray, cycle: int) -> None:
        """Apply the scheduling of ``chosen`` for ants where ``doers``."""
        d = self.data
        ants = self._ants[doers]
        picks = chosen[doers]
        self.order_buf[ants, self.scheduled[ants]] = picks
        self.cycles_buf[ants, picks] = cycle
        self.scheduled[ants] += 1
        self.prev_inst[ants] = picks

        # Kill-before-def pressure update (mirrors rp.tracker semantics).
        for slot in range(d.uses.shape[1]):
            u = d.uses[picks, slot]
            m = u >= 0
            au, uu = ants[m], u[m]
            self.remaining_uses[au, uu] -= 1
            kill = (
                (self.remaining_uses[au, uu] == 0)
                & ~d.live_out_mask[uu]
                & ~d.uses_redefined[picks[m], slot]
                & self.live[au, uu]
            )
            ak, uk = au[kill], uu[kill]
            self.live[ak, uk] = False
            cls = d.reg_class[uk]
            cm = cls >= 0
            self.current[ak[cm], cls[cm]] -= 1
        for slot in range(d.defs.shape[1]):
            dd = d.defs[picks, slot]
            m = dd >= 0
            ad, rd = ants[m], dd[m]
            fresh = ~self.live[ad, rd]
            af, rf = ad[fresh], rd[fresh]
            self.live[af, rf] = True
            cls = d.reg_class[rf]
            cm = cls >= 0
            self.current[af[cm], cls[cm]] += 1
        self.peak[ants] = np.maximum(self.peak[ants], self.current[ants])
        # Dead defs (no uses, not live-out) die right after the peak sample.
        for slot in range(d.defs.shape[1]):
            dd = d.defs[picks, slot]
            m = (dd >= 0)
            ad, rd = ants[m], dd[m]
            dead_def = (
                (self.remaining_uses[ad, rd] == 0)
                & ~d.live_out_mask[rd]
                & self.live[ad, rd]
            )
            ax, rx = ad[dead_def], rd[dead_def]
            self.live[ax, rx] = False
            cls = d.reg_class[rx]
            cm = cls >= 0
            self.current[ax[cm], cls[cm]] -= 1

        # Release successors into the available list.
        for slot in range(d.succ_ids.shape[1]):
            s = d.succ_ids[picks, slot]
            m = s >= 0
            asucc, ss = ants[m], s[m]
            release = cycle + d.succ_lat[picks[m], slot]
            self.earliest[asucc, ss] = np.maximum(self.earliest[asucc, ss], release)
            self.pred_remaining[asucc, ss] -= 1
            newly = self.pred_remaining[asucc, ss] == 0
            an, sn = asucc[newly], ss[newly]
            pos = self.avail_len[an]
            self.avail_ids[an, pos] = sn
            self.avail_release[an, pos] = self.earliest[an, sn]
            self.avail_len[an] += 1

    def _remove_from_avail(self, doers: np.ndarray, sel: np.ndarray) -> np.ndarray:
        """Swap-remove the selected column; returns the chosen instruction ids."""
        ants = self._ants[doers]
        cols = sel[doers]
        chosen_ids = self.avail_ids[ants, cols].copy()
        last = self.avail_len[ants] - 1
        self.avail_ids[ants, cols] = self.avail_ids[ants, last]
        self.avail_release[ants, cols] = self.avail_release[ants, last]
        self.avail_ids[ants, last] = -1
        self.avail_len[ants] -= 1
        chosen = np.full(self.num_ants, -1, dtype=np.int32)
        chosen[doers] = chosen_ids
        return chosen

    # -- accounting helpers -----------------------------------------------------------

    def _wave_max(self, values: np.ndarray, mask: np.ndarray) -> np.ndarray:
        """Per-wavefront max of ``values`` over lanes where ``mask``."""
        v = np.where(mask, values, 0)
        return v.reshape(self.num_wavefronts, -1).max(axis=1).astype(np.float64)

    def _charge_step(
        self,
        active: np.ndarray,
        scan: np.ndarray,
        doers: np.ndarray,
        chosen: np.ndarray,
        stalling: Optional[np.ndarray] = None,
    ) -> None:
        d = self.data
        scan_max = self._wave_max(scan, active)
        succ = np.zeros(self.num_ants, dtype=np.int64)
        succ[doers] = d.succ_count[chosen[doers]]
        succ_max = self._wave_max(succ, doers)
        wave_active = active.reshape(self.num_wavefronts, -1).any(axis=1)

        ops = np.where(
            wave_active,
            _BASE_STEP_OPS
            + scan_max * _SELECT_OPS_PER_CANDIDATE
            + succ_max * _UPDATE_OPS_PER_SUCCESSOR
            + (d.uses.shape[1] + d.defs.shape[1]) * 2.0,
            0.0,
        )
        ops += scan_max * _SELECT_OPS_PER_CANDIDATE * self._divergent_selection
        if stalling is not None:
            wave_stall = stalling.reshape(self.num_wavefronts, -1).any(axis=1)
            wave_sched = doers.reshape(self.num_wavefronts, -1).any(axis=1)
            serialized = wave_stall & wave_sched
            ops += _STALL_PATH_OPS * serialized
            self.serialized_stall_waves += int(serialized.sum())
        self.accounting.charge_compute(ops)

        words = np.where(
            wave_active,
            _STATE_WORDS_BASE
            + scan_max
            + succ_max
            + d.uses.shape[1]
            + d.defs.shape[1],
            0.0,
        )
        self.accounting.charge_memory(words)
        self.accounting.charge_alloc(succ_max)

    # -- cost evaluation ------------------------------------------------------------

    def _rp_costs(self) -> np.ndarray:
        """Per-ant scalar RP cost (vectorized rp.cost.rp_cost)."""
        d = self.data
        idx = np.minimum(self.peak, d.lut_width - 1)
        over = self.peak >= d.lut_width
        occ = np.where(over, 0, d.occ_lut[np.arange(d.num_classes)[None, :], idx]).min(axis=1)
        aprp = np.where(over, self.peak, d.aprp_lut[np.arange(d.num_classes)[None, :], idx]).sum(axis=1)
        return (d.max_occupancy - occ).astype(np.float64) * OCCUPANCY_WEIGHT + aprp

    def _peak_dict(self, ant: int) -> Dict[RegisterClass, int]:
        """Per-class peak, over the classes the region actually touches
        (matching :func:`repro.rp.liveness.peak_pressure`)."""
        region_classes = set(self.data.ddg.region.register_classes())
        return {
            cls: int(self.peak[ant, ci])
            for ci, cls in enumerate(self.data.classes)
            if cls in region_classes
        }

    # -- pass 1 -----------------------------------------------------------------------

    def run_rp_iteration(self, tau: np.ndarray) -> ColonyIterationResult:
        """All ants construct a latency-blind order; returns the RP winner."""
        d = self.data
        self._reset()
        self.constructions_total += self.num_ants
        cap = d.ready_capacity
        col = np.arange(cap)[None, :]
        for step in range(d.num_instructions):
            self.ready_peak = max(self.ready_peak, int(self.avail_len.max()))
            valid = col < self.avail_len[:, None]
            scores = self._scores(tau, self.avail_ids, valid, primary="luc")
            sel = self._select(scores, self.active)
            chosen = self._remove_from_avail(self.active, sel)
            scan = self.avail_len.astype(np.int64) + 1  # pre-removal size
            self._schedule_chosen(self.active, chosen, cycle=step)
            self._charge_step(self.active, scan, self.active, chosen)
            if self.sanitizer is not None:
                self.sanitizer.check_step(self)
        costs = self._rp_costs()
        winner = int(np.argmin(costs))
        if self.sanitizer is not None:
            self.sanitizer.check_iteration_end(self, winner)
        return ColonyIterationResult(
            winner_order=tuple(int(i) for i in self.order_buf[winner]),
            winner_cycles=None,
            winner_cost=float(costs[winner]),
            winner_peak=self._peak_dict(winner),
            num_alive=self.num_ants,
            steps=d.num_instructions,
        )

    # -- pass 2 -----------------------------------------------------------------------

    def _candidate_excess(
        self, any_cand: np.ndarray, target: np.ndarray
    ) -> np.ndarray:
        """Per-candidate worst per-class overshoot if scheduled now.

        ``excess[a, c] <= 0`` means candidate ``c`` keeps ant ``a`` within
        the pass-2 pressure target. Mirrors
        :meth:`repro.rp.tracker.PressureTracker.pressure_if_scheduled`.
        """
        d = self.data
        cand = self.avail_ids
        safe = np.where(any_cand, cand, 0)
        ants_col = self._ants[:, None]
        excess = np.full(cand.shape, -(10**9), dtype=np.int64)
        for ci in range(d.num_classes):
            closes = np.zeros(cand.shape, dtype=np.int64)
            for slot in range(d.uses.shape[1]):
                u = d.uses[safe, slot]
                m = any_cand & (u >= 0) & (d.reg_class[np.where(u >= 0, u, 0)] == ci)
                um = np.where(m, u, 0)
                pred_kill = (
                    m
                    & (self.remaining_uses[ants_col, um] == 1)
                    & ~d.live_out_mask[um]
                    & ~d.uses_redefined[safe, slot]
                    & self.live[ants_col, um]
                )
                closes += pred_kill
            after = self.current[:, ci : ci + 1] + d.defs_per_class[safe, ci] - closes
            excess = np.maximum(excess, after - target[ci])
        return excess

    def _stall_decisions(
        self,
        considering: np.ndarray,
        ready_mask: np.ndarray,
        semi_mask: np.ndarray,
        excess: np.ndarray,
    ) -> np.ndarray:
        """Vectorized optional-stall heuristic (mirrors aco.stalls)."""
        if not considering.any():
            return np.zeros(self.num_ants, dtype=bool)
        big = 10**9
        ready_excess = np.where(ready_mask, excess, big).min(axis=1)
        semi_excess = np.where(semi_mask, excess, big).min(axis=1)
        helpful = considering & (ready_excess >= 0) & (semi_excess < ready_excess)
        budget = np.maximum(0.0, 1.0 - self.optional_stalls / self._max_stalls)
        prob = np.where(ready_excess > 0, budget, self.params.optional_stall_prob * budget)
        return helpful & (self.streams.uniform_ants() < prob)

    def run_ilp_iteration(
        self,
        tau: np.ndarray,
        target_pressure: Dict[RegisterClass, int],
        max_length: int,
    ) -> ColonyIterationResult:
        """All ants construct cycle-accurate schedules under the RP target."""
        d = self.data
        self._reset()
        cap = d.ready_capacity
        col = np.arange(cap)[None, :]
        target = np.array(
            [target_pressure.get(cls, 10**9) for cls in d.classes], dtype=np.int64
        )
        finished = np.zeros(self.num_ants, dtype=bool)
        self.constructions_total += self.num_ants
        cycle = 0
        while self.active.any() and cycle <= max_length:
            self.ready_peak = max(self.ready_peak, int(self.avail_len.max()))
            valid = col < self.avail_len[:, None]
            ready_mask = valid & (self.avail_release <= cycle)
            semi_mask = valid & (self.avail_release > cycle)
            have_ready = ready_mask.any(axis=1)
            have_semi = semi_mask.any(axis=1)

            # Candidates that would push the peak past the target doom the
            # ant with certainty (the peak never recedes), so selection is
            # restricted to *safe* candidates — a pure pruning of the
            # paper's terminate-on-violation rule.
            excess = self._candidate_excess(ready_mask | semi_mask, target)
            safe_ready = ready_mask & (excess <= 0)
            has_safe = safe_ready.any(axis=1)

            budget_ok = self.optional_stalls < self._max_stalls
            stall_capable = self.stall_allowed_ant & budget_ok & have_semi
            considering = self.active & have_ready & has_safe & stall_capable
            opt_stall = self._stall_decisions(considering, ready_mask, semi_mask, excess)
            # Ants whose every ready candidate violates must stall or die.
            forced_stall = self.active & have_ready & ~has_safe & stall_capable
            doomed = self.active & have_ready & ~has_safe & ~stall_capable
            self.dead |= doomed
            self.active &= ~doomed
            stalls = opt_stall | forced_stall
            self.optional_stalls[stalls] += 1

            doers = self.active & have_ready & has_safe & ~opt_stall
            stalling = self.active & ~doers  # necessary + optional stalls

            scores = self._scores(tau, self.avail_ids, safe_ready, primary="cp")
            # Lanes with no safe ready candidate keep a zero score row; they
            # are excluded from doers so their (arbitrary) pick is discarded.
            sel = self._select(scores, doers)
            scan = ready_mask.sum(axis=1).astype(np.int64)
            chosen = self._remove_from_avail(doers, sel)
            self._schedule_chosen(doers, chosen, cycle=cycle)
            self._charge_step(self.active, scan, doers, chosen, stalling=stalling)
            if self.sanitizer is not None:
                self.sanitizer.check_step(self)

            # Safety net: the pruning above should make violations
            # impossible, but keep the paper's terminate-on-violation rule.
            violated = self.active & (self.peak > target[None, :]).any(axis=1)
            self.dead |= violated
            self.active &= ~violated

            done = self.active & (self.scheduled == d.num_instructions)
            finished |= done
            self.active &= ~done
            if self.policy.early_wavefront_termination and done.any():
                won = done.reshape(self.num_wavefronts, -1).any(axis=1)
                retire = np.repeat(won, self.wavefront_size)
                self.active &= ~retire
            cycle += 1

        self.dead_ants_total += int(self.dead.sum())
        if not finished.any():
            return ColonyIterationResult(
                winner_order=None,
                winner_cycles=None,
                winner_cost=float("inf"),
                winner_peak={},
                num_alive=0,
                steps=cycle,
            )
        lengths = self.cycles_buf.max(axis=1) + 1
        lengths = np.where(finished, lengths, np.iinfo(np.int32).max)
        winner = int(np.argmin(lengths))
        if self.sanitizer is not None:
            self.sanitizer.check_iteration_end(self, winner)
        order = tuple(int(i) for i in self.order_buf[winner])
        cycles = tuple(int(c) for c in self.cycles_buf[winner])
        return ColonyIterationResult(
            winner_order=order,
            winner_cycles=cycles,
            winner_cost=float(lengths[winner]),
            winner_peak=self._peak_dict(winner),
            num_alive=int(finished.sum()),
            steps=cycle,
        )
