"""Kernel-side and transfer-side cost accounting.

:class:`KernelAccounting` accumulates cycles per wavefront while the colony
executes; the colony reports abstract operations (compute ops, memory
words, allocations) and the accounting applies the device's coalescing and
divergence rules. :class:`TransferAccounting` models the host<->device
copies of Section V-A, where consolidating many small copies into one
batched copy is one of the headline memory optimizations.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from ..errors import GPUSimError
from ..profile.attribution import attribute_seconds
from .device import GPUDevice

ArrayOrFloat = Union[np.ndarray, float, int]


class KernelAccounting:
    """Per-wavefront cycle accumulation for one kernel launch.

    Besides the per-wavefront totals that determine the launch's execution
    time, the accounting keeps a public per-*category* breakdown —
    ``compute_cycles``, ``memory_cycles``, ``alloc_cycles`` and
    ``uniform_cycles``, each summed across all wavefronts — which the
    telemetry layer exports (``kernel_launch`` events and the ``gpusim.*``
    metrics) so profiles can attribute simulated time to ALU work,
    memory traffic, dynamic allocation and synchronization.
    """

    def __init__(self, device: GPUDevice, num_wavefronts: int, coalesced: bool,
                 dynamic_alloc: bool = False):
        if num_wavefronts < 1:
            raise GPUSimError("kernel needs at least one wavefront")
        self.device = device
        self.num_wavefronts = num_wavefronts
        self.coalesced = coalesced
        self.dynamic_alloc = dynamic_alloc
        self.wavefront_cycles = np.zeros(num_wavefronts, dtype=np.float64)
        #: Cycles charged per category, summed across wavefronts.
        self.compute_cycles = 0.0
        self.memory_cycles = 0.0
        self.alloc_cycles = 0.0
        self.uniform_cycles = 0.0

    def _total(self, charged) -> float:
        """Sum a per-wavefront charge (scalar charges hit every wavefront)."""
        charged = np.asarray(charged, dtype=np.float64)
        if charged.ndim == 0:
            return float(charged) * self.num_wavefronts
        return float(charged.sum())

    # -- charging primitives (all accept per-wavefront arrays or scalars) ----

    def charge_compute(self, ops: ArrayOrFloat) -> None:
        """Lockstep ALU work: ``ops`` abstract operations per wavefront."""
        charged = np.asarray(ops, dtype=np.float64) * self.device.cost.cycles_per_op
        self.wavefront_cycles += charged
        self.compute_cycles += self._total(charged)

    def charge_memory(self, words: ArrayOrFloat) -> None:
        """Wavefront-wide state accesses of ``words`` array rows.

        Coalesced (SoA) layout: one transaction per row. AoS layout: the
        lanes' strided accesses split into ``uncoalesced_factor``
        transactions per row.
        """
        words = np.asarray(words, dtype=np.float64)
        factor = 1.0 if self.coalesced else self.device.cost.uncoalesced_factor
        charged = words * factor * self.device.cost.cycles_per_transaction
        self.wavefront_cycles += charged
        self.memory_cycles += self._total(charged)

    def charge_alloc(self, allocations: ArrayOrFloat) -> None:
        """Device-side dynamic allocations (only charged in naive mode)."""
        if not self.dynamic_alloc:
            return
        allocations = np.asarray(allocations, dtype=np.float64)
        charged = allocations * self.device.cost.alloc_cycles
        self.wavefront_cycles += charged
        self.alloc_cycles += self._total(charged)

    # -- per-lane charging (the divergent, serialized execution model) -------

    def _lane_sum(self, lanes) -> np.ndarray:
        """Collapse a ``(wavefronts, lanes)`` charge by serializing lanes.

        A fully divergent kernel executes one lane's work while its
        wavefront's other lanes wait, so a wavefront's cost is the *sum* of
        its lanes — versus the lockstep primitives above, where uniform
        work costs each wavefront a single (or wave-max) execution. The
        loop backend charges through these; the ratio between the two
        models is the speedup ``BENCH_backend.json`` records.
        """
        lanes = np.asarray(lanes, dtype=np.float64)
        if lanes.ndim != 2 or lanes.shape[0] != self.num_wavefronts:
            raise GPUSimError(
                "lane charge must be shaped (num_wavefronts, lanes), got %s"
                % (lanes.shape,)
            )
        return lanes.sum(axis=1)

    def charge_lane_compute(self, ops) -> None:
        """Per-lane ALU work, serialized within each wavefront."""
        self.charge_compute(self._lane_sum(ops))

    def charge_lane_memory(self, words) -> None:
        """Per-lane state accesses, serialized within each wavefront."""
        self.charge_memory(self._lane_sum(words))

    def charge_lane_alloc(self, allocations) -> None:
        """Per-lane dynamic allocations, serialized within each wavefront."""
        self.charge_alloc(self._lane_sum(allocations))

    def charge_uniform_cycles(self, cycles: float) -> None:
        """The same cycle cost on every wavefront (reductions, sync)."""
        self.wavefront_cycles += cycles
        self.uniform_cycles += float(cycles) * self.num_wavefronts

    def charge_totals(self) -> dict:
        """The per-category cycle breakdown (keys are stable metric names)."""
        return {
            "compute_cycles": self.compute_cycles,
            "memory_cycles": self.memory_cycles,
            "alloc_cycles": self.alloc_cycles,
            "uniform_cycles": self.uniform_cycles,
        }

    # -- results ---------------------------------------------------------------

    def kernel_seconds(self) -> float:
        """Execution time of the launch (excludes launch overhead).

        Wavefronts dispatch in launch order; each batch of
        ``device.concurrent_wavefronts`` runs concurrently and takes its
        slowest member's time.
        """
        cap = self.device.concurrent_wavefronts
        total_cycles = 0.0
        for start in range(0, self.num_wavefronts, cap):
            total_cycles += float(self.wavefront_cycles[start:start + cap].max())
        return self.device.cost.cycles_to_seconds(total_cycles)

    def batches(self) -> int:
        """Execution batches (capacity waves) this launch needs."""
        return self.device.batches(self.num_wavefronts)

    def attributed_seconds(self) -> dict:
        """Kernel seconds split per category by cycle share.

        Keys are the categories of :meth:`charge_totals` without the
        ``_cycles`` suffix; the values sum to :meth:`kernel_seconds` up to
        float rounding (the profiler and the ``kernel_launch`` telemetry
        event both publish this split).
        """
        return attribute_seconds(self.kernel_seconds(), self.charge_totals())


class TransferAccounting:
    """Host<->device copy accounting for one region's scheduling."""

    def __init__(self, device: GPUDevice, batched: bool):
        self.device = device
        self.batched = batched
        self.total_bytes = 0
        self.array_count = 0

    def add_array(self, num_bytes: int) -> None:
        if num_bytes < 0:
            raise GPUSimError("array size must be >= 0")
        self.total_bytes += num_bytes
        self.array_count += 1

    def add_ndarray(self, array: np.ndarray) -> None:
        self.add_array(int(array.nbytes))

    def seconds(self) -> float:
        """Copy time: one batched call, or one call per array when naive.

        Includes the result copy-back (one more call either way).
        """
        calls = (1 if self.batched else max(1, self.array_count)) + 1
        return self.device.cost.copy_seconds(self.total_bytes, calls)
