"""The deterministic GPU fault model (the chaos layer's ground truth).

Real GPU ACO deployments are dominated not by the search but by the
engineering around device hazards: device-side allocation limits, failed
or corrupted transfers, driver-level launch failures and hung kernels
(Cecilia et al.'s GPU ACO study and Skinderowicz's GPU MAX-MIN Ant System
both report exactly these). This module models that hazard surface for the
simulated device so the rest of the stack — watchdog, retry ladder,
checkpointed recovery — can be exercised and *proven* against it.

Everything is seed-driven and deterministic: a :class:`FaultPlan` is a pure
function from a *fault site* (region, pass, attempt, fault class) to a
uniform draw in [0, 1), realized by hashing the chaos seed with the site
identity (the same derivation discipline as :mod:`repro.suite.rng`). The
same chaos seed therefore injects the same faults at the same sites on
every run, which is what makes chaos runs replayable and the chaos-sweep
CI job meaningful. A fault fires when its site draw falls below the
class's configured rate.

:class:`FaultyDevice` wraps a :class:`~repro.gpusim.device.GPUDevice` with
a plan and exposes the injection points the parallel scheduler calls:

========================  ===================================================
``check_launch``          raises :class:`~repro.errors.KernelLaunchError`
``check_preallocation``   raises :class:`~repro.errors.DeviceOOMError`
``transfer_corrupted``    silent — detection happens at copy-back, where the
                          integrity check raises
                          :class:`~repro.errors.CorruptionDetected`
``hang_iteration``        returns the iteration at which the kernel hangs
                          (the watchdog raises
                          :class:`~repro.errors.DeviceHangError`)
========================  ===================================================

Faults are injected, detected, and surfaced as typed exceptions — never as
silently wrong results: a corrupted transfer is *detected* (checksum
compare), a hang is *detected* (watchdog heartbeat), and the launch/OOM
failures are immediate API errors, exactly like their real counterparts.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..errors import ConfigError, DeviceOOMError, KernelLaunchError
from .device import GPUDevice

#: The canonical fault taxonomy, in ladder-report order.
FAULT_CLASSES: Tuple[str, ...] = ("launch", "corruption", "hang", "oom")

#: Worker-level fault classes of the fleet shard layer (repro.fleet): a
#: whole simulated worker dying, wedging, or returning a corrupt shard
#: result. Sites are keyed by (worker, dispatch) instead of (region, pass,
#: attempt) — the hazard lives in the worker process, not in the region.
WORKER_FAULT_CLASSES: Tuple[str, ...] = (
    "worker_crash", "worker_hang", "worker_corrupt",
)

#: Default per-site rates used when a chaos seed is given without explicit
#: rates (the CLI's bare ``--chaos SEED``). Chosen so a small chaos sweep
#: (a few suite compiles) exercises every class at least once while most
#: regions still compile on the first attempt.
DEFAULT_CHAOS_RATES: Dict[str, float] = {
    "launch": 0.12,
    "corruption": 0.12,
    "hang": 0.12,
    "oom": 0.08,
}

#: Default per-dispatch rates for the fleet's worker chaos mix (the CLI's
#: bare ``--fleet-chaos SEED``). Low enough that a small fleet run mostly
#: succeeds first try, high enough that a sweep exercises every class.
DEFAULT_WORKER_CHAOS_RATES: Dict[str, float] = {
    "worker_crash": 0.10,
    "worker_hang": 0.10,
    "worker_corrupt": 0.10,
}

#: Simulated seconds a hung kernel burns before the watchdog declares it
#: dead (the heartbeat timeout). Charged to the attempt and to the
#: region's deadline budget.
DEFAULT_HANG_SECONDS = 2e-3


def _site_draw(seed: int, *identity) -> float:
    """Deterministic U[0,1) draw for one fault site.

    Hashes the chaos seed with the site identity, like
    :func:`repro.suite.rng.derive_seed` — independent of call order, so
    retries and reruns see stable decisions.
    """
    text = ":".join([str(seed)] + [str(part) for part in identity])
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / float(2**64)


@dataclass(frozen=True)
class FaultPlan:
    """Seed-driven fault schedule: site -> does a fault fire here?

    ``rates`` maps fault-class names (:data:`FAULT_CLASSES`) to per-site
    probabilities; absent classes never fire. The plan itself holds no
    mutable state — every decision is recomputed from the seed, so the
    plan can be shared freely across schedulers and processes.
    """

    seed: int
    rates: Dict[str, float] = field(default_factory=dict)
    #: Simulated seconds a hang burns before the watchdog fires.
    hang_seconds: float = DEFAULT_HANG_SECONDS

    def __post_init__(self):
        known = FAULT_CLASSES + WORKER_FAULT_CLASSES
        for name, rate in self.rates.items():
            if name not in known:
                raise ConfigError(
                    "unknown fault class %r (choose from %s)"
                    % (name, ", ".join(known))
                )
            if not 0.0 <= rate <= 1.0:
                raise ConfigError("fault rate for %r must be in [0, 1]" % name)
        if self.hang_seconds <= 0.0:
            raise ConfigError("hang_seconds must be positive")

    @classmethod
    def from_seed(
        cls, seed: int, rates: Optional[Dict[str, float]] = None
    ) -> "FaultPlan":
        """A plan with the default chaos mix, or explicit ``rates``."""
        return cls(seed=seed, rates=dict(DEFAULT_CHAOS_RATES if rates is None else rates))

    def _fires(self, fault: str, *identity) -> bool:
        rate = self.rates.get(fault, 0.0)
        if rate <= 0.0:
            return False
        return _site_draw(self.seed, fault, *identity) < rate

    # -- injection decisions (all pure functions of the site) ---------------

    def launch_fails(self, region: str, pass_index: int, attempt: int) -> bool:
        return self._fires("launch", region, pass_index, attempt)

    def preallocation_fails(self, region: str, attempt: int) -> bool:
        return self._fires("oom", region, attempt)

    def transfer_corrupted(self, region: str, pass_index: int, attempt: int) -> bool:
        return self._fires("corruption", region, pass_index, attempt)

    def hang_iteration(
        self, region: str, pass_index: int, attempt: int
    ) -> Optional[int]:
        """Iteration index at which the kernel hangs, or None.

        Drawn in the first few iterations so an injected hang reliably
        fires before the search's own termination condition.
        """
        if not self._fires("hang", region, pass_index, attempt):
            return None
        draw = _site_draw(self.seed, "hang-iter", region, pass_index, attempt)
        return int(draw * 3)  # hang during iteration 0, 1 or 2

    # -- worker-level sites (fleet shard layer; see repro.fleet) ------------

    def worker_crashes(self, worker: int, dispatch: int) -> bool:
        """Whether the worker's process dies at this dispatch."""
        return self._fires("worker_crash", worker, dispatch)

    def worker_hangs(self, worker: int, dispatch: int) -> bool:
        """Whether the worker wedges (stops heartbeating) at this dispatch."""
        return self._fires("worker_hang", worker, dispatch)

    def worker_corrupts(self, worker: int, dispatch: int) -> bool:
        """Whether the shard result this dispatch returns is corrupted."""
        return self._fires("worker_corrupt", worker, dispatch)

    @classmethod
    def worker_plan(
        cls, seed: int, rates: Optional[Dict[str, float]] = None
    ) -> "FaultPlan":
        """A plan with the default worker chaos mix, or explicit ``rates``."""
        return cls(
            seed=seed,
            rates=dict(DEFAULT_WORKER_CHAOS_RATES if rates is None else rates),
        )


class FaultyDevice:
    """A :class:`GPUDevice` paired with a :class:`FaultPlan`.

    The scheduler calls the ``check_*`` hooks at the simulated hazard
    points; each either passes silently or raises the fault's typed
    exception. The wrapped geometry/cost model is reachable as ``device``
    (the fault layer never alters costs of *successful* operations, which
    is what keeps fault-free runs bit-identical).
    """

    def __init__(self, device: GPUDevice, plan: FaultPlan):
        self.device = device
        self.plan = plan

    def check_launch(self, region: str, pass_index: int, attempt: int) -> None:
        """Simulate the kernel-launch API call; raise on injected failure.

        A failed launch still costs its fixed overhead (the driver round
        trip happened), carried on the exception for budget accounting.
        """
        if self.plan.launch_fails(region, pass_index, attempt):
            raise KernelLaunchError(
                "injected launch failure: region %r pass %d attempt %d"
                % (region, pass_index, attempt),
                seconds=self.device.cost.launch_overhead,
            )

    def check_preallocation(
        self, region: str, attempt: int, requested_bytes: int = 0
    ) -> None:
        """Simulate the Section V-A preallocation; raise on injected OOM."""
        if self.plan.preallocation_fails(region, attempt):
            raise DeviceOOMError(
                "injected preallocation OOM: region %r attempt %d (%d bytes)"
                % (region, attempt, requested_bytes),
                seconds=0.0,
            )

    def transfer_corrupted(self, region: str, pass_index: int, attempt: int) -> bool:
        """Whether this site's host->device transfer is (silently) corrupted.

        Detection is the *caller's* job at copy-back: the integrity check
        compares checksums and raises
        :class:`~repro.errors.CorruptionDetected` — the fault itself does
        not raise, exactly like real bit corruption.
        """
        return self.plan.transfer_corrupted(region, pass_index, attempt)

    def hang_iteration(
        self, region: str, pass_index: int, attempt: int
    ) -> Optional[int]:
        return self.plan.hang_iteration(region, pass_index, attempt)


def chaos_seed_from_env() -> Optional[int]:
    """The ``REPRO_CHAOS`` chaos seed, or None when unset/empty."""
    value = os.environ.get("REPRO_CHAOS", "").strip()
    if not value:
        return None
    try:
        return int(value)
    except ValueError:
        raise ConfigError("REPRO_CHAOS must be an integer seed, got %r" % value) from None


def fault_plan_from_env() -> Optional[FaultPlan]:
    """A default-mix :class:`FaultPlan` from ``REPRO_CHAOS``, or None."""
    seed = chaos_seed_from_env()
    if seed is None:
        return None
    return FaultPlan.from_seed(seed)
