"""Cost of the parallel reduction that selects the iteration winner.

Section IV-B: after all threads construct their schedules, they cooperate
in a tree reduction to find the best schedule of the iteration. An
efficient reduction (Harris-style, sequential addressing) over ``t``
threads takes ``ceil(log2 t)`` strided steps; each step is a handful of
compare/exchange operations plus one shared/global memory round trip.
"""

from __future__ import annotations

import math

from ..timing import GPUCostModel


def reduction_cycles(num_threads: int, cost: GPUCostModel) -> float:
    """Cycles for one iteration-winner reduction over ``num_threads``."""
    if num_threads <= 1:
        return 0.0
    steps = math.ceil(math.log2(num_threads))
    per_step = 4 * cost.cycles_per_op + cost.cycles_per_transaction
    return steps * per_step
