"""A lockstep SIMT execution model with cost accounting.

This package stands in for the AMD Radeon VII that the paper runs its
scheduling kernel on. The parallel colony (:mod:`repro.parallel`) executes
ants lane-vectorized (numpy across lanes = SIMD across a wavefront) and
reports every abstract operation to :class:`~repro.gpusim.kernel.KernelAccounting`,
which converts them to cycles under the device's divergence and
memory-coalescing rules:

* a wavefront's cost for a data-dependent loop is the **maximum** over its
  lanes (lanes with shorter ready lists wait for the longest);
* divergent control paths within a wavefront **serialize** (both paths'
  costs are charged);
* a structure-of-arrays access is **one transaction** per wavefront, an
  array-of-structures access costs a transaction *per active lane*;
* device-side dynamic allocation has a large fixed cycle cost
  (Section V-A: "Dynamic memory allocation on the GPU is known to be very
  slow");
* kernel launches and host/device copies have fixed overheads, and
  unbatched copies pay a per-call cost.
"""

from .device import GPUDevice
from .faults import (
    DEFAULT_CHAOS_RATES,
    FAULT_CLASSES,
    FaultPlan,
    FaultyDevice,
    chaos_seed_from_env,
    fault_plan_from_env,
)
from .kernel import KernelAccounting, TransferAccounting
from .reduction import reduction_cycles

__all__ = [
    "DEFAULT_CHAOS_RATES",
    "FAULT_CLASSES",
    "FaultPlan",
    "FaultyDevice",
    "GPUDevice",
    "KernelAccounting",
    "TransferAccounting",
    "chaos_seed_from_env",
    "fault_plan_from_env",
    "reduction_cycles",
]
