"""The simulated GPU device.

Geometry matches the paper's Radeon VII: 60 compute units, 4 SIMDs per CU,
64-lane wavefronts, 1.8 GHz. The scheduling kernel's footprint limits it to
one resident wavefront per SIMD, so up to ``compute_units * simds_per_cu``
wavefronts run concurrently; the paper launches 180 single-wavefront blocks,
which fit in one batch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import GPUSimError
from ..timing import DEFAULT_GPU_COST, GPUCostModel


@dataclass(frozen=True)
class GPUDevice:
    """Geometry plus the cycle/seconds cost model."""

    name: str = "radeon-vii"
    compute_units: int = 60
    simds_per_cu: int = 4
    wavefront_size: int = 64
    cost: GPUCostModel = field(default_factory=lambda: DEFAULT_GPU_COST)

    def __post_init__(self):
        if min(self.compute_units, self.simds_per_cu, self.wavefront_size) < 1:
            raise GPUSimError("device geometry must be positive")

    @property
    def concurrent_wavefronts(self) -> int:
        """Wavefronts resident at once (scheduling kernel: 1 per SIMD)."""
        return self.compute_units * self.simds_per_cu

    def batches(self, num_wavefronts: int) -> int:
        """How many waves of execution ``num_wavefronts`` require."""
        if num_wavefronts < 1:
            raise GPUSimError("need at least one wavefront")
        cap = self.concurrent_wavefronts
        return (num_wavefronts + cap - 1) // cap
