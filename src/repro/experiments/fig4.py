"""Figure 4 — execution-time speedup of the benchmarks.

The modified (parallel ACO, cycle threshold 21) build is compared against
the base build over the scheduling-sensitive benchmarks; benchmarks with a
significant difference (>= 1%) are listed in descending order, followed by
the geometric mean.

Paper shape: all significant differences are improvements (max regression
0.7%); max improvement 74%; geometric mean 13.2%; 20 benchmarks improve by
>= 5% and 11 by >= 10%.
"""

from __future__ import annotations

import math
from ..perf.exec_model import ExecutionModel, benchmark_results, sensitive_benchmarks
from .common import ExperimentContext, threshold_pick
from .report import ExperimentTable


def run(context: ExperimentContext) -> ExperimentTable:
    suite = context.suite
    model = ExecutionModel()
    runs = [context.run("baseline"), context.run("parallel"), context.run("cp")]
    sensitive = sensitive_benchmarks(suite, runs, model)
    pick, _invoked = threshold_pick(context, 21)
    results = benchmark_results(
        suite, context.run("parallel"), model, benchmarks=sensitive, pick_aco=pick
    )
    significant = sorted(
        (r for r in results if r.significant),
        key=lambda r: -r.improvement_pct,
    )

    table = ExperimentTable(
        title="Figure 4: execution-time speedup of benchmarks (scale=%s)"
        % context.scale.name,
        headers=("Benchmark", "Base GB/s", "ACO GB/s", "Improvement"),
    )
    for r in significant:
        table.add_row(
            r.name,
            "%.1f" % r.base_throughput,
            "%.1f" % r.aco_throughput,
            "%+.1f%%" % r.improvement_pct,
        )
    ratios = [r.aco_throughput / r.base_throughput for r in significant]
    geomean = (
        math.exp(sum(math.log(x) for x in ratios) / len(ratios)) if ratios else 1.0
    )
    table.add_row("GEOMEAN (significant)", "-", "-", "%+.1f%%" % (100 * (geomean - 1)))
    improvements = [r.improvement_pct for r in significant if r.improvement_pct > 0]
    table.add_note(
        "max improvement %.1f%% (paper 74%%); >=5%%: %d (paper 20); >=10%%: %d "
        "(paper 11); geomean %.1f%% (paper 13.2%%)"
        % (
            max(improvements, default=0.0),
            sum(1 for v in improvements if v >= 5),
            sum(1 for v in improvements if v >= 10),
            100 * (geomean - 1),
        )
    )
    regressions = [-r.improvement_pct for r in results if r.improvement_pct < 0]
    table.add_note("max regression %.2f%% (paper 0.7%%)" % max(regressions, default=0.0))
    return table
