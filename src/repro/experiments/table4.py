"""Tables 4.a / 4.b — effect of the memory and divergence optimizations.

Each processed region is rescheduled with one optimization bundle disabled
(everything else identical, same seeds); the table reports the percentage
*increase* in ACO scheduling time of the crippled configuration over the
optimized one — i.e. the improvement the optimizations deliver.

Paper values (overall / max improvement in ACO time):

* memory optimizations (4.a): pass 1 645-1055% overall, up to 1929% max;
  pass 2 593-994% overall, up to 3052% max;
* divergence optimizations (4.b): pass 1 0.68-7.0% overall, up to 66% max;
  pass 2 3.78-15.42% overall, up to 101% max (largest on big regions).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..config import SIZE_CLASS_LABELS, size_class_index
from ..ddg.graph import DDG
from ..suite.rng import derive_seed
from .common import ExperimentContext
from .report import ExperimentTable

_PAPER_MEMORY = {
    ("overall", 1): ("645%", "1055%", "897%"),
    ("max", 1): ("1163%", "1592%", "1929%"),
    ("overall", 2): ("593%", "994%", "709%"),
    ("max", 2): ("2647%", "1629%", "3052%"),
}
_PAPER_DIVERGENCE = {
    ("overall", 1): ("0.68%", "3.81%", "7.00%"),
    ("max", 1): ("17.14%", "15.84%", "65.96%"),
    ("overall", 2): ("3.78%", "12.06%", "15.42%"),
    ("max", 2): ("55.56%", "71.53%", "101.40%"),
}


def _per_iteration(pass_result) -> Optional[float]:
    """Pass seconds normalized per iteration (None when the pass idle).

    Normalization keeps the comparison fair when a policy change alters the
    random search trajectory and therefore the iteration count.
    """
    if pass_result is None or not pass_result.invoked or pass_result.iterations == 0:
        return None
    return pass_result.seconds / pass_result.iterations


def _variant_times(
    context: ExperimentContext, variant_gpu
) -> Dict[str, Tuple[Optional[float], Optional[float]]]:
    """Re-schedule every processed region under ``variant_gpu``.

    Returns region name -> (pass1 s/iter, pass2 s/iter).
    """
    scheduler = context.parallel_scheduler(gpu=variant_gpu)
    par = context.run("parallel")
    suite_seed = context.suite.params.seed
    times: Dict[str, Tuple[Optional[float], Optional[float]]] = {}
    for kernel_outcome in par.kernels:
        kernel = kernel_outcome.kernel
        for index, outcome in enumerate(kernel_outcome.regions):
            if not outcome.aco_invoked:
                continue
            seed = derive_seed(suite_seed, "schedule", kernel.name, index)
            heuristic_schedule = (
                outcome.schedule
                if outcome.decision.value != "aco-applied"
                else None
            )
            result = scheduler.schedule(
                DDG(kernel.regions[index]),
                seed=seed,
                initial_order=None
                if heuristic_schedule is None
                else heuristic_schedule.order,
            )
            times[outcome.region_name] = (
                _per_iteration(result.pass1),
                _per_iteration(result.pass2),
            )
    return times


def _ablation_table(
    context: ExperimentContext,
    title: str,
    variant_gpu,
    paper: Dict[Tuple[str, int], Tuple[str, str, str]],
) -> ExperimentTable:
    variant = _variant_times(context, variant_gpu)
    par = context.run("parallel")

    # Aggregate per (pass, size class): sums for overall, per-region for max.
    sums_on = {(p, c): 0.0 for p in (1, 2) for c in range(3)}
    sums_off = {(p, c): 0.0 for p in (1, 2) for c in range(3)}
    best = {(p, c): 0.0 for p in (1, 2) for c in range(3)}
    for _kernel, outcome in par.all_regions():
        if outcome.region_name not in variant:
            continue
        off1, off2 = variant[outcome.region_name]
        cls = size_class_index(outcome.size)
        for pass_index, off_seconds, pass_result in (
            (1, off1, outcome.pass1),
            (2, off2, outcome.pass2),
        ):
            on_seconds = _per_iteration(pass_result)
            if on_seconds is None or off_seconds is None or on_seconds <= 0:
                continue
            sums_on[(pass_index, cls)] += on_seconds
            sums_off[(pass_index, cls)] += off_seconds
            improvement = 100.0 * (off_seconds - on_seconds) / on_seconds
            best[(pass_index, cls)] = max(best[(pass_index, cls)], improvement)

    table = ExperimentTable(
        title="%s (scale=%s)" % (title, context.scale.name),
        headers=("Stat",) + SIZE_CLASS_LABELS + ("Paper",),
    )
    for pass_index in (1, 2):
        overall = []
        for cls in range(3):
            on = sums_on[(pass_index, cls)]
            off = sums_off[(pass_index, cls)]
            overall.append("%.1f%%" % (100.0 * (off - on) / on) if on > 0 else "-")
        table.add_row(
            "Pass %d overall improvement" % pass_index,
            *overall,
            " / ".join(paper[("overall", pass_index)]),
        )
        table.add_row(
            "Pass %d max. improvement" % pass_index,
            *[
                "%.1f%%" % best[(pass_index, cls)]
                if sums_on[(pass_index, cls)] > 0
                else "-"
                for cls in range(3)
            ],
            " / ".join(paper[("max", pass_index)]),
        )
    return table


def run(context: ExperimentContext) -> List[ExperimentTable]:
    memory_off = context.scale.gpu.without_memory_opts()
    divergence_off = context.scale.gpu.without_divergence_opts()
    return [
        _ablation_table(
            context,
            "Table 4.a: improvement in ACO time from memory optimizations",
            memory_off,
            _PAPER_MEMORY,
        ),
        _ablation_table(
            context,
            "Table 4.b: improvement in ACO time from divergence optimizations",
            divergence_off,
            _PAPER_DIVERGENCE,
        ),
    ]
