"""Table 7 — experimentation with the cycle-based filter.

For each cycle threshold the modified build is re-derived post hoc (regions
whose length gap falls within the threshold keep their heuristic schedule)
and compared against the base build through the execution model, over the
scheduling-sensitive benchmarks. Reported per threshold: counts of
execution-time improvements and regressions of at least 3/5/10%, and the
maximum regression.

Paper values: thresholds 5..25; regressions >= 3% fall from 4 to 0 as the
threshold grows; 21 eliminates all significant regressions (max regression
0.7%) while keeping 20+ improvements >= 3%.
"""

from __future__ import annotations

from ..perf.exec_model import ExecutionModel, benchmark_results, sensitive_benchmarks
from .common import ExperimentContext, threshold_pick
from .report import ExperimentTable

_THRESHOLDS = (5, 10, 15, 20, 21, 25)
_PAPER = {
    "Imps. >= 3%": (18, 20, 20, 21, 20, 20),
    "Imps. >= 5%": (17, 20, 20, 24, 24, 24),
    "Imps. >= 10%": (9, 10, 11, 9, 11, 11),
    "Regs. >= 3%": (4, 3, 1, 1, 0, 0),
    "Regs. >= 5%": (4, 3, 1, 1, 0, 0),
    "Regs. >= 10%": (3, 3, 1, 1, 0, 0),
    "Max. Reg.": ("14.5%", "14.5%", "10.5%", "10.5%", "0.7%", "1.3%"),
}


def run(context: ExperimentContext) -> ExperimentTable:
    suite = context.suite
    model = ExecutionModel()
    runs = [context.run("baseline"), context.run("parallel"), context.run("cp")]
    sensitive = sensitive_benchmarks(suite, runs, model)

    per_threshold = {}
    for threshold in _THRESHOLDS:
        pick, _invoked = threshold_pick(context, threshold)
        results = benchmark_results(
            suite,
            context.run("parallel"),
            model,
            benchmarks=sensitive,
            pick_aco=pick,
        )
        imps = [r.improvement_pct for r in results if r.improvement_pct > 0]
        regs = [-r.improvement_pct for r in results if r.improvement_pct < 0]
        per_threshold[threshold] = {
            "i3": sum(1 for v in imps if v >= 3),
            "i5": sum(1 for v in imps if v >= 5),
            "i10": sum(1 for v in imps if v >= 10),
            "r3": sum(1 for v in regs if v >= 3),
            "r5": sum(1 for v in regs if v >= 5),
            "r10": sum(1 for v in regs if v >= 10),
            "maxreg": max(regs, default=0.0),
        }

    table = ExperimentTable(
        title="Table 7: experimentation with the cycle-based filter (scale=%s)"
        % context.scale.name,
        headers=("Cycles",) + tuple(str(t) for t in _THRESHOLDS) + ("Paper",),
    )
    rows = [
        ("Imps. >= 3%", "i3"),
        ("Imps. >= 5%", "i5"),
        ("Imps. >= 10%", "i10"),
        ("Regs. >= 3%", "r3"),
        ("Regs. >= 5%", "r5"),
        ("Regs. >= 10%", "r10"),
    ]
    for label, key in rows:
        table.add_row(
            label,
            *[per_threshold[t][key] for t in _THRESHOLDS],
            " / ".join(str(v) for v in _PAPER[label]),
        )
    table.add_row(
        "Max. Reg.",
        *["%.1f%%" % per_threshold[t]["maxreg"] for t in _THRESHOLDS],
        " / ".join(_PAPER["Max. Reg."]),
    )
    table.add_note("sensitive benchmarks: %d of %d" % (len(sensitive), len(suite.benchmarks)))
    return table
