"""Table 5 — total compile times.

Paper values: base AMD 840 s; sequential ACO 1225 s (+45.8%); parallel ACO
967 s (+15.1%) — scheduling on the GPU cuts total compile time by 21%
relative to sequential ACO on the CPU. The production cycle threshold (21)
is applied, as in the paper's compile-time experiments.
"""

from __future__ import annotations

from .common import ExperimentContext, thresholded_compile_seconds
from .report import ExperimentTable


def run(context: ExperimentContext) -> ExperimentTable:
    threshold = 21
    base = context.run("baseline").total_seconds
    seq = thresholded_compile_seconds(context, context.run("sequential"), threshold)
    par = thresholded_compile_seconds(context, context.run("parallel"), threshold)

    table = ExperimentTable(
        title="Table 5: total compile times (scale=%s, cycle threshold=%d)"
        % (context.scale.name, threshold),
        headers=("Scheduler", "Measured (s)", "Overhead", "Paper"),
    )
    table.add_row("Base AMD", "%.3f" % base, "-", "840 s")
    table.add_row(
        "Sequential ACO",
        "%.3f" % seq,
        "+%.1f%%" % (100.0 * (seq - base) / base),
        "1225 s (+45.8%)",
    )
    table.add_row(
        "Parallel ACO",
        "%.3f" % par,
        "+%.1f%%" % (100.0 * (par - base) / base),
        "967 s (+15.1%)",
    )
    if seq > 0:
        table.add_note(
            "parallel vs sequential ACO: total compile time reduced by %.1f%% "
            "(paper: 21%%)" % (100.0 * (seq - par) / seq)
        )
    return table
