"""Table 6 — experimentation with optional stalls.

Large regions are rescheduled with the fraction of wavefronts allowed to
insert optional stalls swept over {0%, 25%, 50%, 75%}; 0% is the baseline.
Reported, per fraction: the increase in ACO scheduling time, the overall
improvement in final schedule length, and the max improvement on a region.

Paper values (vs. 0%): time +8.65% / +12.30% / +20.28%; overall length
improvement 0.27% / 0.30% / 0.95%; max improvement 15.75% / 15.75% /
23.58%. The paper picks 25% as the best time/quality balance.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..config import replace_params
from ..ddg.graph import DDG
from ..suite.rng import derive_seed
from .common import ExperimentContext
from .report import ExperimentTable

_FRACTIONS = (0.0, 0.25, 0.5, 0.75)
_PAPER_TIME = ("-", "8.65%", "12.30%", "20.28%")
_PAPER_LENGTH = ("-", "0.27%", "0.30%", "0.95%")
_PAPER_MAX = ("-", "15.75%", "15.75%", "23.58%")


def _sweep(context: ExperimentContext) -> Dict[float, List[Tuple[str, float, int]]]:
    """fraction -> [(region, pass2 seconds, final length)] on large regions."""
    par = context.run("parallel")
    floor = context.scale.large_region_floor
    suite_seed = context.suite.params.seed
    results: Dict[float, List[Tuple[str, float, int]]] = {f: [] for f in _FRACTIONS}
    for fraction in _FRACTIONS:
        gpu = replace_params(context.scale.gpu, stall_wavefront_fraction=fraction)
        scheduler = context.parallel_scheduler(gpu=gpu)
        for kernel_outcome in par.kernels:
            kernel = kernel_outcome.kernel
            for index, outcome in enumerate(kernel_outcome.regions):
                if outcome.size < floor or not outcome.pass2_processed:
                    continue
                seed = derive_seed(suite_seed, "schedule", kernel.name, index)
                result = scheduler.schedule(DDG(kernel.regions[index]), seed=seed)
                results[fraction].append(
                    (outcome.region_name, result.pass2.seconds, result.length)
                )
    return results


def run(context: ExperimentContext) -> ExperimentTable:
    sweep = _sweep(context)
    baseline = {name: (secs, length) for name, secs, length in sweep[0.0]}

    table = ExperimentTable(
        title="Table 6: experimentation with optional stalls "
        "(regions >= %d, scale=%s)" % (context.scale.large_region_floor, context.scale.name),
        headers=("Stat", "0%", "25%", "50%", "75%", "Paper (25/50/75)"),
    )
    time_cells, len_cells, max_cells = ["-"], ["-"], ["-"]
    for fraction in _FRACTIONS[1:]:
        base_time = base_len = frac_time = frac_len = 0.0
        best = 0.0
        for name, secs, length in sweep[fraction]:
            if name not in baseline:
                continue
            b_secs, b_len = baseline[name]
            base_time += b_secs
            base_len += b_len
            frac_time += secs
            frac_len += length
            if b_len > 0:
                best = max(best, 100.0 * (b_len - length) / b_len)
        time_cells.append(
            "%.2f%%" % (100.0 * (frac_time - base_time) / base_time) if base_time else "-"
        )
        len_cells.append(
            "%.2f%%" % (100.0 * (base_len - frac_len) / base_len) if base_len else "-"
        )
        max_cells.append("%.2f%%" % best)
    table.add_row("% increase in ACO time", *time_cells, " / ".join(_PAPER_TIME[1:]))
    table.add_row(
        "% improvement in schedule length", *len_cells, " / ".join(_PAPER_LENGTH[1:])
    )
    table.add_row(
        "Max. % improvement in schedule length", *max_cells, " / ".join(_PAPER_MAX[1:])
    )
    table.add_note("sample: %d large regions" % len(sweep[0.0]))
    return table
