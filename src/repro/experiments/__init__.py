"""The experiment harness: one module per paper table/figure.

Every experiment consumes a shared :class:`~repro.experiments.common.ExperimentContext`
(the suite compiled under each scheduler configuration, cached per scale)
and returns a :class:`~repro.experiments.report.ExperimentTable` whose rows
mirror the paper's. ``python -m repro <experiment>`` renders them; the
benchmarks under ``benchmarks/`` call the same entry points.
"""

from .common import ExperimentScale, ExperimentContext, get_context, SCALES
from .report import ExperimentTable

from . import table1, table2, table3, table4, table5, table6, table7, fig23, fig4

#: Registry: experiment id -> callable(context) -> ExperimentTable (or list).
EXPERIMENTS = {
    "table1": table1.run,
    "table2": table2.run,
    "table3": table3.run,
    "table4": table4.run,
    "table5": table5.run,
    "table6": table6.run,
    "table7": table7.run,
    "fig2": fig23.run_fig2,
    "fig3": fig23.run_fig3,
    "fig4": fig4.run,
}

__all__ = [
    "ExperimentScale",
    "ExperimentContext",
    "ExperimentTable",
    "get_context",
    "SCALES",
    "EXPERIMENTS",
]
