"""Tables 3.a / 3.b — parallel speedup over sequential ACO by size class.

Paper values (geomean / max / min speedup per size class):

* pass 1: [1-49] 2.07 / 5.69 / 0.63; [50-99] 7.44 / 12.69 / 3.30;
  [>=100] 12.48 / 27.19 / 5.66
* pass 2: [1-49] 1.99 / 8.25 / 0.45; [50-99] 4.80 / 13.03 / 1.08;
  [>=100] 7.55 / 17.37 / 4.10

Speedups are computed over *comparable regions* only (both algorithms took
the same number of iterations, Section VI-C).
"""

from __future__ import annotations

from typing import Dict, List

from ..config import SIZE_CLASS_LABELS, geometric_mean
from .common import ExperimentContext, SpeedupRecord
from .report import ExperimentTable

_PAPER = {
    1: {"geo": (2.07, 7.44, 12.48), "max": (5.69, 12.69, 27.19), "min": (0.63, 3.30, 5.66)},
    2: {"geo": (1.99, 4.80, 7.55), "max": (8.25, 13.03, 17.37), "min": (0.45, 1.08, 4.10)},
}


def _class_buckets(records: List[SpeedupRecord], pass_index: int):
    buckets: Dict[int, List[SpeedupRecord]] = {i: [] for i in range(len(SIZE_CLASS_LABELS))}
    for record in records:
        if record.pass_index == pass_index:
            buckets[record.size_class].append(record)
    return buckets


def _pass_table(
    context: ExperimentContext, records: List[SpeedupRecord], pass_index: int
) -> ExperimentTable:
    par = context.run("parallel")
    processed = {i: 0 for i in range(len(SIZE_CLASS_LABELS))}
    for _kernel, outcome in par.all_regions():
        is_processed = (
            outcome.pass1_processed if pass_index == 1 else outcome.pass2_processed
        )
        if is_processed:
            from ..config import size_class_index

            processed[size_class_index(outcome.size)] += 1
    buckets = _class_buckets(records, pass_index)

    suffix = "a" if pass_index == 1 else "b"
    table = ExperimentTable(
        title="Table 3.%s: parallel speedup in pass %d (scale=%s)"
        % (suffix, pass_index, context.scale.name),
        headers=("Stat",) + SIZE_CLASS_LABELS + ("Paper",),
    )
    paper = _PAPER[pass_index]

    def row(label, values, paper_values):
        table.add_row(
            label,
            *values,
            " / ".join(str(v) for v in paper_values),
        )

    row(
        "Regions processed by ACO",
        [processed[i] for i in range(3)],
        ("-", "-", "-"),
    )
    row("Comparable regions", [len(buckets[i]) for i in range(3)], ("-", "-", "-"))
    row(
        "Geometric mean speedup",
        [
            "%.2f" % geometric_mean([r.speedup for r in buckets[i]]) if buckets[i] else "-"
            for i in range(3)
        ],
        paper["geo"],
    )
    row(
        "Max. speedup",
        [
            "%.2f" % max(r.speedup for r in buckets[i]) if buckets[i] else "-"
            for i in range(3)
        ],
        paper["max"],
    )
    row(
        "Min. speedup",
        [
            "%.2f" % min(r.speedup for r in buckets[i]) if buckets[i] else "-"
            for i in range(3)
        ],
        paper["min"],
    )
    return table


def run(context: ExperimentContext) -> List[ExperimentTable]:
    records = context.speedup_records()
    return [
        _pass_table(context, records, 1),
        _pass_table(context, records, 2),
    ]
