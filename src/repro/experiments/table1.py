"""Table 1 — benchmark statistics.

Paper values: 341 benchmarks, 269 kernels, 181,883 regions; ACO processed
1,734 regions in pass 1 (avg size 68.3, max 1,176) and 12,192 in pass 2
(avg 40.2, max 2,223).
"""

from __future__ import annotations

from ..pipeline.stats import suite_statistics
from .common import ExperimentContext
from .report import ExperimentTable

_PAPER = {
    "Number of benchmarks": 341,
    "Number of kernels": 269,
    "Number of scheduling regions": "181,883",
    "Regions processed by ACO in pass 1": "1,734",
    "Regions processed by ACO in pass 2": "12,192",
    "Avg. processed region size in pass 1": 68.3,
    "Avg. processed region size in pass 2": 40.2,
    "Max. processed region size in pass 1": "1,176",
    "Max. processed region size in pass 2": "2,223",
}


def run(context: ExperimentContext) -> ExperimentTable:
    stats = suite_statistics(
        context.run("parallel"), len(context.suite.benchmarks)
    )
    table = ExperimentTable(
        title="Table 1: benchmark statistics (scale=%s)" % context.scale.name,
        headers=("Stat", "Measured", "Paper"),
    )
    measured = {
        "Number of benchmarks": stats.num_benchmarks,
        "Number of kernels": stats.num_kernels,
        "Number of scheduling regions": stats.num_regions,
        "Regions processed by ACO in pass 1": stats.pass1_regions,
        "Regions processed by ACO in pass 2": stats.pass2_regions,
        "Avg. processed region size in pass 1": round(stats.avg_pass1_size, 1),
        "Avg. processed region size in pass 2": round(stats.avg_pass2_size, 1),
        "Max. processed region size in pass 1": stats.max_pass1_size,
        "Max. processed region size in pass 2": stats.max_pass2_size,
    }
    for key, value in measured.items():
        table.add_row(key, value, _PAPER[key])
    table.add_note(
        "counts are proportionally smaller than the paper's full-scale suite; "
        "compare ratios (processed fraction, avg processed size), not counts"
    )
    return table
