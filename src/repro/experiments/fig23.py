"""Figures 2 / 3 — distribution of speedup ratios per size class.

The paper plots histograms of per-region parallel-over-sequential speedups
for pass 1 (Figure 2) and pass 2 (Figure 3). This renders the same
distributions as text histograms: one row per speedup bucket, one column
per size class.
"""

from __future__ import annotations

from ..config import SIZE_CLASS_LABELS
from .common import ExperimentContext
from .report import ExperimentTable

_BUCKETS = ((0.0, 1.0), (1.0, 2.0), (2.0, 4.0), (4.0, 8.0), (8.0, 16.0), (16.0, 32.0))


def _histogram(context: ExperimentContext, pass_index: int, title: str) -> ExperimentTable:
    records = [
        r for r in context.speedup_records() if r.pass_index == pass_index
    ]
    table = ExperimentTable(
        title="%s (scale=%s)" % (title, context.scale.name),
        headers=("Speedup",) + SIZE_CLASS_LABELS,
    )
    for low, high in _BUCKETS:
        counts = [0] * len(SIZE_CLASS_LABELS)
        for record in records:
            if low <= record.speedup < high:
                counts[record.size_class] += 1
        table.add_row("[%g, %g)" % (low, high), *counts)
    table.add_note(
        "paper shape: mass shifts to higher buckets as region size grows, "
        "and pass-2 mass sits lower than pass-1 mass (thread divergence)"
    )
    return table


def run_fig2(context: ExperimentContext) -> ExperimentTable:
    return _histogram(context, 1, "Figure 2: speedup distribution in the first pass")


def run_fig3(context: ExperimentContext) -> ExperimentTable:
    return _histogram(context, 2, "Figure 3: speedup distribution in the second pass")
