"""Shared experiment infrastructure.

An :class:`ExperimentScale` fixes the suite size, the region-size cap and
the parallel launch geometry. The paper's full scale (341 benchmarks,
181,883 regions, 180 blocks x 64 threads) would take days in a Python
simulation, so the default bench scale is a proportional reduction; the
`paper` column of every table records the published values for shape
comparison. The scale can be overridden with the ``REPRO_SCALE``
environment variable (``test`` / ``default`` / ``large``).

The expensive artifacts — the suite compiled under the baseline, the
sequential ACO, the parallel ACO and the CP heuristic — are computed once
per scale and cached in-process.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..aco.sequential import SequentialACOScheduler
from ..config import (
    ACOParams,
    FilterParams,
    GPUParams,
    SIZE_CLASS_LABELS,
    SuiteParams,
    size_class_index,
)
from ..heuristics.amd_max_occupancy import AMDMaxOccupancyScheduler
from ..heuristics.cp_scheduler import CriticalPathListScheduler
from ..machine.model import MachineModel
from ..machine.targets import amd_vega20
from ..parallel.scheduler import ParallelACOScheduler
from ..pipeline.compiler import CompilePipeline, CompileRun
from ..suite.rocprim import Suite, generate_suite
from ..telemetry import Telemetry, get_telemetry


@dataclass(frozen=True)
class ExperimentScale:
    """One experiment configuration (suite size + launch geometry)."""

    name: str
    suite: SuiteParams
    max_region_size: int
    gpu: GPUParams
    aco: ACOParams = field(default_factory=ACOParams)
    #: "Large region" floor for experiments the paper restricts to >= 100
    #: instructions (Tables 4.b column 3 and 6); scaled suites lower it.
    large_region_floor: int = 100


SCALES: Dict[str, ExperimentScale] = {
    "test": ExperimentScale(
        name="test",
        suite=SuiteParams(num_benchmarks=8, num_kernels=8, regions_per_kernel=3),
        max_region_size=90,
        gpu=GPUParams(blocks=3),
        large_region_floor=50,
    ),
    "default": ExperimentScale(
        name="default",
        suite=SuiteParams(num_benchmarks=48, num_kernels=24, regions_per_kernel=6),
        max_region_size=300,
        gpu=GPUParams(blocks=8),
        large_region_floor=100,
    ),
    "large": ExperimentScale(
        name="large",
        suite=SuiteParams(num_benchmarks=96, num_kernels=48, regions_per_kernel=8),
        max_region_size=600,
        gpu=GPUParams(blocks=30),
        large_region_floor=100,
    ),
}


def scale_from_env(default: str = "default") -> ExperimentScale:
    # Documented gateway: the scale name is echoed into every artifact, so
    # the hidden input is recorded rather than silent.
    name = os.environ.get("REPRO_SCALE", default)  # repro: noqa[DET-003]
    try:
        return SCALES[name]
    except KeyError:
        raise ValueError(
            "unknown REPRO_SCALE %r (choose from %s)" % (name, ", ".join(SCALES))
        ) from None


@dataclass
class SpeedupRecord:
    """One comparable region's sequential-vs-parallel timing (Table 3)."""

    region_name: str
    size: int
    pass_index: int  # 1 or 2
    seq_seconds: float
    par_seconds: float
    iterations: int

    @property
    def speedup(self) -> float:
        return self.seq_seconds / self.par_seconds

    @property
    def size_class(self) -> int:
        return size_class_index(self.size)


class ExperimentContext:
    """Lazily-computed shared artifacts for one scale.

    ``telemetry`` is the observability hook: pass an instance (e.g. one
    with a JSONL sink) and every compile run, scheduler pass and simulated
    kernel launch the context triggers reports through it; leave it None
    to follow the process-wide telemetry (see
    :func:`repro.telemetry.set_telemetry`), which is inert by default.
    """

    def __init__(
        self,
        scale: ExperimentScale,
        machine: Optional[MachineModel] = None,
        telemetry: Optional[Telemetry] = None,
    ):
        self.scale = scale
        self.machine = machine or amd_vega20()
        self.filters_for_stats = FilterParams(cycle_threshold=0)
        self._telemetry = telemetry
        self._suite: Optional[Suite] = None
        self._runs: Dict[str, CompileRun] = {}

    @property
    def telemetry(self) -> Telemetry:
        """The injected telemetry, or the process-wide one (resolved late)."""
        return self._telemetry if self._telemetry is not None else get_telemetry()

    # -- building blocks -------------------------------------------------------

    @property
    def suite(self) -> Suite:
        if self._suite is None:
            self._suite = generate_suite(
                self.scale.suite, max_region_size=self.scale.max_region_size
            )
        return self._suite

    def baseline_scheduler(self) -> AMDMaxOccupancyScheduler:
        return AMDMaxOccupancyScheduler(self.machine)

    def sequential_scheduler(self) -> SequentialACOScheduler:
        return SequentialACOScheduler(
            self.machine, params=self.scale.aco, telemetry=self._telemetry
        )

    def parallel_scheduler(
        self, gpu: Optional[GPUParams] = None
    ) -> ParallelACOScheduler:
        return ParallelACOScheduler(
            self.machine,
            params=self.scale.aco,
            gpu_params=gpu or self.scale.gpu,
            telemetry=self._telemetry,
        )

    def _pipeline(self, kind: str, filters: FilterParams) -> CompilePipeline:
        if kind == "baseline":
            scheduler = None
            baseline = self.baseline_scheduler()
        elif kind == "cp":
            scheduler = None
            baseline = CriticalPathListScheduler(self.machine)
        elif kind == "sequential":
            scheduler = self.sequential_scheduler()
            baseline = self.baseline_scheduler()
        elif kind == "parallel":
            scheduler = self.parallel_scheduler()
            baseline = self.baseline_scheduler()
        else:
            raise ValueError("unknown run kind %r" % kind)
        return CompilePipeline(
            self.machine,
            scheduler=scheduler,
            filters=filters,
            baseline=baseline,
            telemetry=self._telemetry,
        )

    def run(self, kind: str, cycle_threshold: Optional[int] = None) -> CompileRun:
        """The suite compiled under one scheduler configuration (cached)."""
        threshold = (
            self.filters_for_stats.cycle_threshold
            if cycle_threshold is None
            else cycle_threshold
        )
        key = "%s@%d" % (kind, threshold)
        if key not in self._runs:
            filters = FilterParams(cycle_threshold=threshold)
            self._runs[key] = self._pipeline(kind, filters).compile_suite(self.suite)
        return self._runs[key]

    def computed_runs(self) -> Dict[str, CompileRun]:
        """Snapshot of the compile runs computed so far (``kind@threshold``
        keys). The bench harness reads it to reconcile profiled seconds
        against the runs that actually executed."""
        return dict(self._runs)

    # -- derived data ----------------------------------------------------------

    def speedup_records(self) -> List[SpeedupRecord]:
        """Per-region, per-pass speedups over *comparable* regions.

        Comparable (Section VI-C): both algorithms processed the region in
        the same pass with the same number of iterations.
        """
        seq = self.run("sequential")
        par = self.run("parallel")
        records: List[SpeedupRecord] = []
        seq_by_name = {o.region_name: o for _k, o in seq.all_regions()}
        for _kernel, par_outcome in par.all_regions():
            seq_outcome = seq_by_name.get(par_outcome.region_name)
            if seq_outcome is None:
                continue
            for pass_index in (1, 2):
                sp = seq_outcome.pass1 if pass_index == 1 else seq_outcome.pass2
                pp = par_outcome.pass1 if pass_index == 1 else par_outcome.pass2
                if sp is None or pp is None or not (sp.invoked and pp.invoked):
                    continue
                if sp.iterations != pp.iterations or pp.seconds <= 0:
                    continue
                records.append(
                    SpeedupRecord(
                        region_name=par_outcome.region_name,
                        size=par_outcome.size,
                        pass_index=pass_index,
                        seq_seconds=sp.seconds,
                        par_seconds=pp.seconds,
                        iterations=pp.iterations,
                    )
                )
        return records

    def processed_regions(self):
        """(kernel, outcome) pairs whose regions the parallel run ACO'd."""
        par = self.run("parallel")
        for kernel, outcome in par.all_regions():
            if outcome.aco_invoked:
                yield kernel, outcome


def threshold_pick(context: ExperimentContext, threshold: int):
    """A region-outcome picker that re-applies a cycle threshold post hoc.

    A region compiled with threshold 0 recorded both its heuristic and its
    ACO schedules; under a larger threshold, ACO simply would not have been
    invoked on regions whose length gap is within the threshold (and whose
    heuristic pressure is at the RP lower bound), so the build ships the
    heuristic schedule there. This makes the Table 7 sweep a cheap
    post-processing of one compile run instead of six recompilations.
    """
    from ..rp.cost import rp_cost_lower_bound

    machine = context.machine

    def invoked(outcome) -> bool:
        if not outcome.aco_invoked:
            return False
        rp_room = outcome.heuristic.rp_cost > rp_cost_lower_bound(
            outcome.bounds, machine
        )
        return rp_room or outcome.length_gap > threshold

    def pick(outcome):
        return outcome.final if invoked(outcome) else outcome.heuristic

    return pick, invoked


def thresholded_compile_seconds(
    context: ExperimentContext, run: CompileRun, threshold: int
) -> float:
    """Total compile time under a post-hoc cycle threshold."""
    from ..timing import DEFAULT_COMPILE_TIME

    _pick, invoked = threshold_pick(context, threshold)
    total = run.base_seconds
    for _kernel, outcome in run.all_regions():
        total += DEFAULT_COMPILE_TIME.heuristic_seconds(outcome.size)
        if invoked(outcome):
            total += outcome.aco_seconds
    return total


_CONTEXTS: Dict[Tuple[str, int], ExperimentContext] = {}


def get_context(scale: Optional[ExperimentScale] = None) -> ExperimentContext:
    """The process-wide cached context for ``scale`` (env-selected default)."""
    scale = scale or scale_from_env()
    key = (scale.name, scale.suite.seed)
    if key not in _CONTEXTS:
        _CONTEXTS[key] = ExperimentContext(scale)
    return _CONTEXTS[key]


#: Re-export for the experiment modules.
LABELS = SIZE_CLASS_LABELS
