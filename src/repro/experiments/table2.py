"""Table 2 — improvement of ACO relative to the AMD scheduler.

Paper values: overall occupancy +0.66% (max +300% on a kernel), overall
schedule length -5.52% (max -78.52% on a region).
"""

from __future__ import annotations

from ..pipeline.stats import improvement_statistics
from .common import ExperimentContext
from .report import ExperimentTable


def run(context: ExperimentContext) -> ExperimentTable:
    stats = improvement_statistics(context.run("parallel"))
    table = ExperimentTable(
        title="Table 2: improvement of ACO relative to AMD scheduler (scale=%s)"
        % context.scale.name,
        headers=("Stat", "Measured", "Paper"),
    )
    table.add_row("Regions processed by ACO in pass 1", stats.pass1_regions, "1,734")
    table.add_row("Regions processed by ACO in pass 2", stats.pass2_regions, "12,192")
    table.add_row(
        "Overall occupancy increase",
        "%.2f%%" % stats.overall_occupancy_increase_pct,
        "0.66%",
    )
    table.add_row(
        "Max. occupancy increase in any kernel",
        "%.2f%%" % stats.max_occupancy_increase_pct,
        "300.00%",
    )
    table.add_row(
        "Overall schedule length reduction",
        "%.2f%%" % stats.overall_length_reduction_pct,
        "5.52%",
    )
    table.add_row(
        "Max. schedule length reduction",
        "%.2f%%" % stats.max_length_reduction_pct,
        "78.52%",
    )
    return table
