"""Plain-text table rendering for the experiment harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence


def _format_cell(value) -> str:
    if isinstance(value, float):
        return "%.2f" % value
    return str(value)


@dataclass
class ExperimentTable:
    """A rendered experiment: title, column headers, rows, and notes.

    ``paper`` rows (optional) carry the published numbers for side-by-side
    comparison in EXPERIMENTS.md.
    """

    title: str
    headers: Sequence[str]
    rows: List[Sequence[object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *cells) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                "row has %d cells for %d headers" % (len(cells), len(self.headers))
            )
        self.rows.append(tuple(cells))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def to_csv(self) -> str:
        """Serialize as CSV (the paper's artifact emits spreadsheets).

        The title and notes become ``#`` comment lines.
        """
        import csv
        import io

        buffer = io.StringIO()
        buffer.write("# %s\n" % self.title)
        writer = csv.writer(buffer)
        writer.writerow([_format_cell(h) for h in self.headers])
        for row in self.rows:
            writer.writerow([_format_cell(c) for c in row])
        for note in self.notes:
            buffer.write("# note: %s\n" % note)
        return buffer.getvalue()

    def csv_filename(self) -> str:
        """A filesystem-safe name derived from the title."""
        import re

        stem = self.title.split("(")[0].strip().lower()
        stem = re.sub(r"[^a-z0-9]+", "_", stem).strip("_")
        return stem + ".csv"

    def render(self) -> str:
        cells = [[_format_cell(h) for h in self.headers]] + [
            [_format_cell(c) for c in row] for row in self.rows
        ]
        widths = [max(len(row[i]) for row in cells) for i in range(len(self.headers))]
        lines = [self.title, "=" * len(self.title)]
        header, *body = cells
        lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in body:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append("note: " + note)
        return "\n".join(lines) + "\n"

    def __str__(self) -> str:
        return self.render()
