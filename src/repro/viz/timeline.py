"""Plain-text schedule timelines and pressure sparklines."""

from __future__ import annotations

from typing import Optional

from ..ir.registers import RegisterClass
from ..rp.liveness import pressure_profile
from ..schedule.schedule import Schedule

_SPARK_LEVELS = " .:-=+*#%@"


def schedule_timeline(schedule: Schedule, width: int = 72) -> str:
    """A one-row-per-instruction timeline (a text Gantt chart).

    ``#`` marks the issue cycle, ``-`` the latency shadow (cycles until the
    result is available), ``.`` idle cycles.
    """
    region = schedule.region
    length = schedule.length
    scale = max(1, -(-length // width))  # ceil division: cycles per column
    columns = -(-length // scale)
    lines = ["%s (length %d, %d cycle(s)/column)" % (region.name, length, scale)]
    for index in schedule.order:
        inst = region[index]
        start = schedule.cycles[index]
        shadow_end = min(length, start + max(1, inst.latency))
        row = []
        for col in range(columns):
            lo, hi = col * scale, (col + 1) * scale
            if lo <= start < hi:
                row.append("#")
            elif start < hi and lo < shadow_end:
                row.append("-")
            else:
                row.append(".")
        lines.append("%-8s |%s|" % (inst.label[:8], "".join(row)))
    return "\n".join(lines) + "\n"


def pressure_sparkline(
    schedule: Schedule, reg_class: Optional[RegisterClass] = None, width: int = 72
) -> str:
    """A sparkline of register pressure across the schedule's issue slots."""
    profile = pressure_profile(schedule)
    if reg_class is None:
        # Default: the class with the highest peak.
        reg_class = max(profile, key=lambda cls: max(profile[cls], default=0))
    values = profile[reg_class]
    if not values:
        return "(empty)\n"
    peak = max(values)
    scale_note = ""
    if len(values) > width:
        # Downsample by taking per-bucket maxima (peaks must stay visible).
        bucket = -(-len(values) // width)
        values = [
            max(values[i : i + bucket]) for i in range(0, len(values), bucket)
        ]
        scale_note = ", %d slot(s)/char" % bucket
    chars = []
    for value in values:
        level = 0 if peak == 0 else round(value / peak * (len(_SPARK_LEVELS) - 1))
        chars.append(_SPARK_LEVELS[level])
    return "%s pressure [peak %d%s]: |%s|\n" % (
        reg_class.name,
        peak,
        scale_note,
        "".join(chars),
    )


def compare_schedules(
    baseline: Schedule, candidate: Schedule, names=("baseline", "candidate")
) -> str:
    """Side-by-side summary of two schedules of the same region."""
    if baseline.region != candidate.region:
        raise ValueError("schedules belong to different regions")
    from ..rp.liveness import peak_pressure

    rows = []
    base_peak = peak_pressure(baseline)
    cand_peak = peak_pressure(candidate)
    rows.append(("length", baseline.length, candidate.length))
    rows.append(("stalls", baseline.num_stalls, candidate.num_stalls))
    for cls in sorted(set(base_peak) | set(cand_peak)):
        rows.append(
            ("%s peak" % cls.name, base_peak.get(cls, 0), cand_peak.get(cls, 0))
        )
    width = max(len(r[0]) for r in rows)
    lines = [
        "%s  %10s  %10s" % ("".ljust(width), names[0][:10], names[1][:10]),
    ]
    for label, a, b in rows:
        marker = "" if a == b else ("  (-)" if b < a else "  (+)")
        lines.append("%s  %10s  %10s%s" % (label.ljust(width), a, b, marker))
    return "\n".join(lines) + "\n"
