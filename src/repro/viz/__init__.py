"""Inspection tooling: DOT export, schedule timelines, pressure sparklines.

Nothing here affects scheduling; these helpers exist for debugging regions
and presenting results (the examples use them, and downstream users get a
quick way to *see* a DDG or a schedule).
"""

from .convergence import convergence_curve, convergence_series
from .dot import ddg_to_dot
from .timeline import schedule_timeline, pressure_sparkline, compare_schedules

__all__ = [
    "convergence_curve",
    "convergence_series",
    "ddg_to_dot",
    "schedule_timeline",
    "pressure_sparkline",
    "compare_schedules",
]
