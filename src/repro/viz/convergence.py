"""Convergence curves (cost vs. iteration) from telemetry traces.

The telemetry layer records one ``iteration`` event per ACO iteration
(see :mod:`repro.telemetry.schema`); this module turns a recorded JSONL
trace back into the plot a tuning session wants: how fast the colony's
best cost fell, per region and pass. Plain text like the rest of
:mod:`repro.viz` — nothing here needs a plotting library.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple, Union

from ..errors import TelemetryError
from ..telemetry.schema import read_trace, validate_event

TraceSource = Union[str, Iterable[Dict]]


def convergence_series(
    source: TraceSource,
    region: Optional[str] = None,
    pass_index: Optional[int] = None,
) -> Dict[Tuple[str, int], List[Dict]]:
    """Per-(region, pass) iteration events of a trace, in recorded order.

    ``source`` is a JSONL trace path or an iterable of already-parsed
    records; ``region`` / ``pass_index`` filter the result. Each value is
    the list of ``iteration`` event records (``winner_cost`` is None for
    iterations where every ant died).
    """
    if isinstance(source, str):
        records = read_trace(source)
    else:
        records = list(source)
        for record in records:
            validate_event(record)

    series: Dict[Tuple[str, int], List[Dict]] = {}
    for record in records:
        if record["event"] != "iteration":
            continue
        if region is not None and record["region"] != region:
            continue
        if pass_index is not None and record["pass_index"] != pass_index:
            continue
        series.setdefault((record["region"], record["pass_index"]), []).append(record)
    return series


def _render_one(region: str, pass_index: int, events: List[Dict], width: int, height: int) -> str:
    """One curve: ``*`` = iteration winner, ``o`` = best-so-far, ``x`` = dead."""
    winners = [e["winner_cost"] for e in events]
    bests = [e["best_cost"] for e in events]
    finite = [v for v in winners if v is not None] + bests
    lo, hi = min(finite), max(finite)
    span = hi - lo

    iterations = len(events)
    columns = min(iterations, width)
    # Nearest-sample downsampling keeps the first and last iteration.
    picks = [
        (i * (iterations - 1)) // (columns - 1) if columns > 1 else 0
        for i in range(columns)
    ]

    def row_of(value: Optional[float]) -> Optional[int]:
        if value is None:
            return None
        if span == 0:
            return height - 1
        return int(round((value - lo) / span * (height - 1)))

    grid = [[" "] * columns for _ in range(height)]
    for col, i in enumerate(picks):
        best_row = row_of(bests[i])
        if best_row is not None:
            grid[best_row][col] = "o"
        winner_row = row_of(winners[i])
        if winner_row is None:
            grid[height - 1][col] = "x"  # dead iteration: off the top
        elif grid[winner_row][col] == " ":
            grid[winner_row][col] = "*"

    lines = [
        "%s pass %d: %d iteration(s), best %g -> %g"
        % (region, pass_index, iterations, bests[0], bests[-1])
    ]
    for row in range(height - 1, -1, -1):
        value = lo + span * row / (height - 1) if height > 1 else lo
        lines.append("%10.4g |%s|" % (value, "".join(grid[row])))
    lines.append("%10s +%s+" % ("", "-" * columns))
    lines.append(
        "%10s  iteration 0..%d   (* winner, o best-so-far, x all ants dead)"
        % ("", iterations - 1)
    )
    return "\n".join(lines)


def convergence_curve(
    source: TraceSource,
    region: Optional[str] = None,
    pass_index: Optional[int] = None,
    width: int = 60,
    height: int = 12,
) -> str:
    """Render cost-vs-iteration curves from a recorded trace.

    One text plot per (region, pass) pair that survives the ``region`` /
    ``pass_index`` filters. Raises :class:`TelemetryError` when the trace
    holds no matching iteration events (an unfiltered trace with no ACO
    invocations, or a filter that matches nothing).
    """
    series = convergence_series(source, region=region, pass_index=pass_index)
    if not series:
        raise TelemetryError(
            "no iteration events match (region=%r, pass_index=%r)"
            % (region, pass_index)
        )
    plots = [
        _render_one(name, index, events, width, height)
        for (name, index), events in sorted(series.items())
    ]
    return "\n\n".join(plots) + "\n"
