"""Graphviz DOT export of dependence graphs.

The output renders with ``dot -Tpng``: nodes show the instruction label,
opcode and Def set; edge labels show latencies; edge style distinguishes
flow (solid), anti (dashed) and output (dotted) dependences; critical-path
nodes are highlighted.
"""

from __future__ import annotations

from ..ddg.analysis import critical_path_info
from ..ddg.graph import DDG, DepKind

_EDGE_STYLE = {
    DepKind.FLOW: "solid",
    DepKind.ANTI: "dashed",
    DepKind.OUTPUT: "dotted",
}


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def ddg_to_dot(ddg: DDG, highlight_critical_path: bool = True) -> str:
    """Serialize ``ddg`` to Graphviz DOT."""
    info = critical_path_info(ddg) if highlight_critical_path else None
    lines = [
        'digraph "%s" {' % _escape(ddg.region.name),
        "  rankdir=TB;",
        '  node [shape=box, fontname="monospace"];',
    ]
    for inst in ddg.region:
        label = "%s\\n%s" % (inst.label, inst.op.name)
        if inst.defs:
            label += "\\ndefs: " + ",".join(str(r) for r in inst.defs)
        attrs = ['label="%s"' % _escape(label).replace("\\\\n", "\\n")]
        if info is not None and info.is_on_critical_path(inst.index):
            attrs.append("style=filled")
            attrs.append('fillcolor="lightcoral"')
        lines.append("  n%d [%s];" % (inst.index, ", ".join(attrs)))
    for edge in ddg.edges:
        lines.append(
            '  n%d -> n%d [label="%d", style=%s];'
            % (edge.src, edge.dst, edge.latency, _EDGE_STYLE[edge.kind])
        )
    lines.append("}")
    return "\n".join(lines) + "\n"
