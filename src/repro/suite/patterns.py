"""Region generators shaped like GPU-kernel basic blocks.

Two layers:

* :func:`random_region` — a knob-driven generic generator: a stream of
  loads / ALU ops / stores whose operand choices are controlled by a
  locality window and a chaining bias. Most patterns are presets of these
  knobs.
* Structured generators for the shapes that matter most to the RP/ILP
  trade-off and cannot be faked with knobs: reduction trees (a wide load
  front followed by a narrowing combine tree — the classic pressure spike),
  accumulator tiles (registers pinned live across the whole region) and
  sorting networks (balanced compare/exchange rounds).

All generators are deterministic in the provided RNG and produce regions of
exactly the requested size.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from ..ir.builder import RegionBuilder
from ..ir.block import SchedulingRegion
from ..ir.registers import SGPR, VGPR, VirtualRegister

_LOAD_OPS = ["global_load", "buffer_load", "flat_load", "ds_read", "s_load_dword"]
_ALU_OPS = ["v_add", "v_mul_lo", "v_and", "v_xor", "v_min", "v_max", "v_add_f32",
            "v_mul_f32", "v_fma_f32", "v_lshl", "v_cndmask"]
_TRANS_OPS = ["v_rcp_f32", "v_sqrt_f32", "v_exp_f32"]
_STORE_OPS = ["global_store", "buffer_store", "ds_write"]
_SALU_OPS = ["s_add", "s_and", "s_lshl", "s_cselect"]


@dataclass(frozen=True)
class RegionShape:
    """Knobs of the generic generator."""

    #: Fraction of instructions that are loads (define, no register uses).
    load_fraction: float = 0.3
    #: Fraction that are stores (use, no defs).
    store_fraction: float = 0.12
    #: Probability an ALU op consumes the immediately preceding def
    #: (serialization: high values produce scan-like low-ILP chains).
    chain_bias: float = 0.4
    #: Operand locality: how many recent defs operands are drawn from.
    #: Wide windows stretch live ranges and raise pressure.
    reuse_window: int = 8
    #: Fraction of defs placed in SGPRs instead of VGPRs.
    sgpr_fraction: float = 0.1
    #: Fraction of ALU ops that are long-latency transcendentals.
    trans_fraction: float = 0.08
    #: How many of the final defs are live-out (results of the block).
    live_out_defs: int = 2


def random_region(
    rng: random.Random, size: int, shape: RegionShape = RegionShape(), name: str = "region"
) -> SchedulingRegion:
    """Generate a well-formed region of exactly ``size`` instructions."""
    if size < 1:
        raise ValueError("size must be >= 1")
    builder = RegionBuilder(name)
    next_vreg = [0]
    next_sreg = [0]
    defs_pool: List[VirtualRegister] = []  # in definition order

    def new_reg() -> VirtualRegister:
        if rng.random() < shape.sgpr_fraction:
            reg = VirtualRegister(SGPR, next_sreg[0])
            next_sreg[0] += 1
        else:
            reg = VirtualRegister(VGPR, next_vreg[0])
            next_vreg[0] += 1
        return reg

    def pick_operand() -> VirtualRegister:
        if rng.random() < shape.chain_bias:
            return defs_pool[-1]
        window = defs_pool[-shape.reuse_window:]
        return rng.choice(window)

    for index in range(size):
        can_consume = bool(defs_pool)
        roll = rng.random()
        is_last = index == size - 1
        if not can_consume or roll < shape.load_fraction:
            reg = new_reg()
            op = "s_load_dword" if reg.reg_class is SGPR else rng.choice(_LOAD_OPS[:4])
            builder.inst(op, defs=[reg])
            defs_pool.append(reg)
        elif roll < shape.load_fraction + shape.store_fraction or (
            is_last and rng.random() < 0.5
        ):
            operands = {pick_operand()}
            if len(defs_pool) > 1 and rng.random() < 0.5:
                operands.add(pick_operand())
            builder.inst(rng.choice(_STORE_OPS), uses=sorted(operands))
        else:
            operands = {pick_operand()}
            if len(defs_pool) > 1 and rng.random() < 0.75:
                operands.add(pick_operand())
            reg = new_reg()
            if reg.reg_class is SGPR:
                op = rng.choice(_SALU_OPS)
            elif rng.random() < shape.trans_fraction:
                op = rng.choice(_TRANS_OPS)
            else:
                op = rng.choice(_ALU_OPS)
            builder.inst(op, defs=[reg], uses=sorted(operands))
            defs_pool.append(reg)

    for reg in defs_pool[-shape.live_out_defs:]:
        builder.live_out(reg)
    return builder.build()


# -- structured generators ----------------------------------------------------


def reduction_region(rng: random.Random, size: int, name: str) -> SchedulingRegion:
    """A load front feeding a pairwise combine tree (reduce/scan front end).

    Scheduling all loads first maximizes ILP but spikes register pressure to
    the front width; interleaving combines with loads keeps pressure flat —
    exactly the trade-off the RP pass must navigate.
    """
    builder = RegionBuilder(name)
    # Leave room for the tree: k loads need k-1 combines (2k-1 total).
    loads = max(2, (size + 1) // 2)
    values: List[VirtualRegister] = []
    next_id = 0
    budget = size
    for _ in range(loads):
        if budget <= len(values):  # keep room to combine what we have
            break
        reg = VirtualRegister(VGPR, next_id)
        next_id += 1
        builder.inst(rng.choice(_LOAD_OPS[:3]), defs=[reg])
        values.append(reg)
        budget -= 1
    while budget > 0 and len(values) > 1:
        a = values.pop(rng.randrange(len(values)))
        b = values.pop(rng.randrange(len(values)))
        reg = VirtualRegister(VGPR, next_id)
        next_id += 1
        builder.inst(rng.choice(["v_add_f32", "v_max", "v_add"]), defs=[reg], uses=[a, b])
        values.append(reg)
        budget -= 1
    while budget > 0:  # degenerate sizes: pad with dependent ops
        src = values[-1]
        reg = VirtualRegister(VGPR, next_id)
        next_id += 1
        builder.inst("v_add", defs=[reg], uses=[src])
        values[-1] = reg
        budget -= 1
    builder.live_out(values[-1])
    return builder.build()


def accumulator_tile_region(rng: random.Random, size: int, name: str) -> SchedulingRegion:
    """An unrolled GEMM-style tile: accumulators pinned live to the end.

    ``acc`` registers are defined up front, repeatedly FMA'd with freshly
    loaded operand pairs, and all live-out: the accumulators set a pressure
    floor and the load pairs decide the peak above it.
    """
    num_accs = max(1, min(8, size // 6))
    builder = RegionBuilder(name)
    next_id = 0

    def fresh() -> VirtualRegister:
        nonlocal next_id
        reg = VirtualRegister(VGPR, next_id)
        next_id += 1
        return reg

    accs = []
    budget = size
    for _ in range(num_accs):
        if budget <= 0:
            break
        reg = fresh()
        builder.inst("v_mov", defs=[reg])
        accs.append(reg)
        budget -= 1
    while budget >= 3 and accs:
        a, b = fresh(), fresh()
        builder.inst(rng.choice(_LOAD_OPS[:3]), defs=[a])
        builder.inst(rng.choice(_LOAD_OPS[:3]), defs=[b])
        slot = rng.randrange(len(accs))
        acc_new = fresh()
        builder.inst("v_fma_f32", defs=[acc_new], uses=sorted([a, b, accs[slot]]))
        accs[slot] = acc_new
        budget -= 3
    while budget > 0 and accs:
        slot = rng.randrange(len(accs))
        acc_new = fresh()
        builder.inst("v_add_f32", defs=[acc_new], uses=[accs[slot]])
        accs[slot] = acc_new
        budget -= 1
    for reg in accs:
        builder.live_out(reg)
    return builder.build()


def sort_network_region(rng: random.Random, size: int, name: str) -> SchedulingRegion:
    """Rounds of compare/exchange pairs over a working set (bitonic sort)."""
    lanes = max(2, min(16, size // 4))
    builder = RegionBuilder(name)
    next_id = 0

    def fresh() -> VirtualRegister:
        nonlocal next_id
        reg = VirtualRegister(VGPR, next_id)
        next_id += 1
        return reg

    regs = []
    budget = size
    for _ in range(lanes):
        if budget <= 0:
            break
        reg = fresh()
        builder.inst(rng.choice(_LOAD_OPS[:3]), defs=[reg])
        regs.append(reg)
        budget -= 1
    while budget >= 2 and len(regs) >= 2:
        i, j = rng.sample(range(len(regs)), 2)
        lo, hi = fresh(), fresh()
        builder.inst("v_min", defs=[lo], uses=sorted([regs[i], regs[j]]))
        builder.inst("v_max", defs=[hi], uses=sorted([regs[i], regs[j]]))
        regs[i], regs[j] = lo, hi
        budget -= 2
    while budget > 0:
        reg = fresh()
        builder.inst("v_add", defs=[reg], uses=[regs[0]])
        regs[0] = reg
        budget -= 1
    for reg in regs[: min(4, len(regs))]:
        builder.live_out(reg)
    return builder.build()


# -- the pattern registry -----------------------------------------------------

_KNOB_PATTERNS: Dict[str, RegionShape] = {
    # transform/for_each: parallel short chains, stores at the ends.
    "transform": RegionShape(load_fraction=0.30, store_fraction=0.18, chain_bias=0.55,
                             reuse_window=5, trans_fraction=0.10),
    # inclusive/exclusive scan inner block: long dependent chain.
    "scan": RegionShape(load_fraction=0.15, store_fraction=0.10, chain_bias=0.9,
                        reuse_window=3, trans_fraction=0.02),
    # stencil-ish gather: wide reuse windows stretch live ranges.
    "stencil": RegionShape(load_fraction=0.35, store_fraction=0.10, chain_bias=0.2,
                           reuse_window=20, trans_fraction=0.05, live_out_defs=3),
    # histogram/binning: loads, bit ops, LDS traffic.
    "histogram": RegionShape(load_fraction=0.32, store_fraction=0.25, chain_bias=0.35,
                             reuse_window=6, sgpr_fraction=0.2),
    # select/partition: balanced mix with scalar control values.
    "select": RegionShape(load_fraction=0.28, store_fraction=0.15, chain_bias=0.45,
                          reuse_window=8, sgpr_fraction=0.25),
}

_STRUCTURED_PATTERNS: Dict[str, Callable[[random.Random, int, str], SchedulingRegion]] = {
    "reduce": reduction_region,
    "gemm_tile": accumulator_tile_region,
    "sort": sort_network_region,
}

#: All pattern names, in a stable order (kernels rotate through these).
PATTERN_NAMES: Tuple[str, ...] = tuple(
    sorted(tuple(_KNOB_PATTERNS) + tuple(_STRUCTURED_PATTERNS))
)


def pattern_region(
    pattern: str, rng: random.Random, size: int, name: str = ""
) -> SchedulingRegion:
    """Generate one region of the named pattern."""
    name = name or ("%s_%d" % (pattern, size))
    if pattern in _STRUCTURED_PATTERNS:
        return _STRUCTURED_PATTERNS[pattern](rng, size, name)
    try:
        shape = _KNOB_PATTERNS[pattern]
    except KeyError:
        raise ValueError("unknown pattern %r (known: %s)" % (pattern, ", ".join(PATTERN_NAMES)))
    return random_region(rng, size, shape, name)
