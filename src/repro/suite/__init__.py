"""The synthetic rocPRIM-like benchmark suite.

The paper evaluates on 341 scheduling-sensitive rocPRIM benchmarks built
from 269 kernels with 181,883 scheduling regions (Table 1). This package
generates a structurally similar synthetic suite: kernels drawn from the
algorithmic patterns rocPRIM is made of (reduce, scan, transform, sort,
histogram, select), each contributing scheduling regions whose sizes follow
the paper's heavy-tailed distribution and whose dependence/register
structure exercises the same scheduling trade-offs (wide load fronts that
spike pressure, serial scan chains that starve ILP, accumulator tiles that
pin registers).
"""

from .patterns import (
    RegionShape,
    random_region,
    pattern_region,
    PATTERN_NAMES,
)
from .hostile import (
    HOSTILE_DEFAULT_SIZES,
    HOSTILE_FAMILIES,
    HOSTILE_NAMES,
    hostile_region,
    region_fingerprint,
)
from .rocprim import KernelSpec, BenchmarkSpec, Suite, generate_suite

__all__ = [
    "RegionShape",
    "random_region",
    "pattern_region",
    "PATTERN_NAMES",
    "HOSTILE_DEFAULT_SIZES",
    "HOSTILE_FAMILIES",
    "HOSTILE_NAMES",
    "hostile_region",
    "region_fingerprint",
    "KernelSpec",
    "BenchmarkSpec",
    "Suite",
    "generate_suite",
]
