"""Adversarial miner: search for regions where ACO loses to the heuristic.

The pipeline's bet (Section III) is that ACO pays off on the regions the
invocation filter selects. This miner hunts the counterexamples: seeds of
the hostile generators (:mod:`repro.suite.hostile`) where the two-pass ACO
search ends *no better in pressure and strictly worse in length* than the
AMD max-occupancy list scheduler it is supposed to beat. Every hit is
minimized (smallest region size that still loses, same seed) and archived
as a self-contained JSON reproducer — the textual IR travels with the
metadata, so the regression suite replays the exact region even after the
generators change.

Run it::

    python -m repro.suite.adversarial --seeds 20 --out tests/data/adversarial

The search is budgeted and fully deterministic: same arguments, same
reproducers, byte for byte.
"""

from __future__ import annotations

import argparse
import json
import os
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence

# Deliberate harness edges: the miner *drives* the schedulers over
# suite-generated regions, so it reaches up into the engine stack. The
# generator modules (.hostile, .patterns) stay engine-free, and no cycle
# can form — the contract forbids every imported head from importing
# suite back.
from ..aco.sequential import SequentialACOScheduler  # repro: noqa[LAY-401]
from ..config import ACOParams
from ..ddg import DDG  # repro: noqa[LAY-401]
from ..heuristics.amd_max_occupancy import AMDMaxOccupancyScheduler  # repro: noqa[LAY-401]
from ..ir import format_region, parse_region
from ..ir.block import SchedulingRegion
from ..machine import amd_vega20
from ..machine.model import MachineModel
from ..rp.cost import evaluate_schedule  # repro: noqa[LAY-401]
from .hostile import HOSTILE_FAMILIES, HOSTILE_NAMES, hostile_region, region_fingerprint
from .patterns import PATTERN_NAMES, pattern_region

#: Families the miner sweeps by default: the hostile families (minus
#: ``giant`` — its charter size makes per-seed ACO runs too slow for a
#: mining loop; the bench and the slow sweep cover it) plus the rocPRIM
#: pattern families whose irregular structure is where real losses hide
#: (the structured hostile shapes are exactly what ACO is good at).
MINE_FAMILIES = (
    "pressure_cliff",
    "long_chain",
    "fanout",
    "gemm_tile",
    "histogram",
    "select",
    "stencil",
)


def make_candidate(family: str, seed: int, size: int) -> SchedulingRegion:
    """One deterministic candidate region from either generator registry."""
    if family in HOSTILE_FAMILIES:
        return hostile_region(family, seed=seed, size=size)
    if family in PATTERN_NAMES:
        import random

        name = "%s_%d_s%d" % (family, size, seed)
        return pattern_region(family, random.Random(seed), size, name=name)
    raise ValueError(
        "unknown family %r (known: %s)"
        % (family, ", ".join(sorted(HOSTILE_NAMES + PATTERN_NAMES)))
    )

#: The smallest region the minimizer will propose (below this the search
#: space is trivial and a "loss" says nothing).
MIN_SIZE = 8


@dataclass
class MinedCase:
    """One archived ACO-loses-to-heuristic reproducer."""

    family: str
    seed: int
    size: int
    strategy: str
    fingerprint: str
    heuristic_length: int
    heuristic_rp_cost: int
    aco_length: int
    aco_rp_cost: int
    ir: str

    def to_json(self) -> str:
        return json.dumps(asdict(self), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "MinedCase":
        return cls(**json.loads(text))

    @property
    def region(self) -> SchedulingRegion:
        return parse_region(self.ir)


def aco_loss(
    region: SchedulingRegion,
    machine: Optional[MachineModel] = None,
    strategy: str = "as",
    seed: int = 0,
    params: Optional[ACOParams] = None,
) -> Optional[Dict[str, int]]:
    """Score one region; a dict of both schedulers' costs if ACO *loses*.

    Losing means the search bought nothing and sold something: the ACO
    result's RP cost is no better than the heuristic's AND its length is
    strictly worse. Ties on both axes are a wash, not a loss.
    """
    machine = machine or amd_vega20()
    ddg = DDG(region)
    heuristic = evaluate_schedule(
        AMDMaxOccupancyScheduler(machine).schedule(ddg), machine
    )
    aco = SequentialACOScheduler(machine, params=params, strategy=strategy).schedule(
        ddg, seed=seed
    )
    if aco.rp_cost_value >= heuristic.rp_cost and aco.length > heuristic.length:
        return {
            "heuristic_length": heuristic.length,
            "heuristic_rp_cost": heuristic.rp_cost,
            "aco_length": aco.length,
            "aco_rp_cost": aco.rp_cost_value,
        }
    return None


def _minimize(
    family: str,
    seed: int,
    size: int,
    machine: MachineModel,
    strategy: str,
    params: Optional[ACOParams],
) -> int:
    """Smallest size (same family/seed) that still loses, greedy halving.

    Bounded: at most ``O(log size)`` halving probes plus one linear walk
    over a final window of 8 sizes.
    """
    best = size
    candidate = size // 2
    while candidate >= MIN_SIZE:
        region = make_candidate(family, seed, candidate)
        if aco_loss(region, machine, strategy, seed, params) is None:
            break
        best = candidate
        candidate //= 2
    for candidate in range(max(MIN_SIZE, best - 7), best):
        region = make_candidate(family, seed, candidate)
        if aco_loss(region, machine, strategy, seed, params) is not None:
            return candidate
    return best


def mine(
    families: Sequence[str] = MINE_FAMILIES,
    seeds: int = 20,
    size: int = 48,
    strategy: str = "as",
    machine: Optional[MachineModel] = None,
    params: Optional[ACOParams] = None,
    max_cases: int = 0,
) -> List[MinedCase]:
    """Sweep ``seeds`` seeds per family; return minimized reproducers.

    ``max_cases`` (0 = unlimited) bounds the archive, not the sweep — the
    first hits in the deterministic (family, seed) order win.
    """
    machine = machine or amd_vega20()
    cases: List[MinedCase] = []
    for family in families:
        for seed in range(seeds):
            if max_cases and len(cases) >= max_cases:
                return cases
            region = make_candidate(family, seed, size)
            loss = aco_loss(region, machine, strategy, seed, params)
            if loss is None:
                continue
            small = _minimize(family, seed, size, machine, strategy, params)
            region = make_candidate(family, seed, small)
            loss = aco_loss(region, machine, strategy, seed, params)
            assert loss is not None  # the minimizer only returns losing sizes
            cases.append(
                MinedCase(
                    family=family,
                    seed=seed,
                    size=small,
                    strategy=strategy,
                    fingerprint=region_fingerprint(region),
                    ir=format_region(region),
                    **loss,
                )
            )
    return cases


def archive(cases: Sequence[MinedCase], out_dir: str) -> List[str]:
    """Write one ``<family>_s<seed>.json`` per case; return the paths."""
    os.makedirs(out_dir, exist_ok=True)
    paths = []
    for case in cases:
        path = os.path.join(out_dir, "%s_s%d.json" % (case.family, case.seed))
        with open(path, "w") as handle:
            handle.write(case.to_json())
        paths.append(path)
    return paths


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.suite.adversarial", description=__doc__.split("\n")[0]
    )
    parser.add_argument(
        "--families",
        default=",".join(MINE_FAMILIES),
        help="comma-separated hostile families to sweep (default: %(default)s)",
    )
    parser.add_argument(
        "--seeds", type=int, default=20, help="seeds per family (default: %(default)s)"
    )
    parser.add_argument(
        "--size", type=int, default=48, help="region size to mine at (default: %(default)s)"
    )
    parser.add_argument(
        "--strategy", choices=("as", "mmas"), default="as",
        help="ACO strategy under attack (default: %(default)s)",
    )
    parser.add_argument(
        "--max-cases", type=int, default=0,
        help="stop archiving after N reproducers (0 = unlimited)",
    )
    parser.add_argument(
        "--out", default="", metavar="DIR",
        help="archive reproducer JSON files into DIR (default: report only)",
    )
    args = parser.parse_args(argv)
    families = [f.strip() for f in args.families.split(",") if f.strip()]
    cases = mine(
        families=families,
        seeds=args.seeds,
        size=args.size,
        strategy=args.strategy,
        max_cases=args.max_cases,
    )
    for case in cases:
        print(
            "%s seed=%d size=%d fp=%s heuristic=%d@rp%d aco=%d@rp%d"
            % (
                case.family,
                case.seed,
                case.size,
                case.fingerprint,
                case.heuristic_length,
                case.heuristic_rp_cost,
                case.aco_length,
                case.aco_rp_cost,
            )
        )
    if args.out and cases:
        for path in archive(cases, args.out):
            print("wrote %s" % path)
    print("%d reproducer(s) mined" % len(cases))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
