"""The synthetic rocPRIM-like suite: kernels, benchmarks, statistics.

Structure mirrors the paper's Table 1: benchmarks exercise kernels (several
benchmarks share a kernel with different workloads), and each kernel
contributes scheduling regions. Region sizes follow a heavy-tailed mixture
matched to the paper's statistics (most regions small, average *processed*
size a few dozen, rare thousand-instruction outliers).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..config import SuiteParams
from ..ir.block import SchedulingRegion
from .patterns import PATTERN_NAMES, pattern_region
from .rng import derived_rng

#: (probability, low, high) size buckets; the tail mirrors Table 1's
#: max processed sizes of 1,176 / 2,223 at full scale.
_SIZE_BUCKETS: Tuple[Tuple[float, int, int], ...] = (
    (0.58, 4, 30),
    (0.25, 30, 80),
    (0.12, 80, 160),
    (0.04, 160, 320),
    (0.01, 320, 1200),
)


def _draw_size(rng: random.Random, max_region_size: int) -> int:
    roll = rng.random()
    acc = 0.0
    for probability, low, high in _SIZE_BUCKETS:
        acc += probability
        if roll < acc:
            size = rng.randint(low, high)
            return max(4, min(size, max_region_size))
    return max(4, min(rng.randint(320, 1200), max_region_size))


@dataclass
class KernelSpec:
    """One GPU kernel: its scheduling regions plus execution-model inputs."""

    name: str
    pattern: str
    regions: Tuple[SchedulingRegion, ...]
    #: Relative dynamic execution weight of each region (hot loops dominate).
    region_weights: Tuple[float, ...]
    #: How memory-bound the kernel is (scales the occupancy benefit in the
    #: execution model; rocPRIM primitives span streaming to compute-bound).
    memory_intensity: float

    def __post_init__(self):
        if len(self.regions) != len(self.region_weights):
            raise ValueError("one weight per region required")

    @property
    def total_instructions(self) -> int:
        return sum(len(r) for r in self.regions)


@dataclass
class BenchmarkSpec:
    """One benchmark: a kernel plus a workload.

    Different benchmarks may invoke the same kernel with different
    parameters (Section VI-A); ``region_weights`` captures that — the
    benchmark's workload shifts how much each scheduling region of the
    kernel executes. Empty means "use the kernel's own weights".
    """

    name: str
    kernel_name: str
    #: Bytes moved per benchmark invocation (sets the GB/s denominator).
    workload_bytes: int
    #: Benchmark-specific dynamic-execution weights (one per kernel region).
    region_weights: Tuple[float, ...] = ()


@dataclass
class Suite:
    """The generated suite."""

    params: SuiteParams
    kernels: Tuple[KernelSpec, ...]
    benchmarks: Tuple[BenchmarkSpec, ...]
    _kernel_index: Dict[str, KernelSpec] = field(default_factory=dict, repr=False)

    def __post_init__(self):
        self._kernel_index = {k.name: k for k in self.kernels}

    def kernel(self, name: str) -> KernelSpec:
        return self._kernel_index[name]

    @property
    def num_regions(self) -> int:
        return sum(len(k.regions) for k in self.kernels)

    def all_regions(self):
        for kernel in self.kernels:
            for region in kernel.regions:
                yield kernel, region


def generate_suite(params: SuiteParams, max_region_size: int = 1200) -> Suite:
    """Generate the full synthetic suite deterministically from its seed.

    ``max_region_size`` caps the tail of the size distribution — scaled-down
    experiment configurations lower it so the heavy tail stays proportionate.
    """
    params.validate()
    kernels: List[KernelSpec] = []
    for k in range(params.num_kernels):
        pattern = PATTERN_NAMES[k % len(PATTERN_NAMES)]
        rng = derived_rng(params.seed, "kernel", k)
        regions = []
        for r in range(params.regions_per_kernel):
            size = _draw_size(rng, max_region_size)
            region_rng = derived_rng(params.seed, "region", k, r)
            regions.append(
                pattern_region(pattern, region_rng, size, name="k%03d_r%02d" % (k, r))
            )
        # Hot-loop weights: a Zipf-ish split with the biggest regions hottest
        # (inner loops are both larger and more executed in rocPRIM kernels).
        ranked = sorted(range(len(regions)), key=lambda i: -len(regions[i]))
        weights = [0.0] * len(regions)
        for rank, index in enumerate(ranked):
            weights[index] = 1.0 / (1 + rank) ** 1.2
        total = sum(weights)
        weights = [w / total for w in weights]
        kernels.append(
            KernelSpec(
                name="kernel_%03d_%s" % (k, pattern),
                pattern=pattern,
                regions=tuple(regions),
                region_weights=tuple(weights),
                memory_intensity=0.4 + 2.4 * rng.random(),
            )
        )

    benchmarks: List[BenchmarkSpec] = []
    for b in range(params.num_benchmarks):
        rng = derived_rng(params.seed, "benchmark", b)
        kernel = kernels[b % len(kernels)]
        # A benchmark's parameters shift which regions of the kernel run hot
        # (e.g. a different item count changes loop trip counts), so each
        # benchmark perturbs the kernel's weights multiplicatively.
        perturbed = [
            w * math.exp(0.8 * (2.0 * rng.random() - 1.0))
            for w in kernel.region_weights
        ]
        total = sum(perturbed)
        benchmarks.append(
            BenchmarkSpec(
                name="bench_%03d_%s" % (b, kernel.pattern),
                kernel_name=kernel.name,
                workload_bytes=rng.choice([1, 2, 4, 8]) * 256 * 1024 * 1024,
                region_weights=tuple(w / total for w in perturbed),
            )
        )
    return Suite(params=params, kernels=tuple(kernels), benchmarks=tuple(benchmarks))
