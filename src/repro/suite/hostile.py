"""Hostile-workload generators: regions built to break the search.

The rocPRIM-like suite (:mod:`repro.suite.rocprim`) covers the shapes the
paper *evaluates on*; this module covers the shapes a scheduler *fails
on*. Each family isolates one stressor:

* ``giant``          — 1000+-instruction regions (the paper's size classes
  stop at "large"; these exercise allocation bounds, the ready-list
  capacity and termination behaviour far past the benchmarked tail);
* ``pressure_cliff`` — a wide load front whose consumers form one serial
  chain, so every load is live until the chain reaches it: any eager
  schedule falls off a register cliff, and the RP pass has to thread a
  narrow interleaving to stay under the APRP target;
* ``long_chain``     — a fully serial dependence chain of long-latency
  ops: zero ILP, minimal pressure, maximal stall pressure on pass 2's
  optional-stall heuristic;
* ``fanout``         — a few roots fanned out to hundreds of independent
  consumers: the ready list hits its transitive-closure bound and the
  selection loop faces its widest-possible choice every step.

All generators are deterministic in the provided RNG, produce exactly the
requested size, and register themselves in :data:`HOSTILE_FAMILIES` the
way :mod:`repro.suite.patterns` registers its patterns.
:func:`region_fingerprint` gives a byte-stable content hash used by the
golden tests and the adversarial miner's reproducer archive.
"""

from __future__ import annotations

import hashlib
import random
from typing import Callable, Dict, Tuple

from ..ir.block import SchedulingRegion
from ..ir.builder import RegionBuilder
from ..ir.registers import VGPR, VirtualRegister

_LOADS = ["global_load", "buffer_load", "flat_load"]
_TRANS = ["v_rcp_f32", "v_sqrt_f32", "v_exp_f32"]
_ALU = ["v_add_f32", "v_mul_f32", "v_fma_f32", "v_max", "v_and"]


def giant_region(rng: random.Random, size: int, name: str) -> SchedulingRegion:
    """A 1000+-instruction block: tiled load/compute/store waves.

    Structurally a huge unrolled streaming kernel — repeated tiles of a
    load front, a combine layer over the front, and a store — so the
    region has real scheduling freedom at a size far past the paper's
    "large" class instead of being one amorphous blob.
    """
    builder = RegionBuilder(name)
    next_id = [0]

    def fresh() -> VirtualRegister:
        reg = VirtualRegister(VGPR, next_id[0])
        next_id[0] += 1
        return reg

    budget = size
    last_value = None
    while budget > 0:
        tile = min(budget, rng.randrange(12, 25))
        loads = max(2, tile // 3)
        front = []
        for _ in range(loads):
            if budget <= 0:
                break
            reg = fresh()
            builder.inst(rng.choice(_LOADS), defs=[reg])
            front.append(reg)
            budget -= 1
        while budget > 1 and len(front) > 1:
            a = front.pop(rng.randrange(len(front)))
            b = front.pop(rng.randrange(len(front)))
            reg = fresh()
            builder.inst(rng.choice(_ALU), defs=[reg], uses=sorted([a, b]))
            front.append(reg)
            budget -= 1
        if budget > 0 and front:
            builder.inst("global_store", uses=[front[-1]])
            last_value = front[-1]
            budget -= 1
        elif front:
            last_value = front[-1]
    if last_value is not None:
        builder.live_out(last_value)
    return builder.build()


def pressure_cliff_region(rng: random.Random, size: int, name: str) -> SchedulingRegion:
    """A load front pinned live by one serial consumer chain.

    ``k`` loads, then a chain where combine ``i`` uses combine ``i-1``
    and load ``i``: issuing the loads up front spikes pressure to ``k``;
    the only flat-pressure schedule interleaves each load just before
    its chain position. The RNG shuffles which load each chain step
    consumes so the cliff is not trivially sorted away.
    """
    builder = RegionBuilder(name)
    loads = max(2, (size + 1) // 2)
    chain_len = size - loads
    front = []
    next_id = 0
    for _ in range(loads):
        reg = VirtualRegister(VGPR, next_id)
        next_id += 1
        builder.inst(rng.choice(_LOADS), defs=[reg])
        front.append(reg)
    consume = list(front)
    rng.shuffle(consume)
    acc = consume[0] if consume else front[0]
    for step in range(chain_len):
        reg = VirtualRegister(VGPR, next_id)
        next_id += 1
        operand = consume[(step + 1) % len(consume)]
        builder.inst(rng.choice(_ALU), defs=[reg], uses=sorted({acc, operand}))
        acc = reg
    builder.live_out(acc)
    return builder.build()


def long_chain_region(rng: random.Random, size: int, name: str) -> SchedulingRegion:
    """One fully serial chain of mostly long-latency ops (zero ILP)."""
    builder = RegionBuilder(name)
    reg = VirtualRegister(VGPR, 0)
    builder.inst(rng.choice(_LOADS), defs=[reg])
    for index in range(1, size):
        new = VirtualRegister(VGPR, index)
        op = rng.choice(_TRANS) if rng.random() < 0.6 else rng.choice(_ALU)
        builder.inst(op, defs=[new], uses=[reg])
        reg = new
    builder.live_out(reg)
    return builder.build()


def fanout_region(rng: random.Random, size: int, name: str) -> SchedulingRegion:
    """A few roots, each fanned out to a maximal independent consumer set.

    After the roots issue, *every* remaining instruction is ready at
    once: the ready list peaks near ``size`` and stays there, stressing
    the capacity bound and the per-step selection loop.
    """
    builder = RegionBuilder(name)
    roots = max(1, min(4, size // 32 + 1))
    root_regs = []
    next_id = 0
    for _ in range(min(roots, size)):
        reg = VirtualRegister(VGPR, next_id)
        next_id += 1
        builder.inst(rng.choice(_LOADS), defs=[reg])
        root_regs.append(reg)
    live = []
    for _ in range(size - len(root_regs)):
        src = rng.choice(root_regs)
        if rng.random() < 0.2:
            builder.inst("global_store", uses=[src])
        else:
            reg = VirtualRegister(VGPR, next_id)
            next_id += 1
            builder.inst(rng.choice(_ALU), defs=[reg], uses=[src])
            live.append(reg)
    for reg in live[-2:] or root_regs[-1:]:
        builder.live_out(reg)
    return builder.build()


#: family name -> generator ``(rng, size, name) -> SchedulingRegion``.
HOSTILE_FAMILIES: Dict[str, Callable[[random.Random, int, str], SchedulingRegion]] = {
    "giant": giant_region,
    "pressure_cliff": pressure_cliff_region,
    "long_chain": long_chain_region,
    "fanout": fanout_region,
}

#: All family names, in a stable order.
HOSTILE_NAMES: Tuple[str, ...] = tuple(sorted(HOSTILE_FAMILIES))

#: The size each family defaults to (``giant`` honours its 1000+ charter;
#: the others stay small enough for the schedulers to search in CI).
HOSTILE_DEFAULT_SIZES: Dict[str, int] = {
    "giant": 1024,
    "pressure_cliff": 96,
    "long_chain": 64,
    "fanout": 128,
}


def hostile_region(
    family: str, seed: int, size: int = 0, name: str = ""
) -> SchedulingRegion:
    """Generate one region of the named hostile family, deterministically.

    ``seed`` fully determines the region (generators draw from a private
    ``random.Random(seed)``); ``size`` defaults to the family's charter
    size in :data:`HOSTILE_DEFAULT_SIZES`.
    """
    try:
        generator = HOSTILE_FAMILIES[family]
    except KeyError:
        raise ValueError(
            "unknown hostile family %r (known: %s)" % (family, ", ".join(HOSTILE_NAMES))
        ) from None
    size = size or HOSTILE_DEFAULT_SIZES[family]
    name = name or ("%s_%d_s%d" % (family, size, seed))
    return generator(random.Random(seed), size, name)


def region_fingerprint(region: SchedulingRegion) -> str:
    """A byte-stable content hash of a region (sha256, first 16 hex chars).

    Covers exactly what scheduling sees: the instruction stream (opcode,
    latency, defs, uses) and the boundary liveness — not the region name,
    so the same structure fingerprints identically under any label.
    """
    digest = hashlib.sha256()
    for inst in region.instructions:
        digest.update(
            ("%s|%d|%s|%s\n" % (
                inst.op.name,
                inst.latency,
                ",".join(str(r) for r in inst.defs),
                ",".join(str(r) for r in inst.uses),
            )).encode()
        )
    digest.update(("in:%s\n" % ",".join(sorted(str(r) for r in region.live_in))).encode())
    digest.update(("out:%s\n" % ",".join(sorted(str(r) for r in region.live_out))).encode())
    return digest.hexdigest()[:16]
