"""Deterministic seed derivation for the suite generator.

Every kernel, region and benchmark derives its own RNG stream from the
suite seed and its identity, so regenerating a suite (or a single region of
it) is reproducible regardless of generation order.
"""

from __future__ import annotations

import hashlib
import random


def derive_seed(base_seed: int, *identity) -> int:
    """A stable 63-bit seed from the base seed and an identity tuple."""
    text = ":".join([str(base_seed)] + [str(part) for part in identity])
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") & (2**63 - 1)


def derived_rng(base_seed: int, *identity) -> random.Random:
    """A :class:`random.Random` seeded via :func:`derive_seed`."""
    return random.Random(derive_seed(base_seed, *identity))
