"""A small DSL for constructing scheduling regions.

Example — the 7-instruction DDG of the paper's Figure 1::

    from repro.ir import RegionBuilder

    b = RegionBuilder("fig1")
    b.inst("op3", defs=["v1"], name="A")            # A: defines r1, latency 3
    b.inst("op1", defs=["v2"], name="B")
    ...
    region = b.build()

Register operands are written textually (``"v3"``, ``"s0"``) or passed as
:class:`~repro.ir.registers.VirtualRegister` objects.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

from ..errors import IRError
from .block import SchedulingRegion
from .instructions import Instruction, Opcode, opcode
from .registers import VirtualRegister

RegLike = Union[str, VirtualRegister]


def _as_register(reg: RegLike) -> VirtualRegister:
    if isinstance(reg, VirtualRegister):
        return reg
    return VirtualRegister.parse(reg)


class RegionBuilder:
    """Accumulates instructions and produces a :class:`SchedulingRegion`."""

    def __init__(self, name: str = "region"):
        self.name = name
        self._instructions: List[Instruction] = []
        self._live_in: Optional[List[VirtualRegister]] = None
        self._live_out: List[VirtualRegister] = []

    def inst(
        self,
        op: Union[str, Opcode],
        defs: Sequence[RegLike] = (),
        uses: Sequence[RegLike] = (),
        latency: int = -1,
        name: str = "",
    ) -> Instruction:
        """Append an instruction and return it."""
        if isinstance(op, str):
            op = opcode(op)
        instruction = Instruction(
            index=len(self._instructions),
            op=op,
            defs=tuple(_as_register(r) for r in defs),
            uses=tuple(_as_register(r) for r in uses),
            latency=latency,
            name=name,
        )
        self._instructions.append(instruction)
        return instruction

    def live_in(self, *regs: RegLike) -> "RegionBuilder":
        """Declare boundary live-in registers (beyond the inferred ones)."""
        if self._live_in is None:
            self._live_in = []
        self._live_in.extend(_as_register(r) for r in regs)
        return self

    def live_out(self, *regs: RegLike) -> "RegionBuilder":
        """Declare registers live past the region's end."""
        self._live_out.extend(_as_register(r) for r in regs)
        return self

    def build(self) -> SchedulingRegion:
        if not self._instructions:
            raise IRError("cannot build an empty region")
        live_in: Optional[Iterable[VirtualRegister]] = self._live_in
        if live_in is not None:
            # Explicit live-ins extend, never replace, the inferred set.
            inferred = SchedulingRegion(self._instructions, self.name).live_in
            live_in = set(live_in) | set(inferred)
        return SchedulingRegion(
            self._instructions, self.name, live_in=live_in, live_out=self._live_out
        )


def figure1_region() -> SchedulingRegion:
    """The running example of the paper (Figure 1).

    Seven instructions A..G over virtual registers r1..r7 (modelled as
    VGPRs v1..v7), with the latencies shown on the DDG edges:
    A and B are loads feeding E (latency 3 and 1), C and D are loads feeding
    F (latency 5 and 4), E and F feed G (latency 1 each).

    Edge latencies in a DDG label the *producer*, so A has latency 3, B 1,
    C 5, D 4, E 1, F 1, G 1.
    """
    b = RegionBuilder("figure1")
    b.inst("op3", defs=["v1"], name="A")                       # A -> E, lat 3
    b.inst("op1", defs=["v2"], name="B")                       # B -> E, lat 1
    b.inst("op5", defs=["v3"], name="C")                       # C -> F, lat 5
    b.inst("op1", defs=["v4"], latency=4, name="D")            # D -> F, lat 4
    b.inst("op1", defs=["v5"], uses=["v1", "v2"], name="E")    # E -> G, lat 1
    b.inst("op1", defs=["v6"], uses=["v3", "v4"], name="F")    # F -> G, lat 1
    b.inst("op1", defs=["v7"], uses=["v5", "v6"], name="G")
    return b.live_out("v7").build()
