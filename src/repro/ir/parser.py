"""Parser for the textual region format produced by
:func:`repro.ir.printer.format_region`.

Grammar (one construct per line; ``#`` starts a comment)::

    region <name>
    [live_in: reg {, reg}]
    [live_out: reg {, reg}]
    <label>: <opcode> [defs(reg{,reg})] [uses(reg{,reg})] [lat=N]
    ...
    end
"""

from __future__ import annotations

import re
from typing import List, Optional

from ..errors import ParseError
from .block import SchedulingRegion
from .instructions import Instruction, opcode
from .registers import VirtualRegister

_INST_RE = re.compile(
    r"^(?P<label>\w+):\s+(?P<op>\w+)"
    r"(?:\s+defs\((?P<defs>[^)]*)\))?"
    r"(?:\s+uses\((?P<uses>[^)]*)\))?"
    r"(?:\s+lat=(?P<lat>\d+))?\s*$"
)


def _parse_reg_list(text: Optional[str], line_no: int) -> List[VirtualRegister]:
    if not text or not text.strip():
        return []
    regs = []
    for chunk in text.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        try:
            regs.append(VirtualRegister.parse(chunk))
        except Exception as exc:
            raise ParseError(str(exc), line_no)
    return regs


def parse_region(text: str) -> SchedulingRegion:
    """Parse one region from ``text``; raises :class:`ParseError` on bad input."""
    name = None
    live_in: List[VirtualRegister] = []
    live_out: List[VirtualRegister] = []
    instructions: List[Instruction] = []
    saw_end = False

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if saw_end:
            raise ParseError("content after 'end'", line_no)
        if name is None:
            if not line.startswith("region "):
                raise ParseError("expected 'region <name>'", line_no)
            name = line[len("region "):].strip()
            if not name:
                raise ParseError("region name is empty", line_no)
            continue
        if line == "end":
            saw_end = True
            continue
        if line.startswith("live_in:"):
            live_in.extend(_parse_reg_list(line[len("live_in:"):], line_no))
            continue
        if line.startswith("live_out:"):
            live_out.extend(_parse_reg_list(line[len("live_out:"):], line_no))
            continue
        match = _INST_RE.match(line)
        if not match:
            raise ParseError("cannot parse instruction %r" % line, line_no)
        try:
            op = opcode(match.group("op"))
        except Exception as exc:
            raise ParseError(str(exc), line_no)
        lat_text = match.group("lat")
        label = match.group("label")
        instructions.append(
            Instruction(
                index=len(instructions),
                op=op,
                defs=tuple(_parse_reg_list(match.group("defs"), line_no)),
                uses=tuple(_parse_reg_list(match.group("uses"), line_no)),
                latency=int(lat_text) if lat_text is not None else -1,
                name="" if re.fullmatch(r"i\d+", label) else label,
            )
        )

    if name is None:
        raise ParseError("empty input: no 'region' header")
    if not saw_end:
        raise ParseError("missing 'end'")
    if not instructions:
        raise ParseError("region %r has no instructions" % name)

    inferred = SchedulingRegion(instructions, name).live_in
    return SchedulingRegion(
        instructions,
        name,
        live_in=set(live_in) | set(inferred),
        live_out=live_out,
    )
