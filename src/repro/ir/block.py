"""Scheduling regions.

A :class:`SchedulingRegion` is the unit of work handed to the schedulers —
the analogue of an LLVM scheduling region (a basic block or a slice of one).
It owns an immutable instruction sequence in original program order plus the
boundary liveness information needed to compute register pressure:

* ``live_in``  — registers live on entry (their ranges are open at cycle 0),
* ``live_out`` — registers live on exit (their ranges never close inside the
  region, so their pressure contribution cannot be scheduled away).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Optional, Sequence, Tuple

from ..errors import IRError
from .instructions import Instruction
from .registers import RegisterClass, VirtualRegister


class SchedulingRegion:
    """An immutable scheduling region.

    Instructions must be indexed 0..n-1 in original order. Use
    :class:`~repro.ir.builder.RegionBuilder` to construct regions
    conveniently.
    """

    def __init__(
        self,
        instructions: Sequence[Instruction],
        name: str = "region",
        live_in: Optional[Iterable[VirtualRegister]] = None,
        live_out: Optional[Iterable[VirtualRegister]] = None,
    ):
        insts = tuple(instructions)
        if not insts:
            raise IRError("a scheduling region must contain at least one instruction")
        for position, inst in enumerate(insts):
            if inst.index != position:
                raise IRError(
                    "instruction at position %d has index %d; regions must be "
                    "indexed contiguously from 0" % (position, inst.index)
                )
        self._instructions: Tuple[Instruction, ...] = insts
        self.name = name

        defined = set()
        used = set()
        for inst in insts:
            defined.update(inst.defs)
            used.update(inst.uses)
        # Registers used before any definition in the region must be live-in.
        upward_exposed = self._upward_exposed_uses()
        if live_in is None:
            self.live_in: FrozenSet[VirtualRegister] = frozenset(upward_exposed)
        else:
            self.live_in = frozenset(live_in)
            missing = upward_exposed - self.live_in
            if missing:
                raise IRError(
                    "registers %s are used before definition but not live-in"
                    % sorted(str(r) for r in missing)
                )
        self.live_out: FrozenSet[VirtualRegister] = frozenset(live_out or ())
        unknown = self.live_out - (defined | self.live_in)
        if unknown:
            raise IRError(
                "live-out registers %s are neither defined nor live-in"
                % sorted(str(r) for r in unknown)
            )
        self._defined = frozenset(defined)
        self._used = frozenset(used)

    def _upward_exposed_uses(self) -> set:
        exposed = set()
        defined_so_far = set()
        for inst in self._instructions:
            for reg in inst.uses:
                if reg not in defined_so_far:
                    exposed.add(reg)
            defined_so_far.update(inst.defs)
        return exposed

    # -- basic accessors ---------------------------------------------------

    @property
    def instructions(self) -> Tuple[Instruction, ...]:
        return self._instructions

    def __len__(self) -> int:
        return len(self._instructions)

    def __iter__(self):
        return iter(self._instructions)

    def __getitem__(self, index: int) -> Instruction:
        return self._instructions[index]

    @property
    def size(self) -> int:
        """Number of instructions (the region-size statistic of the paper)."""
        return len(self._instructions)

    @property
    def defined_registers(self) -> FrozenSet[VirtualRegister]:
        return self._defined

    @property
    def used_registers(self) -> FrozenSet[VirtualRegister]:
        return self._used

    @property
    def all_registers(self) -> FrozenSet[VirtualRegister]:
        return self._defined | self._used | self.live_in | self.live_out

    def register_classes(self) -> Tuple[RegisterClass, ...]:
        """The register classes that actually occur, in a stable order."""
        seen: Dict[RegisterClass, None] = {}
        for reg in sorted(self.all_registers):
            seen.setdefault(reg.reg_class, None)
        return tuple(seen)

    def definer_of(self, reg: VirtualRegister) -> Optional[Instruction]:
        """The (unique in well-formed SSA-ish regions) last definer, or None."""
        result = None
        for inst in self._instructions:
            if inst.defines(reg):
                result = inst
        return result

    def users_of(self, reg: VirtualRegister) -> Tuple[Instruction, ...]:
        return tuple(inst for inst in self._instructions if inst.reads(reg))

    def __repr__(self) -> str:
        return "SchedulingRegion(%r, %d instructions)" % (self.name, len(self))

    def __eq__(self, other) -> bool:
        if not isinstance(other, SchedulingRegion):
            return NotImplemented
        return (
            self._instructions == other._instructions
            and self.live_in == other.live_in
            and self.live_out == other.live_out
        )

    def __hash__(self) -> int:
        return hash((self._instructions, self.live_in, self.live_out))
