"""Opcodes and instructions.

Opcodes carry the default latency used when building dependence graphs; a
latency is the number of cycles that must elapse between issuing a producer
and issuing a dependent consumer (1 = back-to-back is legal). The built-in
table is a plausible subset of the GCN/Vega ISA: single-cycle VALU/SALU ops,
medium-latency transcendentals and LDS accesses, long-latency global memory
loads. The scheduling algorithms never consult the table directly — an
:class:`Instruction` snapshots its latency — so suites with custom opcodes
work the same way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Tuple

from ..errors import IRError
from .registers import VirtualRegister


@dataclass(frozen=True)
class Opcode:
    """An operation kind: a name, a default latency and a coarse category.

    ``kind`` is one of ``"valu"``, ``"salu"``, ``"mem"``, ``"lds"``,
    ``"trans"``, ``"branch"`` or ``"other"``; the suite generator uses it to
    control the memory/ALU mix of synthetic regions.
    """

    name: str
    latency: int
    kind: str = "valu"

    def __post_init__(self):
        if self.latency < 0:
            raise IRError("latency must be >= 0")
        if not self.name:
            raise IRError("opcode name must be non-empty")


#: Built-in opcode table (name -> Opcode).
OPCODES: Dict[str, Opcode] = {}


def define_opcode(name: str, latency: int, kind: str = "valu") -> Opcode:
    """Register a new opcode in the global table and return it.

    Redefining an existing name with identical attributes is a no-op;
    redefining it differently is an error (it would silently change suites).
    """
    op = Opcode(name, latency, kind)
    existing = OPCODES.get(name)
    if existing is not None and existing != op:
        raise IRError("opcode %r already defined with different attributes" % name)
    OPCODES[name] = op
    return op


def opcode(name: str) -> Opcode:
    """Look up a built-in opcode by name."""
    try:
        return OPCODES[name]
    except KeyError:
        raise IRError("unknown opcode %r" % name) from None


def _populate_builtin_opcodes() -> None:
    valu_1 = [
        "v_mov", "v_add", "v_sub", "v_mul_lo", "v_and", "v_or", "v_xor",
        "v_lshl", "v_lshr", "v_min", "v_max", "v_cmp", "v_cndmask", "v_bfe",
    ]
    for name in valu_1:
        define_opcode(name, 1, "valu")
    for name in ["v_add_f32", "v_mul_f32", "v_fma_f32", "v_mac_f32", "v_sad"]:
        define_opcode(name, 2, "valu")
    for name in ["v_rcp_f32", "v_sqrt_f32", "v_exp_f32", "v_log_f32", "v_sin_f32"]:
        define_opcode(name, 8, "trans")
    for name in ["s_mov", "s_add", "s_and", "s_lshl", "s_cmp", "s_cselect"]:
        define_opcode(name, 1, "salu")
    define_opcode("s_load_dword", 12, "mem")
    define_opcode("ds_read", 6, "lds")
    define_opcode("ds_write", 1, "lds")
    define_opcode("global_load", 20, "mem")
    define_opcode("global_store", 1, "mem")
    define_opcode("buffer_load", 20, "mem")
    define_opcode("buffer_store", 1, "mem")
    define_opcode("flat_load", 24, "mem")
    define_opcode("s_branch", 1, "branch")
    # A generic opcode family for tests and hand-written examples.
    define_opcode("op0", 1, "other")
    define_opcode("op1", 1, "other")
    define_opcode("op2", 2, "other")
    define_opcode("op3", 3, "other")
    define_opcode("op5", 5, "other")


_populate_builtin_opcodes()


@dataclass(frozen=True)
class Instruction:
    """One instruction of a scheduling region.

    ``index`` is the instruction's position in the region's original
    (program) order; the dependence graph, the schedulers and the pheromone
    table all identify instructions by this index. ``defs`` and ``uses`` are
    the *Def* and *Use* sets of Section II-A. ``latency`` defaults to the
    opcode's latency but can be overridden per instruction (LLVM itineraries
    do the same).
    """

    index: int
    op: Opcode
    defs: Tuple[VirtualRegister, ...] = ()
    uses: Tuple[VirtualRegister, ...] = ()
    latency: int = -1  # -1 means "use the opcode default"
    name: str = ""

    def __post_init__(self):
        if self.index < 0:
            raise IRError("instruction index must be >= 0")
        if self.latency == -1:
            object.__setattr__(self, "latency", self.op.latency)
        if self.latency < 0:
            raise IRError("instruction latency must be >= 0")
        if len(set(self.defs)) != len(self.defs):
            raise IRError("duplicate register in Def set of %s" % self.label)
        if len(set(self.uses)) != len(self.uses):
            raise IRError("duplicate register in Use set of %s" % self.label)

    @property
    def label(self) -> str:
        """Display name: the explicit name if given, else ``i<index>``."""
        return self.name or ("i%d" % self.index)

    def defines(self, reg: VirtualRegister) -> bool:
        return reg in self.defs

    def reads(self, reg: VirtualRegister) -> bool:
        return reg in self.uses

    def renumbered(self, new_index: int) -> "Instruction":
        """A copy of this instruction at a different program-order index."""
        return Instruction(new_index, self.op, self.defs, self.uses, self.latency, self.name)

    def __str__(self) -> str:
        parts = [self.label + ":", self.op.name]
        if self.defs:
            parts.append("defs(%s)" % ",".join(str(r) for r in self.defs))
        if self.uses:
            parts.append("uses(%s)" % ",".join(str(r) for r in self.uses))
        if self.latency != self.op.latency:
            parts.append("lat=%d" % self.latency)
        return " ".join(parts)


def registers_of(instructions: Iterable[Instruction]):
    """The set of all virtual registers mentioned by ``instructions``."""
    regs = set()
    for inst in instructions:
        regs.update(inst.defs)
        regs.update(inst.uses)
    return regs
