"""A compact virtual-register IR for pre-allocation instruction scheduling.

The IR carries exactly what the RP-aware scheduling problem consumes: each
instruction has an opcode, a latency, a *Def* set and a *Use* set of virtual
registers, and registers belong to register classes (VGPR / SGPR on the AMD
target). A :class:`~repro.ir.block.SchedulingRegion` is the scheduler's unit
of work, matching an LLVM scheduling region (a basic block or part of one).
"""

from .registers import RegisterClass, VirtualRegister, VGPR, SGPR, register_class_by_prefix
from .instructions import Opcode, Instruction, OPCODES, opcode, define_opcode
from .block import SchedulingRegion
from .builder import RegionBuilder
from .printer import format_region, format_schedule
from .parser import parse_region

__all__ = [
    "RegisterClass",
    "VirtualRegister",
    "VGPR",
    "SGPR",
    "register_class_by_prefix",
    "Opcode",
    "Instruction",
    "OPCODES",
    "opcode",
    "define_opcode",
    "SchedulingRegion",
    "RegionBuilder",
    "format_region",
    "format_schedule",
    "parse_region",
]
