"""Textual rendering of regions and schedules.

The region format round-trips through :func:`repro.ir.parser.parse_region`::

    region figure1
    live_out: v7
    A: op3 defs(v1) lat=3
    B: op1 defs(v2)
    ...
    end
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .block import SchedulingRegion

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..schedule.schedule import Schedule


def format_region(region: SchedulingRegion) -> str:
    """Serialize a region to the textual format."""
    lines = ["region %s" % region.name]
    explicit_live_in = region.live_in - region._upward_exposed_uses()
    if explicit_live_in:
        lines.append("live_in: %s" % ", ".join(str(r) for r in sorted(explicit_live_in)))
    if region.live_out:
        lines.append("live_out: %s" % ", ".join(str(r) for r in sorted(region.live_out)))
    for inst in region:
        lines.append(str(inst))
    lines.append("end")
    return "\n".join(lines) + "\n"


def format_schedule(schedule: "Schedule") -> str:
    """Render a schedule cycle by cycle, marking stall cycles.

    Matches the presentation of the paper's Figure 1: one line per cycle,
    ``Stall`` for cycles with no instruction issued.
    """
    region = schedule.region
    by_cycle = {}
    for index, cycle in enumerate(schedule.cycles):
        by_cycle.setdefault(cycle, []).append(index)
    lines = ["schedule of %s (length %d)" % (region.name, schedule.length)]
    for cycle in range(schedule.length):
        issued = by_cycle.get(cycle, [])
        if issued:
            text = ", ".join(region[i].label for i in issued)
        else:
            text = "Stall"
        lines.append("cycle %3d: %s" % (cycle, text))
    return "\n".join(lines) + "\n"
