"""Register classes and virtual registers.

On the AMD GCN/Vega target modelled in this work there are two register
files that matter for occupancy: vector general-purpose registers (VGPRs,
one per lane) and scalar general-purpose registers (SGPRs, one per
wavefront). Register pressure is tracked per class, and each class maps to
occupancy through its own table (:mod:`repro.machine.occupancy`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..errors import IRError


@dataclass(frozen=True, order=True)
class RegisterClass:
    """A register file from the scheduler's point of view.

    ``prefix`` is the single letter used in the textual IR (``v3``, ``s7``).
    Ordered (by name) so registers sort deterministically.
    """

    name: str
    prefix: str

    def __post_init__(self):
        if len(self.prefix) != 1 or not self.prefix.isalpha():
            raise IRError("register-class prefix must be a single letter")

    def __str__(self) -> str:
        return self.name


#: Vector GPRs: per-lane registers; the dominant occupancy limiter on Vega.
VGPR = RegisterClass("VGPR", "v")
#: Scalar GPRs: per-wavefront registers.
SGPR = RegisterClass("SGPR", "s")

_CLASSES_BY_PREFIX: Dict[str, RegisterClass] = {VGPR.prefix: VGPR, SGPR.prefix: SGPR}


def register_class_by_prefix(prefix: str) -> RegisterClass:
    """Look up a built-in register class by its textual prefix."""
    try:
        return _CLASSES_BY_PREFIX[prefix]
    except KeyError:
        raise IRError("unknown register-class prefix %r" % prefix) from None


@dataclass(frozen=True, order=True)
class VirtualRegister:
    """A virtual register: a class plus a small integer id.

    Virtual registers are values, not objects: two ``VirtualRegister``
    instances with the same class and id are the same register. The textual
    form is ``<prefix><id>`` (``v0``, ``s12``).
    """

    reg_class: RegisterClass
    ident: int

    def __post_init__(self):
        if self.ident < 0:
            raise IRError("register id must be >= 0")

    def __str__(self) -> str:
        return "%s%d" % (self.reg_class.prefix, self.ident)

    @staticmethod
    def parse(text: str) -> "VirtualRegister":
        """Parse ``v12`` / ``s3`` back into a register."""
        text = text.strip()
        if len(text) < 2:
            raise IRError("cannot parse register %r" % text)
        reg_class = register_class_by_prefix(text[0])
        try:
            ident = int(text[1:])
        except ValueError:
            raise IRError("cannot parse register %r" % text) from None
        return VirtualRegister(reg_class, ident)


def vreg(ident: int) -> VirtualRegister:
    """Shorthand for a VGPR virtual register."""
    return VirtualRegister(VGPR, ident)


def sreg(ident: int) -> VirtualRegister:
    """Shorthand for an SGPR virtual register."""
    return VirtualRegister(SGPR, ident)
