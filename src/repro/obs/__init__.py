"""``repro.obs``: traces, metric aggregation, exporters and the dashboard.

The production-observability layer on top of :mod:`repro.telemetry`'s
event bus. Four pieces:

* :mod:`repro.obs.context` — deterministic trace-context propagation
  (``trace_id``/``span_id``/``parent_id`` derived from the region
  fingerprint + seed; no wall clock). The telemetry tracer stamps every
  event and the span profiler keys merges with the ambient context, so
  one region's retries, checkpoint resumes and backend downgrades
  reconstruct as a single causal trace.
* :mod:`repro.obs.aggregate` — the metrics aggregation engine: counters,
  gauges and exponential-bucket histograms in cost-model seconds, with
  byte-stable snapshots (p50/p95/p99 region latency, kernel seconds by
  pass/backend, fault/retry/degrade rates, deadline-budget consumption).
* :mod:`repro.obs.export` — OpenMetrics/Prometheus text (plus an offline
  format linter), JSON snapshots, and a Perfetto/Chrome trace-event
  export of the simulated timeline.
* :mod:`repro.obs.dashboard` — the terminal dashboard (``--watch`` on
  runs, or ``python -m repro.obs.dashboard TRACE.jsonl``) with the
  deadline-SLO/error-budget panel (:mod:`repro.obs.slo`).

Like every observability layer in this repository, ``repro.obs`` only
*observes*: it consumes event dicts, never imports a scheduler, and
seeded results are bit-identical with it on or off.
"""

# NOTE: import order matters — ``context`` is a stdlib-only leaf that
# ``repro.telemetry.core`` and ``repro.profile.spans`` import back; it
# must be fully initialized before ``aggregate`` pulls in telemetry.
from .context import TraceContext, current_trace, region_trace, trace_scope
from .aggregate import (
    AggregatingSink,
    ExpHistogram,
    MetricsAggregator,
    QUANTILE_ERROR_BOUND,
    aggregate_trace,
)
from .slo import DEFAULT_SLO_TARGET, SLOReport

# ``export`` and ``dashboard`` load lazily (PEP 562): both are runnable
# modules (``python -m repro.obs.export --lint``), and an eager import
# here would make runpy warn about re-executing an already-imported
# module on every CLI invocation.
_LAZY = {
    "lint_openmetrics": "export",
    "to_openmetrics": "export",
    "to_perfetto": "export",
    "to_snapshot_json": "export",
    "write_perfetto": "export",
    "render_dashboard": "dashboard",
}


def __getattr__(name):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError("module %r has no attribute %r" % (__name__, name))
    from importlib import import_module

    return getattr(import_module("." + module, __name__), name)


__all__ = [
    "TraceContext",
    "current_trace",
    "trace_scope",
    "region_trace",
    "MetricsAggregator",
    "AggregatingSink",
    "ExpHistogram",
    "QUANTILE_ERROR_BOUND",
    "aggregate_trace",
    "SLOReport",
    "DEFAULT_SLO_TARGET",
    "to_openmetrics",
    "to_snapshot_json",
    "to_perfetto",
    "write_perfetto",
    "lint_openmetrics",
    "render_dashboard",
]
