"""Run-bundle differ: bisect two recorded runs to their first divergence.

``python -m repro.obs.diff A B`` compares two :mod:`repro.obs.record`
bundles through a granularity ladder — cheapest and coarsest first::

    summary-metrics   did any aggregate move at all?
    span-tree         which phase of the run forked?
    schedules         did a shipped/search schedule change?
    shards            which fleet slot/worker/dispatch first differed?
    kernel-launches   which launch first cost differently?
    iterations        which ACO iteration first decided differently?
    rng-draws         which ant's which draw first differed?

(The ``shards`` level only carries signal for bundles recorded under the
fleet supervisor — single-device runs record no shard entries and the
level reports identical-by-vacuity.)

Every event-stream level is *bisected*: cumulative prefix digests over the
canonical (sorted-keys JSON) records make prefix equality a monotone
predicate, so a binary search lands on the first divergent index without
comparing every record pair. The report names the divergence precisely —
trace id, region, pass, iteration, ant lane, and (for ``full``-level
bundles) the first differing draw index with both values.

Exit codes: 0 bundles identical, 1 divergence found, 2 usage/load error.
Output is human-readable by default; ``--json`` additionally writes the
machine-readable report (CI uploads it as the first-divergence artifact).
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import TelemetryError
from .record import RunBundle, load_bundle

#: Version stamp of the diff report payload.
DIFF_SCHEMA = 1

#: Ladder order — coarse to fine. ``first_divergence`` reports the *finest*
#: divergent level, which is the actionable localization.
LEVELS = (
    "summary-metrics",
    "span-tree",
    "schedules",
    "shards",
    "kernel-launches",
    "iterations",
    "rng-draws",
)


def _canon(record: object) -> bytes:
    return json.dumps(record, sort_keys=True).encode("utf-8")


def first_divergent_index(
    a_items: Sequence[object], b_items: Sequence[object]
) -> Optional[int]:
    """Index of the first item where the two sequences diverge.

    Returns None when one sequence is a prefix of the other *and* both have
    equal length (i.e. the sequences are identical). A strict prefix
    diverges at ``min(len(a), len(b))`` — the index where one run stopped.

    Prefix equality is monotone (prefixes i < j equal whenever prefix j is
    equal), so after computing cumulative digests once per side, a binary
    search finds the first mismatch in O(log n) digest comparisons.
    """

    def prefix_digests(items: Sequence[object]) -> List[bytes]:
        h = hashlib.sha256()
        out: List[bytes] = []
        for item in items:
            h.update(_canon(item))
            out.append(h.copy().digest())
        return out

    da = prefix_digests(a_items)
    db = prefix_digests(b_items)
    n = min(len(da), len(db))
    if n == 0 or da[n - 1] == db[n - 1]:
        return None if len(da) == len(db) else n
    lo, hi = 0, n - 1  # invariant: prefix at hi differs; prefix before lo equal
    while lo < hi:
        mid = (lo + hi) // 2
        if da[mid] == db[mid]:
            lo = mid + 1
        else:
            hi = mid
    return lo


def _level(name: str, status: str, detail: Optional[Dict] = None) -> Dict:
    out: Dict[str, object] = {"level": name, "status": status}
    if detail is not None:
        out["detail"] = detail
    return out


def _changed_fields(a: Optional[Dict], b: Optional[Dict]) -> List[str]:
    if not isinstance(a, dict) or not isinstance(b, dict):
        return []
    keys = sorted(set(a) | set(b))
    return [k for k in keys if a.get(k) != b.get(k)]


def _event_context(event: Optional[Dict]) -> Dict:
    """The localization fields a divergent event carries."""
    out: Dict[str, object] = {}
    if not isinstance(event, dict):
        return out
    for key in ("seq", "event", "trace_id", "span_id", "region",
                "pass_index", "iteration", "backend",
                "worker", "slot", "dispatch"):
        if key in event:
            out[key] = event[key]
    return out


def _diff_event_level(
    name: str, a_events: List[Dict], b_events: List[Dict]
) -> Dict:
    index = first_divergent_index(a_events, b_events)
    if index is None:
        return _level(name, "identical")
    event_a = a_events[index] if index < len(a_events) else None
    event_b = b_events[index] if index < len(b_events) else None
    detail: Dict[str, object] = {
        "index": index,
        "a": event_a,
        "b": event_b,
        "fields_changed": _changed_fields(event_a, event_b),
        "context": _event_context(event_a if event_a is not None else event_b),
    }
    if event_a is None or event_b is None:
        detail["note"] = "one run ended here (strict prefix)"
    return _level(name, "divergent", detail)


def _flatten(payload: object, prefix: str = "") -> Dict[str, object]:
    if isinstance(payload, dict):
        out: Dict[str, object] = {}
        for key in sorted(payload):
            child = prefix + "." + str(key) if prefix else str(key)
            out.update(_flatten(payload[key], child))
        return out
    return {prefix: payload}


def _diff_metrics(a: Optional[Dict], b: Optional[Dict]) -> Dict:
    if a is None or b is None:
        return _level("summary-metrics", "skipped",
                      {"note": "metrics part missing from at least one bundle"})
    fa, fb = _flatten(a), _flatten(b)
    changed = [k for k in sorted(set(fa) | set(fb)) if fa.get(k) != fb.get(k)]
    if not changed:
        return _level("summary-metrics", "identical")
    first = changed[0]
    return _level(
        "summary-metrics",
        "divergent",
        {
            "changed_keys": len(changed),
            "first_key": first,
            "a": fa.get(first),
            "b": fb.get(first),
            "sample_keys": changed[:8],
        },
    )


def _diff_spans(a: Optional[Dict], b: Optional[Dict]) -> Dict:
    if a is None and b is None:
        return _level("span-tree", "skipped", {"note": "no span part recorded"})
    if a is None or b is None:
        return _level(
            "span-tree",
            "divergent",
            {"note": "span part present in only one bundle",
             "path": [], "fields_changed": []},
        )

    def walk(na: Dict, nb: Dict, path: Tuple[str, ...]) -> Optional[Dict]:
        fields = [k for k in ("name", "category", "self_seconds", "count",
                              "trace_id") if na.get(k) != nb.get(k)]
        if fields:
            return {
                "path": list(path) + [str(na.get("name"))],
                "fields_changed": fields,
                "a": {k: na.get(k) for k in fields},
                "b": {k: nb.get(k) for k in fields},
            }
        ca = na.get("children") or []
        cb = nb.get("children") or []
        for child_a, child_b in zip(ca, cb):
            found = walk(child_a, child_b, path + (str(na.get("name")),))
            if found is not None:
                return found
        if len(ca) != len(cb):
            extra = (ca if len(ca) > len(cb) else cb)[min(len(ca), len(cb))]
            return {
                "path": list(path) + [str(na.get("name"))],
                "fields_changed": ["children"],
                "note": "child %r present in only one tree"
                % extra.get("name"),
            }
        return None

    found = walk(a, b, ())
    if found is None:
        return _level("span-tree", "identical")
    return _level("span-tree", "divergent", found)


def _rng_key(entry: Dict) -> Dict:
    return {
        "region": entry.get("region"),
        "pass": entry.get("pass"),
        "iteration": entry.get("iteration"),
        "trace_id": entry.get("trace_id"),
    }


def _diff_rng(a_entries: List[Dict], b_entries: List[Dict],
              available: bool) -> Dict:
    if not available:
        return _level("rng-draws", "skipped",
                      {"note": "rng part missing from at least one bundle"})
    index = first_divergent_index(a_entries, b_entries)
    if index is None:
        return _level("rng-draws", "identical")
    entry_a = a_entries[index] if index < len(a_entries) else {}
    entry_b = b_entries[index] if index < len(b_entries) else {}
    detail: Dict[str, object] = {"entry_index": index}
    detail.update(_rng_key(entry_a or entry_b))
    if _rng_key(entry_a) != _rng_key(entry_b):
        detail["note"] = "iteration keys diverged (different control flow)"
        detail["a_key"] = _rng_key(entry_a)
        detail["b_key"] = _rng_key(entry_b)
        return _level("rng-draws", "divergent", detail)

    ants_a = entry_a.get("ants") or {}
    ants_b = entry_b.get("ants") or {}
    for ant in sorted(set(ants_a) | set(ants_b), key=int):
        lane_a = ants_a.get(ant)
        lane_b = ants_b.get(ant)
        if lane_a == lane_b:
            continue
        detail["ant"] = int(ant)
        detail["a_draws"] = None if lane_a is None else lane_a.get("n")
        detail["b_draws"] = None if lane_b is None else lane_b.get("n")
        values_a = (lane_a or {}).get("v")
        values_b = (lane_b or {}).get("v")
        if values_a is not None and values_b is not None:
            for k in range(max(len(values_a), len(values_b))):
                va = values_a[k] if k < len(values_a) else None
                vb = values_b[k] if k < len(values_b) else None
                if va != vb:
                    detail["draw_index"] = k
                    detail["a_value"] = va
                    detail["b_value"] = vb
                    break
        else:
            detail["note"] = (
                "digest-level bundle: divergence localized to the ant lane; "
                "record with draws=full for the exact draw index"
            )
        break
    return _level("rng-draws", "divergent", detail)


def _bytes_identical(a: RunBundle, b: RunBundle) -> bool:
    names = sorted(
        set(a.parts) | set(b.parts) | {"manifest.json"}
    )
    for name in names:
        pa = os.path.join(a.path, name)
        pb = os.path.join(b.path, name)
        if os.path.exists(pa) != os.path.exists(pb):
            return False
        if not os.path.exists(pa):
            continue
        with open(pa, "rb") as ha, open(pb, "rb") as hb:
            if ha.read() != hb.read():
                return False
    return True


def diff_loaded(a: RunBundle, b: RunBundle) -> Dict:
    """Diff two loaded bundles; returns the report payload."""
    rng_available = (
        a.manifest.get("draws", "digest") != "off"
        and b.manifest.get("draws", "digest") != "off"
        and (bool(a.rng) or bool(b.rng)
             or (not a.warnings and not b.warnings))
    )
    levels = [
        _diff_metrics(a.metrics, b.metrics),
        _diff_spans(a.spans, b.spans),
        _diff_event_level(
            "schedules",
            [s for s in a.schedules if s.get("kind") != "shard"],
            [s for s in b.schedules if s.get("kind") != "shard"],
        ),
        _diff_event_level(
            "shards",
            [s for s in a.schedules if s.get("kind") == "shard"],
            [s for s in b.schedules if s.get("kind") == "shard"],
        ),
        _diff_event_level(
            "kernel-launches",
            [e for e in a.events if e.get("event") == "kernel_launch"],
            [e for e in b.events if e.get("event") == "kernel_launch"],
        ),
        _diff_event_level(
            "iterations",
            [e for e in a.events if e.get("event") == "iteration"],
            [e for e in b.events if e.get("event") == "iteration"],
        ),
        _diff_rng(a.rng, b.rng, rng_available),
    ]

    divergent = [lv for lv in levels if lv["status"] == "divergent"]
    first_divergence: Optional[Dict] = None
    if divergent:
        finest = divergent[-1]  # ladder order == coarse-to-fine
        first_divergence = {"level": finest["level"]}
        first_divergence.update(finest.get("detail") or {})

    event_index = first_divergent_index(a.events, b.events)
    first_event: Optional[Dict] = None
    if event_index is not None:
        ea = a.events[event_index] if event_index < len(a.events) else None
        eb = b.events[event_index] if event_index < len(b.events) else None
        first_event = {
            "index": event_index,
            "context": _event_context(ea if ea is not None else eb),
            "fields_changed": _changed_fields(ea, eb),
        }

    warnings = ["A: " + w for w in a.warnings] + ["B: " + w for w in b.warnings]
    identical = not divergent and first_event is None
    return {
        "diff_schema": DIFF_SCHEMA,
        "bundle_a": a.path,
        "bundle_b": b.path,
        "identical": identical,
        "byte_identical": _bytes_identical(a, b),
        "partial": bool(warnings),
        "warnings": warnings,
        "levels": levels,
        "first_divergence": first_divergence,
        "first_event_divergence": first_event,
    }


def diff_bundles(path_a: str, path_b: str) -> Dict:
    """Load and diff two bundle directories."""
    return diff_loaded(load_bundle(path_a), load_bundle(path_b))


def render_report(report: Dict) -> str:
    """Human-readable rendering of a diff report."""
    lines = [
        "run-bundle diff",
        "  A: %s" % report["bundle_a"],
        "  B: %s" % report["bundle_b"],
    ]
    if report["identical"]:
        verdict = "identical"
        if report["byte_identical"]:
            verdict += " (byte-for-byte)"
        lines.append("  verdict: %s" % verdict)
    else:
        lines.append("  verdict: DIVERGENT")
    if report["partial"]:
        lines.append("  partial diff — bundle warnings:")
        for warning in report["warnings"]:
            lines.append("    ! %s" % warning)
    lines.append("  granularity ladder:")
    for level in report["levels"]:
        lines.append("    %-16s %s" % (level["level"], level["status"]))
    fd = report.get("first_divergence")
    if fd:
        lines.append("  first divergence [%s]:" % fd["level"])
        for key in ("region", "pass", "iteration", "trace_id", "entry_index",
                    "index", "first_key", "path", "ant", "draw_index",
                    "worker", "slot", "dispatch"):
            if fd.get(key) is not None:
                lines.append("    %s: %s" % (key, fd[key]))
        if fd.get("a_value") is not None or fd.get("b_value") is not None:
            lines.append("    a=%r b=%r" % (fd.get("a_value"), fd.get("b_value")))
        elif fd.get("a") is not None or fd.get("b") is not None:
            lines.append("    a=%s" % json.dumps(fd.get("a"), sort_keys=True))
            lines.append("    b=%s" % json.dumps(fd.get("b"), sort_keys=True))
        if fd.get("note"):
            lines.append("    note: %s" % fd["note"])
    fe = report.get("first_event_divergence")
    if fe:
        context = json.dumps(fe.get("context") or {}, sort_keys=True)
        lines.append(
            "  first divergent telemetry event: index %d  %s"
            % (fe["index"], context)
        )
        if fe.get("fields_changed"):
            lines.append("    fields changed: %s" % ", ".join(fe["fields_changed"]))
    return "\n".join(lines) + "\n"


def write_report(report: Dict, path: str) -> None:
    """Write the JSON report (sorted keys, byte-stable)."""
    with open(path, "w") as handle:
        handle.write(json.dumps(report, sort_keys=True, indent=2))
        handle.write("\n")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.diff",
        description="Diff two recorded run bundles down to the first "
        "divergent event.",
    )
    parser.add_argument("bundle_a", help="first run-bundle directory")
    parser.add_argument("bundle_b", help="second run-bundle directory")
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write the machine-readable report to PATH",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress the human-readable report (exit code only)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        report = diff_bundles(args.bundle_a, args.bundle_b)
    except TelemetryError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    if args.json:
        write_report(report, args.json)
    if not args.quiet:
        sys.stdout.write(render_report(report))
    return 0 if report["identical"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
