"""Canonical run bundles: record one run so it can be diffed against another.

The paper's reproducibility story is *bit identity*: two execution paths
(backends, partitions, resume paths) must produce byte-equal schedules per
seed. When they do not, a bare fingerprint mismatch says nothing about
*where* the runs forked. A **run bundle** captures everything a seeded run
decides — telemetry events, the derived metrics snapshot, the span tree,
every shipped/search schedule, and the per-ant RNG draw sequences — in a
byte-stable, wall-clock-free directory that :mod:`repro.obs.diff` can then
bisect to the first divergent event.

Bundle layout (all JSON sorted-keys, trailing newline, no timestamps)::

    <bundle>/
      manifest.json    bundle schema, draw level, part inventory
      events.jsonl     telemetry records, one JSON object per line
      metrics.json     MetricsAggregator snapshot replayed from events.jsonl
      spans.json       serialized span tree (only when a profiler ran)
      schedules.json   search/shipped/batch schedule records, in ship order
      rng.jsonl        per-(trace, pass, iteration) ant draw digests

Draw capture levels:

``digest``
    per iteration and ant: draw count plus a chained sha256 digest of the
    IEEE-754 bytes — enough to localize a fork to (iteration, ant).
``full``
    additionally stores the raw draw values, localizing to the exact draw
    index with both values in the report. Used by the test fixtures and
    ``REPRO_RECORD_DRAWS=full``.
``off``
    no RNG part (recording of events/schedules only).

Recording rides one ambient hook: the recorder's sink joins the telemetry
fan-out, while the RNG draw primitives, the scheduler iteration loops and
the pipeline all consult :func:`get_recorder`. With no recorder installed
every hook is a single ``None`` check, so recording off keeps runs
bit-identical.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

from ..errors import TelemetryError
from ..telemetry.schema import read_trace_lenient
from ..telemetry.sinks import Sink, _json_safe
from .context import current_trace

#: Version stamp of the bundle directory layout.
BUNDLE_SCHEMA = 1

#: Parts a complete bundle may carry, in canonical order.
BUNDLE_PARTS = (
    "events.jsonl",
    "metrics.json",
    "spans.json",
    "schedules.json",
    "rng.jsonl",
)

_DRAW_LEVELS = ("off", "digest", "full")

#: Length of the truncated chained draw digest (hex chars).
DRAW_DIGEST_LEN = 16


def _chain_digest(digest_hex: str, value: float) -> str:
    """Advance a chained draw digest by one IEEE-754 double."""
    h = hashlib.sha256()
    h.update(digest_hex.encode("ascii"))
    h.update(struct.pack("<d", value))
    return h.hexdigest()[:DRAW_DIGEST_LEN]


class _DrawLane:
    """One ant's draw accumulator within one iteration."""

    __slots__ = ("count", "digest", "values")

    def __init__(self, keep_values: bool):
        self.count = 0
        self.digest = ""
        self.values: Optional[List[float]] = [] if keep_values else None

    def observe(self, value: float) -> None:
        self.count += 1
        self.digest = _chain_digest(self.digest, value)
        if self.values is not None:
            self.values.append(value)

    def payload(self) -> Dict[str, object]:
        out: Dict[str, object] = {"n": self.count, "d": self.digest}
        if self.values is not None:
            out["v"] = list(self.values)
        return out


class RecordingSink(Sink):
    """Telemetry sink that buffers JSON-safe copies of every record."""

    def __init__(self, recorder: "RunRecorder"):
        self._recorder = recorder

    def write(self, record: Dict) -> None:
        self._recorder.events.append(_json_safe(record))


class RunRecorder:
    """Accumulates one run's bundle parts in memory, then saves them.

    The recorder is passive: install its :attr:`sink` into the telemetry
    fan-out and enter :func:`recording_scope` (which wires the RNG draw
    observer and the ambient iteration hooks), run the workload, then call
    :meth:`save`.
    """

    def __init__(self, draws: str = "digest"):
        if draws not in _DRAW_LEVELS:
            raise TelemetryError(
                "unknown draw level %r (expected one of %s)"
                % (draws, ", ".join(_DRAW_LEVELS))
            )
        self.draws = draws
        self.events: List[Dict] = []
        self.schedules: List[Dict] = []
        self.spans: Optional[Dict] = None
        self.sink = RecordingSink(self)
        #: rng.jsonl entries in begin order; each is the serializable dict
        #: minus the per-ant lanes, which live in ``_lanes`` until flushed.
        self._rng_entries: List[Dict] = []
        self._lanes: Optional[Dict[int, _DrawLane]] = None

    # -- iteration / draw hooks (called via the ambient recorder) -----------

    def begin_iteration(self, region: str, pass_index: int, iteration: int) -> None:
        """Mark an ACO iteration boundary; subsequent draws key under it."""
        self._flush_lanes()
        trace = current_trace()
        self._rng_entries.append(
            {
                "region": region,
                "pass": pass_index,
                "iteration": iteration,
                "trace_id": trace.trace_id if trace is not None else None,
            }
        )
        self._lanes = {}

    def observe_draw(self, ant: int, value: float) -> None:
        """RNG draw callback (the stream primitives call the ambient recorder)."""
        if self.draws == "off":
            return
        if self._lanes is None:
            # Draws outside any marked iteration (e.g. a future warm-up
            # phase) still land in a keyed entry rather than vanishing.
            self.begin_iteration("", -1, -1)
        lanes = self._lanes
        assert lanes is not None
        lane = lanes.get(ant)
        if lane is None:
            lane = lanes[ant] = _DrawLane(self.draws == "full")
        lane.observe(value)

    def _flush_lanes(self) -> None:
        if self._lanes is None:
            return
        entry = self._rng_entries[-1]
        entry["ants"] = {
            str(ant): lane.payload() for ant, lane in sorted(self._lanes.items())
        }
        self._lanes = None

    # -- schedule / span capture --------------------------------------------

    def record_schedule(self, kind: str, **fields: object) -> None:
        """Append one schedule record (``kind`` in search/shipped/batch)."""
        trace = current_trace()
        record = {"kind": kind}
        if trace is not None:
            record.setdefault("trace_id", trace.trace_id)
        record.update(_json_safe(fields))
        self.schedules.append(record)

    def set_spans(self, payload: Optional[Dict]) -> None:
        """Attach a serialized span tree (see :func:`span_tree_payload`)."""
        self.spans = payload

    # -- persistence --------------------------------------------------------

    def save(self, path: str) -> str:
        """Write the bundle directory; returns ``path``."""
        self._flush_lanes()
        os.makedirs(path, exist_ok=True)
        parts: List[str] = []

        with open(os.path.join(path, "events.jsonl"), "w") as handle:
            for record in self.events:
                handle.write(json.dumps(record, sort_keys=True))
                handle.write("\n")
        parts.append("events.jsonl")

        # The metrics part is *derived* from the recorded events at save
        # time, so an offline replay of events.jsonl reproduces it exactly
        # (the PR 6 live-vs-replay identity, restated as a file).
        from .aggregate import MetricsAggregator

        aggregator = MetricsAggregator()
        aggregator.consume_many(self.events)
        with open(os.path.join(path, "metrics.json"), "w") as handle:
            handle.write(aggregator.snapshot_json())
        parts.append("metrics.json")

        if self.spans is not None:
            _write_json(os.path.join(path, "spans.json"), self.spans)
            parts.append("spans.json")

        _write_json(os.path.join(path, "schedules.json"), self.schedules)
        parts.append("schedules.json")

        if self.draws != "off":
            with open(os.path.join(path, "rng.jsonl"), "w") as handle:
                for entry in self._rng_entries:
                    handle.write(json.dumps(entry, sort_keys=True))
                    handle.write("\n")
            parts.append("rng.jsonl")

        manifest = {
            "bundle_schema": BUNDLE_SCHEMA,
            "draws": self.draws,
            "parts": parts,
            "events": len(self.events),
            "schedules": len(self.schedules),
            "rng_entries": len(self._rng_entries) if self.draws != "off" else 0,
        }
        _write_json(os.path.join(path, "manifest.json"), manifest)
        return path


def _write_json(path: str, payload: object) -> None:
    with open(path, "w") as handle:
        handle.write(json.dumps(payload, sort_keys=True, indent=2))
        handle.write("\n")


def span_tree_payload(root) -> Dict:
    """Serialize a profiler span tree into a bundle-stable nested dict.

    Children are emitted in insertion order (which is deterministic: spans
    are created by the run itself), keyed into a list so the JSON is stable
    without relying on dict-key stringification of tuple keys.
    """
    node = {
        "name": root.name,
        "category": root.category,
        "self_seconds": root.self_seconds,
        "count": root.count,
    }
    if root.trace_id is not None:
        node["trace_id"] = root.trace_id
    children = [span_tree_payload(child) for child in root.children.values()]
    if children:
        node["children"] = children
    return node


# -- ambient recorder ------------------------------------------------------

_RECORDER: Optional[RunRecorder] = None


def get_recorder() -> Optional[RunRecorder]:
    """The ambient recorder, or None when recording is off."""
    return _RECORDER


def set_recorder(recorder: Optional[RunRecorder]) -> Optional[RunRecorder]:
    """Install (or clear) the ambient recorder; returns the previous one."""
    global _RECORDER
    previous = _RECORDER
    _RECORDER = recorder
    return previous


@contextmanager
def recording_scope(recorder: RunRecorder) -> Iterator[RunRecorder]:
    """Install ``recorder`` as the ambient recorder.

    The scheduler loops, the RNG draw primitives and the pipeline all reach
    the ambient recorder through :func:`get_recorder`. The telemetry sink is
    *not* installed here — compose the recorder's :attr:`~RunRecorder.sink`
    into the run's sink fan-out separately (the CLI tees it; tests hand it
    straight to :class:`~repro.telemetry.Telemetry`).
    """
    previous = set_recorder(recorder)
    try:
        yield recorder
    finally:
        set_recorder(previous)


@contextmanager
def record_run(path: str, draws: str = "digest") -> Iterator[RunRecorder]:
    """All-in-one recording scope: telemetry session + hooks + save.

    Creates a fresh :class:`~repro.telemetry.Telemetry` backed by the
    recorder's sink, installs it as the process telemetry, and writes the
    bundle to ``path`` on clean exit.
    """
    from ..telemetry import Telemetry, telemetry_session

    recorder = RunRecorder(draws=draws)
    telemetry = Telemetry(sink=recorder.sink)
    with telemetry_session(telemetry), recording_scope(recorder):
        yield recorder
    recorder.save(path)


# -- loading ---------------------------------------------------------------


class RunBundle:
    """A loaded bundle plus any leniency warnings collected while reading."""

    def __init__(self, path: str):
        self.path = path
        self.manifest: Dict = {}
        self.events: List[Dict] = []
        self.metrics: Optional[Dict] = None
        self.spans: Optional[Dict] = None
        self.schedules: List[Dict] = []
        self.rng: List[Dict] = []
        self.warnings: List[str] = []

    @property
    def parts(self) -> List[str]:
        return list(self.manifest.get("parts", []))


def load_bundle(path: str) -> RunBundle:
    """Load a bundle directory leniently.

    Missing or truncated parts do not raise: each degrades to an empty
    part plus a warning, mirroring ``read_trace_lenient`` — a bundle cut
    short by a crash should still diff as far as it goes, with the differ
    surfacing the warnings as a partial-diff notice.
    """
    bundle = RunBundle(path)
    if not os.path.isdir(path):
        raise TelemetryError("run bundle %r is not a directory" % path)

    manifest_path = os.path.join(path, "manifest.json")
    manifest = _read_json(manifest_path, bundle.warnings)
    if isinstance(manifest, dict):
        bundle.manifest = manifest
        if manifest.get("bundle_schema") != BUNDLE_SCHEMA:
            bundle.warnings.append(
                "manifest.json: bundle_schema %r != supported %d"
                % (manifest.get("bundle_schema"), BUNDLE_SCHEMA)
            )
    else:
        bundle.warnings.append("manifest.json: missing or unreadable")

    events_path = os.path.join(path, "events.jsonl")
    if os.path.exists(events_path):
        bundle.events, skipped = read_trace_lenient(events_path)
        if skipped:
            bundle.warnings.append(
                "events.jsonl: skipped %d malformed line(s) (truncated run?)"
                % skipped
            )
    else:
        bundle.warnings.append("events.jsonl: missing")

    metrics = _read_json(os.path.join(path, "metrics.json"), bundle.warnings)
    bundle.metrics = metrics if isinstance(metrics, dict) else None

    if "spans.json" in bundle.parts or os.path.exists(os.path.join(path, "spans.json")):
        spans = _read_json(os.path.join(path, "spans.json"), bundle.warnings)
        bundle.spans = spans if isinstance(spans, dict) else None

    schedules = _read_json(os.path.join(path, "schedules.json"), bundle.warnings)
    bundle.schedules = schedules if isinstance(schedules, list) else []

    rng_path = os.path.join(path, "rng.jsonl")
    declared_rng = bundle.manifest.get("draws", "digest") != "off"
    if os.path.exists(rng_path):
        bundle.rng, skipped = _read_jsonl_lenient(rng_path)
        if skipped:
            bundle.warnings.append(
                "rng.jsonl: skipped %d malformed line(s) (truncated run?)" % skipped
            )
    elif declared_rng and bundle.manifest:
        bundle.warnings.append("rng.jsonl: missing")

    expected = bundle.manifest.get("events")
    if isinstance(expected, int) and expected != len(bundle.events):
        bundle.warnings.append(
            "events.jsonl: manifest declares %d event(s), read %d"
            % (expected, len(bundle.events))
        )
    return bundle


def _read_json(path: str, warnings: List[str]) -> object:
    if not os.path.exists(path):
        warnings.append("%s: missing" % os.path.basename(path))
        return None
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, ValueError) as exc:
        warnings.append("%s: unreadable (%s)" % (os.path.basename(path), exc))
        return None


def _read_jsonl_lenient(path: str) -> Tuple[List[Dict], int]:
    records: List[Dict] = []
    skipped = 0
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                skipped += 1
                continue
            if isinstance(record, dict):
                records.append(record)
            else:
                skipped += 1
    return records, skipped
