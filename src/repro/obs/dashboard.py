"""The live terminal dashboard: one screen of operational truth.

Renders a :class:`~repro.obs.aggregate.MetricsAggregator` as a compact
ASCII panel: rolling throughput (regions per *simulated* second — the
only clock the reproduction has), latency percentiles, the construction
backend mix, the resilience counters and the deadline-SLO/error-budget
panel with its burn rate.

Two entry points:

* ``repro <experiment> --watch`` — the CLI installs an
  :class:`~repro.obs.aggregate.AggregatingSink` and renders the panel
  after each experiment (and CI runs with ``--watch`` disabled, reading
  the exports instead);
* ``python -m repro.obs.dashboard TRACE.jsonl`` — fold a recorded trace
  and render once; add ``--follow`` to poll the file as a run appends to
  it (the only place in the subsystem that touches the wall clock, and
  only to pace polling — never to measure).
"""

from __future__ import annotations

from typing import List, Optional

from .aggregate import MetricsAggregator
from .slo import DEFAULT_SLO_TARGET

_WIDTH = 66
_BAR = 24


def _bar(fraction: float, width: int = _BAR) -> str:
    filled = int(round(max(0.0, min(1.0, fraction)) * width))
    return "#" * filled + "." * (width - filled)


def _us(seconds: float) -> str:
    return "%.1f us" % (seconds * 1e6)


def _rule(title: str) -> str:
    body = "== %s " % title
    return body + "=" * max(0, _WIDTH - len(body))


def render_dashboard(
    aggregator: MetricsAggregator, title: str = "repro.obs dashboard"
) -> str:
    """The full panel as a string (deterministic for a given aggregator)."""
    c = aggregator.counters
    lines: List[str] = [_rule(title)]
    lines.append(
        "events %-10d traces %-8d regions %-8d aco-invoked %d"
        % (
            aggregator.events,
            aggregator.traces,
            int(c.get("regions.total", 0)),
            int(c.get("regions.aco_invoked", 0)),
        )
    )

    throughput = aggregator.throughput()
    lines.append(
        "throughput  %.1f regions/s (simulated; %.1f us scheduling total)"
        % (
            throughput["regions_per_simulated_second"],
            throughput["simulated_seconds"] * 1e6,
        )
    )

    latency = aggregator.histograms.get("region.latency_seconds")
    if latency is not None and latency.count:
        lines.append(_rule("region latency"))
        peak = latency.quantile(0.99) or 1.0
        for label, q in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99)):
            value = latency.quantile(q)
            lines.append(
                "  %s %12s  |%s|" % (label, _us(value), _bar(value / peak))
            )

    backends = {
        name.rsplit(".", 1)[-1]: 0.0
        for name in c if name.startswith("kernel.seconds.")
    }
    for name, value in c.items():
        if name.startswith("kernel.seconds."):
            backends[name.rsplit(".", 1)[-1]] += value
    total_kernel = sum(backends.values())
    if total_kernel > 0:
        lines.append(_rule("backend mix (kernel seconds)"))
        for backend in sorted(backends):
            share = backends[backend] / total_kernel
            lines.append(
                "  %-12s %12s  %5.1f%%  |%s|"
                % (backend, _us(backends[backend]), 100.0 * share, _bar(share))
            )

    lost = {
        name.rsplit(".", 1)[-1]: value
        for name, value in c.items()
        if name.startswith("kernel.lost_seconds.")
    }
    total_lost = sum(lost.values())
    if total_lost > 0:
        lines.append(_rule("fault-lost seconds by backend"))
        for backend in sorted(lost):
            share = lost[backend] / total_lost
            lines.append(
                "  %-12s %12s  %5.1f%%  |%s|"
                % (backend, _us(lost[backend]), 100.0 * share, _bar(share))
            )

    decisions = sorted(
        (name.rsplit(".", 1)[-1], int(value))
        for name, value in c.items()
        if name.startswith("regions.decision.")
    )
    if decisions:
        lines.append(
            "decisions   "
            + "  ".join("%s=%d" % (name, count) for name, count in decisions)
        )

    faults = int(c.get("resilience.faults.total", 0))
    if faults or c.get("resilience.retries") or c.get("resilience.degrades"):
        by_class = sorted(
            (name.split(".")[-1], int(value))
            for name, value in c.items()
            if name.startswith("resilience.faults.")
            and not name.endswith(".total")
        )
        detail = (
            " (%s)" % ", ".join("%s %d" % (k, v) for k, v in by_class)
            if by_class
            else ""
        )
        lines.append(_rule("resilience"))
        lines.append(
            "  faults %d%s  retries %d  resumes %d  degrades %d  "
            "deadline-trips %d"
            % (
                faults,
                detail,
                int(c.get("resilience.retries", 0)),
                int(c.get("resilience.checkpoint_resumes", 0)),
                int(c.get("resilience.degrades", 0)),
                int(c.get("resilience.deadline_trips", 0)),
            )
        )

    if c.get("fleet.batches"):
        lines.append(_rule("fleet"))
        lines.append(
            "  shards %d  dispatches %d  reassignments %d  recovered %d  "
            "restarts %d  stragglers %d"
            % (
                int(aggregator.gauges.get("fleet.shards", 0)),
                int(c.get("fleet.dispatches", 0)),
                int(c.get("fleet.reassignments", 0)),
                int(c.get("fleet.recovered_regions", 0)),
                int(c.get("fleet.restarts", 0)),
                int(c.get("fleet.stragglers", 0)),
            )
        )
        worker_ids = sorted(
            int(name.split(".")[2])
            for name in c
            if name.startswith("fleet.worker.") and name.endswith(".dispatches")
        )
        peak = max(
            (c.get("fleet.worker.%d.dispatches" % w, 0.0) for w in worker_ids),
            default=0.0,
        ) or 1.0
        for worker in worker_ids:
            dispatches = c.get("fleet.worker.%d.dispatches" % worker, 0.0)
            faults = int(c.get("fleet.worker.%d.faults" % worker, 0))
            label = "host" if worker < 0 else "w%d" % worker
            lines.append(
                "  %-6s dispatches %-5d faults %-4d |%s|"
                % (label, int(dispatches), faults, _bar(dispatches / peak))
            )

    slo = aggregator.slo_report()
    lines.append(_rule("SLO: %.1f%% of regions under deadline" % (100 * slo.target)))
    flag = "ok" if slo.healthy else "BREACH"
    lines.append(
        "  compliance %6.2f%%  violations %d/%d  budget burned %5.1f%%  "
        "burn-rate %.2fx  [%s]"
        % (
            100.0 * slo.compliance,
            slo.violations,
            slo.regions,
            100.0 * slo.budget_consumed,
            slo.burn_rate,
            flag,
        )
    )
    lines.append("=" * _WIDTH)
    return "\n".join(lines) + "\n"


def main(argv: Optional[List[str]] = None) -> int:
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        prog="repro.obs.dashboard",
        description="Render the observability dashboard from a JSONL trace.",
    )
    parser.add_argument("trace", help="path to a JSONL telemetry trace")
    parser.add_argument(
        "--slo-target", type=float, default=DEFAULT_SLO_TARGET,
        help="deadline-SLO target fraction (default %(default)s)",
    )
    parser.add_argument(
        "--follow", action="store_true",
        help="poll the trace file and re-render as a live run appends",
    )
    parser.add_argument(
        "--interval", type=float, default=1.0,
        help="polling interval in wall seconds for --follow (default 1.0)",
    )
    args = parser.parse_args(argv)

    from .aggregate import aggregate_trace

    try:
        aggregator, skipped = aggregate_trace(args.trace, slo_target=args.slo_target)
    except OSError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    if skipped:
        print("[skipped %d invalid line(s)]" % skipped, file=sys.stderr)
    print(render_dashboard(aggregator), end="")

    if not args.follow:
        return 0

    import time

    last_events = aggregator.events
    try:
        while True:
            time.sleep(max(0.1, args.interval))
            aggregator, _ = aggregate_trace(args.trace, slo_target=args.slo_target)
            if aggregator.events != last_events:
                last_events = aggregator.events
                print("\033[2J\033[H", end="")
                print(render_dashboard(aggregator), end="")
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
