"""Deterministic trace-context propagation (the causal spine of ``repro.obs``).

A :class:`TraceContext` carries the W3C-style triple ``trace_id`` /
``span_id`` / ``parent_id`` for one scheduling region's journey through
the system: pipeline -> invocation filter -> ACO scheduler -> backend ->
resilience ladder (retries, checkpoint resumes, engine downgrades). Every
telemetry event emitted while a context is installed is stamped with the
triple (see :meth:`repro.telemetry.Telemetry.emit`), and the span profiler
keys same-named spans by ``(name, trace_id)`` so per-region attribution
stays separable — which is exactly what lets one region's whole fault
story reconstruct as a single causal trace from a flat JSONL file.

Ids are **deterministic**: there is no wall clock and no RNG anywhere in
their derivation. A region's ``trace_id`` is a SHA-256 digest of the
region fingerprint (name + instruction count) and the scheduling seed;
child span ids chain the parent span id with a structural label
(``pass1``, ``attempt3``). Two seeded runs therefore produce *identical*
ids — traces diff cleanly, and the metrics snapshots built from them are
byte-stable.

The context stack is process-wide and single-threaded, matching the
reproduction's execution model. Installation is idempotent by design:
:func:`region_trace` reuses an ambient context instead of opening a new
one, so the pipeline, the multi-region batcher, the resilience ladder and
the schedulers can all guard their entry points without fighting over who
owns the region's trace — the outermost layer wins, and every retry of a
region (which rotates its *seed*) still shares the trace the region
started with.
"""

from __future__ import annotations

import hashlib
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

__all__ = [
    "TraceContext",
    "current_trace",
    "trace_scope",
    "region_trace",
    "current_worker",
    "worker_scope",
]

#: Hex digits kept for a trace id / a span id.
TRACE_ID_LEN = 16
SPAN_ID_LEN = 8

_SEP = "\x1f"


def _digest(*parts: object) -> str:
    payload = _SEP.join(str(p) for p in parts).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


class TraceContext:
    """One span's identity within one trace (immutable value object)."""

    __slots__ = ("trace_id", "span_id", "parent_id")

    def __init__(self, trace_id: str, span_id: str, parent_id: Optional[str] = None):
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id

    @classmethod
    def for_region(cls, region: str, size: int, seed: int) -> "TraceContext":
        """The root context of one region's scheduling request.

        ``region``/``size`` fingerprint the region, ``seed`` separates
        repeated compilations of the same region (two suite runs with
        different seeds must not share a trace). No wall clock: the same
        inputs always yield the same ids.
        """
        trace_id = _digest("trace", region, size, seed)[:TRACE_ID_LEN]
        span_id = _digest(trace_id, "region")[:SPAN_ID_LEN]
        return cls(trace_id=trace_id, span_id=span_id, parent_id=None)

    def child(self, label: str) -> "TraceContext":
        """A child span of this one (same trace, chained span id)."""
        span_id = _digest(self.trace_id, self.span_id, label)[:SPAN_ID_LEN]
        return TraceContext(self.trace_id, span_id, parent_id=self.span_id)

    def fields(self) -> Dict[str, str]:
        """The triple as telemetry-event fields (parent omitted at root)."""
        out = {"trace_id": self.trace_id, "span_id": self.span_id}
        if self.parent_id is not None:
            out["parent_id"] = self.parent_id
        return out

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TraceContext)
            and self.trace_id == other.trace_id
            and self.span_id == other.span_id
            and self.parent_id == other.parent_id
        )

    def __hash__(self) -> int:
        return hash((self.trace_id, self.span_id, self.parent_id))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "TraceContext(trace=%s, span=%s, parent=%s)" % (
            self.trace_id, self.span_id, self.parent_id,
        )


#: The process-wide context stack (single-threaded, like the simulation).
_STACK: List[TraceContext] = []


def current_trace() -> Optional[TraceContext]:
    """The innermost installed context, or None when tracing is ambient-off."""
    return _STACK[-1] if _STACK else None


@contextmanager
def trace_scope(context: TraceContext) -> Iterator[TraceContext]:
    """Install ``context`` for the duration of the ``with`` block."""
    _STACK.append(context)
    try:
        yield context
    finally:
        _STACK.pop()


#: Ambient shard-worker identity (fleet runs only; see repro.fleet). Like
#: the trace stack: process-wide, single-threaded, innermost wins.
_WORKER_STACK: List[int] = []


def current_worker() -> Optional[int]:
    """The ambient shard worker id, or None outside a fleet dispatch."""
    return _WORKER_STACK[-1] if _WORKER_STACK else None


@contextmanager
def worker_scope(worker: int) -> Iterator[int]:
    """Install a shard-worker identity for the ``with`` block.

    Every telemetry event emitted inside the block is stamped with a
    ``worker`` field (explicit fields win — the fleet's own events pass
    theirs), so one worker's launches, iterations and faults attribute to
    it in a flat trace. Identity only: installing a worker scope never
    touches costs, RNG or schedules.
    """
    _WORKER_STACK.append(int(worker))
    try:
        yield int(worker)
    finally:
        _WORKER_STACK.pop()


@contextmanager
def region_trace(region: str, size: int, seed: int) -> Iterator[TraceContext]:
    """Ensure a region context is installed for the ``with`` block.

    Reuses the ambient context when one is already active — the ladder's
    retries call the schedulers with *rotated* seeds, and a fresh context
    per attempt would split one region's story across several trace ids.
    The outermost caller (pipeline region, batch slot, or a scheduler used
    directly) establishes the trace; everyone beneath it inherits.
    """
    ambient = current_trace()
    if ambient is not None:
        yield ambient
        return
    with trace_scope(TraceContext.for_region(region, size, seed)) as context:
        yield context
