"""The metrics aggregation engine: fold the event stream into distributions.

:class:`MetricsAggregator` consumes schema-v1 telemetry records — live
through an :class:`AggregatingSink`, or offline from a recorded JSONL
trace — and folds them into counters, gauges and exponential-bucket
histograms denominated in **cost-model seconds**. Everything it produces
is deterministic: the events carry no wall clock, the histogram bucket
bounds are exact binary floats, and :meth:`MetricsAggregator.snapshot_json`
serializes with sorted keys, so two identical seeded runs yield
byte-identical snapshots (the property the CI golden diff gates).

The aggregator is an *observer*: it reads event dicts and never imports a
scheduler, touches an RNG or charges a cost model, so enabling it cannot
perturb a run ("observability observes, never steers").

Overhead is modelled, like every other second in the reproduction: one
histogram/counter update is a dict lookup plus an add
(:data:`MODELED_UPDATE_SECONDS`), while the telemetry bus already pays a
JSON serialization per event (:data:`MODELED_EMIT_SECONDS`); the
``bench_obs`` baseline gates the ratio (< 5%).
"""

from __future__ import annotations

import json
import math
from typing import Dict, Iterable, List, Optional, Tuple

from ..telemetry.sinks import Sink
from .slo import DEFAULT_SLO_TARGET, SLOReport

#: Version of the aggregator snapshot layout.
SNAPSHOT_SCHEMA = 1

#: Modelled host cost of one aggregator metric update (dict lookup + add).
MODELED_UPDATE_SECONDS = 50e-9

#: Modelled host cost the telemetry bus already pays per emitted event
#: (schema validation + JSON serialization to the sink).
MODELED_EMIT_SECONDS = 5e-6

#: Per-octave sub-step mantissas of the exponential bucket layout:
#: 2**(0/4), 2**(1/4), 2**(2/4), 2**(3/4) as exact literals. Bucket
#: bounds are ``mantissa * 2.0**octave`` — scaling by powers of two is
#: exact in IEEE 754, so the bounds are bit-identical on every platform
#: (no libm ``pow`` in sight).
_SUBSTEPS: Tuple[float, ...] = (
    1.0,
    1.189207115002721,
    1.4142135623730951,
    1.681792830507429,
)

#: 2**(1/8) as an exact literal: the geometric half-step used for
#: mid-bucket quantile estimates.
_HALF_STEP = 1.0905077326652577

#: Maximum relative error of a quantile estimate for in-range values:
#: the estimate sits at the geometric middle of a growth-2**(1/4) bucket,
#: so it is off by at most a half-step (about 9.05%).
QUANTILE_ERROR_BOUND = _HALF_STEP - 1.0


class ExpHistogram:
    """An exponential-bucket histogram with bounded-relative-error quantiles.

    Bucket upper bounds grow by ``2**(1/4)`` per bucket, spanning octaves
    ``[lo_octave, hi_octave)`` (defaults cover ~0.9 ns .. ~4096 s — every
    latency the cost models produce). Bucket 0 is ``(0, bounds[0]]``;
    values above the last bound, and non-finite values, land in the
    overflow bucket. Zero and negative observations count but occupy no
    bucket (they have no order of magnitude).

    :meth:`quantile` walks the cumulative counts and returns the geometric
    middle of the selected bucket, clamped into the observed ``[min, max]``
    range — the relative error for in-range values is at most
    :data:`QUANTILE_ERROR_BOUND`.
    """

    __slots__ = ("bounds", "counts", "count", "sum", "min", "max", "zeros", "overflow")

    def __init__(self, lo_octave: int = -30, hi_octave: int = 12):
        if hi_octave <= lo_octave:
            raise ValueError("empty octave range [%d, %d)" % (lo_octave, hi_octave))
        self.bounds: Tuple[float, ...] = tuple(
            m * 2.0 ** octave
            for octave in range(lo_octave, hi_octave)
            for m in _SUBSTEPS
        )
        self.counts: Dict[int, int] = {}
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.zeros = 0
        self.overflow = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        if not math.isfinite(value):
            self.overflow += 1
            return
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        if value <= 0.0:
            self.zeros += 1
            return
        if value > self.bounds[-1]:
            self.overflow += 1
            return
        index = self._bucket_index(value)
        self.counts[index] = self.counts.get(index, 0) + 1

    def _bucket_index(self, value: float) -> int:
        """Binary search: the first bucket whose bound is >= value."""
        lo, hi = 0, len(self.bounds) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self.bounds[mid] >= value:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (0 <= q <= 1) of the observations."""
        if self.count == 0:
            return 0.0
        rank = max(1, int(math.ceil(q * self.count)))
        seen = self.zeros
        if rank <= seen:
            return 0.0
        for index in sorted(self.counts):
            seen += self.counts[index]
            if rank <= seen:
                estimate = self.bounds[index] / _HALF_STEP
                return self._clamp(estimate)
        # Overflow bucket: the best deterministic estimate is the max.
        return self.max if self.max is not None else self.bounds[-1]

    def _clamp(self, value: float) -> float:
        if self.min is not None:
            value = max(value, self.min)
        if self.max is not None:
            value = min(value, self.max)
        return value

    def nonzero_buckets(self) -> List[Tuple[float, int]]:
        """``(upper_bound, count)`` for every occupied bucket, in order."""
        return [(self.bounds[i], self.counts[i]) for i in sorted(self.counts)]

    def snapshot(self) -> Dict[str, object]:
        """A plain, deterministic dict (sparse bucket encoding)."""
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "zeros": self.zeros,
            "overflow": self.overflow,
            "buckets": {str(i): self.counts[i] for i in sorted(self.counts)},
        }


#: Quantiles reported per histogram in snapshots and exports.
REPORTED_QUANTILES: Tuple[Tuple[str, float], ...] = (
    ("p50", 0.50),
    ("p95", 0.95),
    ("p99", 0.99),
)


class MetricsAggregator:
    """Folds schema-v1 telemetry records into a deterministic snapshot."""

    def __init__(self, slo_target: float = DEFAULT_SLO_TARGET):
        if not 0.0 < slo_target <= 1.0:
            raise ValueError("SLO target must be in (0, 1], got %r" % slo_target)
        self.slo_target = slo_target
        self.events = 0
        #: Metric mutations performed — the bench's overhead numerator.
        self.updates = 0
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, ExpHistogram] = {}
        self._traces: set = set()
        self._violations: set = set()
        self._regions: set = set()

    # -- primitive updates (each counts toward the overhead model) ----------

    def _inc(self, name: str, amount: float = 1.0) -> None:
        self.counters[name] = self.counters.get(name, 0.0) + amount
        self.updates += 1

    def _set(self, name: str, value: float) -> None:
        self.gauges[name] = float(value)
        self.updates += 1

    def _observe(self, name: str, value: float) -> None:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = ExpHistogram()
        hist.observe(value)
        self.updates += 1

    # -- folding ------------------------------------------------------------

    def consume(self, record: Dict) -> None:
        """Fold one telemetry record (unknown event types are counted only)."""
        self.events += 1
        trace_id = record.get("trace_id")
        if trace_id is not None:
            self._traces.add(trace_id)
        handler = _HANDLERS.get(record.get("event"))
        if handler is not None:
            handler(self, record)

    def consume_many(self, records: Iterable[Dict]) -> None:
        for record in records:
            self.consume(record)

    @staticmethod
    def _region_key(record: Dict) -> object:
        """Stable identity of a record's region (trace id when stamped)."""
        return record.get("trace_id") or record.get("region")

    def _on_region_end(self, record: Dict) -> None:
        self._regions.add(self._region_key(record))
        decision = record["decision"]
        self._inc("regions.total")
        self._inc("regions.decision.%s" % decision)
        if record["aco_invoked"]:
            self._inc("regions.aco_invoked")
        self._observe("region.latency_seconds", record["scheduling_seconds"])
        gained = record["final_occupancy"] - record["heuristic_occupancy"]
        if gained:
            self._inc("regions.occupancy_gained", gained)
        if decision in ("degraded", "unrecoverable"):
            self._violations.add(self._region_key(record))

    def _on_pass_end(self, record: Dict) -> None:
        if not record["invoked"]:
            return
        prefix = "pass%d" % record["pass_index"]
        self._inc("%s.regions" % prefix)
        self._inc("%s.iterations" % prefix, record["iterations"])
        self._observe("%s.latency_seconds" % prefix, record["seconds"])

    def _on_kernel_launch(self, record: Dict) -> None:
        backend = record.get("backend", "unknown")
        self._inc("kernel.launches")
        self._inc(
            "kernel.seconds.pass%d.%s" % (record["pass_index"], backend),
            record["kernel_seconds"],
        )
        self._inc("kernel.transfer_seconds", record["transfer_seconds"])
        self._inc("kernel.launch_seconds", record["launch_seconds"])
        self._inc("kernel.dead_ants", record["dead_ants"])

    def _on_transfer(self, record: Dict) -> None:
        self._inc("transfer.bytes", record["bytes"])
        self._inc("transfer.calls", record["calls"])

    def _on_fault(self, record: Dict) -> None:
        self._inc("resilience.faults.total")
        self._inc("resilience.faults.%s" % record["fault_class"])
        self._observe("fault.lost_seconds", record["seconds"])
        # Attribute burned seconds to the engine that burned them — fault
        # events carry the attempt's backend (the ladder's current rung, or
        # the scheduler backend on single-attempt faults).
        backend = record.get("backend") or record.get("rung") or "unknown"
        self._inc("kernel.lost_seconds.%s" % backend, record["seconds"])

    def _on_retry(self, record: Dict) -> None:
        self._inc("resilience.retries")
        if record["resumed"]:
            self._inc("resilience.checkpoint_resumes")

    def _on_degrade(self, record: Dict) -> None:
        self._inc("resilience.degrades")
        self._inc(
            "resilience.degrade.%s_to_%s"
            % (record["from_rung"], record["to_rung"])
        )

    def _on_deadline(self, record: Dict) -> None:
        self._inc("resilience.deadline_trips")
        deadline = record["deadline_seconds"]
        if deadline > 0:
            self._observe(
                "deadline.budget_consumed_fraction",
                record["spent_seconds"] / deadline,
            )
        self._violations.add(self._region_key(record))

    def _on_suite_end(self, record: Dict) -> None:
        self._inc("suite.runs")
        self._inc("suite.scheduling_seconds", record["scheduling_seconds"])
        self._inc("suite.base_seconds", record["base_seconds"])

    def _on_batch_end(self, record: Dict) -> None:
        self._inc("batch.launches")
        self._inc("batch.regions", record["num_regions"])
        self._inc("batch.seconds", record["seconds"])
        self._inc("batch.unbatched_seconds", record["unbatched_seconds"])
        self._set("batch.amortization_speedup", record["amortization_speedup"])
        failed = record.get("failed_regions", 0)
        if failed:
            self._inc("batch.failed_regions", failed)

    def _on_verify(self, record: Dict) -> None:
        self._inc("verify.checks", record["checks"])
        self._inc("verify.violations", record["violations"])

    def _on_fleet_end(self, record: Dict) -> None:
        self._inc("fleet.batches")
        self._inc("fleet.regions", record["num_regions"])
        self._inc("fleet.seconds", record["seconds"])
        self._inc("fleet.reassignments", record["reassignments"])
        recovered = record.get("recovered_regions", 0)
        if recovered:
            self._inc("fleet.recovered_regions", recovered)
        self._set("fleet.shards", record["num_shards"])

    def _on_shard_dispatch(self, record: Dict) -> None:
        self._inc("fleet.dispatches")
        self._inc("fleet.worker.%d.dispatches" % record["worker"])

    def _on_worker_fault(self, record: Dict) -> None:
        self._inc("fleet.worker_faults.total")
        self._inc("fleet.worker_faults.%s" % record["fault_class"])
        self._inc("fleet.worker.%d.faults" % record["worker"])
        self._observe("fleet.fault_lost_seconds", record["seconds"])

    def _on_worker_restart(self, record: Dict) -> None:
        self._inc("fleet.restarts")
        self._inc("fleet.backoff_seconds", record["backoff_seconds"])

    def _on_straggler(self, record: Dict) -> None:
        self._inc("fleet.stragglers")
        self._inc("fleet.worker.%d.straggles" % record["worker"])

    # -- derived views ------------------------------------------------------

    @property
    def traces(self) -> int:
        return len(self._traces)

    @property
    def regions(self) -> int:
        return len(self._regions) or int(self.counters.get("regions.total", 0))

    def slo_report(self) -> SLOReport:
        return SLOReport(
            target=self.slo_target,
            regions=self.regions,
            violations=len(self._violations),
        )

    def throughput(self) -> Dict[str, float]:
        """Regions per *simulated* second of scheduling time."""
        seconds = 0.0
        hist = self.histograms.get("region.latency_seconds")
        if hist is not None:
            seconds = hist.sum
        regions = self.counters.get("regions.total", 0.0)
        return {
            "regions": regions,
            "simulated_seconds": seconds,
            "regions_per_simulated_second": regions / seconds if seconds > 0 else 0.0,
        }

    def quantiles(self) -> Dict[str, Dict[str, float]]:
        out: Dict[str, Dict[str, float]] = {}
        for name in sorted(self.histograms):
            hist = self.histograms[name]
            out[name] = {label: hist.quantile(q) for label, q in REPORTED_QUANTILES}
        return out

    def modeled_overhead_pct(self) -> float:
        """Aggregation cost over the telemetry bus's own cost, modelled.

        Uses the repository's cost-model convention (no wall clock): each
        metric update costs :data:`MODELED_UPDATE_SECONDS`, each emitted
        event already cost :data:`MODELED_EMIT_SECONDS` on the bus.
        """
        if self.events == 0:
            return 0.0
        return 100.0 * (self.updates * MODELED_UPDATE_SECONDS) / (
            self.events * MODELED_EMIT_SECONDS
        )

    def snapshot(self) -> Dict[str, object]:
        """The full deterministic state dump (plain dicts, sorted keys)."""
        return {
            "snapshot_schema": SNAPSHOT_SCHEMA,
            "slo_target": self.slo_target,
            "events": self.events,
            "updates": self.updates,
            "traces": self.traces,
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
            "histograms": {
                k: self.histograms[k].snapshot() for k in sorted(self.histograms)
            },
            "quantiles": self.quantiles(),
            "throughput": self.throughput(),
            "slo": self.slo_report().as_dict(),
        }

    def snapshot_json(self) -> str:
        """Byte-stable JSON: sorted keys, fixed separators, one trailing \\n."""
        return json.dumps(self.snapshot(), sort_keys=True, indent=2) + "\n"


_HANDLERS = {
    "region_end": MetricsAggregator._on_region_end,
    "pass_end": MetricsAggregator._on_pass_end,
    "kernel_launch": MetricsAggregator._on_kernel_launch,
    "transfer": MetricsAggregator._on_transfer,
    "fault": MetricsAggregator._on_fault,
    "retry": MetricsAggregator._on_retry,
    "degrade": MetricsAggregator._on_degrade,
    "deadline": MetricsAggregator._on_deadline,
    "suite_end": MetricsAggregator._on_suite_end,
    "batch_end": MetricsAggregator._on_batch_end,
    "verify": MetricsAggregator._on_verify,
    "fleet_end": MetricsAggregator._on_fleet_end,
    "shard_dispatch": MetricsAggregator._on_shard_dispatch,
    "worker_fault": MetricsAggregator._on_worker_fault,
    "worker_restart": MetricsAggregator._on_worker_restart,
    "straggler": MetricsAggregator._on_straggler,
}


class AggregatingSink(Sink):
    """A telemetry sink that folds records into an aggregator as they flow.

    Compose it with a :class:`~repro.telemetry.sinks.TeeSink` to aggregate
    live alongside a JSONL trace file — the CLI's ``--watch`` wiring.
    """

    def __init__(self, aggregator: Optional[MetricsAggregator] = None):
        self.aggregator = aggregator if aggregator is not None else MetricsAggregator()

    def write(self, record: Dict) -> None:
        self.aggregator.consume(record)


def aggregate_trace(
    path: str, slo_target: float = DEFAULT_SLO_TARGET
) -> Tuple[MetricsAggregator, int]:
    """Fold a recorded JSONL trace; returns ``(aggregator, skipped_lines)``.

    Reading is lenient (truncated or foreign lines are skipped, not
    fatal), matching :func:`repro.telemetry.report.summarize_trace`.
    """
    from ..telemetry.schema import read_trace_lenient

    records, skipped = read_trace_lenient(path)
    aggregator = MetricsAggregator(slo_target=slo_target)
    aggregator.consume_many(records)
    return aggregator, skipped
