"""SLO accounting: compliance, error budget and burn rate.

The service-level objective composes with the resilience layer (PR 5):
a region *violates* the objective when its deadline budget trips (a
``deadline`` event), when it ships degraded (the ladder ran out of
engines), or when it is unrecoverable. Everything else — including
regions that faulted but recovered within budget — complies.

All quantities are derived from counts the aggregator already folded, so
a report is deterministic and byte-stable like the snapshot it lives in:

* ``compliance``          — fraction of regions that met the objective;
* ``error_budget``        — the allowed violation fraction, ``1 - target``;
* ``budget_consumed``     — fraction of the error budget spent
  (> 1.0 means the objective is blown);
* ``burn_rate``           — observed violation rate over allowed rate —
  the standard multi-window burn-rate numerator, denominated in regions
  rather than wall time because the reproduction's only clock is the
  cost model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

#: Default objective: 99% of regions meet their deadline un-degraded.
DEFAULT_SLO_TARGET = 0.99


@dataclass(frozen=True)
class SLOReport:
    """One deterministic evaluation of the deadline SLO."""

    target: float
    regions: int
    violations: int

    @property
    def compliance(self) -> float:
        if self.regions <= 0:
            return 1.0
        return 1.0 - self.violations / self.regions

    @property
    def error_budget(self) -> float:
        return 1.0 - self.target

    @property
    def budget_consumed(self) -> float:
        """Fraction of the error budget spent (can exceed 1.0)."""
        if self.regions <= 0:
            return 0.0
        allowed = self.error_budget * self.regions
        if allowed <= 0.0:
            return 0.0 if self.violations == 0 else float(self.violations)
        return self.violations / allowed

    @property
    def burn_rate(self) -> float:
        """Observed violation rate over the allowed violation rate.

        1.0 means the budget is burning exactly as fast as the objective
        allows; 2.0 means twice as fast. Identical to
        :attr:`budget_consumed` over a single window, which is all the
        deterministic reproduction has.
        """
        return self.budget_consumed

    @property
    def healthy(self) -> bool:
        return self.compliance >= self.target

    def as_dict(self) -> Dict[str, object]:
        """A plain, deterministic dict (snapshot embedding)."""
        return {
            "target": self.target,
            "regions": self.regions,
            "violations": self.violations,
            "compliance": self.compliance,
            "error_budget": self.error_budget,
            "budget_consumed": self.budget_consumed,
            "burn_rate": self.burn_rate,
            "healthy": self.healthy,
        }
