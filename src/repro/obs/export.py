"""Exporters: OpenMetrics text, JSON snapshots, and Perfetto traces.

Three consumers, three formats, one deterministic source (the
:class:`~repro.obs.aggregate.MetricsAggregator` and the raw event
records):

* :func:`to_openmetrics` — Prometheus/OpenMetrics text exposition of the
  aggregated counters, gauges, histograms, quantiles and the SLO panel.
  :func:`lint_openmetrics` validates the format offline (the CI smoke job
  runs it — no external dependency needed).
* :meth:`~repro.obs.aggregate.MetricsAggregator.snapshot_json` — the
  byte-stable JSON snapshot the golden diff gates (re-exported here as
  :func:`to_snapshot_json` for symmetry).
* :func:`to_perfetto` — a Chrome trace-event JSON (open in Perfetto or
  ``chrome://tracing``) laying each trace's region out on a simulated
  timeline: passes as duration slices, faults as slices of the seconds
  they burned, retries/degrades/deadlines as instants. Timestamps are
  cost-model microseconds; there is no wall clock to leak.

Runnable offline::

    python -m repro.obs.export --lint METRICS.txt
    python -m repro.obs.export TRACE.jsonl --openmetrics M.txt \\
        --snapshot S.json --perfetto P.json
"""

from __future__ import annotations

import json
import re
from typing import Dict, Iterable, List, Optional, Tuple

from .aggregate import REPORTED_QUANTILES, MetricsAggregator

#: Prefix of every exported metric family.
METRIC_PREFIX = "repro"

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^{}]*\})?"
    r" (?P<value>\S+)$"
)


def _sanitize(name: str) -> str:
    out = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    return "%s_%s" % (METRIC_PREFIX, out)


def _fmt(value: float) -> str:
    value = float(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labels(pairs: Iterable[Tuple[str, str]]) -> str:
    inner = ",".join(
        '%s="%s"' % (key, _escape_label(str(val))) for key, val in pairs
    )
    return "{%s}" % inner if inner else ""


#: Counters folded into labeled families instead of flat names.
_KERNEL_SECONDS = re.compile(r"^kernel\.seconds\.pass(?P<p>\d+)\.(?P<backend>.+)$")
_FAULT_CLASS = re.compile(r"^resilience\.faults\.(?P<cls>(?!total$).+)$")
_DECISION = re.compile(r"^regions\.decision\.(?P<decision>.+)$")


def to_openmetrics(aggregator: MetricsAggregator) -> str:
    """Render the aggregator as OpenMetrics text (ends with ``# EOF``)."""
    lines: List[str] = []

    kernel_seconds: List[Tuple[str, str, float]] = []
    fault_classes: List[Tuple[str, float]] = []
    decisions: List[Tuple[str, float]] = []
    plain_counters: List[Tuple[str, float]] = []
    for name in sorted(aggregator.counters):
        value = aggregator.counters[name]
        m = _KERNEL_SECONDS.match(name)
        if m:
            kernel_seconds.append((m.group("p"), m.group("backend"), value))
            continue
        m = _FAULT_CLASS.match(name)
        if m:
            fault_classes.append((m.group("cls"), value))
            continue
        m = _DECISION.match(name)
        if m:
            decisions.append((m.group("decision"), value))
            continue
        plain_counters.append((name, value))

    def counter_family(family: str, help_text: str,
                       samples: List[Tuple[str, float]]) -> None:
        lines.append("# HELP %s %s" % (family, help_text))
        lines.append("# TYPE %s counter" % family)
        for labels, value in samples:
            lines.append("%s_total%s %s" % (family, labels, _fmt(value)))

    if kernel_seconds:
        counter_family(
            _sanitize("kernel.seconds"),
            "Simulated kernel seconds by ACO pass and construction backend.",
            [
                (_labels((("backend", b), ("pass_index", p))), v)
                for p, b, v in kernel_seconds
            ],
        )
    if fault_classes:
        counter_family(
            _sanitize("faults"),
            "Injected faults recovered or reported, by class.",
            [(_labels((("fault_class", c),)), v) for c, v in fault_classes],
        )
    if decisions:
        counter_family(
            _sanitize("regions.decision"),
            "Pipeline filter decisions per region.",
            [(_labels((("decision", d),)), v) for d, v in decisions],
        )
    for name, value in plain_counters:
        counter_family(_sanitize(name), "Aggregated counter %s." % name, [("", value)])

    def gauge(family: str, help_text: str, value: float) -> None:
        lines.append("# HELP %s %s" % (family, help_text))
        lines.append("# TYPE %s gauge" % family)
        lines.append("%s %s" % (family, _fmt(value)))

    for name in sorted(aggregator.gauges):
        gauge(_sanitize(name), "Aggregated gauge %s." % name, aggregator.gauges[name])

    for name in sorted(aggregator.histograms):
        hist = aggregator.histograms[name]
        family = _sanitize(name)
        lines.append("# HELP %s Aggregated distribution %s." % (family, name))
        lines.append("# TYPE %s histogram" % family)
        cumulative = hist.zeros
        for bound, count in hist.nonzero_buckets():
            cumulative += count
            lines.append(
                '%s_bucket{le="%s"} %d' % (family, repr(bound), cumulative)
            )
        lines.append('%s_bucket{le="+Inf"} %d' % (family, hist.count))
        lines.append("%s_sum %s" % (family, _fmt(hist.sum)))
        lines.append("%s_count %d" % (family, hist.count))
        for label, q in REPORTED_QUANTILES:
            gauge(
                "%s_%s" % (family, label),
                "Estimated %s of %s (relative error <= 9.1%%)." % (label, name),
                hist.quantile(q),
            )

    throughput = aggregator.throughput()
    gauge(
        _sanitize("throughput.regions_per_simulated_second"),
        "Regions scheduled per simulated second of scheduling time.",
        throughput["regions_per_simulated_second"],
    )

    slo = aggregator.slo_report()
    gauge(_sanitize("slo.target"), "Deadline-SLO target fraction.", slo.target)
    gauge(_sanitize("slo.compliance"), "Fraction of regions meeting the SLO.",
          slo.compliance)
    gauge(_sanitize("slo.budget_consumed"),
          "Fraction of the SLO error budget consumed.", slo.budget_consumed)
    gauge(_sanitize("slo.burn_rate"),
          "Error-budget burn rate (observed over allowed violation rate).",
          slo.burn_rate)

    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def to_snapshot_json(aggregator: MetricsAggregator) -> str:
    """The byte-stable JSON snapshot (sorted keys, trailing newline)."""
    return aggregator.snapshot_json()


# -- format linting ------------------------------------------------------------


def _parse_value(text: str) -> Optional[float]:
    if text in ("+Inf", "-Inf", "NaN"):
        return float(text.replace("Inf", "inf").replace("NaN", "nan"))
    try:
        return float(text)
    except ValueError:
        return None


def lint_openmetrics(text: str) -> List[str]:
    """Validate OpenMetrics text; returns a list of error strings (empty = ok).

    Covers the rules the exposition format cares about: declared types,
    name syntax, parsable values, counter ``_total`` suffixes, histogram
    bucket monotonicity with a ``+Inf`` bucket matching ``_count``, no
    duplicate samples, and the ``# EOF`` terminator.
    """
    errors: List[str] = []
    types: Dict[str, str] = {}
    seen: set = set()
    hist_buckets: Dict[str, List[Tuple[float, float]]] = {}
    hist_counts: Dict[str, float] = {}
    eof_seen = False

    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if eof_seen:
            errors.append("line %d: content after # EOF" % lineno)
            break
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] == "EOF":
                eof_seen = True
            elif len(parts) >= 4 and parts[1] == "TYPE":
                name, kind = parts[2], parts[3]
                if not _NAME_RE.match(name):
                    errors.append("line %d: bad family name %r" % (lineno, name))
                if kind not in ("counter", "gauge", "histogram", "summary",
                                "untyped", "info", "stateset"):
                    errors.append("line %d: bad metric type %r" % (lineno, kind))
                if name in types:
                    errors.append("line %d: duplicate TYPE for %r" % (lineno, name))
                types[name] = kind
            elif len(parts) >= 2 and parts[1] in ("HELP", "UNIT"):
                pass
            else:
                errors.append("line %d: malformed comment %r" % (lineno, line))
            continue
        m = _SAMPLE_RE.match(line)
        if not m:
            errors.append("line %d: malformed sample %r" % (lineno, line))
            continue
        name, labels, raw = m.group("name"), m.group("labels") or "", m.group("value")
        value = _parse_value(raw)
        if value is None:
            errors.append("line %d: unparsable value %r" % (lineno, raw))
            continue
        sample_key = (name, labels)
        if sample_key in seen:
            errors.append("line %d: duplicate sample %s%s" % (lineno, name, labels))
        seen.add(sample_key)

        family = name
        for suffix in ("_total", "_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in types:
                family = name[: -len(suffix)]
                break
        kind = types.get(family)
        if kind is None:
            errors.append("line %d: sample %r has no preceding TYPE" % (lineno, name))
            continue
        if kind == "counter" and not name.endswith("_total"):
            errors.append(
                "line %d: counter sample %r must end with _total" % (lineno, name)
            )
        if kind == "counter" and value < 0:
            errors.append("line %d: negative counter %r" % (lineno, name))
        if kind == "histogram" and name.endswith("_bucket"):
            le = re.search(r'le="([^"]*)"', labels)
            if le is None:
                errors.append("line %d: bucket without le label" % lineno)
            else:
                bound = _parse_value(le.group(1))
                if bound is None:
                    errors.append(
                        "line %d: unparsable le %r" % (lineno, le.group(1))
                    )
                else:
                    hist_buckets.setdefault(family, []).append((bound, value))
        if kind == "histogram" and name.endswith("_count"):
            hist_counts[family] = value

    if not eof_seen:
        errors.append("missing # EOF terminator")

    for family, buckets in hist_buckets.items():
        bounds = [b for b, _ in buckets]
        counts = [c for _, c in buckets]
        if bounds != sorted(bounds):
            errors.append("histogram %r: le bounds not sorted" % family)
        if counts != sorted(counts):
            errors.append("histogram %r: bucket counts not cumulative" % family)
        if not bounds or bounds[-1] != float("inf"):
            errors.append("histogram %r: missing +Inf bucket" % family)
        elif family in hist_counts and counts[-1] != hist_counts[family]:
            errors.append(
                "histogram %r: +Inf bucket (%s) != _count (%s)"
                % (family, counts[-1], hist_counts[family])
            )
    return errors


# -- Perfetto / Chrome trace-event export --------------------------------------


def _region_groups(records: Iterable[Dict]) -> List[Tuple[object, List[Dict]]]:
    """Group records per region journey (trace id, else region name)."""
    groups: Dict[object, List[Dict]] = {}
    order: List[object] = []
    for record in records:
        key = record.get("trace_id") or record.get("region")
        if key is None:
            continue
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(record)
    return [(key, groups[key]) for key in order]


def _us(seconds: float) -> float:
    return round(seconds * 1e6, 3)


def to_perfetto(records: Iterable[Dict]) -> Dict[str, object]:
    """Chrome trace-event JSON from schema-v1 records (simulated time).

    Regions are laid out sequentially on the simulated timeline (the
    reproduction schedules them one after another); each region journey
    gets its own thread row, so retries, faults, downgrades and passes of
    one trace line up on one track in Perfetto or ``chrome://tracing``.
    """
    events: List[Dict[str, object]] = []
    offset = 0.0
    for tid, (key, group) in enumerate(_region_groups(records), start=1):
        region_name = next(
            (r["region"] for r in group if "region" in r), str(key)
        )
        cursor = offset
        region_args: Dict[str, object] = {"trace_id": str(key)}
        for record in group:
            event = record.get("event")
            args = {
                k: record[k]
                for k in ("trace_id", "span_id", "parent_id", "attempt", "seed")
                if k in record
            }
            if event == "pass_end" and record.get("invoked"):
                events.append({
                    "name": "pass%d" % record["pass_index"],
                    "cat": "pass",
                    "ph": "X",
                    "ts": _us(cursor),
                    "dur": _us(record["seconds"]),
                    "pid": 1,
                    "tid": tid,
                    "args": dict(args, iterations=record["iterations"],
                                 final_cost=record["final_cost"]),
                })
                cursor += record["seconds"]
            elif event == "fault":
                events.append({
                    "name": "fault:%s" % record["fault_class"],
                    "cat": "resilience",
                    "ph": "X",
                    "ts": _us(cursor),
                    "dur": _us(record["seconds"]),
                    "pid": 1,
                    "tid": tid,
                    "args": args,
                })
                cursor += record["seconds"]
            elif event == "retry":
                events.append({
                    "name": "retry (resume)" if record.get("resumed") else "retry",
                    "cat": "resilience",
                    "ph": "i",
                    "s": "t",
                    "ts": _us(cursor),
                    "pid": 1,
                    "tid": tid,
                    "args": args,
                })
            elif event == "degrade":
                events.append({
                    "name": "degrade %s->%s"
                            % (record["from_rung"], record["to_rung"]),
                    "cat": "resilience",
                    "ph": "i",
                    "s": "t",
                    "ts": _us(cursor),
                    "pid": 1,
                    "tid": tid,
                    "args": args,
                })
            elif event == "deadline":
                events.append({
                    "name": "deadline",
                    "cat": "resilience",
                    "ph": "i",
                    "s": "t",
                    "ts": _us(cursor),
                    "pid": 1,
                    "tid": tid,
                    "args": dict(args, spent_seconds=record["spent_seconds"]),
                })
            elif event == "region_end":
                region_args.update(
                    decision=record["decision"],
                    final_occupancy=record["final_occupancy"],
                    scheduling_seconds=record["scheduling_seconds"],
                )
        duration = max(
            cursor - offset,
            next(
                (r["scheduling_seconds"] for r in group
                 if r.get("event") == "region_end"),
                0.0,
            ),
        )
        events.append({
            "name": region_name,
            "cat": "region",
            "ph": "X",
            "ts": _us(offset),
            "dur": _us(duration),
            "pid": 1,
            "tid": tid,
            "args": region_args,
        })
        events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": tid,
            "args": {"name": "%s [%s]" % (region_name, key)},
        })
        offset += duration
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_perfetto(path: str, records: Iterable[Dict]) -> int:
    """Write the Perfetto export; returns the number of trace events."""
    trace = to_perfetto(records)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace, handle, sort_keys=True, indent=1)
        handle.write("\n")
    return len(trace["traceEvents"])  # type: ignore[arg-type]


# -- CLI ----------------------------------------------------------------------


def main(argv=None) -> int:
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        prog="repro.obs.export",
        description="Export or lint repro observability artifacts.",
    )
    parser.add_argument(
        "source", nargs="?", default=None,
        help="JSONL telemetry trace to export from",
    )
    parser.add_argument(
        "--lint", metavar="METRICS_TXT", default=None,
        help="validate an OpenMetrics text file and exit",
    )
    parser.add_argument("--openmetrics", metavar="PATH", default=None)
    parser.add_argument("--snapshot", metavar="PATH", default=None)
    parser.add_argument("--perfetto", metavar="PATH", default=None)
    parser.add_argument(
        "--slo-target", type=float, default=None,
        help="SLO target fraction (default 0.99)",
    )
    args = parser.parse_args(argv)

    if args.lint:
        try:
            with open(args.lint) as handle:
                text = handle.read()
        except OSError as exc:
            print("error: %s" % exc, file=sys.stderr)
            return 2
        errors = lint_openmetrics(text)
        for error in errors:
            print("openmetrics: %s" % error, file=sys.stderr)
        print(
            "%s: %s" % (args.lint, "FAILED (%d error(s))" % len(errors)
                        if errors else "OK")
        )
        return 1 if errors else 0

    if not args.source:
        parser.error("a trace source (or --lint) is required")
    from .aggregate import aggregate_trace
    from .slo import DEFAULT_SLO_TARGET

    target = args.slo_target if args.slo_target is not None else DEFAULT_SLO_TARGET
    try:
        aggregator, skipped = aggregate_trace(args.source, slo_target=target)
    except OSError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    if skipped:
        print("[skipped %d invalid line(s)]" % skipped, file=sys.stderr)
    if args.openmetrics:
        with open(args.openmetrics, "w", encoding="utf-8") as handle:
            handle.write(to_openmetrics(aggregator))
        print("[openmetrics written to %s]" % args.openmetrics)
    if args.snapshot:
        with open(args.snapshot, "w", encoding="utf-8") as handle:
            handle.write(aggregator.snapshot_json())
        print("[snapshot written to %s]" % args.snapshot)
    if args.perfetto:
        from ..telemetry.schema import read_trace_lenient

        records, _ = read_trace_lenient(args.source)
        count = write_perfetto(args.perfetto, records)
        print("[perfetto trace written to %s (%d event(s))]"
              % (args.perfetto, count))
    if not (args.openmetrics or args.snapshot or args.perfetto):
        print(to_openmetrics(aggregator), end="")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
