"""Termination bookkeeping (Section IV-A).

The search ends when the global best cost reaches the precomputed lower
bound, or when ``stagnation_limit`` consecutive iterations pass without
improving the global best (the paper's *termination condition*: 1 / 2 / 3
iterations for the three region-size classes).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class TerminationTracker:
    """Tracks global-best cost, stagnation and the LB cutoff for one pass."""

    lower_bound: float
    stagnation_limit: int
    best_cost: float
    iterations: int = 0
    iterations_without_improvement: int = 0

    def record_iteration(self, winner_cost: float) -> bool:
        """Register an iteration's winner; returns True if it improved."""
        self.iterations += 1
        if winner_cost < self.best_cost:
            self.best_cost = winner_cost
            self.iterations_without_improvement = 0
            return True
        self.iterations_without_improvement += 1
        return False

    @property
    def hit_lower_bound(self) -> bool:
        return self.best_cost <= self.lower_bound

    def should_stop(self) -> bool:
        return (
            self.hit_lower_bound
            or self.iterations_without_improvement >= self.stagnation_limit
        )
