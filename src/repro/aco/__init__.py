"""Ant Colony Optimization for RP-aware instruction scheduling.

The sequential two-pass algorithm of Shobaki et al. (TACO 2022), as
summarized in Section IV-A of the CGO 2024 paper:

* pass 1 (RP pass) ignores latencies and minimizes the APRP-based register
  pressure cost;
* pass 2 (ILP pass) honors latencies and minimizes schedule length subject
  to the pass-1 pressure as a hard constraint, inserting necessary stalls
  (empty ready list) and heuristically chosen *optional* stalls.

The GPU-parallel version lives in :mod:`repro.parallel` and reuses the
pheromone table, the selection rule and the stall heuristic defined here.
"""

from .pheromone import PheromoneTable
from .selection import select_index, roulette_index
from .ant import AntResult, ConstructionStats, construct_order, construct_cycles
from .stalls import OptionalStallHeuristic
from .strategy import (
    STRATEGIES,
    AntSystemStrategy,
    MaxMinAntSystem,
    make_strategy,
    resolve_strategy,
    strategy_from_env,
)
from .sequential import SequentialACOScheduler, ACOResult, PassResult
from .weighted import WeightedSumACOScheduler, WeightedACOResult

__all__ = [
    "PheromoneTable",
    "select_index",
    "roulette_index",
    "AntResult",
    "ConstructionStats",
    "construct_order",
    "construct_cycles",
    "OptionalStallHeuristic",
    "STRATEGIES",
    "AntSystemStrategy",
    "MaxMinAntSystem",
    "make_strategy",
    "resolve_strategy",
    "strategy_from_env",
    "SequentialACOScheduler",
    "ACOResult",
    "PassResult",
    "WeightedSumACOScheduler",
    "WeightedACOResult",
]
