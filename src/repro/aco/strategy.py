"""Pheromone-update strategies: Ant System vs. MAX-MIN Ant System.

The paper's search (Section IV-A) is an Ant Colony System flavour of the
classic Ant System: every iteration the whole table decays and the
*iteration winner* deposits. MAX-MIN Ant System (Stuetzle & Hoos; the GPU
implementation studied by Skinderowicz, see PAPERS.md) hardens that rule
set against premature convergence on hostile inputs:

* **best-only deposit** — only the *best-so-far* tour reinforces its
  links, never the iteration winner;
* **pheromone clamping** — every entry is kept inside ``[tau_min,
  tau_max]`` where ``tau_max`` is the fixed point of repeatedly
  depositing the best tour under decay (``deposit_amount / (1 -
  decay)``) and ``tau_min`` is a region-size-scaled fraction of it;
* **stagnation-triggered reinitialization** — after a run of
  non-improving iterations the whole table resets to ``tau_max``,
  restarting exploration instead of grinding on a saturated table.

Both strategies are pure pheromone-table policies: ant construction never
changes, so backend bit-identity (``tests/test_differential.py``) holds
for every strategy by construction — the vectorized and loop engines read
the same ``tau`` trajectory. The strategy also owns the stagnation limit
(MMAS needs patience for its reinitializations to matter; the paper's
1/2/3 conditions stop far too early for a restart to ever fire).

A strategy instance is created per pass and holds no state beyond its
parameters — ``tau_max``/``tau_min`` derive from the best-so-far cost,
which the resilience checkpoints already carry, so a resumed MMAS pass
recomputes identical bounds without new checkpoint fields.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple, Type

from ..config import ACOParams, STRATEGY_NAMES
from ..errors import ConfigError
from .pheromone import PheromoneTable


class AntSystemStrategy:
    """The paper's rule set: decay + iteration-winner deposit.

    Bit-identical to the historical inline update (this class only names
    the existing behaviour so MMAS can slot in beside it).
    """

    name = "as"

    def __init__(self, params: ACOParams, num_instructions: int):
        self.params = params
        self.num_instructions = num_instructions

    def stagnation_limit(self, base: int) -> int:
        """The paper's termination condition, unchanged."""
        return base

    def update(
        self,
        pheromone: PheromoneTable,
        winner_order: Sequence[int],
        winner_gap: float,
        best_order: Sequence[int],
        best_gap: float,
        without_improvement: int,
    ) -> bool:
        """End-of-iteration table update; returns True on reinitialization."""
        pheromone.decay()
        pheromone.deposit(winner_order, winner_gap)
        return False

    def update_no_winner(
        self,
        pheromone: PheromoneTable,
        best_order: Sequence[int],
        best_gap: float,
        without_improvement: int,
    ) -> bool:
        """Every ant died (pass 2): decay alone reshapes the search."""
        pheromone.decay()
        return False


class MaxMinAntSystem(AntSystemStrategy):
    """MAX-MIN Ant System: clamped, best-only, restart-on-stagnation."""

    name = "mmas"

    def __init__(self, params: ACOParams, num_instructions: int):
        super().__init__(params, num_instructions)
        # Validation covers params.strategy == "mmas"; an override via
        # REPRO_STRATEGY / the scheduler argument must be caught here too.
        if params.decay >= 1.0:
            raise ConfigError(
                "mmas needs decay < 1 (tau_max is deposit / (1 - decay))"
            )

    def tau_max(self, best_gap: float) -> float:
        """Fixed point of decaying + depositing the best tour forever.

        ``x = x * decay + amount`` converges to ``amount / (1 - decay)``
        with ``amount`` the deposit rule's share for the best tour.
        """
        amount = self.params.deposit / (1.0 + max(0.0, float(best_gap)))
        return amount / (1.0 - self.params.decay)

    def tau_min(self, tau_max: float) -> float:
        """Region-size-scaled floor: ``tau_max / (scale * n)``."""
        return tau_max / (self.params.mmas_tau_min_scale * self.num_instructions)

    def bounds(self, best_gap: float) -> Tuple[float, float]:
        """The current ``(tau_min, tau_max)`` clamp interval."""
        hi = self.tau_max(best_gap)
        return self.tau_min(hi), hi

    def stagnation_limit(self, base: int) -> int:
        """Stretch the paper's condition so restarts can fire at all."""
        return base * self.params.mmas_patience

    def _should_reinitialize(self, without_improvement: int) -> bool:
        period = self.params.mmas_reinit_stagnation
        return without_improvement > 0 and without_improvement % period == 0

    def update(
        self,
        pheromone: PheromoneTable,
        winner_order: Sequence[int],
        winner_gap: float,
        best_order: Sequence[int],
        best_gap: float,
        without_improvement: int,
    ) -> bool:
        lo, hi = self.bounds(best_gap)
        if self._should_reinitialize(without_improvement):
            pheromone.reinitialize(hi)
            return True
        pheromone.evaporate()
        pheromone.deposit(best_order, best_gap, cap=hi)
        pheromone.clamp(lo, hi)
        return False

    def update_no_winner(
        self,
        pheromone: PheromoneTable,
        best_order: Sequence[int],
        best_gap: float,
        without_improvement: int,
    ) -> bool:
        # The best-so-far tour still exists (the pass-start incumbent), so
        # the best-only deposit rule applies unchanged.
        return self.update(
            pheromone,
            winner_order=best_order,
            winner_gap=best_gap,
            best_order=best_order,
            best_gap=best_gap,
            without_improvement=without_improvement,
        )


#: Public strategy name -> strategy class.
STRATEGIES: Dict[str, Type[AntSystemStrategy]] = {
    AntSystemStrategy.name: AntSystemStrategy,
    MaxMinAntSystem.name: MaxMinAntSystem,
}

assert tuple(sorted(STRATEGIES)) == tuple(sorted(STRATEGY_NAMES))


def resolve_strategy(name: str) -> Type[AntSystemStrategy]:
    """Map a strategy name to its class (``ConfigError`` if unknown)."""
    try:
        return STRATEGIES[name]
    except KeyError:
        raise ConfigError(
            "unknown strategy %r (choose from %s)"
            % (name, ", ".join(sorted(STRATEGIES)))
        ) from None


def make_strategy(
    name: str, params: ACOParams, num_instructions: int
) -> AntSystemStrategy:
    """Instantiate the named strategy for one pass on one region."""
    return resolve_strategy(name)(params, num_instructions)


def strategy_from_env() -> Optional[str]:
    """The ``REPRO_STRATEGY`` override, or ``None`` when unset/empty."""
    import os

    value = os.environ.get("REPRO_STRATEGY", "").strip()  # repro: noqa[DET-003]
    return value or None


def publish_reinit(
    telemetry, region: str, pass_index: int, iteration: int, tau_max: float
) -> None:
    """Emit the ``reinit`` event + ``aco.reinits`` counter for one restart.

    Shared by both schedulers so the observability stack sees one shape.
    """
    telemetry.emit(
        "reinit",
        region=region,
        pass_index=int(pass_index),
        iteration=int(iteration),
        tau_max=float(tau_max),
    )
    if telemetry.collect_metrics:
        telemetry.metrics.counter("aco.reinits").inc()


__all__ = [
    "STRATEGIES",
    "AntSystemStrategy",
    "MaxMinAntSystem",
    "make_strategy",
    "publish_reinit",
    "resolve_strategy",
    "strategy_from_env",
]
