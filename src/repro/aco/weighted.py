"""The weighted-sum (single-pass) ACO variant.

Section II-A: two approaches exist for the two-objective RP-aware problem —
minimizing a *weighted sum* of schedule length and RP cost (Shobaki et al.
TACO 2013/2019, used on CPU targets) or the *two-pass* approach (CGO 2020),
and "since the two-pass approach was found to work better on the GPU, we
use it in this work".

This module implements the rejected alternative so the design choice can be
reproduced as an ablation (``benchmarks/bench_cost_functions.py``): a
single ACO pass over cycle-accurate schedules minimizing

``cost = length + pressure_weight * (rp_cost - rp_cost_lower_bound)``

The expected GPU-specific failure mode: occupancy is a *step* function of
pressure, so a scalarized trade-off either underweights pressure (losing
occupancy whenever latency hiding is cheap) or overweights it (stretching
schedules chasing pressure that cannot change occupancy); the two-pass
scheme never pays length for pressure below the next APRP step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..config import ACOParams
from ..ddg.graph import DDG
from ..ddg.lower_bounds import RegionBounds, region_bounds
from ..heuristics.base import GuidingHeuristic
from ..heuristics.critical_path import CriticalPathHeuristic
from ..heuristics.list_scheduler import schedule_in_order
from ..ir.registers import RegisterClass
from ..machine.model import MachineModel
from ..rp.cost import rp_cost, rp_cost_lower_bound
from ..rp.liveness import peak_pressure
from ..schedule.schedule import Schedule
from ..timing import DEFAULT_CPU_COST, CPUCostModel, HostSecondsLedger
from .ant import AntResult, ConstructionStats, construct_cycles
from .pheromone import PheromoneTable
from .seeding import launch_rng
from .sequential import PassResult
from .termination import TerminationTracker

#: Effectively-unconstrained pressure target (ants never die; the weighted
#: cost, not a hard constraint, penalizes pressure).
_NO_TARGET: Dict[RegisterClass, int] = {}


@dataclass
class WeightedACOResult:
    """Outcome of the single weighted-sum pass."""

    schedule: Schedule
    peak: Dict[RegisterClass, int]
    weighted_cost: float
    result: PassResult

    @property
    def length(self) -> int:
        return self.schedule.length

    @property
    def seconds(self) -> float:
        return self.result.seconds


class WeightedSumACOScheduler:
    """Single-pass ACO over ``length + weight * excess-pressure-cost``."""

    name = "weighted-sum-aco"

    def __init__(
        self,
        machine: MachineModel,
        params: Optional[ACOParams] = None,
        pressure_weight: float = 0.1,
        heuristic: Optional[GuidingHeuristic] = None,
        cost_model: CPUCostModel = DEFAULT_CPU_COST,
    ):
        if pressure_weight < 0:
            raise ValueError("pressure_weight must be >= 0")
        self.machine = machine
        self.params = params or ACOParams()
        self.params.validate()
        self.pressure_weight = pressure_weight
        self.heuristic = heuristic or CriticalPathHeuristic()
        self.cost_model = cost_model

    def _weighted_cost(self, length: float, peak: Dict[RegisterClass, int], rp_lb: int) -> float:
        excess = max(0, rp_cost(peak, self.machine) - rp_lb)
        return length + self.pressure_weight * excess

    def schedule(
        self,
        ddg: DDG,
        seed: int = 0,
        initial_order: Optional[Tuple[int, ...]] = None,
        bounds: Optional[RegionBounds] = None,
        reference_schedule: Optional[Schedule] = None,
    ) -> WeightedACOResult:
        """One ACO pass on the scalarized objective."""
        if bounds is None:
            bounds = region_bounds(ddg)
        region = ddg.region
        rp_lb = rp_cost_lower_bound(bounds, self.machine)
        rng = launch_rng(seed)

        if initial_order is None:
            from ..heuristics.list_scheduler import order_schedule

            initial_order = order_schedule(ddg, heuristic=self.heuristic).order
        initial = schedule_in_order(ddg, initial_order)
        if reference_schedule is not None and reference_schedule.length < initial.length:
            initial = reference_schedule
        best_schedule = initial
        best_peak = peak_pressure(initial)
        best_cost = self._weighted_cost(initial.length, best_peak, rp_lb)

        # The scalarized LB: perfect length and pressure simultaneously.
        lower_bound = float(bounds.length)

        prepared = self.heuristic.prepare(ddg)
        pheromone = PheromoneTable(ddg.num_instructions, self.params)
        tracker = TerminationTracker(
            lower_bound=lower_bound,
            stagnation_limit=self.params.termination_condition(len(region)),
            best_cost=best_cost,
        )
        stats = ConstructionStats()
        ledger = HostSecondsLedger(self.cost_model.region_overhead)
        trace = []
        max_length = max(2 * initial.length, initial.length + 16)
        while not tracker.should_stop() and tracker.iterations < self.params.max_iterations:
            winner: Optional[AntResult] = None
            winner_cost = float("inf")
            # Aspiration windows: half the ants chase a *better* pressure
            # than the incumbent (their stall heuristic fires at the lower
            # boundary, putting pressure-reducing stalls in the search
            # space), the other half get slack above it (shorter-but-hotter
            # schedules stay constructible); the weighted cost judges both.
            tighter = {
                cls: max(0, best_peak.get(cls, 0) - 1)
                for cls in self.machine.classes()
            }
            looser = {
                cls: best_peak.get(cls, 0) + 2 for cls in self.machine.classes()
            }
            for ant in range(self.params.sequential_ants):
                result = construct_cycles(
                    ddg,
                    self.machine,
                    pheromone,
                    prepared,
                    self.params,
                    rng,
                    target_pressure=tighter if ant % 2 == 0 else looser,
                    allow_optional_stalls=True,
                    max_length=max_length,
                )
                stats.merge(result.stats)
                ledger.charge(
                    self.cost_model.construction_seconds(
                        result.stats.steps,
                        result.stats.ready_scans,
                        result.stats.successor_ops,
                    )
                )
                if not result.alive:
                    continue
                cost = self._weighted_cost(result.length, result.peak, rp_lb)
                if cost < winner_cost:
                    winner, winner_cost = result, cost
            pheromone.decay()
            if winner is None:
                trace.append(float("inf"))
                tracker.record_iteration(tracker.best_cost)
                continue
            trace.append(winner_cost)
            pheromone.deposit(winner.order, winner_cost - lower_bound)
            ledger.charge(self.cost_model.pheromone_seconds(pheromone.touched_entries()))
            if tracker.record_iteration(winner_cost):
                assert winner.cycles is not None
                best_schedule = Schedule(region, winner.cycles)
                best_peak = dict(winner.peak)
                best_cost = winner_cost

        pass_result = PassResult(
            invoked=True,
            iterations=tracker.iterations,
            initial_cost=self._weighted_cost(initial.length, peak_pressure(initial), rp_lb),
            final_cost=best_cost,
            hit_lower_bound=tracker.hit_lower_bound,
            seconds=ledger.total,
            stats=stats,
            trace=tuple(trace),
        )
        return WeightedACOResult(
            schedule=best_schedule,
            peak=best_peak,
            weighted_cost=best_cost,
            result=pass_result,
        )
