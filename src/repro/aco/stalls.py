"""The optional-stall heuristic (Sections IV-C and V-B).

In pass 2 a stall is *necessary* when the ready list is empty, and
*optional* when the ant chooses to wait for semi-ready instructions (issued
producers whose latency has not yet elapsed) instead of scheduling a ready
instruction that would push register pressure toward or past the pass-1
target. The paper's heuristic considers

* the pressure impact of the ready instructions,
* the pressure impact of the semi-ready instructions, and
* how many optional stalls were already inserted (the more stalls, the less
  likely another one — too many make the schedule excessively long).
"""

from __future__ import annotations

import math
import random
from typing import Dict, Mapping, Sequence

from ..config import ACOParams
from ..ir.instructions import Instruction
from ..ir.registers import RegisterClass
from ..rp.tracker import PressureTracker


def pressure_excess(
    pressure: Mapping[RegisterClass, int], target: Mapping[RegisterClass, int]
) -> int:
    """Worst per-class overshoot of ``pressure`` relative to ``target``.

    Positive: some class exceeds its target; zero: at the target; negative:
    strictly below it everywhere.
    """
    worst = -(10**9)
    for cls, limit in target.items():
        worst = max(worst, pressure.get(cls, 0) - limit)
    return worst if worst != -(10**9) else 0


class OptionalStallHeuristic:
    """Decides whether to insert an optional stall at the current cycle."""

    def __init__(self, params: ACOParams, region_size: int):
        self.params = params
        self.max_optional_stalls = max(
            1, math.ceil(params.optional_stall_budget * region_size)
        )

    def _budget_factor(self, stalls_so_far: int) -> float:
        return max(0.0, 1.0 - stalls_so_far / self.max_optional_stalls)

    def should_stall(
        self,
        tracker: PressureTracker,
        ready: Sequence[Instruction],
        semi_ready: Sequence[Instruction],
        target: Dict[RegisterClass, int],
        stalls_so_far: int,
        rng: random.Random,
    ) -> bool:
        """True if the ant should burn this cycle waiting (optional stall)."""
        if not ready or not semi_ready:
            return False  # nothing to trade off (empty ready = necessary stall)

        best_ready = min(
            pressure_excess(tracker.pressure_if_scheduled(inst), target)
            for inst in ready
        )
        if best_ready < 0:
            return False  # something schedulable stays strictly under target

        # Waiting only helps if a semi-ready instruction relieves pressure
        # relative to the best ready option.
        best_semi = min(
            pressure_excess(tracker.pressure_if_scheduled(inst), target)
            for inst in semi_ready
        )
        if best_semi >= best_ready:
            return False

        if best_ready > 0:
            # Every ready choice violates the constraint (the ant would be
            # terminated): stall within the budget.
            probability = self._budget_factor(stalls_so_far)
        else:
            # At the boundary: stall with the configured probability, fading
            # as stalls accumulate.
            probability = self.params.optional_stall_prob * self._budget_factor(
                stalls_so_far
            )
        return rng.random() < probability
