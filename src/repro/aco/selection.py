"""The ACS-style next-instruction selection rule (Section IV-A).

Given the ready list, each candidate ``j`` has attractiveness
``score(j) = tau[prev][j] * eta(j) ** beta``. With probability ``q0`` the
ant *exploits* (picks the argmax); otherwise it *explores* (samples from the
distribution proportional to the scores). The explore/exploit draw is
separated from the pick itself so the parallel scheduler can hoist the draw
to wavefront level (divergence optimization 1 of Section V-B).
"""

from __future__ import annotations

import random
from typing import Sequence


def roulette_index(scores: Sequence[float], rng: random.Random) -> int:
    """Sample an index proportionally to ``scores`` (all non-negative)."""
    total = 0.0
    for s in scores:
        total += s
    if total <= 0.0:
        return rng.randrange(len(scores))
    pick = rng.random() * total
    acc = 0.0
    for index, s in enumerate(scores):
        acc += s
        if pick < acc:
            return index
    return len(scores) - 1  # floating-point tail


def select_index(
    scores: Sequence[float],
    rng: random.Random,
    exploit: bool,
) -> int:
    """Pick a position in the ready list given precomputed scores.

    ``exploit`` is drawn by the caller (per thread in the sequential
    scheduler, per wavefront in the parallel one).
    """
    if not scores:
        raise ValueError("selection over an empty ready list")
    if exploit:
        best_index = 0
        best_score = scores[0]
        for index in range(1, len(scores)):
            if scores[index] > best_score:
                best_score = scores[index]
                best_index = index
        return best_index
    return roulette_index(scores, rng)
