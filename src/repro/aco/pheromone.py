"""The pheromone table (Section IV-A).

A table of shape ``(n + 1, n)``: entry ``tau[i][j]`` is the pheromone on the
link "instruction ``j`` immediately follows instruction ``i``"; the extra
row ``n`` is the virtual start node, read when an ant picks its first
instruction. At the end of each iteration the whole table decays by the
decay factor and the iteration winner's links receive a deposit inversely
proportional to the winner's cost. Entries are clamped into
``[min_pheromone, max_pheromone]`` (MAX-MIN style) so the strong 0.8 decay
cannot extinguish exploration.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..config import ACOParams
from ..errors import ConfigError


class PheromoneTable:
    """Mutable pheromone state for one region's ACO search."""

    def __init__(self, num_instructions: int, params: ACOParams):
        if num_instructions < 1:
            raise ConfigError("pheromone table needs at least one instruction")
        self.num_instructions = num_instructions
        self.params = params
        self.tau = np.full(
            (num_instructions + 1, num_instructions),
            float(params.initial_pheromone),
            dtype=np.float64,
        )

    @property
    def start_row(self) -> int:
        """Row index of the virtual start node."""
        return self.num_instructions

    def row(self, predecessor: int) -> np.ndarray:
        """Pheromone row for "next instruction after ``predecessor``".

        Pass :attr:`start_row` (or -1) for the first selection.
        """
        if predecessor == -1:
            predecessor = self.start_row
        return self.tau[predecessor]

    def decay(self) -> None:
        """Dissipate pheromone: ``tau *= decay``, clamped from below."""
        np.multiply(self.tau, self.params.decay, out=self.tau)
        np.maximum(self.tau, self.params.min_pheromone, out=self.tau)

    def evaporate(self) -> None:
        """Raw dissipation (``tau *= decay``) without the Ant System floor.

        MAX-MIN style updates clamp to their own ``[tau_min, tau_max]``
        interval afterwards (:meth:`clamp`); applying the AS floor here
        would silently override a tighter MMAS floor.
        """
        np.multiply(self.tau, self.params.decay, out=self.tau)

    def clamp(self, lo: float, hi: float) -> None:
        """Clamp every entry into ``[lo, hi]`` (MAX-MIN trust interval)."""
        np.clip(self.tau, lo, hi, out=self.tau)

    def reinitialize(self, value: float) -> None:
        """Reset the whole table to ``value`` (MMAS stagnation restart)."""
        self.tau[:] = float(value)

    def deposit(self, order: Sequence[int], cost: float, cap: float = None) -> None:
        """Reinforce the links of an iteration winner with cost ``cost``.

        The deposit is ``deposit_scale / (1 + cost)`` per link — cheaper
        winners deposit more, and a zero-cost (LB-matching) winner deposits
        the full scale. ``cap`` overrides the Ant System ceiling
        (``max_pheromone``) when a strategy clamps to its own ``tau_max``.
        """
        amount = self.params.deposit / (1.0 + max(0.0, float(cost)))
        ceiling = self.params.max_pheromone if cap is None else float(cap)
        previous = self.start_row
        for index in order:
            value = self.tau[previous, index] + amount
            self.tau[previous, index] = min(value, ceiling)
            previous = index

    def touched_entries(self) -> int:
        """Table entries touched by one decay+deposit (for the cost models)."""
        return self.tau.size

    def copy(self) -> "PheromoneTable":
        clone = PheromoneTable(self.num_instructions, self.params)
        clone.tau = self.tau.copy()
        return clone
