"""The sequential engine's single sanctioned RNG construction point.

The backend-equivalence contract (PR 4) requires every random decision to
come from a stream the differential harness can account for. On the
parallel side that is :class:`repro.parallel.rng.AntRngStreams`; on the
sequential side it is the one ``random.Random(seed)`` constructed here.
Static analysis rule RNG-101 flags generator construction anywhere else
in ``repro.aco`` / ``repro.parallel``, so this module is the only place
the sequential launch generator can come from — which is exactly what
makes "same seed, same draws" auditable.
"""

from __future__ import annotations

import random


def launch_rng(seed: int) -> random.Random:
    """The launch generator for one sequential scheduling run.

    Exactly equivalent to ``random.Random(seed)`` — same seeding
    algorithm, same draw sequence — so routing existing call sites
    through here is bit-identical.
    """
    return random.Random(seed)
