"""Single-ant schedule construction (Section IV-A).

Two constructors, one per pass:

* :func:`construct_order` — pass 1: latencies ignored, the ant repeatedly
  picks from the dependence-ready list; the product is an instruction order
  and its register-pressure cost.
* :func:`construct_cycles` — pass 2: cycle-accurate construction with
  necessary and optional stalls; the ant is **terminated** the moment its
  peak pressure exceeds the pass-1 target (the paper's constraint-violation
  rule), and the product is a full cycle assignment.

Both count the abstract operations (ready-list scans, successor traversals,
construction steps) that drive the CPU and GPU cost models, and both accept
an ``exploit_decider`` so the parallel scheduler can hoist the
explore/exploit draw to wavefront level.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..config import ACOParams
from ..ddg.graph import DDG
from ..heuristics.base import PreparedHeuristic, SchedulingState
from ..ir.registers import RegisterClass
from ..machine.model import MachineModel
from ..rp.cost import rp_cost
from ..rp.tracker import PressureTracker
from .pheromone import PheromoneTable
from .selection import select_index
from .stalls import OptionalStallHeuristic, pressure_excess

#: Decides explore (False) vs. exploit (True) for one construction step.
ExploitDecider = Callable[[int], bool]


@dataclass
class ConstructionStats:
    """Operation counts of one ant's construction (feeds the cost models)."""

    steps: int = 0
    ready_scans: int = 0
    successor_ops: int = 0
    stalls: int = 0
    optional_stalls: int = 0

    def merge(self, other: "ConstructionStats") -> None:
        self.steps += other.steps
        self.ready_scans += other.ready_scans
        self.successor_ops += other.successor_ops
        self.stalls += other.stalls
        self.optional_stalls += other.optional_stalls


@dataclass
class AntResult:
    """One ant's candidate schedule.

    ``alive`` is False when the ant was terminated for violating the
    pressure constraint (pass 2) — its schedule fields are then partial and
    must not be used.
    """

    order: Tuple[int, ...]
    rp_cost_value: int
    length: int
    peak: Dict[RegisterClass, int]
    stats: ConstructionStats
    alive: bool = True
    cycles: Optional[Tuple[int, ...]] = None


def _default_decider(params: ACOParams, rng: random.Random) -> ExploitDecider:
    q0 = params.exploitation_prob
    return lambda _step: rng.random() < q0


def _scores(
    pheromone_row,
    ready: List[int],
    prepared: PreparedHeuristic,
    state: SchedulingState,
    beta: float,
) -> List[float]:
    return [pheromone_row[j] * prepared.eta(j, state) ** beta for j in ready]


def construct_order(
    ddg: DDG,
    machine: MachineModel,
    pheromone: PheromoneTable,
    prepared: PreparedHeuristic,
    params: ACOParams,
    rng: random.Random,
    exploit_decider: Optional[ExploitDecider] = None,
) -> AntResult:
    """Pass-1 construction: an instruction order minimizing RP cost."""
    if exploit_decider is None:
        exploit_decider = _default_decider(params, rng)
    region = ddg.region
    n = ddg.num_instructions
    tracker = PressureTracker(region)
    state = SchedulingState(ddg, tracker)
    stats = ConstructionStats()
    unscheduled_preds = list(ddg.num_predecessors)
    ready: List[int] = list(ddg.roots)
    order: List[int] = []
    previous = -1
    for step in range(n):
        row = pheromone.row(previous)
        scores = _scores(row, ready, prepared, state, params.heuristic_weight)
        stats.ready_scans += len(ready)
        stats.steps += 1
        pick = select_index(scores, rng, exploit_decider(step))
        chosen = ready.pop(pick)
        order.append(chosen)
        tracker.schedule(region[chosen])
        stats.successor_ops += len(ddg.successors[chosen])
        for succ, _lat in ddg.successors[chosen]:
            unscheduled_preds[succ] -= 1
            if unscheduled_preds[succ] == 0:
                ready.append(succ)
        previous = chosen
    peak = tracker.peak_pressure()
    return AntResult(
        order=tuple(order),
        rp_cost_value=rp_cost(peak, machine),
        length=n,
        peak=peak,
        stats=stats,
    )


def construct_cycles(
    ddg: DDG,
    machine: MachineModel,
    pheromone: PheromoneTable,
    prepared: PreparedHeuristic,
    params: ACOParams,
    rng: random.Random,
    target_pressure: Dict[RegisterClass, int],
    allow_optional_stalls: bool,
    stall_heuristic: Optional[OptionalStallHeuristic] = None,
    exploit_decider: Optional[ExploitDecider] = None,
    max_length: Optional[int] = None,
) -> AntResult:
    """Pass-2 construction: a cycle-accurate schedule under the RP target.

    Returns a dead result (``alive=False``) if the ant exceeds the target
    pressure or overruns ``max_length`` cycles.
    """
    if exploit_decider is None:
        exploit_decider = _default_decider(params, rng)
    if stall_heuristic is None:
        stall_heuristic = OptionalStallHeuristic(params, ddg.num_instructions)
    region = ddg.region
    n = ddg.num_instructions
    if max_length is None:
        max_length = 4 * n + 64
    tracker = PressureTracker(region)
    state = SchedulingState(ddg, tracker)
    stats = ConstructionStats()
    unscheduled_preds = list(ddg.num_predecessors)
    earliest = [0] * n
    ready: List[int] = list(ddg.roots)
    pending: List[Tuple[int, int]] = []  # (release_cycle, index)
    cycles = [0] * n
    order: List[int] = []
    cycle = 0
    scheduled = 0
    step = 0

    def dead() -> AntResult:
        return AntResult(
            order=tuple(order),
            rp_cost_value=rp_cost(tracker.peak_pressure(), machine),
            length=cycle + 1,
            peak=tracker.peak_pressure(),
            stats=stats,
            alive=False,
        )

    while scheduled < n:
        if cycle > max_length:
            return dead()
        still_pending = []
        for release, index in pending:
            if release <= cycle:
                ready.append(index)
            else:
                still_pending.append((release, index))
        pending = still_pending
        stats.steps += 1

        if not ready:
            # Necessary stall(s): jump to the next release point.
            next_release = min(release for release, _ in pending)
            stats.stalls += next_release - cycle
            cycle = next_release
            continue

        # Candidates that would push the peak past the target doom the ant
        # with certainty (the peak never recedes); restrict selection to the
        # safe ones — a pure pruning of the terminate-on-violation rule.
        safe = [
            i
            for i in ready
            if pressure_excess(
                tracker.pressure_if_scheduled(region[i]), target_pressure
            )
            <= 0
        ]
        stall_capable = (
            allow_optional_stalls
            and pending
            and stats.optional_stalls < stall_heuristic.max_optional_stalls
        )
        if not safe:
            if stall_capable:
                # Forced stall: wait for semi-ready pressure relief.
                stats.stalls += 1
                stats.optional_stalls += 1
                cycle += 1
                continue
            return dead()

        if stall_capable:
            semi_ready = [region[i] for _r, i in pending]
            if stall_heuristic.should_stall(
                tracker,
                [region[i] for i in ready],
                semi_ready,
                target_pressure,
                stats.optional_stalls,
                rng,
            ):
                stats.stalls += 1
                stats.optional_stalls += 1
                cycle += 1
                continue

        state.cycle = cycle
        previous = order[-1] if order else -1
        row = pheromone.row(previous)
        scores = _scores(row, safe, prepared, state, params.heuristic_weight)
        stats.ready_scans += len(ready)
        pick = select_index(scores, rng, exploit_decider(step))
        step += 1
        chosen = safe[pick]
        ready.remove(chosen)
        cycles[chosen] = cycle
        order.append(chosen)
        tracker.schedule(region[chosen])
        scheduled += 1
        stats.successor_ops += len(ddg.successors[chosen])
        for succ, latency in ddg.successors[chosen]:
            release = cycle + latency
            if release > earliest[succ]:
                earliest[succ] = release
            unscheduled_preds[succ] -= 1
            if unscheduled_preds[succ] == 0:
                pending.append((earliest[succ], succ))
        # The constraint-violation rule: terminate on exceeding the target.
        for cls, limit in target_pressure.items():
            if tracker.peak.get(cls, 0) > limit:
                return dead()
        cycle += 1

    peak = tracker.peak_pressure()
    return AntResult(
        order=tuple(order),
        rp_cost_value=rp_cost(peak, machine),
        length=(max(cycles) + 1) if cycles else 0,
        peak=peak,
        stats=stats,
        alive=True,
        cycles=tuple(cycles),
    )
