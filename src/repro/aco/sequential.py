"""The sequential two-pass ACO scheduler (Section IV-A).

This is the CPU reference implementation the parallel scheduler is compared
against in Tables 3.a/3.b and Table 5. Pass 1 minimizes the APRP-based RP
cost over instruction *orders*; pass 2 fixes the pass-1 pressure as a hard
constraint and minimizes schedule *length* over cycle-accurate schedules
with stalls. Each pass runs ``sequential_ants`` ants per iteration and
terminates on the lower bound or on stagnation.

Scheduling time is reported through the deterministic CPU cost model of
:mod:`repro.timing` (see that module for why wall-clock Python timing would
not reproduce the paper's mechanisms).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..analysis.sanitizer import verification_enabled
from ..analysis.verifier import verify_aco_result, verify_order
from ..config import ACOParams
from ..ddg.graph import DDG
from ..errors import ResilienceError
from ..ddg.lower_bounds import RegionBounds, region_bounds
from ..heuristics.base import GuidingHeuristic
from ..heuristics.critical_path import CriticalPathHeuristic
from ..heuristics.list_scheduler import schedule_in_order
from ..heuristics.luc import LastUseCountHeuristic
from ..ir.registers import RegisterClass
from ..machine.model import MachineModel
from ..obs.context import region_trace
from ..obs.record import get_recorder
from ..resilience.checkpoint import RegionCheckpoint
from ..resilience.log import get_resilience_log
from ..resilience.watchdog import DeadlineBudget
from ..rp.cost import rp_cost, rp_cost_lower_bound
from ..rp.liveness import peak_pressure
from ..schedule.schedule import Schedule
from ..profile import get_profiler
from ..telemetry import Telemetry, get_telemetry
from ..timing import DEFAULT_CPU_COST, CPUCostModel, HostSecondsLedger
from .ant import AntResult, ConstructionStats, construct_cycles, construct_order
from .pheromone import PheromoneTable
from .seeding import launch_rng
from .stalls import OptionalStallHeuristic
from .strategy import make_strategy, publish_reinit, resolve_strategy, strategy_from_env
from .termination import TerminationTracker


@dataclass
class PassResult:
    """Outcome of one ACO pass on one region."""

    invoked: bool
    iterations: int
    initial_cost: float
    final_cost: float
    hit_lower_bound: bool
    seconds: float
    stats: ConstructionStats = field(default_factory=ConstructionStats)
    #: Per-iteration winner costs (the convergence curve of the search),
    #: derived from the telemetry layer's ``iteration`` events (see
    #: :meth:`repro.telemetry.PassScope.trace`).
    trace: Tuple[float, ...] = ()
    #: True when the pass stopped early because the region's deadline
    #: budget ran out (the best-so-far shipped as a partial result).
    deadline_hit: bool = False

    @property
    def improved(self) -> bool:
        return self.final_cost < self.initial_cost


def pass_result_from_payload(payload: Dict) -> PassResult:
    """Rebuild a pass result from a checkpoint's embedded pass-1 payload
    (written by :func:`repro.parallel.scheduler.pass_result_payload`).
    Fields the CPU engine does not model — the GPU time breakdown — are
    dropped; the reported seconds stay those of the attempt that actually
    ran the pass."""
    return PassResult(
        invoked=bool(payload["invoked"]),
        iterations=int(payload["iterations"]),
        initial_cost=payload["initial_cost"],
        final_cost=payload["final_cost"],
        hit_lower_bound=bool(payload["hit_lower_bound"]),
        seconds=float(payload["seconds"]),
        trace=tuple(payload.get("trace", ())),
        deadline_hit=bool(payload.get("deadline_hit", False)),
    )


@dataclass
class ACOResult:
    """Final outcome of two-pass ACO scheduling on one region."""

    schedule: Schedule
    peak: Dict[RegisterClass, int]
    rp_cost_value: int
    pass1: PassResult
    pass2: PassResult

    @property
    def seconds(self) -> float:
        return self.pass1.seconds + self.pass2.seconds

    @property
    def length(self) -> int:
        return self.schedule.length


class SequentialACOScheduler:
    """Two-pass ACO scheduling on the CPU."""

    name = "sequential-aco"

    def __init__(
        self,
        machine: MachineModel,
        params: Optional[ACOParams] = None,
        rp_heuristic: Optional[GuidingHeuristic] = None,
        ilp_heuristic: Optional[GuidingHeuristic] = None,
        cost_model: CPUCostModel = DEFAULT_CPU_COST,
        telemetry: Optional[Telemetry] = None,
        verify: Optional[bool] = None,
        strategy: Optional[str] = None,
    ):
        self.machine = machine
        self.params = params or ACOParams()
        self.params.validate()
        self.rp_heuristic = rp_heuristic or LastUseCountHeuristic()
        self.ilp_heuristic = ilp_heuristic or CriticalPathHeuristic()
        self.cost_model = cost_model
        self._telemetry = telemetry
        self._verify = verify
        self._strategy = strategy
        if strategy is not None:
            resolve_strategy(strategy)  # fail fast on unknown names

    @property
    def telemetry(self) -> Telemetry:
        """The injected telemetry, or the process-wide one (resolved late)."""
        return self._telemetry if self._telemetry is not None else get_telemetry()

    @property
    def verify_enabled(self) -> bool:
        """Explicit ``verify`` argument, else ``REPRO_VERIFY`` (resolved late)."""
        return self._verify if self._verify is not None else verification_enabled()

    @property
    def strategy_name(self) -> str:
        """Pheromone-update strategy: explicit argument, else
        ``REPRO_STRATEGY``, else ``params.strategy`` (resolved late)."""
        if self._strategy is not None:
            return self._strategy
        return strategy_from_env() or self.params.strategy

    def _publish_construction_metrics(
        self, tele: Telemetry, stats: ConstructionStats
    ) -> None:
        """Export one pass's construction-operation counts as seq.* metrics."""
        if not tele.collect_metrics:
            return
        m = tele.metrics
        m.counter("seq.steps").inc(stats.steps)
        m.counter("seq.ready_scans").inc(stats.ready_scans)
        m.counter("seq.successor_ops").inc(stats.successor_ops)
        m.counter("seq.stalls").inc(stats.stalls)
        m.counter("seq.optional_stalls").inc(stats.optional_stalls)

    # -- resilience plumbing ---------------------------------------------------

    def _resume_state(
        self,
        resume: RegionCheckpoint,
        region_name: str,
        pheromone: PheromoneTable,
        tracker: TerminationTracker,
    ) -> None:
        """Restore checkpointed search state (always a *partial* resume).

        The sequential engine shares one ``random.Random`` across both
        passes, so a checkpoint from another engine cannot continue its
        draw sequence — the learned state (pheromone, global best, tracker
        counters) carries over, the remaining exploration draws fresh.
        This is the cross-engine rung of the degradation ladder: a hung
        parallel attempt hands its progress to the CPU engine.
        """
        if resume.region != region_name:
            raise ResilienceError(
                "checkpoint is for region %r, not %r" % (resume.region, region_name)
            )
        if resume.tau.shape != pheromone.tau.shape:
            raise ResilienceError(
                "checkpoint pheromone shape %s does not match region shape %s"
                % (resume.tau.shape, pheromone.tau.shape)
            )
        pheromone.tau[:] = resume.tau
        tracker.iterations = resume.iteration
        tracker.iterations_without_improvement = resume.without_improvement
        tracker.best_cost = resume.best_cost

    def _trip_deadline(
        self, tele: Telemetry, region_name: str, pass_index: int, budget: DeadlineBudget
    ) -> None:
        """Record a soft-deadline stop (event + metric + process-wide log)."""
        get_resilience_log().deadline_trips += 1
        tele.emit(
            "deadline",
            region=region_name,
            pass_index=pass_index,
            deadline_seconds=budget.deadline,
            spent_seconds=budget.spent,
        )
        if tele.collect_metrics:
            tele.metrics.counter("resilience.deadline_trips").inc()

    # -- pass 1 ---------------------------------------------------------------

    def _run_rp_pass(
        self,
        ddg: DDG,
        bounds: RegionBounds,
        initial_order: Tuple[int, ...],
        rng: random.Random,
        budget: Optional[DeadlineBudget] = None,
        resume: Optional[RegionCheckpoint] = None,
    ) -> Tuple[Tuple[int, ...], Dict[RegisterClass, int], PassResult]:
        region = ddg.region
        lb_cost = rp_cost_lower_bound(bounds, self.machine)
        initial_schedule = Schedule.from_order(region, initial_order)
        best_peak = peak_pressure(initial_schedule)
        best_cost = rp_cost(best_peak, self.machine)
        best_order = tuple(initial_order)

        stats = ConstructionStats()
        ledger = HostSecondsLedger(self.cost_model.region_overhead)
        tele = self.telemetry
        if best_cost <= lb_cost:
            tele.emit(
                "pass_end",
                region=region.name,
                pass_index=1,
                invoked=False,
                iterations=0,
                final_cost=float(best_cost),
                hit_lower_bound=True,
                seconds=0.0,
            )
            result = PassResult(False, 0, best_cost, best_cost, True, 0.0)
            return best_order, best_peak, result

        strategy = make_strategy(self.strategy_name, self.params, ddg.num_instructions)
        scope = tele.pass_scope(
            region.name, 1, self.name, lb_cost, best_cost, strategy=strategy.name
        )
        prof = get_profiler()
        prof.push("pass1", "pass")
        prof.charge_leaf("overhead", self.cost_model.region_overhead, "overhead")
        prepared = self.rp_heuristic.prepare(ddg)
        pheromone = PheromoneTable(ddg.num_instructions, self.params)
        tracker = TerminationTracker(
            lower_bound=lb_cost,
            stagnation_limit=strategy.stagnation_limit(
                self.params.termination_condition(len(region))
            ),
            best_cost=best_cost,
        )
        if resume is not None:
            self._resume_state(resume, region.name, pheromone, tracker)
            best_order = tuple(resume.best_order)
            best_peak = dict(resume.best_peak)
        deadline_hit = False
        charged = 0.0
        while not tracker.should_stop() and tracker.iterations < self.params.max_iterations:
            if budget is not None:
                budget.charge(ledger.total - charged)
                charged = ledger.total
                if budget.exhausted:
                    deadline_hit = True
                    self._trip_deadline(tele, region.name, 1, budget)
                    break
            winner: Optional[AntResult] = None
            construct = HostSecondsLedger()
            for _ant in range(self.params.sequential_ants):
                result = construct_order(
                    ddg, self.machine, pheromone, prepared, self.params, rng
                )
                stats.merge(result.stats)
                ant_seconds = self.cost_model.construction_seconds(
                    result.stats.steps,
                    result.stats.ready_scans,
                    result.stats.successor_ops,
                )
                ledger.charge(ant_seconds)
                construct.charge(ant_seconds)
                if winner is None or result.rp_cost_value < winner.rp_cost_value:
                    winner = result
            assert winner is not None
            if tracker.record_iteration(winner.rp_cost_value):
                best_order = winner.order
                best_peak = winner.peak
            reinitialized = strategy.update(
                pheromone,
                winner_order=winner.order,
                winner_gap=winner.rp_cost_value - lb_cost,
                best_order=best_order,
                best_gap=tracker.best_cost - lb_cost,
                without_improvement=tracker.iterations_without_improvement,
            )
            pheromone_seconds = self.cost_model.pheromone_seconds(pheromone.touched_entries())
            ledger.charge(pheromone_seconds)
            if reinitialized:
                publish_reinit(
                    tele, region.name, 1, tracker.iterations,
                    strategy.tau_max(tracker.best_cost - lb_cost),
                )
            scope.iteration(float(winner.rp_cost_value), tracker.best_cost)
            if prof.enabled:
                with prof.span("iteration", "iteration"):
                    prof.charge_leaf("construct", construct.total, "construct")
                    prof.charge_leaf("pheromone", pheromone_seconds, "pheromone")
        prof.pop()
        if budget is not None:
            budget.charge(ledger.total - charged)
        pass_result = PassResult(
            invoked=True,
            iterations=tracker.iterations,
            initial_cost=best_cost,
            final_cost=tracker.best_cost,
            hit_lower_bound=tracker.hit_lower_bound,
            seconds=ledger.total,
            stats=stats,
            trace=scope.trace,
            deadline_hit=deadline_hit,
        )
        scope.end(
            invoked=True,
            iterations=tracker.iterations,
            final_cost=float(tracker.best_cost),
            hit_lower_bound=tracker.hit_lower_bound,
            seconds=ledger.total,
        )
        self._publish_construction_metrics(tele, stats)
        return best_order, best_peak, pass_result

    # -- pass 2 ---------------------------------------------------------------

    def _run_ilp_pass(
        self,
        ddg: DDG,
        bounds: RegionBounds,
        best_order: Tuple[int, ...],
        best_peak: Dict[RegisterClass, int],
        rng: random.Random,
        reference_schedule: Optional[Schedule] = None,
        budget: Optional[DeadlineBudget] = None,
        resume: Optional[RegionCheckpoint] = None,
    ) -> Tuple[Schedule, PassResult]:
        region = ddg.region
        length_lb = bounds.length
        # The pass-1 pressure constrains pass 2 at APRP granularity: any
        # pressure that keeps the same occupancy step is acceptable.
        target = self.machine.aprp(best_peak)
        initial_schedule = schedule_in_order(ddg, best_order)
        # When the heuristic's own latency-aware schedule already satisfies
        # the pressure target (always true when pass 1 made no progress), it
        # is a better starting point than the stretched pass-1 order.
        if reference_schedule is not None and reference_schedule.length < initial_schedule.length:
            ref_peak = peak_pressure(reference_schedule)
            if all(ref_peak.get(cls, 0) <= limit for cls, limit in target.items()):
                initial_schedule = reference_schedule
        best_schedule = initial_schedule
        best_length = initial_schedule.length

        stats = ConstructionStats()
        ledger = HostSecondsLedger()
        tele = self.telemetry
        if best_length <= length_lb:
            tele.emit(
                "pass_end",
                region=region.name,
                pass_index=2,
                invoked=False,
                iterations=0,
                final_cost=float(best_length),
                hit_lower_bound=True,
                seconds=0.0,
            )
            result = PassResult(False, 0, best_length, best_length, True, 0.0)
            return best_schedule, result

        strategy = make_strategy(self.strategy_name, self.params, ddg.num_instructions)
        scope = tele.pass_scope(
            region.name, 2, self.name, length_lb, best_length, strategy=strategy.name
        )
        ledger.charge(self.cost_model.region_overhead)
        prof = get_profiler()
        prof.push("pass2", "pass")
        prof.charge_leaf("overhead", self.cost_model.region_overhead, "overhead")
        prepared = self.ilp_heuristic.prepare(ddg)
        pheromone = PheromoneTable(ddg.num_instructions, self.params)
        stall_heuristic = OptionalStallHeuristic(self.params, len(region))
        tracker = TerminationTracker(
            lower_bound=length_lb,
            stagnation_limit=strategy.stagnation_limit(
                self.params.termination_condition(len(region))
            ),
            best_cost=best_length,
        )
        # Length cap from the *pass-start* best (recomputed identically on
        # resume — the checkpointed best must not tighten it).
        max_length = max(2 * best_length, best_length + 16)
        if resume is not None:
            self._resume_state(resume, region.name, pheromone, tracker)
            if resume.best_cycles is not None:
                best_schedule = Schedule(region, resume.best_cycles)
                best_length = int(resume.best_cost)
        deadline_hit = False
        charged = 0.0
        while not tracker.should_stop() and tracker.iterations < self.params.max_iterations:
            if budget is not None:
                budget.charge(ledger.total - charged)
                charged = ledger.total
                if budget.exhausted:
                    deadline_hit = True
                    self._trip_deadline(tele, region.name, 2, budget)
                    break
            winner: Optional[AntResult] = None
            construct = HostSecondsLedger()
            for _ant in range(self.params.sequential_ants):
                result = construct_cycles(
                    ddg,
                    self.machine,
                    pheromone,
                    prepared,
                    self.params,
                    rng,
                    target_pressure=target,
                    allow_optional_stalls=True,
                    stall_heuristic=stall_heuristic,
                    max_length=max_length,
                )
                stats.merge(result.stats)
                ant_seconds = self.cost_model.construction_seconds(
                    result.stats.steps,
                    result.stats.ready_scans,
                    result.stats.successor_ops,
                )
                ledger.charge(ant_seconds)
                construct.charge(ant_seconds)
                if result.alive and (winner is None or result.length < winner.length):
                    winner = result
            if winner is None:
                # Every ant violated the constraint: count a stagnant
                # iteration; the strategy's update alone reshapes the search.
                tracker.record_iteration(tracker.best_cost)
                reinitialized = strategy.update_no_winner(
                    pheromone,
                    best_order=tuple(best_schedule.order),
                    best_gap=tracker.best_cost - length_lb,
                    without_improvement=tracker.iterations_without_improvement,
                )
                pheromone_seconds = self.cost_model.pheromone_seconds(pheromone.touched_entries())
                ledger.charge(pheromone_seconds)
                if reinitialized:
                    publish_reinit(
                        tele, region.name, 2, tracker.iterations,
                        strategy.tau_max(tracker.best_cost - length_lb),
                    )
                scope.iteration(float("inf"), tracker.best_cost)
                if prof.enabled:
                    with prof.span("iteration", "iteration"):
                        prof.charge_leaf("construct", construct.total, "construct")
                        prof.charge_leaf("pheromone", pheromone_seconds, "pheromone")
                continue
            if tracker.record_iteration(winner.length):
                assert winner.cycles is not None
                best_schedule = Schedule(region, winner.cycles)
                best_length = winner.length
            reinitialized = strategy.update(
                pheromone,
                winner_order=winner.order,
                winner_gap=winner.length - length_lb,
                best_order=tuple(best_schedule.order),
                best_gap=tracker.best_cost - length_lb,
                without_improvement=tracker.iterations_without_improvement,
            )
            pheromone_seconds = self.cost_model.pheromone_seconds(pheromone.touched_entries())
            ledger.charge(pheromone_seconds)
            if reinitialized:
                publish_reinit(
                    tele, region.name, 2, tracker.iterations,
                    strategy.tau_max(tracker.best_cost - length_lb),
                )
            scope.iteration(float(winner.length), tracker.best_cost)
            if prof.enabled:
                with prof.span("iteration", "iteration"):
                    prof.charge_leaf("construct", construct.total, "construct")
                    prof.charge_leaf("pheromone", pheromone_seconds, "pheromone")
        prof.pop()
        if budget is not None:
            budget.charge(ledger.total - charged)
        pass_result = PassResult(
            invoked=True,
            iterations=tracker.iterations,
            initial_cost=initial_schedule.length,
            final_cost=best_length,
            hit_lower_bound=tracker.hit_lower_bound,
            seconds=ledger.total,
            stats=stats,
            trace=scope.trace,
            deadline_hit=deadline_hit,
        )
        scope.end(
            invoked=True,
            iterations=tracker.iterations,
            final_cost=float(best_length),
            hit_lower_bound=tracker.hit_lower_bound,
            seconds=ledger.total,
        )
        self._publish_construction_metrics(tele, stats)
        return best_schedule, pass_result

    # -- the public entry point -------------------------------------------------

    def schedule(
        self,
        ddg: DDG,
        seed: int = 0,
        initial_order: Optional[Tuple[int, ...]] = None,
        bounds: Optional[RegionBounds] = None,
        reference_schedule: Optional[Schedule] = None,
        fault_plan=None,
        budget: Optional[DeadlineBudget] = None,
        attempt: int = 0,
        resume: Optional[RegionCheckpoint] = None,
    ) -> ACOResult:
        """Run both passes on one region.

        ``initial_order`` is the heuristic schedule's instruction order (the
        pipeline passes the AMD baseline's); by default the LUC greedy order
        is used. ``reference_schedule`` is the heuristic's latency-aware
        schedule — pass 2 starts from it whenever it satisfies the pressure
        target and beats the stretched pass-1 order. ``bounds`` may be
        precomputed and shared.

        The resilience arguments mirror the parallel scheduler's so the
        degradation ladder can swap engines freely: ``budget`` enforces the
        region deadline, ``resume`` restores a checkpoint (partial —
        see :meth:`_resume_state`). ``fault_plan`` and ``attempt`` are
        accepted for signature parity; the CPU engine has no device
        hazards, which is exactly why it is the ladder's safe rung.

        Every telemetry event and profiler span the call produces carries
        the region's trace context — installed here for direct callers,
        inherited (so a ladder retry's rotated seed keeps the original
        trace id) when the pipeline/ladder already opened one.
        """
        with region_trace(ddg.region.name, ddg.num_instructions, seed):
            return self._schedule_traced(
                ddg, seed, initial_order, bounds, reference_schedule,
                budget=budget, resume=resume,
            )

    def _schedule_traced(
        self,
        ddg: DDG,
        seed: int,
        initial_order: Optional[Tuple[int, ...]],
        bounds: Optional[RegionBounds],
        reference_schedule: Optional[Schedule],
        budget: Optional[DeadlineBudget] = None,
        resume: Optional[RegionCheckpoint] = None,
    ) -> ACOResult:
        if bounds is None:
            bounds = region_bounds(ddg)
        if initial_order is None:
            from ..heuristics.list_scheduler import order_schedule

            initial_order = order_schedule(ddg, heuristic=self.rp_heuristic).order
        rng = launch_rng(seed)

        if resume is not None and resume.region != ddg.region.name:
            raise ResilienceError(
                "checkpoint is for region %r, not %r"
                % (resume.region, ddg.region.name)
            )
        resume1 = resume if resume is not None and resume.pass_index == 1 else None
        resume2 = resume if resume is not None and resume.pass_index == 2 else None
        if resume2 is not None and resume2.pass1 is not None:
            pass1 = pass_result_from_payload(resume2.pass1)
            best_order = tuple(resume2.best_order)
            best_peak = dict(resume2.best_peak)
        else:
            resume2 = None
            best_order, best_peak, pass1 = self._run_rp_pass(
                ddg, bounds, tuple(initial_order), rng, budget=budget, resume=resume1
            )
        schedule, pass2 = self._run_ilp_pass(
            ddg, bounds, best_order, best_peak, rng, reference_schedule,
            budget=budget, resume=resume2,
        )
        final_peak = peak_pressure(schedule)
        result = ACOResult(
            schedule=schedule,
            peak=final_peak,
            rp_cost_value=rp_cost(final_peak, self.machine),
            pass1=pass1,
            pass2=pass2,
        )
        recorder = get_recorder()
        if recorder is not None:
            recorder.record_schedule(
                "search",
                region=ddg.region.name,
                seed=seed,
                scheduler=self.name,
                backend="sequential",
                order=list(schedule.order),
                cycles=list(schedule.cycles),
                length=schedule.length,
                rp_cost=result.rp_cost_value,
            )
        if self.verify_enabled:
            report = verify_order(ddg, best_order)
            report.merge(
                verify_aco_result(
                    result, ddg, self.machine,
                    target_aprp=self.machine.aprp(best_peak),
                )
            )
            report.publish(self.telemetry, ddg.region.name)
            report.raise_if_failed()
        return result
