"""Optimality cross-check: ACO vs. the branch-and-bound certificates.

The paper's termination conditions stop on a *lower bound*, which only
certifies optimality when the bound is tight. This harness closes the gap
on small regions, where the enumerative solvers of :mod:`repro.exact.bnb`
produce true optima:

* pass-1 floor — :func:`min_pressure_order` gives the minimum APRP cost
  over all orders; no heuristic or ACO result may beat it, and a healthy
  search must land within a bounded multiplicative gap of it;
* register floor — :func:`min_register_order` (Chen's min-register
  formulation) gives the machine-independent minimum live-register count;
* pass-2 floor — :func:`min_length_schedule` under the ACO result's own
  pressure target bounds the achievable length *for that target*.

:func:`crosscheck` runs one region through every selected strategy and
returns a report of facts; the test suite (``tests/test_exact_crosscheck
.py``) turns those facts into assertions. Keeping the harness assertion-
free makes it usable from benches and notebooks without pytest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

# Deliberate harness edge: the cross-check exists to run the search
# engines against the exact floors, so it imports them. No cycle can
# form — the layering contract forbids aco/heuristics from importing
# exact — and the solvers in .bnb stay engine-free.
from ..aco.sequential import SequentialACOScheduler  # repro: noqa[LAY-401]
from ..config import ACOParams
from ..ddg.graph import DDG
from ..heuristics.amd_max_occupancy import AMDMaxOccupancyScheduler
from ..machine.model import MachineModel
from ..rp.cost import evaluate_schedule
from ..rp.liveness import peak_pressure
from ..schedule.schedule import Schedule
from .bnb import ExactLimits, min_length_schedule, min_pressure_order, min_register_order

#: Regions past this size are out of the certificate business entirely.
CROSSCHECK_MAX_INSTRUCTIONS = 12


@dataclass
class StrategyOutcome:
    """One strategy's result against the exact floors."""

    strategy: str
    rp_cost: int
    length: int
    #: Multiplicative gap to the exact pass-1 optimum (1.0 = optimal).
    #: Defined as cost ratio with the optimum floored at 1 to stay finite.
    rp_gap: float

    def within(self, max_gap: float) -> bool:
        return self.rp_gap <= max_gap


@dataclass
class CrosscheckReport:
    """Everything the exact solvers and the schedulers said about a region."""

    region: str
    size: int
    seed: int
    #: Exact pass-1 optimum: (order, APRP cost).
    optimal_order: Tuple[int, ...] = ()
    optimal_rp_cost: int = 0
    #: Chen min-register optimum: (order, peak live-register count).
    min_register_order: Tuple[int, ...] = ()
    min_register_count: int = 0
    #: Exact min length under the optimal order's pressure (as a Schedule).
    optimal_schedule: Optional[Schedule] = None
    optimal_length: int = 0
    #: The list-scheduling heuristic baseline.
    heuristic_rp_cost: int = 0
    heuristic_length: int = 0
    #: Per-strategy ACO outcomes, in run order.
    outcomes: Dict[str, StrategyOutcome] = field(default_factory=dict)


def _gap(cost: int, optimum: int) -> float:
    return float(cost) / float(max(1, optimum))


def crosscheck(
    ddg: DDG,
    machine: MachineModel,
    strategies: Sequence[str] = ("as", "mmas"),
    seed: int = 0,
    params: Optional[ACOParams] = None,
    limits: ExactLimits = ExactLimits(max_instructions=CROSSCHECK_MAX_INSTRUCTIONS),
) -> CrosscheckReport:
    """Certify one small region: exact floors + every strategy's landing.

    Raises :class:`~repro.exact.bnb.ExactSolverError` when the region is
    too large for the configured limits.
    """
    report = CrosscheckReport(
        region=ddg.region.name, size=ddg.num_instructions, seed=seed
    )
    report.optimal_order, report.optimal_rp_cost = min_pressure_order(
        ddg, machine, limits
    )
    report.min_register_order, report.min_register_count = min_register_order(
        ddg, limits
    )
    optimal_peak = peak_pressure(Schedule.from_order(ddg.region, report.optimal_order))
    report.optimal_schedule = min_length_schedule(
        ddg, machine, target_pressure=machine.aprp(optimal_peak), limits=limits
    )
    report.optimal_length = report.optimal_schedule.length

    heuristic = evaluate_schedule(AMDMaxOccupancyScheduler(machine).schedule(ddg), machine)
    report.heuristic_rp_cost = heuristic.rp_cost
    report.heuristic_length = heuristic.length

    for strategy in strategies:
        result = SequentialACOScheduler(
            machine, params=params, strategy=strategy
        ).schedule(ddg, seed=seed)
        report.outcomes[strategy] = StrategyOutcome(
            strategy=strategy,
            rp_cost=result.rp_cost_value,
            length=result.length,
            rp_gap=_gap(result.rp_cost_value, report.optimal_rp_cost),
        )
    return report
