"""Branch-and-bound enumeration for the two scheduling objectives.

Both solvers explore the space of dependence-legal constructions with a
best-first flavour of depth-first search and prune with:

* **incumbent bounds** — a partial solution whose cost already matches or
  exceeds the best complete solution is abandoned;
* **memoized dominance** — the reachable future depends only on the set of
  scheduled instructions (plus, for the length solver, the current cycle
  and the operand-arrival times); a state revisited with a no-better
  partial cost is abandoned;
* **lower bounds** — the length solver adds the latency-weighted critical
  path of the unscheduled suffix.

Complexities are exponential; :class:`ExactLimits` guards against runaway
inputs (these solvers exist to certify optima on *small* regions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..ddg.analysis import critical_path_info
from ..ddg.graph import DDG
from ..errors import ReproError
from ..ir.registers import RegisterClass
from ..machine.model import MachineModel
from ..rp.cost import rp_cost
from ..rp.tracker import PressureTracker
from ..schedule.schedule import Schedule


class ExactSolverError(ReproError):
    """The region exceeds the exact solver's limits."""


@dataclass(frozen=True)
class ExactLimits:
    """Safety limits for the enumerative solvers."""

    max_instructions: int = 16
    #: Hard cap on explored states (raises if exhausted, so a silent
    #: truncation can never masquerade as an optimum certificate).
    max_states: int = 2_000_000

    def check_region(self, ddg: DDG) -> None:
        if ddg.num_instructions > self.max_instructions:
            raise ExactSolverError(
                "region has %d instructions; the exact solver accepts up to %d"
                % (ddg.num_instructions, self.max_instructions)
            )


def min_pressure_order(
    ddg: DDG,
    machine: MachineModel,
    limits: ExactLimits = ExactLimits(),
) -> Tuple[Tuple[int, ...], int]:
    """The instruction order minimizing the scalar RP cost, with its cost.

    Exhaustive over topological orders, pruned by the running peak: once a
    partial order's pressure cost reaches the incumbent's, no completion
    can do better (peaks never recede).
    """
    limits.check_region(ddg)
    n = ddg.num_instructions
    region = ddg.region
    states = [0]

    best_cost = [None]  # type: List[Optional[int]]
    best_order: List[Tuple[int, ...]] = [()]
    #: mask -> lowest running cost seen (dominance memo).
    seen: Dict[int, int] = {}

    tracker = PressureTracker(region)
    order: List[int] = []
    pred_left = list(ddg.num_predecessors)

    def running_cost() -> int:
        return rp_cost(tracker.peak_pressure(), machine)

    def dfs() -> None:
        states[0] += 1
        if states[0] > limits.max_states:
            raise ExactSolverError("state budget exhausted")
        cost_now = running_cost()
        if best_cost[0] is not None and cost_now >= best_cost[0]:
            return
        mask = 0
        for i in order:
            mask |= 1 << i
        prior = seen.get(mask)
        if prior is not None and prior <= cost_now:
            return
        seen[mask] = cost_now
        if len(order) == n:
            best_cost[0] = cost_now
            best_order[0] = tuple(order)
            return
        ready = [i for i in range(n) if pred_left[i] == 0 and not (mask >> i) & 1]
        # Explore pressure-friendlier candidates first (better incumbents
        # earlier mean more pruning later).
        ready.sort(key=lambda i: tracker.pressure_delta(region[i]))
        for candidate in ready:
            saved_current = dict(tracker.current)
            saved_peak = dict(tracker.peak)
            saved_live = dict(tracker._live)
            saved_remaining = dict(tracker._remaining_uses)
            tracker.schedule(region[candidate])
            order.append(candidate)
            for succ, _lat in ddg.successors[candidate]:
                pred_left[succ] -= 1
            dfs()
            for succ, _lat in ddg.successors[candidate]:
                pred_left[succ] += 1
            order.pop()
            tracker.current = saved_current
            tracker.peak = saved_peak
            tracker._live = saved_live
            tracker._remaining_uses = saved_remaining

    dfs()
    assert best_cost[0] is not None
    return best_order[0], best_cost[0]


def min_register_order(
    ddg: DDG,
    limits: ExactLimits = ExactLimits(),
) -> Tuple[Tuple[int, ...], int]:
    """The order minimizing the peak *register count*, with that count.

    Chen et al.'s min-register scheduling formulation (arXiv 2303.06855):
    minimize the maximum number of simultaneously live registers over the
    whole order, summed across register classes — the raw-allocation view
    of pressure, independent of any machine's APRP step weighting (which
    is why, unlike its siblings, this solver takes no machine). Same
    search skeleton as :func:`min_pressure_order`; only the objective
    changes (running peak of ``sum(live per class)``).

    The two optima can disagree: APRP weighting can prefer spending many
    registers of a cheap class to save one of an expensive class. The
    cross-check harness (:mod:`repro.exact.crosscheck`) uses this solver
    as the *model-independent* floor.
    """
    limits.check_region(ddg)
    n = ddg.num_instructions
    region = ddg.region
    states = [0]

    best_count = [None]  # type: List[Optional[int]]
    best_order: List[Tuple[int, ...]] = [()]
    #: mask -> lowest running peak count seen (dominance memo).
    seen: Dict[int, int] = {}

    tracker = PressureTracker(region)
    order: List[int] = []
    pred_left = list(ddg.num_predecessors)

    def running_count() -> int:
        return sum(tracker.peak.values())

    def dfs() -> None:
        states[0] += 1
        if states[0] > limits.max_states:
            raise ExactSolverError("state budget exhausted")
        count_now = running_count()
        if best_count[0] is not None and count_now >= best_count[0]:
            return
        mask = 0
        for i in order:
            mask |= 1 << i
        prior = seen.get(mask)
        if prior is not None and prior <= count_now:
            return
        seen[mask] = count_now
        if len(order) == n:
            best_count[0] = count_now
            best_order[0] = tuple(order)
            return
        ready = [i for i in range(n) if pred_left[i] == 0 and not (mask >> i) & 1]
        ready.sort(key=lambda i: tracker.pressure_delta(region[i]))
        for candidate in ready:
            saved_current = dict(tracker.current)
            saved_peak = dict(tracker.peak)
            saved_live = dict(tracker._live)
            saved_remaining = dict(tracker._remaining_uses)
            tracker.schedule(region[candidate])
            order.append(candidate)
            for succ, _lat in ddg.successors[candidate]:
                pred_left[succ] -= 1
            dfs()
            for succ, _lat in ddg.successors[candidate]:
                pred_left[succ] += 1
            order.pop()
            tracker.current = saved_current
            tracker.peak = saved_peak
            tracker._live = saved_live
            tracker._remaining_uses = saved_remaining

    dfs()
    assert best_count[0] is not None
    return best_order[0], best_count[0]


def min_length_schedule(
    ddg: DDG,
    machine: MachineModel,
    target_pressure: Optional[Dict[RegisterClass, int]] = None,
    limits: ExactLimits = ExactLimits(),
) -> Schedule:
    """The shortest latency-legal schedule within a pressure target.

    Explores cycle-by-cycle decisions (issue one ready instruction, or
    stall). ``target_pressure`` of ``None`` means unconstrained. Single
    issue (the paper's machine model).
    """
    limits.check_region(ddg)
    n = ddg.num_instructions
    region = ddg.region
    target = target_pressure or {}
    cp = critical_path_info(ddg)
    states = [0]

    best_length = [None]  # type: List[Optional[int]]
    best_cycles: List[Tuple[int, ...]] = [()]
    #: (mask, tuple of pending releases) -> earliest cycle seen.
    seen: Dict[Tuple[int, int], int] = {}

    tracker = PressureTracker(region)
    cycles = [0] * n
    pred_left = list(ddg.num_predecessors)
    earliest = [0] * n

    def violates_target() -> bool:
        for cls, limit in target.items():
            if tracker.peak.get(cls, 0) > limit:
                return True
        return False

    def suffix_bound(cycle: int, mask: int) -> int:
        """cycle + the critical path of the unscheduled suffix."""
        bound = cycle
        for i in range(n):
            if not (mask >> i) & 1:
                bound = max(bound, max(earliest[i], cycle) + cp.height[i])
        return bound

    # No useful schedule stalls more than one full latency per instruction:
    # past this horizon a branch is infeasible, not merely long.
    max_latency = max((lat for i in range(n) for _s, lat in ddg.successors[i]), default=1)
    horizon = (n + 1) * (max_latency + 1)

    def dfs(cycle: int, scheduled: int, mask: int) -> None:
        states[0] += 1
        if states[0] > limits.max_states:
            raise ExactSolverError("state budget exhausted")
        if cycle > horizon:
            return
        if scheduled == n:
            length = max(cycles) + 1
            if best_length[0] is None or length < best_length[0]:
                best_length[0] = length
                best_cycles[0] = tuple(cycles)
            return
        if best_length[0] is not None and suffix_bound(cycle, mask) >= best_length[0]:
            return
        key = (mask, cycle - min(
            (earliest[i] for i in range(n) if not (mask >> i) & 1), default=cycle
        ))
        prior = seen.get(key)
        if prior is not None and prior <= cycle:
            return
        seen[key] = cycle

        ready = [
            i
            for i in range(n)
            if pred_left[i] == 0 and not (mask >> i) & 1 and earliest[i] <= cycle
        ]
        ready.sort(key=lambda i: -cp.height[i])
        progressed = False
        for candidate in ready:
            preview = tracker.pressure_if_scheduled(region[candidate])
            if any(preview.get(cls, 0) > limit for cls, limit in target.items()):
                continue
            progressed = True
            saved_current = dict(tracker.current)
            saved_peak = dict(tracker.peak)
            saved_live = dict(tracker._live)
            saved_remaining = dict(tracker._remaining_uses)
            saved_earliest = list(earliest)
            tracker.schedule(region[candidate])
            if violates_target():
                tracker.current = saved_current
                tracker.peak = saved_peak
                tracker._live = saved_live
                tracker._remaining_uses = saved_remaining
                continue
            cycles[candidate] = cycle
            for succ, lat in ddg.successors[candidate]:
                pred_left[succ] -= 1
                earliest[succ] = max(earliest[succ], cycle + lat)
            dfs(cycle + 1, scheduled + 1, mask | (1 << candidate))
            for succ, _lat in ddg.successors[candidate]:
                pred_left[succ] += 1
            earliest[:] = saved_earliest
            tracker.current = saved_current
            tracker.peak = saved_peak
            tracker._live = saved_live
            tracker._remaining_uses = saved_remaining

        # Stalling is only ever useful when something is pending (waiting on
        # latency or on pressure relief from a pending closer).
        pending = [
            i for i in range(n) if pred_left[i] == 0 and not (mask >> i) & 1
        ]
        if pending:
            next_event = min(max(earliest[i], cycle + 1) for i in pending)
            if not progressed:
                dfs(next_event, scheduled, mask)
            else:
                # Optional stall: jump one cycle (finer jumps subsume longer
                # ones through recursion).
                dfs(cycle + 1, scheduled, mask)

    dfs(0, 0, 0)
    if best_length[0] is None:
        raise ExactSolverError(
            "no schedule satisfies the pressure target %s"
            % {str(k): v for k, v in target.items()}
        )
    return Schedule(region, best_cycles[0])
