"""Exact (branch-and-bound) reference schedulers for tiny regions.

The ACO scheduler of this paper descends from a line of *precise*
combinatorial schedulers (Shobaki et al., TACO 2013/2019 and CGO 2020 use
branch-and-bound enumeration). This package provides small-scale exact
solvers for both objectives:

* :func:`~repro.exact.bnb.min_pressure_order` — the minimum achievable
  peak-pressure cost over all instruction orders (pass 1's true optimum);
* :func:`~repro.exact.bnb.min_length_schedule` — the shortest latency-legal
  schedule whose pressure stays within a target (pass 2's true optimum).

They enumerate with aggressive pruning and are intended for regions of up
to ~16 instructions: the test suite uses them as ground truth for the ACO
and greedy schedulers, and ``benchmarks/bench_optimality.py`` measures how
often ACO actually reaches the optimum (the paper terminates on a
*lower bound*, which is weaker than an optimum certificate).
"""

from .bnb import (
    ExactLimits,
    min_pressure_order,
    min_register_order,
    min_length_schedule,
)
from .crosscheck import (
    CROSSCHECK_MAX_INSTRUCTIONS,
    CrosscheckReport,
    StrategyOutcome,
    crosscheck,
)

__all__ = [
    "ExactLimits",
    "min_pressure_order",
    "min_register_order",
    "min_length_schedule",
    "CROSSCHECK_MAX_INSTRUCTIONS",
    "CrosscheckReport",
    "StrategyOutcome",
    "crosscheck",
]
