"""Schedule objects and legality validation."""

from .schedule import Schedule
from .validate import validate_schedule

__all__ = ["Schedule", "validate_schedule"]
