"""Schedule legality checking.

A schedule is legal when every dependence edge ``src -> dst`` satisfies
``cycle(dst) >= cycle(src) + latency`` and no cycle issues more instructions
than the machine's issue width. Pass-1 schedules (latencies ignored) can be
checked with ``respect_latencies=False``, which still demands program-order
consistency along every edge.
"""

from __future__ import annotations

from collections import Counter
from typing import Optional

from ..ddg.graph import DDG
from ..errors import ScheduleError
from ..machine.model import MachineModel
from .schedule import Schedule


def validate_schedule(
    schedule: Schedule,
    ddg: DDG,
    machine: Optional[MachineModel] = None,
    respect_latencies: bool = True,
) -> None:
    """Raise :class:`ScheduleError` if ``schedule`` is illegal for ``ddg``."""
    # Region equality is value-based (same instructions and live sets, see
    # SchedulingRegion.__eq__); distinct but equal region objects are fine.
    if schedule.region != ddg.region:
        raise ScheduleError(
            "schedule is for region %r but the DDG describes region %r"
            % (
                getattr(schedule.region, "name", schedule.region),
                ddg.region.name,
            )
        )

    cycles = schedule.cycles
    if len(cycles) != ddg.num_instructions:
        raise ScheduleError(
            "schedule assigns %d cycle(s) for %d instruction(s)"
            % (len(cycles), ddg.num_instructions)
        )
    order = getattr(schedule, "order", None)
    if order is not None and sorted(order) != list(range(ddg.num_instructions)):
        raise ScheduleError(
            "issue order is not a permutation of the region's instructions"
        )
    for src in range(ddg.num_instructions):
        for dst, latency in ddg.successors[src]:
            required = latency if respect_latencies else 1
            if cycles[dst] - cycles[src] < required:
                raise ScheduleError(
                    "dependence %s -> %s needs %d cycle(s); got %d"
                    % (
                        ddg.region[src].label,
                        ddg.region[dst].label,
                        required,
                        cycles[dst] - cycles[src],
                    )
                )

    issue_width = machine.issue_width if machine is not None else 1
    per_cycle = Counter(cycles)
    worst_cycle, worst_count = max(
        per_cycle.items(), key=lambda kv: kv[1], default=(0, 0)
    )
    if worst_count > issue_width:
        raise ScheduleError(
            "cycle %d issues %d instructions; issue width is %d"
            % (worst_cycle, worst_count, issue_width)
        )


def is_legal(
    schedule: Schedule,
    ddg: DDG,
    machine: Optional[MachineModel] = None,
    respect_latencies: bool = True,
) -> bool:
    """Boolean form of :func:`validate_schedule`."""
    try:
        validate_schedule(schedule, ddg, machine, respect_latencies)
    except ScheduleError:
        return False
    return True
