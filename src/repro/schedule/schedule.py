"""The result of scheduling: a cycle assignment.

A :class:`Schedule` assigns a machine cycle to every instruction of a
region (Section II-A: "The output is a schedule, which is an assignment of
a machine cycle to each instruction"). Cycles with no instruction are
*stalls*. The object is immutable; legality checking lives in
:mod:`repro.schedule.validate` and quality metrics in :mod:`repro.rp.cost`.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..errors import ScheduleError
from ..ir.block import SchedulingRegion


class Schedule:
    """An immutable cycle assignment for one region."""

    __slots__ = ("region", "cycles", "_order", "_length")

    def __init__(self, region: SchedulingRegion, cycles: Sequence[int]):
        if len(cycles) != len(region):
            raise ScheduleError(
                "schedule has %d cycles for %d instructions"
                % (len(cycles), len(region))
            )
        cycle_tuple = tuple(int(c) for c in cycles)
        if any(c < 0 for c in cycle_tuple):
            raise ScheduleError("cycles must be >= 0")
        self.region = region
        self.cycles = cycle_tuple
        self._order: Tuple[int, ...] = tuple(
            index for _cycle, index in sorted(
                (cycle, index) for index, cycle in enumerate(cycle_tuple)
            )
        )
        self._length = max(cycle_tuple) + 1 if cycle_tuple else 0

    @classmethod
    def from_order(cls, region: SchedulingRegion, order: Sequence[int]) -> "Schedule":
        """A stall-free schedule issuing ``order`` back to back (one per cycle).

        This is the natural representation for pass 1, where latencies are
        ignored and only the instruction order matters.
        """
        if sorted(order) != list(range(len(region))):
            raise ScheduleError("order must be a permutation of the instructions")
        cycles = [0] * len(region)
        for cycle, index in enumerate(order):
            cycles[index] = cycle
        return cls(region, cycles)

    # -- accessors -----------------------------------------------------------

    @property
    def length(self) -> int:
        """Number of cycles used (the schedule-length objective)."""
        return self._length

    @property
    def order(self) -> Tuple[int, ...]:
        """Instruction indices in issue order (ties broken by index)."""
        return self._order

    @property
    def num_stalls(self) -> int:
        """Cycles in which nothing issues."""
        used = len(set(self.cycles))
        return self._length - used

    def cycle_of(self, index: int) -> int:
        return self.cycles[index]

    def __eq__(self, other) -> bool:
        if not isinstance(other, Schedule):
            return NotImplemented
        return self.region == other.region and self.cycles == other.cycles

    def __hash__(self) -> int:
        return hash((self.region, self.cycles))

    def __repr__(self) -> str:
        return "Schedule(%r, length=%d, stalls=%d)" % (
            self.region.name,
            self._length,
            self.num_stalls,
        )
