"""A pure Critical-Path baseline build.

The paper's sensitivity filter (Section VI-A) compares three builds per
benchmark: base LLVM (AMD scheduler), parallel ACO, and the CP heuristic.
This wrapper gives the CP heuristic the same scheduler interface the
pipeline's baseline slot expects.
"""

from __future__ import annotations

from ..ddg.graph import DDG
from ..machine.model import MachineModel
from ..schedule.schedule import Schedule
from .critical_path import CriticalPathHeuristic
from .list_scheduler import list_schedule, order_schedule


class CriticalPathListScheduler:
    """Greedy list scheduling with the CP priority (ILP-aggressive)."""

    name = "critical-path"

    def __init__(self, machine: MachineModel):
        self.machine = machine
        self._heuristic = CriticalPathHeuristic()

    def schedule(self, ddg: DDG) -> Schedule:
        return list_schedule(ddg, self.machine, heuristic=self._heuristic)

    def order_only(self, ddg: DDG) -> Schedule:
        return order_schedule(ddg, heuristic=self._heuristic)
