"""The Critical-Path (CP) guiding heuristic.

Scores a candidate by its latency-weighted height in the DDG: instructions
that head long dependence chains issue first, which minimizes schedule
length aggressively (Section V-B calls CP one of the "more aggressive ILP
heuristics").
"""

from __future__ import annotations

from ..ddg.graph import DDG
from .base import GuidingHeuristic, PreparedHeuristic, SchedulingState


class PreparedCriticalPath(PreparedHeuristic):
    def score(self, index: int, state: SchedulingState) -> float:
        return float(self.cp_info.height[index])


class CriticalPathHeuristic(GuidingHeuristic):
    name = "critical-path"

    def prepare(self, ddg: DDG) -> PreparedHeuristic:
        return PreparedCriticalPath(ddg)
