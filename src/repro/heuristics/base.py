"""The guiding-heuristic interface.

A guiding heuristic scores ready instructions; the greedy list scheduler
picks the best score, and the ACO selection rule uses the score as the
``eta`` (desirability) term. Scores are floats where **higher is better**;
:meth:`GuidingHeuristic.eta` maps them onto strictly positive values for the
ACO probability formula.

Heuristics are stateless between regions: :meth:`prepare` returns a
region-bound :class:`PreparedHeuristic` so one heuristic object can be
shared across threads/regions.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Tuple

from ..ddg.analysis import CriticalPathInfo, critical_path_info
from ..ddg.graph import DDG
from ..rp.tracker import PressureTracker


@dataclass
class SchedulingState:
    """What a heuristic may look at when scoring a candidate.

    ``tracker`` reflects everything scheduled so far; ``cycle`` is the cycle
    about to issue (always 0 in the order-only RP pass).
    """

    ddg: DDG
    tracker: PressureTracker
    cycle: int = 0


class PreparedHeuristic(abc.ABC):
    """A guiding heuristic bound to one region (precomputed data included)."""

    def __init__(self, ddg: DDG):
        self.ddg = ddg
        self.cp_info: CriticalPathInfo = critical_path_info(ddg)
        # Normalization constant: scores are designed to fit in
        # [0, score_scale); composite heuristics stack tiers of this size.
        self.score_scale = float(max(self.cp_info.height) + 1)

    @abc.abstractmethod
    def score(self, index: int, state: SchedulingState) -> float:
        """Desirability of scheduling instruction ``index`` next (higher wins)."""

    def eta(self, index: int, state: SchedulingState) -> float:
        """Strictly positive desirability for the ACO selection formula."""
        return max(1e-6, 1.0 + self.score(index, state))


class GuidingHeuristic(abc.ABC):
    """Factory for :class:`PreparedHeuristic` instances."""

    name: str = "base"

    @abc.abstractmethod
    def prepare(self, ddg: DDG) -> PreparedHeuristic:
        """Bind this heuristic to a region."""

    def __repr__(self) -> str:
        return "%s()" % type(self).__name__


def builtin_heuristics() -> Tuple[GuidingHeuristic, ...]:
    """The heuristics rotated across wavefront groups (Section V-B)."""
    from .critical_path import CriticalPathHeuristic
    from .luc import LastUseCountHeuristic

    return (CriticalPathHeuristic(), LastUseCountHeuristic())
