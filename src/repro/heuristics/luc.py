"""The Last-Use-Count (LUC) guiding heuristic.

Scores a candidate primarily by how many live ranges it closes (its
last-use count under the current partial schedule) and penalizes opening
new ranges, breaking ties by critical-path height. LUC is the strongest of
the register-pressure-reduction heuristics evaluated by Shobaki et al.
(SPE 2015) and is the natural guide for the RP pass.
"""

from __future__ import annotations

from ..ddg.graph import DDG
from .base import GuidingHeuristic, PreparedHeuristic, SchedulingState


class PreparedLastUseCount(PreparedHeuristic):
    def score(self, index: int, state: SchedulingState) -> float:
        inst = self.ddg.region[index]
        closes = state.tracker.closes_ranges(inst)
        opens = len(inst.defs)
        # Tiered score: net closed ranges dominate, CP height breaks ties.
        net = float(closes - opens)
        tie = self.cp_info.height[index] / self.score_scale
        return (net + len(inst.uses) + 1.0) * self.score_scale + tie


class LastUseCountHeuristic(GuidingHeuristic):
    name = "last-use-count"

    def prepare(self, ddg: DDG) -> PreparedHeuristic:
        return PreparedLastUseCount(ddg)
