"""Greedy list scheduling.

Two entry points, matching the two passes of the RP-aware problem:

* :func:`order_schedule` — latency-blind: repeatedly pick the best-scoring
  instruction from the dependence-ready set and issue instructions back to
  back. This is how pass-1 (RP) schedules are built.
* :func:`list_schedule` — latency-aware, cycle by cycle: the ready list
  contains instructions whose predecessors are scheduled *and* whose
  operands have arrived; when the ready list is empty but instructions are
  pending, the machine stalls. This is the pass-2 (ILP) construction and
  also how heuristic baselines produce final schedules.

Both are deterministic given the priority function; ties break toward the
lower program-order index, matching the behaviour of LLVM's source-order
tie-break.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ..ddg.graph import DDG
from ..errors import ScheduleError
from ..machine.model import MachineModel
from ..rp.tracker import PressureTracker
from ..schedule.schedule import Schedule
from .base import GuidingHeuristic, SchedulingState

#: Signature of a priority function: (index, state) -> score, higher wins.
PriorityFn = Callable[[int, SchedulingState], float]


def _priority_from_heuristic(heuristic: GuidingHeuristic, ddg: DDG) -> PriorityFn:
    prepared = heuristic.prepare(ddg)
    return prepared.score


def order_schedule(
    ddg: DDG,
    heuristic: Optional[GuidingHeuristic] = None,
    priority: Optional[PriorityFn] = None,
) -> Schedule:
    """Latency-blind greedy scheduling (the shape of a pass-1 schedule)."""
    if priority is None:
        if heuristic is None:
            raise ScheduleError("order_schedule needs a heuristic or a priority")
        priority = _priority_from_heuristic(heuristic, ddg)
    n = ddg.num_instructions
    region = ddg.region
    tracker = PressureTracker(region)
    state = SchedulingState(ddg, tracker)
    unscheduled_preds = list(ddg.num_predecessors)
    ready: List[int] = list(ddg.roots)
    order: List[int] = []
    while ready:
        best = max(ready, key=lambda i: (priority(i, state), -i))
        ready.remove(best)
        order.append(best)
        tracker.schedule(region[best])
        for succ, _lat in ddg.successors[best]:
            unscheduled_preds[succ] -= 1
            if unscheduled_preds[succ] == 0:
                ready.append(succ)
    if len(order) != n:
        raise ScheduleError("DDG is not schedulable (cycle?)")
    return Schedule.from_order(region, order)


def schedule_in_order(ddg: DDG, order) -> Schedule:
    """Stretch a fixed instruction order into a latency-legal schedule.

    Issues the instructions of ``order`` one per cycle in exactly that
    order, inserting the *necessary* stalls latency demands. This is how the
    best pass-1 (RP) order becomes the initial schedule of pass 2
    (Section IV-C: "Stalls are added to the best-RP schedule found in the
    first pass to satisfy latency constraints").
    """
    cycles = [0] * ddg.num_instructions
    current = -1
    for index in order:
        earliest = current + 1
        for pred, latency in ddg.predecessors[index]:
            earliest = max(earliest, cycles[pred] + latency)
        cycles[index] = earliest
        current = earliest
    if sorted(order) != list(range(ddg.num_instructions)):
        raise ScheduleError("order must be a permutation of the instructions")
    return Schedule(ddg.region, cycles)


def list_schedule(
    ddg: DDG,
    machine: MachineModel,
    heuristic: Optional[GuidingHeuristic] = None,
    priority: Optional[PriorityFn] = None,
) -> Schedule:
    """Latency-aware greedy list scheduling (cycle-accurate, with stalls)."""
    if priority is None:
        if heuristic is None:
            raise ScheduleError("list_schedule needs a heuristic or a priority")
        priority = _priority_from_heuristic(heuristic, ddg)

    n = ddg.num_instructions
    region = ddg.region
    tracker = PressureTracker(region)
    state = SchedulingState(ddg, tracker)
    unscheduled_preds = list(ddg.num_predecessors)
    cycles = [0] * n
    #: earliest cycle each instruction may issue, given scheduled predecessors
    earliest = [0] * n
    ready: List[int] = list(ddg.roots)
    #: (release_cycle, index) for dependence-satisfied but not-yet-ready insts
    pending: List[Tuple[int, int]] = []
    scheduled = 0
    cycle = 0
    while scheduled < n:
        # Move newly released instructions into the ready list.
        still_pending = []
        for release, index in pending:
            if release <= cycle:
                ready.append(index)
            else:
                still_pending.append((release, index))
        pending = still_pending
        if not ready:
            if not pending:
                raise ScheduleError("DDG is not schedulable (cycle?)")
            cycle = min(release for release, _ in pending)
            continue
        state.cycle = cycle
        issued = 0
        while ready and issued < machine.issue_width:
            best = max(ready, key=lambda i: (priority(i, state), -i))
            ready.remove(best)
            cycles[best] = cycle
            tracker.schedule(region[best])
            scheduled += 1
            issued += 1
            for succ, latency in ddg.successors[best]:
                release = cycle + latency
                if release > earliest[succ]:
                    earliest[succ] = release
                unscheduled_preds[succ] -= 1
                if unscheduled_preds[succ] == 0:
                    # Latencies are >= 1, so a successor can never issue in
                    # the current cycle; park it until its operands arrive.
                    pending.append((earliest[succ], succ))
        cycle += 1
    return Schedule(region, cycles)
