"""Heuristic schedulers and ACO guiding heuristics.

* :class:`~repro.heuristics.base.GuidingHeuristic` — the interface shared by
  the greedy list scheduler and the ACO selection rule (Section IV-A: the
  search is guided by common heuristics such as Critical-Path and
  Last-Use-Count).
* :mod:`~repro.heuristics.list_scheduler` — latency-aware greedy list
  scheduling and order-only (pass-1 style) scheduling.
* :class:`~repro.heuristics.amd_max_occupancy.AMDMaxOccupancyScheduler` — the
  production-baseline stand-in (GCNMaxOccupancyScheduler's two-mode greedy
  policy).
"""

from .base import GuidingHeuristic, SchedulingState
from .critical_path import CriticalPathHeuristic
from .luc import LastUseCountHeuristic
from .list_scheduler import list_schedule, order_schedule
from .amd_max_occupancy import AMDMaxOccupancyScheduler

__all__ = [
    "GuidingHeuristic",
    "SchedulingState",
    "CriticalPathHeuristic",
    "LastUseCountHeuristic",
    "list_schedule",
    "order_schedule",
    "AMDMaxOccupancyScheduler",
]
