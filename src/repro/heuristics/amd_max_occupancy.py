"""The production-baseline stand-in: a max-occupancy greedy scheduler.

Models the policy of AMD's ``GCNMaxOccupancyScheduler`` (the paper's
baseline): a greedy list scheduler that normally pursues ILP (critical-path
first) but switches to pressure-reduction mode whenever the running register
pressure approaches the boundary where the kernel would lose an occupancy
level. In pressure mode it prefers instructions that close live ranges and
avoid opening new ones — the same two-mode shape as LLVM's
``GenericScheduler`` with the AMD occupancy heuristics on top.
"""

from __future__ import annotations

from typing import Dict

from ..ddg.graph import DDG
from ..ir.registers import RegisterClass
from ..machine.model import MachineModel
from ..rp.cost import rp_cost
from ..schedule.schedule import Schedule
from .base import PreparedHeuristic, SchedulingState
from .list_scheduler import list_schedule, order_schedule


class _PreparedMaxOccupancy(PreparedHeuristic):
    """Two-mode greedy policy bound to one region."""

    def __init__(
        self,
        ddg: DDG,
        machine: MachineModel,
        headroom: int,
        ilp_height_weight: float = 1.0,
        ilp_source_weight: float = 0.6,
    ):
        super().__init__(ddg)
        self.machine = machine
        self.headroom = headroom
        self.ilp_height_weight = ilp_height_weight
        self.ilp_source_weight = ilp_source_weight
        # Pressure ceilings: the largest pressure per class that still
        # permits the occupancy reachable by this region's live-in set alone.
        self._ceilings: Dict[RegisterClass, int] = {}
        base_pressure = {cls: 0 for cls in machine.classes()}
        for reg in ddg.region.live_in:
            if reg.reg_class in base_pressure:
                base_pressure[reg.reg_class] += 1
        target_occupancy = machine.occupancy_for_pressure(base_pressure)
        for cls in machine.classes():
            table = machine.table_for(cls)
            ceiling = 0
            for max_pressure, occ in table.breakpoints:
                if occ >= target_occupancy:
                    ceiling = max_pressure
            self._ceilings[cls] = ceiling

    def _pressure_critical(self, state: SchedulingState) -> bool:
        for cls, ceiling in self._ceilings.items():
            if state.tracker.current.get(cls, 0) + self.headroom > ceiling:
                return True
        return False

    def score(self, index: int, state: SchedulingState) -> float:
        inst = self.ddg.region[index]
        height_tie = self.cp_info.height[index] / self.score_scale
        if self._pressure_critical(state):
            net_closed = state.tracker.closes_ranges(inst) - len(inst.defs)
            return (net_closed + len(inst.uses) + 1.0) * self.score_scale + height_tie
        # ILP mode: like LLVM's GenericScheduler the policy is partly
        # myopic — critical-path height blended with a source-order
        # preference (the scheduler sees latency locally, not the whole
        # DAG). The imperfection is the gap a global search can close.
        n = self.ddg.num_instructions
        source_bias = float(n - index)
        return (
            self.ilp_height_weight * float(self.cp_info.height[index])
            + self.ilp_source_weight * source_bias
        )


class AMDMaxOccupancyScheduler:
    """The greedy baseline scheduler used throughout the evaluation.

    ``headroom`` is how close (in registers) the running pressure may get to
    an occupancy boundary before the policy flips into pressure mode.
    """

    name = "amd-max-occupancy"

    def __init__(
        self,
        machine: MachineModel,
        headroom: int = 2,
        ilp_height_weight: float = 1.0,
        ilp_source_weight: float = 0.6,
    ):
        self.machine = machine
        self.headroom = headroom
        self.ilp_height_weight = ilp_height_weight
        self.ilp_source_weight = ilp_source_weight

    def _prepared(self, ddg: DDG) -> _PreparedMaxOccupancy:
        return _PreparedMaxOccupancy(
            ddg,
            self.machine,
            self.headroom,
            self.ilp_height_weight,
            self.ilp_source_weight,
        )

    def schedule(self, ddg: DDG) -> Schedule:
        """Produce the final (latency-aware) heuristic schedule."""
        prepared = self._prepared(ddg)
        return list_schedule(ddg, self.machine, priority=prepared.score)

    def order_only(self, ddg: DDG) -> Schedule:
        """Latency-blind variant, used as the pass-1 heuristic schedule."""
        prepared = self._prepared(ddg)
        return order_schedule(ddg, priority=prepared.score)

    def rp_cost_of(self, schedule: Schedule) -> int:
        from ..rp.liveness import peak_pressure

        return rp_cost(peak_pressure(schedule), self.machine)
