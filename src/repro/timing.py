"""Deterministic cost models for scheduling time.

The paper reports wall-clock scheduling times measured on a Threadripper
1950X (sequential ACO) and a Radeon VII (parallel ACO). This reproduction
replaces both measurements with deterministic operation-count models so the
speedup *mechanisms* — fixed launch/copy overheads, divergence, coalescing —
are visible and the experiments are reproducible bit for bit:

* the **CPU model** charges a fixed per-region overhead plus a per-operation
  cost for every ready-list scan entry and successor-list traversal an ant
  performs (the inner loops of schedule construction);
* the **GPU model** (driven by :mod:`repro.gpusim`) charges kernel-launch and
  host/device-copy overheads plus per-wavefront lockstep cycles, where a
  wavefront's cycle count is the *maximum* over its lanes and divergent
  branches serialize.

All calibration constants live here, in one place. They were chosen so the
simulated platform lands in the same regime as the paper's hardware: a
single CPU core retires roughly 10^8 construction operations per second,
the GPU clock is 1.8 GHz with 60 CUs, and a kernel launch plus a small copy
costs tens of microseconds. The reproduced speedups should be compared in
*shape* (who wins, how it scales with region size, pass 1 vs. pass 2), not
digit for digit.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CPUCostModel:
    """Operation-count -> seconds model for the sequential scheduler."""

    #: Fixed per-region setup (DDG copies, allocation) in seconds.
    region_overhead: float = 40e-6
    #: Seconds per ready-list entry scanned during selection (includes the
    #: tau * eta**beta score: a powf and two loads per candidate).
    ready_scan_op: float = 28e-9
    #: Seconds per successor-list entry traversed during a ready-list update.
    successor_op: float = 20e-9
    #: Seconds per construction step (selection bookkeeping, RNG, RP update).
    step_op: float = 44e-9
    #: Seconds per pheromone-table entry touched (decay + deposit).
    pheromone_op: float = 1.2e-9

    def construction_seconds(
        self, steps: int, ready_scans: int, successor_ops: int
    ) -> float:
        return (
            steps * self.step_op
            + ready_scans * self.ready_scan_op
            + successor_ops * self.successor_op
        )

    def pheromone_seconds(self, table_entries: int) -> float:
        return table_entries * self.pheromone_op


@dataclass(frozen=True)
class GPUCostModel:
    """Cycle-count -> seconds model for the parallel scheduler."""

    #: GPU core clock in Hz (Radeon VII: 1.8 GHz).
    clock_hz: float = 1.8e9
    #: Compute units (Radeon VII: 60) and SIMDs per CU (GCN: 4).
    compute_units: int = 60
    simds_per_cu: int = 4
    #: Fixed kernel-launch latency in seconds (HIP cooperative launch).
    launch_overhead: float = 40e-6
    #: Fixed cost of one host<->device copy call, in seconds. Without batched
    #: transfers every consolidated array becomes many small copies.
    per_copy_call: float = 8e-6
    #: PCIe-ish effective copy bandwidth in bytes/second.
    copy_bandwidth: float = 8e9
    #: Cycles charged per abstract lockstep operation (ALU work per step).
    cycles_per_op: float = 2.0
    #: Cycles charged per memory transaction (L2-ish latency, amortized
    #: across the wavefront at occupancy 1 per SIMD).
    cycles_per_transaction: float = 12.0
    #: Cycles charged per device-side dynamic allocation (ScatterAlloc-era
    #: mallocs serialize heavily; Section V-A avoids them entirely).
    alloc_cycles: float = 600.0
    #: Effective transactions per uncoalesced (AoS) wavefront access, vs. 1
    #: when coalesced (SoA). A 64-lane gather across struct-strided state
    #: touches many cache lines; 16 models the observed 6-11x end-to-end
    #: gap of the paper's Table 4.a once compute is included.
    uncoalesced_factor: float = 16.0

    def copy_seconds(self, num_bytes: int, num_calls: int) -> float:
        return num_calls * self.per_copy_call + num_bytes / self.copy_bandwidth

    def cycles_to_seconds(self, cycles: float) -> float:
        """Convert device cycles to seconds at the model's core clock."""
        return cycles / self.clock_hz

    def kernel_seconds(self, wavefront_cycles: float, num_wavefronts: int) -> float:
        """Seconds for ``num_wavefronts`` identical-cost wavefronts.

        Wavefronts beyond the machine's SIMD capacity run in batches; the
        scheduling kernel's occupancy is 1 wavefront per SIMD (its register
        and LDS footprint is large), so capacity = CUs * SIMDs.
        """
        capacity = self.compute_units * self.simds_per_cu
        batches = (num_wavefronts + capacity - 1) // capacity
        return self.launch_overhead * 0 + batches * wavefront_cycles / self.clock_hz


@dataclass(frozen=True)
class CompileTimeModel:
    """Whole-compilation time model for Table 5.

    The non-scheduling part of the compiler (parsing, optimization, ISel,
    RA, encoding) is charged per instruction and per kernel; the greedy
    heuristic scheduler is charged a small per-instruction cost. ACO time is
    measured by the scheduler cost models, not this one. The per-instruction
    constant is calibrated so the default experiment scale lands near the
    paper's +45.8% (sequential ACO) and +15.1% (parallel ACO) compile-time
    overheads over the baseline compiler.
    """

    #: These are *simulated-world* constants: the scheduler cost models are
    #: themselves scaled down (512-ant default launches instead of 11,520),
    #: so the base compiler is scaled to match — what is calibrated is the
    #: paper's *ratio* of ACO scheduling time to total compile time
    #: (sequential ACO ~= +46% over the base compiler at the default
    #: experiment scale), not an absolute per-instruction cost.
    base_per_instruction: float = 9e-6
    base_per_kernel: float = 1e-3
    heuristic_fixed: float = 3e-6
    heuristic_per_instruction: float = 400e-9

    def heuristic_seconds(self, num_instructions: int) -> float:
        return self.heuristic_fixed + num_instructions * self.heuristic_per_instruction

    def base_seconds(self, num_instructions: int, num_kernels: int = 0) -> float:
        return (
            num_instructions * self.base_per_instruction
            + num_kernels * self.base_per_kernel
        )


class HostSecondsLedger:
    """The sanctioned host-side accumulator for simulated seconds.

    Scheduler hot paths must not hand-roll ``seconds += x`` locals
    (static analysis rule ACC-302): a bare accumulator is invisible
    accounting — nothing asserts the charge is non-negative and every
    site re-implements the same summation. The ledger is a drop-in
    replacement with identical float addition order (``total += x``), so
    adopting it is bit-identical, but every charge passes one audited
    funnel. The device-side equivalent is ``KernelAccounting.charge_*``.
    """

    __slots__ = ("total",)

    def __init__(self, initial: float = 0.0) -> None:
        if initial < 0.0:
            raise ValueError("ledger cannot start negative: %r" % (initial,))
        self.total = float(initial)

    def charge(self, seconds: float) -> float:
        """Add ``seconds`` (>= 0) and return the running total."""
        if seconds < 0.0:
            raise ValueError("cannot charge negative seconds: %r" % (seconds,))
        self.total += seconds
        return self.total


#: The default models used by every experiment.
DEFAULT_CPU_COST = CPUCostModel()
DEFAULT_GPU_COST = GPUCostModel()
DEFAULT_COMPILE_TIME = CompileTimeModel()
