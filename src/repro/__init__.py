"""repro — a full reproduction of *Instruction Scheduling for the GPU on
the GPU* (Shobaki et al., CGO 2024) in Python.

The package implements the paper's GPU-parallel Ant Colony Optimization
scheduler for the register-pressure-aware instruction scheduling problem,
together with every substrate it needs: a virtual-register IR, dependence
graphs with transitive closure and lower bounds, an AMD-Vega-like machine
model with occupancy tables and the APRP cost function, greedy baseline
schedulers, a lockstep SIMT simulator standing in for the Radeon VII, a
synthetic rocPRIM-like benchmark suite, the selective compile pipeline, and
an experiment harness that regenerates every table and figure of the
paper's evaluation.

Quickstart::

    from repro import (
        RegionBuilder, DDG, amd_vega20,
        AMDMaxOccupancyScheduler, SequentialACOScheduler, ParallelACOScheduler,
    )

    b = RegionBuilder("example")
    b.inst("global_load", defs=["v0"])
    b.inst("global_load", defs=["v1"])
    b.inst("v_add_f32", defs=["v2"], uses=["v0", "v1"])
    region = b.live_out("v2").build()

    machine = amd_vega20()
    ddg = DDG(region)
    result = ParallelACOScheduler(machine).schedule(ddg)
    print(result.schedule.length, result.peak)

See ``examples/`` for runnable end-to-end scenarios and ``python -m repro
all`` for the paper's evaluation.
"""

from .config import ACOParams, FilterParams, GPUParams, ReproConfig, SuiteParams
from .ddg import DDG, TransitiveClosure, region_bounds
from .errors import ReproError
from .heuristics import (
    AMDMaxOccupancyScheduler,
    CriticalPathHeuristic,
    LastUseCountHeuristic,
    list_schedule,
    order_schedule,
)
from .ir import RegionBuilder, SchedulingRegion, format_region, format_schedule, parse_region
from .machine import MachineModel, OccupancyTable, amd_vega20, simple_test_target
from .aco import SequentialACOScheduler
from .parallel import ParallelACOScheduler
from .pipeline import CompilePipeline
from .rp import evaluate_schedule, peak_pressure
from .schedule import Schedule, validate_schedule
from .suite import generate_suite

__version__ = "1.0.0"

__all__ = [
    "ACOParams",
    "FilterParams",
    "GPUParams",
    "ReproConfig",
    "SuiteParams",
    "DDG",
    "TransitiveClosure",
    "region_bounds",
    "ReproError",
    "AMDMaxOccupancyScheduler",
    "CriticalPathHeuristic",
    "LastUseCountHeuristic",
    "list_schedule",
    "order_schedule",
    "RegionBuilder",
    "SchedulingRegion",
    "format_region",
    "format_schedule",
    "parse_region",
    "MachineModel",
    "OccupancyTable",
    "amd_vega20",
    "simple_test_target",
    "SequentialACOScheduler",
    "ParallelACOScheduler",
    "CompilePipeline",
    "evaluate_schedule",
    "peak_pressure",
    "Schedule",
    "validate_schedule",
    "generate_suite",
    "__version__",
]
