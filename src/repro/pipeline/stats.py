"""Suite-level aggregation: the inputs of Tables 1 and 2.

* :func:`suite_statistics` — the Table 1 rows: benchmark/kernel/region
  counts, how many regions each ACO pass processed, and the average and
  maximum processed region sizes.
* :func:`improvement_statistics` — the Table 2 rows: overall and maximum
  occupancy increase (kernel level) and schedule-length reduction (region
  level) of an ACO build relative to the baseline build.
* :func:`publish_run_metrics` — the same rollups pushed into a telemetry
  metrics registry under ``suite.<scheduler>.*`` (called by
  :meth:`repro.pipeline.compiler.CompilePipeline.compile_suite` when metric
  collection is on).
"""

from __future__ import annotations

from dataclasses import dataclass
from .compiler import CompileRun


@dataclass(frozen=True)
class SuiteStatistics:
    """Table 1: benchmark statistics for one compile run."""

    num_benchmarks: int
    num_kernels: int
    num_regions: int
    pass1_regions: int
    pass2_regions: int
    avg_pass1_size: float
    avg_pass2_size: float
    max_pass1_size: int
    max_pass2_size: int


def suite_statistics(run: CompileRun, num_benchmarks: int) -> SuiteStatistics:
    pass1_sizes = []
    pass2_sizes = []
    num_regions = 0
    for _kernel, outcome in run.all_regions():
        num_regions += 1
        if outcome.pass1_processed:
            pass1_sizes.append(outcome.size)
        if outcome.pass2_processed:
            pass2_sizes.append(outcome.size)

    def _avg(values):
        return sum(values) / len(values) if values else 0.0

    return SuiteStatistics(
        num_benchmarks=num_benchmarks,
        num_kernels=len(run.kernels),
        num_regions=num_regions,
        pass1_regions=len(pass1_sizes),
        pass2_regions=len(pass2_sizes),
        avg_pass1_size=_avg(pass1_sizes),
        avg_pass2_size=_avg(pass2_sizes),
        max_pass1_size=max(pass1_sizes, default=0),
        max_pass2_size=max(pass2_sizes, default=0),
    )


@dataclass(frozen=True)
class ImprovementStatistics:
    """Table 2: ACO improvement over the baseline scheduler."""

    pass1_regions: int
    pass2_regions: int
    overall_occupancy_increase_pct: float
    max_occupancy_increase_pct: float
    overall_length_reduction_pct: float
    max_length_reduction_pct: float


def improvement_statistics(aco_run: CompileRun) -> ImprovementStatistics:
    """Compare the ACO build's final schedules against its own heuristic
    baselines (the heuristic schedule of every region is recorded in the
    same run, so no second compilation is needed)."""
    heur_occ_sum = 0
    final_occ_sum = 0
    max_occ_gain = 0.0
    for kernel in aco_run.kernels:
        heuristic_occupancy = kernel.heuristic_occupancy
        final_occupancy = kernel.final_occupancy
        heur_occ_sum += heuristic_occupancy
        final_occ_sum += final_occupancy
        if heuristic_occupancy > 0:
            gain = 100.0 * (final_occupancy - heuristic_occupancy) / heuristic_occupancy
            max_occ_gain = max(max_occ_gain, gain)

    heur_len_sum = 0
    final_len_sum = 0
    max_len_reduction = 0.0
    pass1_regions = 0
    pass2_regions = 0
    for _kernel, outcome in aco_run.all_regions():
        heur_len_sum += outcome.heuristic.length
        final_len_sum += outcome.final.length
        if outcome.heuristic.length > 0:
            reduction = (
                100.0
                * (outcome.heuristic.length - outcome.final.length)
                / outcome.heuristic.length
            )
            max_len_reduction = max(max_len_reduction, reduction)
        if outcome.pass1_processed:
            pass1_regions += 1
        if outcome.pass2_processed:
            pass2_regions += 1

    return ImprovementStatistics(
        pass1_regions=pass1_regions,
        pass2_regions=pass2_regions,
        overall_occupancy_increase_pct=(
            100.0 * (final_occ_sum - heur_occ_sum) / heur_occ_sum if heur_occ_sum else 0.0
        ),
        max_occupancy_increase_pct=max_occ_gain,
        overall_length_reduction_pct=(
            100.0 * (heur_len_sum - final_len_sum) / heur_len_sum if heur_len_sum else 0.0
        ),
        max_length_reduction_pct=max_len_reduction,
    )


def publish_run_metrics(run: CompileRun, telemetry) -> None:
    """Push one compile run's suite-level rollups into the metrics registry.

    Gauges live under ``suite.<scheduler>.*`` so runs of different
    scheduler configurations within one process (the experiment context
    compiles the suite under several) stay distinguishable.
    """
    stats = suite_statistics(run, num_benchmarks=0)
    m = telemetry.metrics
    prefix = "suite.%s." % run.scheduler_name
    m.gauge(prefix + "regions").set(stats.num_regions)
    m.gauge(prefix + "pass1_regions").set(stats.pass1_regions)
    m.gauge(prefix + "pass2_regions").set(stats.pass2_regions)
    m.gauge(prefix + "max_pass1_size").set(stats.max_pass1_size)
    m.gauge(prefix + "max_pass2_size").set(stats.max_pass2_size)
    m.gauge(prefix + "scheduling_us").set(run.scheduling_seconds * 1e6)
    m.gauge(prefix + "total_us").set(run.total_seconds * 1e6)
    if run.scheduler_name != "baseline":
        improvement = improvement_statistics(run)
        m.gauge(prefix + "occupancy_gain_pct").set(
            improvement.overall_occupancy_increase_pct
        )
        m.gauge(prefix + "length_reduction_pct").set(
            improvement.overall_length_reduction_pct
        )
