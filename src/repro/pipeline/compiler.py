"""The compile pipeline (Section VI's experimental flow).

For every scheduling region:

1. the AMD baseline produces the heuristic schedule;
2. the invocation filter compares it against the lower bounds — if it is
   provably optimal (or within the cycle threshold on length), ACO is
   skipped and the heuristic schedule ships;
3. otherwise the configured ACO scheduler (sequential on the CPU or
   parallel on the simulated GPU) runs both passes;
4. the post-scheduling filter picks the better-balanced of the ACO and
   heuristic schedules.

The pipeline records, per region, everything the evaluation consumes:
which passes ran and for how many iterations, the modelled scheduling
times, and the heuristic/ACO/final schedule qualities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

from ..analysis.ddg_lint import lint_ddg
from ..analysis.sanitizer import verification_enabled
from ..analysis.verifier import verify_schedule
from ..config import FilterParams, ResilienceParams
from ..aco.sequential import PassResult, SequentialACOScheduler
from ..ddg.graph import DDG
from ..ddg.lower_bounds import RegionBounds, region_bounds
from ..errors import PipelineError, RegionUnrecoverable
from ..heuristics.amd_max_occupancy import AMDMaxOccupancyScheduler
from ..machine.model import MachineModel
from ..obs.context import region_trace
from ..obs.record import get_recorder
from ..parallel.scheduler import ParallelACOScheduler
from ..profile import get_profiler
from ..resilience.ladder import schedule_with_resilience
from ..rp.cost import ScheduleQuality, evaluate_schedule, rp_cost_lower_bound
from ..schedule.schedule import Schedule
from ..suite.rocprim import KernelSpec, Suite
from ..suite.rng import derive_seed
from ..telemetry import Telemetry, get_telemetry
from ..timing import DEFAULT_COMPILE_TIME, CompileTimeModel
from .filters import FilterDecision, InvocationFilter, PostSchedulingFilter

ACOScheduler = Union[SequentialACOScheduler, ParallelACOScheduler]


@dataclass
class RegionOutcome:
    """Everything recorded about scheduling one region."""

    region_name: str
    size: int
    bounds: RegionBounds
    heuristic: ScheduleQuality
    final: ScheduleQuality
    decision: FilterDecision
    schedule: Schedule
    aco: Optional[ScheduleQuality] = None
    pass1: Optional[PassResult] = None
    pass2: Optional[PassResult] = None
    #: Modelled scheduling time: heuristic + (when invoked) ACO.
    scheduling_seconds: float = 0.0

    @property
    def aco_invoked(self) -> bool:
        return self.pass1 is not None

    @property
    def pass1_processed(self) -> bool:
        return self.pass1 is not None and self.pass1.invoked

    @property
    def pass2_processed(self) -> bool:
        return self.pass2 is not None and self.pass2.invoked

    @property
    def aco_seconds(self) -> float:
        """Modelled ACO scheduling time (0 when ACO was not invoked)."""
        total = 0.0
        if self.pass1 is not None:
            total += self.pass1.seconds
        if self.pass2 is not None:
            total += self.pass2.seconds
        return total

    @property
    def length_gap(self) -> int:
        """Heuristic schedule length minus the length lower bound."""
        return self.heuristic.length - self.bounds.length


@dataclass
class KernelOutcome:
    """Per-kernel aggregate: region outcomes plus kernel-level occupancy."""

    kernel: KernelSpec
    regions: Tuple[RegionOutcome, ...]

    def _occupancy(self, pick) -> int:
        return min(pick(r).occupancy for r in self.regions)

    @property
    def final_occupancy(self) -> int:
        """Kernel occupancy of the shipped build (min across regions)."""
        return self._occupancy(lambda r: r.final)

    @property
    def heuristic_occupancy(self) -> int:
        return self._occupancy(lambda r: r.heuristic)

    def weighted_length(self, pick, weights: Optional[Tuple[float, ...]] = None) -> float:
        """Dynamic-execution-weighted schedule length (exec-model input).

        ``weights`` overrides the kernel's own region weights — benchmarks
        invoking the kernel with different parameters pass theirs.
        """
        if not weights:
            weights = self.kernel.region_weights
        return sum(w * pick(r).length for w, r in zip(weights, self.regions))

    @property
    def scheduling_seconds(self) -> float:
        return sum(r.scheduling_seconds for r in self.regions)


@dataclass
class CompileRun:
    """One compilation of the whole suite with one scheduler configuration."""

    scheduler_name: str
    kernels: Tuple[KernelOutcome, ...]
    base_seconds: float

    @property
    def scheduling_seconds(self) -> float:
        return sum(k.scheduling_seconds for k in self.kernels)

    @property
    def total_seconds(self) -> float:
        return self.base_seconds + self.scheduling_seconds

    def all_regions(self):
        for kernel in self.kernels:
            for outcome in kernel.regions:
                yield kernel, outcome

    def kernel_outcome(self, name: str) -> KernelOutcome:
        for kernel in self.kernels:
            if kernel.kernel.name == name:
                return kernel
        raise PipelineError("no kernel outcome named %r" % name)


class CompilePipeline:
    """Heuristic-first compilation with selective ACO scheduling."""

    def __init__(
        self,
        machine: MachineModel,
        scheduler: Optional[ACOScheduler] = None,
        filters: Optional[FilterParams] = None,
        compile_time_model: CompileTimeModel = DEFAULT_COMPILE_TIME,
        baseline: Optional[AMDMaxOccupancyScheduler] = None,
        telemetry: Optional[Telemetry] = None,
        verify: Optional[bool] = None,
        resilience: Optional[ResilienceParams] = None,
    ):
        self.machine = machine
        self.scheduler = scheduler
        self.filters = filters or FilterParams()
        self.filters.validate()
        self.invocation = InvocationFilter(self.filters)
        self.post_filter = PostSchedulingFilter(self.filters)
        self.compile_time_model = compile_time_model
        self.baseline = baseline or AMDMaxOccupancyScheduler(machine)
        self._telemetry = telemetry
        self._verify = verify
        if resilience is not None:
            resilience.validate()
        self._resilience = resilience

    @property
    def telemetry(self) -> Telemetry:
        """The injected telemetry, or the process-wide one (resolved late)."""
        return self._telemetry if self._telemetry is not None else get_telemetry()

    @property
    def verify_enabled(self) -> bool:
        """Explicit ``verify`` argument, else ``REPRO_VERIFY`` (resolved late)."""
        return self._verify if self._verify is not None else verification_enabled()

    @property
    def resilience(self) -> ResilienceParams:
        """Explicit ``resilience`` argument, else the ``REPRO_DEADLINE`` /
        ``REPRO_MAX_RETRIES`` / ``REPRO_CHAOS`` environment (resolved late,
        like telemetry/verify). Inert defaults leave the direct scheduling
        path — and its bit-identical outputs — untouched."""
        if self._resilience is not None:
            return self._resilience
        return ResilienceParams.from_env()

    @property
    def scheduler_name(self) -> str:
        return self.scheduler.name if self.scheduler is not None else "baseline"

    # -- region level -----------------------------------------------------------

    def compile_region(self, ddg: DDG, seed: int = 0) -> RegionOutcome:
        tele = self.telemetry
        # One trace per region journey: every event and span below —
        # passes, launches, and the resilience ladder's faults, retries
        # and downgrades — shares this deterministic trace id.
        with region_trace(ddg.region.name, ddg.num_instructions, seed):
            if tele.active:
                tele.emit(
                    "region_start",
                    region=ddg.region.name,
                    size=len(ddg.region),
                    scheduler=self.scheduler_name,
                )
            with get_profiler().span(ddg.region.name, "region"):
                outcome = self._compile_region(ddg, seed)
            if self.verify_enabled:
                self._verify_region(tele, ddg, outcome)
            if tele.active:
                self._publish_region(tele, outcome)
            recorder = get_recorder()
            if recorder is not None:
                recorder.record_schedule(
                    "shipped",
                    region=outcome.region_name,
                    seed=seed,
                    scheduler=self.scheduler_name,
                    decision=outcome.decision.name.lower(),
                    order=list(outcome.schedule.order),
                    cycles=list(outcome.schedule.cycles),
                    length=outcome.final.length,
                    rp_cost=outcome.final.rp_cost,
                )
        return outcome

    def _verify_region(self, tele: Telemetry, ddg: DDG, outcome: RegionOutcome) -> None:
        """Recheck the DDG and the shipped schedule against every claim.

        The shipped schedule is latency-legal whichever way the filters
        decided, and the recorded quality (``outcome.final``) must match an
        independent recomputation of peak pressure and RP cost.
        """
        report = lint_ddg(ddg)
        report.merge(
            verify_schedule(
                outcome.schedule,
                ddg,
                self.machine,
                expected_peak=outcome.final.pressure_dict,
                expected_rp_cost=outcome.final.rp_cost,
            )
        )
        report.publish(tele, outcome.region_name)
        report.raise_if_failed()

    def _publish_region(self, tele: Telemetry, outcome: RegionOutcome) -> None:
        """Export one region's outcome (region_end event + pipeline.* metrics)."""
        decision = outcome.decision.name.lower()
        tele.emit(
            "region_end",
            region=outcome.region_name,
            size=outcome.size,
            decision=decision,
            aco_invoked=outcome.aco_invoked,
            heuristic_length=outcome.heuristic.length,
            final_length=outcome.final.length,
            heuristic_occupancy=outcome.heuristic.occupancy,
            final_occupancy=outcome.final.occupancy,
            scheduling_seconds=outcome.scheduling_seconds,
        )
        if tele.collect_metrics:
            m = tele.metrics
            m.counter("pipeline.regions").inc()
            m.counter("pipeline.decision." + decision).inc()
            m.counter("pipeline.scheduling_us").inc(outcome.scheduling_seconds * 1e6)
            if outcome.aco_invoked:
                m.counter("pipeline.aco_invocations").inc()
                m.counter("pipeline.aco_us").inc(outcome.aco_seconds * 1e6)

    def _compile_region(self, ddg: DDG, seed: int) -> RegionOutcome:
        region = ddg.region
        bounds = region_bounds(ddg)
        heuristic_schedule = self.baseline.schedule(ddg)
        heuristic_quality = evaluate_schedule(heuristic_schedule, self.machine)
        heuristic_seconds = self.compile_time_model.heuristic_seconds(len(region))
        prof = get_profiler()
        if prof.enabled:
            prof.charge_leaf("heuristic", heuristic_seconds, "heuristic")

        outcome = RegionOutcome(
            region_name=region.name,
            size=len(region),
            bounds=bounds,
            heuristic=heuristic_quality,
            final=heuristic_quality,
            decision=FilterDecision.SKIPPED_OPTIMAL,
            schedule=heuristic_schedule,
            scheduling_seconds=heuristic_seconds,
        )
        if self.scheduler is None:
            return outcome

        # Both gates compare the heuristic's actual (latency-aware) schedule
        # against the lower bounds, and ACO starts from its order.
        if not self.invocation.should_invoke(
            heuristic_quality.rp_cost,
            rp_cost_lower_bound(bounds, self.machine),
            heuristic_quality.length,
            bounds.length,
        ):
            outcome.decision = self.invocation.decision_for_skip(
                heuristic_quality.length, bounds.length
            )
            return outcome

        resilience = self.resilience
        if resilience.active:
            # Route through the retry-with-degradation ladder. A region
            # that exhausts its rungs ships the (already verified-legal)
            # heuristic schedule instead of failing the compile; the time
            # burned by faulted attempts still counts as scheduling time.
            try:
                ladder = schedule_with_resilience(
                    self.scheduler,
                    ddg,
                    seed,
                    resilience,
                    initial_order=heuristic_schedule.order,
                    bounds=bounds,
                    reference_schedule=heuristic_schedule,
                    telemetry=self.telemetry,
                )
            except RegionUnrecoverable as exc:
                outcome.decision = FilterDecision.UNRECOVERABLE
                outcome.scheduling_seconds = heuristic_seconds + exc.spent_seconds
                return outcome
            if ladder.result is None:
                outcome.decision = FilterDecision.DEGRADED
                outcome.scheduling_seconds = heuristic_seconds + ladder.spent_seconds
                return outcome
            aco_result = ladder.result
            aco_seconds = ladder.spent_seconds
        else:
            aco_result = self.scheduler.schedule(
                ddg,
                seed=seed,
                initial_order=heuristic_schedule.order,
                bounds=bounds,
                reference_schedule=heuristic_schedule,
            )
            aco_seconds = aco_result.seconds
        aco_quality = evaluate_schedule(aco_result.schedule, self.machine)
        outcome.aco = aco_quality
        outcome.pass1 = aco_result.pass1
        outcome.pass2 = aco_result.pass2
        outcome.scheduling_seconds = heuristic_seconds + aco_seconds

        if self.post_filter.keep_aco(
            aco_quality.occupancy,
            aco_quality.length,
            heuristic_quality.occupancy,
            heuristic_quality.length,
        ):
            outcome.final = aco_quality
            outcome.schedule = aco_result.schedule
            outcome.decision = FilterDecision.ACO_APPLIED
        else:
            outcome.decision = FilterDecision.REVERTED
        return outcome

    # -- kernel / suite level ------------------------------------------------------

    def compile_kernel(self, kernel: KernelSpec, suite_seed: int = 0) -> KernelOutcome:
        outcomes = []
        for index, region in enumerate(kernel.regions):
            seed = derive_seed(suite_seed, "schedule", kernel.name, index)
            outcomes.append(self.compile_region(DDG(region), seed=seed))
        return KernelOutcome(kernel=kernel, regions=tuple(outcomes))

    def compile_suite(self, suite: Suite) -> CompileRun:
        tele = self.telemetry
        if tele.active:
            tele.emit(
                "suite_start",
                scheduler=self.scheduler_name,
                num_kernels=len(suite.kernels),
            )
        prof = get_profiler()
        prof.push("suite:%s" % self.scheduler_name, "suite")
        kernels = tuple(
            self.compile_kernel(kernel, suite.params.seed) for kernel in suite.kernels
        )
        total_instructions = sum(k.kernel.total_instructions for k in kernels)
        base = self.compile_time_model.base_seconds(total_instructions, len(kernels))
        if prof.enabled:
            prof.charge_leaf("base_compile", base, "base")
        prof.pop()
        run = CompileRun(
            scheduler_name=self.scheduler_name, kernels=kernels, base_seconds=base
        )
        if tele.active:
            tele.emit(
                "suite_end",
                scheduler=self.scheduler_name,
                num_kernels=len(run.kernels),
                scheduling_seconds=run.scheduling_seconds,
                base_seconds=run.base_seconds,
            )
            if tele.collect_metrics:
                from .stats import publish_run_metrics

                publish_run_metrics(run, tele)
        return run
