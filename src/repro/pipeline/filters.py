"""Selective-invocation and post-scheduling filters (Section VI-D).

ACO is expensive, so the pipeline applies it only where a significant
benefit is plausible:

* :class:`InvocationFilter` — run ACO on a region iff the heuristic's RP
  cost exceeds its lower bound (the RP pass has provable room) **or** the
  heuristic schedule length exceeds the length lower bound by more than the
  *cycle threshold* (Table 7 sweeps it; 21 was best).
* :class:`PostSchedulingFilter` — after ACO, keep whichever of the ACO and
  heuristic schedules balances occupancy and ILP better: revert to the
  heuristic when ACO's occupancy gain is at most ``revert_occupancy_gain``
  while its length degradation exceeds ``revert_length_degradation``
  (experimentally +3 occupancy / +63 cycles in the paper).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..config import FilterParams


class FilterDecision(enum.Enum):
    """Why a region did or did not get an ACO schedule."""

    SKIPPED_OPTIMAL = "heuristic-at-lower-bound"
    SKIPPED_THRESHOLD = "gap-below-cycle-threshold"
    ACO_APPLIED = "aco-applied"
    REVERTED = "reverted-to-heuristic"
    #: The resilience ladder exhausted its engine rungs (faults/deadline)
    #: and the heuristic schedule shipped — degraded but correct.
    DEGRADED = "degraded-to-heuristic"
    #: Same shipped schedule, but degradation was disabled: the region is
    #: reported as unrecoverable (the CLI maps this to a nonzero exit).
    UNRECOVERABLE = "unrecoverable-shipped-heuristic"


@dataclass(frozen=True)
class InvocationFilter:
    """Decides whether ACO runs on a region at all."""

    params: FilterParams

    def should_invoke(
        self,
        heuristic_rp_cost: int,
        rp_cost_lb: int,
        heuristic_length: int,
        length_lb: int,
    ) -> bool:
        rp_room = heuristic_rp_cost > rp_cost_lb
        ilp_room = heuristic_length - length_lb > self.params.cycle_threshold
        return rp_room or ilp_room

    def decision_for_skip(
        self, heuristic_length: int, length_lb: int
    ) -> FilterDecision:
        if heuristic_length <= length_lb:
            return FilterDecision.SKIPPED_OPTIMAL
        return FilterDecision.SKIPPED_THRESHOLD


@dataclass(frozen=True)
class PostSchedulingFilter:
    """Chooses between the final ACO schedule and the heuristic schedule."""

    params: FilterParams

    def keep_aco(
        self,
        aco_occupancy: int,
        aco_length: int,
        heuristic_occupancy: int,
        heuristic_length: int,
    ) -> bool:
        occupancy_gain = aco_occupancy - heuristic_occupancy
        length_loss = aco_length - heuristic_length
        if occupancy_gain < 0:
            # ACO never *should* lose occupancy (the pass-2 constraint keeps
            # the pass-1 pressure), but be safe against target quirks.
            return aco_length < heuristic_length
        if occupancy_gain == 0:
            return length_loss < 0
        # One occupancy step buys revert_length_degradation /
        # revert_occupancy_gain cycles of slack (the paper's tuned values,
        # +3 occupancy vs. +63 cycles, price a step at 21 cycles).
        slack_per_step = (
            self.params.revert_length_degradation / max(1, self.params.revert_occupancy_gain)
        )
        return length_loss <= occupancy_gain * slack_per_step
