"""The compile pipeline: heuristic-first scheduling with selective ACO.

Reproduces the flow of Section VI: every region is scheduled by the AMD
baseline first; ACO is invoked only when the heuristic provably left
something on the table (cost above the lower bound, and — for the ILP
pass — a length gap above the cycle threshold of Section VI-D); a
post-scheduling filter reverts to the heuristic schedule when ACO traded
too much schedule length for too little occupancy. Compile-time accounting
feeds Table 5.
"""

from .filters import InvocationFilter, PostSchedulingFilter, FilterDecision
from .compiler import CompilePipeline, RegionOutcome, KernelOutcome, CompileRun
from .stats import suite_statistics, improvement_statistics, SuiteStatistics, ImprovementStatistics

__all__ = [
    "InvocationFilter",
    "PostSchedulingFilter",
    "FilterDecision",
    "CompilePipeline",
    "RegionOutcome",
    "KernelOutcome",
    "CompileRun",
    "suite_statistics",
    "improvement_statistics",
    "SuiteStatistics",
    "ImprovementStatistics",
]
