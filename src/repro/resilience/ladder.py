"""The retry-with-degradation ladder (how a region survives its faults).

One region's scheduling request walks a fixed ladder of rungs, most
capable first:

====================  =====================================================
``vectorized``        the batch GPU engine (the configured default)
``loop``              the scalar GPU reference engine — same device, same
                      fault surface, but an independent code path (a bug
                      or hazard pattern that kills one engine often spares
                      the other; both produce bit-identical seeded
                      schedules, so the downgrade is quality-free)
``sequential``        the CPU engine — no device, no fault sites; inherits
                      the search's progress via partial checkpoint resume
``heuristic``         ship the baseline schedule; always succeeds
====================  =====================================================

On each rung the ladder attempts the engine up to ``1 + max_retries``
times. Every attempt is deterministic: attempt numbers increase globally
across the region (fault sites are keyed by them, so a retry redraws its
hazards), from-scratch retries rotate the seed with
:func:`repro.suite.rng.derive_seed`, and checkpoint resumes keep the
interrupted attempt's seed (exactness requires continuing its draw
sequence). A hang's checkpoint carries the search forward across retries
*and* across rungs; launch/OOM/corruption leave no trusted state behind,
so those retries restart from scratch.

The ladder shares one :class:`~repro.resilience.watchdog.DeadlineBudget`
across all attempts — failed attempts burn real budget, so a region that
keeps faulting runs out of road and degrades instead of retrying forever;
an exhausted budget skips straight to the heuristic rung.

Every fault, retry and degrade step is recorded three ways: a telemetry
event (``fault``/``retry``/``degrade``), a ``resilience.*`` metric, and
the process-wide :class:`~repro.resilience.log.ResilienceLog` the CLI's
exit code reads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple, Union

from ..aco.sequential import ACOResult, SequentialACOScheduler
from ..config import ResilienceParams
from ..errors import InjectedFault, RegionUnrecoverable
from ..gpusim.faults import FaultPlan
from ..obs.context import current_trace, region_trace
from ..parallel.scheduler import ParallelACOResult, ParallelACOScheduler
from ..suite.rng import derive_seed
from ..telemetry import Telemetry
from .checkpoint import RegionCheckpoint
from .log import get_resilience_log
from .watchdog import DeadlineBudget

AnyScheduler = Union[SequentialACOScheduler, ParallelACOScheduler]
AnyResult = Union[ACOResult, ParallelACOResult]

#: Sentinel rung: ship the heuristic schedule, run no search.
HEURISTIC_RUNG = "heuristic"


@dataclass
class LadderOutcome:
    """What the ladder produced for one region.

    ``result`` is None exactly when the region ended on the heuristic
    rung — the caller ships its heuristic schedule and marks the region
    degraded. ``spent_seconds`` is everything the region's budget was
    charged, successful attempt included, so retry overhead is
    ``spent_seconds - result.seconds`` when a result exists.
    """

    result: Optional[AnyResult]
    rung: str
    attempts: int
    resumed_attempts: int = 0
    spent_seconds: float = 0.0
    #: (fault_class, rung, attempt) per injected fault, in order.
    faults: Tuple[Tuple[str, str, int], ...] = ()
    unrecoverable: bool = False

    @property
    def degraded(self) -> bool:
        """True when the region shipped without an ACO result."""
        return self.result is None

    @property
    def clean(self) -> bool:
        return not self.faults and self.attempts == 1 and not self.degraded

    @property
    def final_backend(self) -> str:
        """The engine that shipped the region — the effective final rung.

        Feeds the batch layer's per-region attribution
        (:attr:`repro.parallel.multi_region.BatchResult.final_backends`):
        a clean region reports its configured backend, a downgraded one
        the rung it landed on, a degraded one :data:`HEURISTIC_RUNG`.
        """
        return self.rung


@dataclass
class _Attempt:
    """Bookkeeping shared by the rung loop."""

    number: int = 0
    resumed: int = 0
    checkpoint: Optional[RegionCheckpoint] = None
    faults: list = field(default_factory=list)


def ladder_rungs(scheduler: AnyScheduler) -> Tuple[str, ...]:
    """The rung sequence starting at ``scheduler``'s configuration."""
    if isinstance(scheduler, ParallelACOScheduler):
        if scheduler.backend == "vectorized":
            return ("vectorized", "loop", "sequential", HEURISTIC_RUNG)
        return (scheduler.backend, "sequential", HEURISTIC_RUNG)
    return ("sequential", HEURISTIC_RUNG)


def _scheduler_for_rung(base: AnyScheduler, rung: str) -> AnyScheduler:
    """An engine for ``rung`` configured like ``base`` (same machine,
    parameters, device and telemetry/verify injection)."""
    if isinstance(base, ParallelACOScheduler):
        if rung == base.backend:
            return base
        if rung in ("vectorized", "loop"):
            return ParallelACOScheduler(
                base.machine,
                params=base.params,
                gpu_params=base.gpu_params,
                device=base.device,
                telemetry=base._telemetry,
                verify=base._verify,
                backend=rung,
            )
        return SequentialACOScheduler(
            base.machine,
            params=base.params,
            telemetry=base._telemetry,
            verify=base._verify,
        )
    return base  # sequential entry: its only engine rung is itself


def schedule_with_resilience(
    scheduler: AnyScheduler,
    ddg,
    seed: int,
    resilience: ResilienceParams,
    initial_order=None,
    bounds=None,
    reference_schedule=None,
    telemetry: Optional[Telemetry] = None,
    fault_plan: Optional[FaultPlan] = None,
) -> LadderOutcome:
    """Run one region through the retry-with-degradation ladder.

    Returns a :class:`LadderOutcome`; raises
    :class:`~repro.errors.RegionUnrecoverable` only when degradation is
    disabled (``resilience.degrade = False``) and the entry rung's
    retries are exhausted. ``fault_plan`` overrides the default-rate plan
    derived from ``resilience.chaos_seed`` (the chaos harness passes
    plans with forced rates to prove specific ladder paths).
    """
    resilience.validate()
    tele = telemetry if telemetry is not None else scheduler.telemetry
    log = get_resilience_log()
    region_name = ddg.region.name
    budget = DeadlineBudget(resilience.deadline_seconds)
    plan = fault_plan
    if plan is None and resilience.chaos_seed is not None:
        plan = FaultPlan.from_seed(resilience.chaos_seed)
    rungs = ladder_rungs(scheduler)
    state = _Attempt()

    # The whole ladder — every retry (with its *rotated* seed), every
    # checkpoint resume, every engine downgrade — runs under ONE region
    # trace, keyed by the original seed. The pipeline or batch slot may
    # have installed it already; direct callers get one here.
    with region_trace(region_name, ddg.num_instructions, seed):
        return _run_ladder(
            scheduler, ddg, seed, resilience, initial_order, bounds,
            reference_schedule, tele, plan, rungs, state, budget, log,
            region_name,
        )


def _run_ladder(
    scheduler, ddg, seed, resilience, initial_order, bounds,
    reference_schedule, tele, plan, rungs, state, budget, log, region_name,
) -> LadderOutcome:
    context = current_trace()

    def attempt_span(label: str):
        """Per-attempt child span fields for the resilience events."""
        return context.child(label).fields() if context is not None else {}

    for rung_index, rung in enumerate(rungs):
        if rung == HEURISTIC_RUNG:
            break
        engine = _scheduler_for_rung(scheduler, rung)
        exhausted_budget = False
        for _ in range(1 + resilience.max_retries):
            if budget.limited and budget.exhausted:
                # No search time left anywhere on the ladder: every
                # engine would charge its pass setup and stop at once.
                exhausted_budget = True
                break
            resumed = state.checkpoint is not None and resilience.checkpoint
            if resumed:
                attempt_seed = state.checkpoint.seed
            elif state.number == 0:
                attempt_seed = seed
            else:
                attempt_seed = derive_seed(seed, "retry", state.number)
            if state.number > 0:
                log.retries += 1
                state.resumed += 1 if resumed else 0
                if resumed:
                    log.resumes += 1
                tele.emit(
                    "retry",
                    region=region_name,
                    attempt=state.number,
                    seed=attempt_seed,
                    resumed=resumed,
                    backend=rung,
                    **attempt_span("attempt%d" % state.number),
                )
                if tele.collect_metrics:
                    tele.metrics.counter("resilience.retries").inc()
                    if resumed:
                        tele.metrics.counter("resilience.resumes").inc()
            try:
                result = engine.schedule(
                    ddg,
                    seed=attempt_seed,
                    initial_order=initial_order,
                    bounds=bounds,
                    reference_schedule=reference_schedule,
                    fault_plan=plan,
                    budget=budget,
                    attempt=state.number,
                    resume=state.checkpoint if resumed else None,
                )
            except InjectedFault as exc:
                state.faults.append((exc.fault_class, rung, state.number))
                log.record_fault(exc.fault_class)
                tele.emit(
                    "fault",
                    region=region_name,
                    fault_class=exc.fault_class,
                    attempt=state.number,
                    seconds=exc.seconds,
                    rung=rung,
                    backend=rung,
                    **attempt_span("attempt%d" % state.number),
                )
                if tele.collect_metrics:
                    tele.metrics.counter(
                        "resilience.faults." + exc.fault_class
                    ).inc()
                if exc.checkpoint is not None and resilience.checkpoint:
                    # A hang leaves the host-side search state intact;
                    # every later attempt resumes from the newest snapshot.
                    state.checkpoint = exc.checkpoint
                state.number += 1
                continue
            return LadderOutcome(
                result=result,
                rung=rung,
                attempts=state.number + 1,
                resumed_attempts=state.resumed,
                spent_seconds=budget.spent,
                faults=tuple(state.faults),
            )
        # Rung exhausted (all retries faulted, or the budget ran dry).
        if not resilience.degrade:
            log.unrecoverable_regions.append(region_name)
            if tele.collect_metrics:
                tele.metrics.counter("resilience.unrecoverable_regions").inc()
            raise RegionUnrecoverable(
                "region %r: rung %r exhausted after %d attempt(s) with "
                "degradation disabled" % (region_name, rung, state.number),
                causes=tuple(state.faults),
                spent_seconds=budget.spent,
            )
        next_rung = rungs[min(rung_index + 1, len(rungs) - 1)]
        if exhausted_budget:
            next_rung = HEURISTIC_RUNG
        log.degrades += 1
        tele.emit(
            "degrade",
            region=region_name,
            from_rung=rung,
            to_rung=next_rung,
            attempt=state.number,
            **attempt_span("rung%d" % rung_index),
        )
        if tele.collect_metrics:
            tele.metrics.counter("resilience.degrades").inc()
        if exhausted_budget:
            break

    # Heuristic rung: no search, the caller ships the baseline schedule.
    log.degraded_regions.append(region_name)
    if tele.collect_metrics:
        tele.metrics.counter("resilience.heuristic_regions").inc()
    return LadderOutcome(
        result=None,
        rung=HEURISTIC_RUNG,
        attempts=state.number,
        resumed_attempts=state.resumed,
        spent_seconds=budget.spent,
        faults=tuple(state.faults),
    )
