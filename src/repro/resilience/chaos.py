"""Chaos harness: prove injection -> detection -> recovery per fault class.

Two complementary modes, both deterministic:

* :func:`fault_class_proofs` forces each fault class in turn at rate 1.0
  (every GPU attempt faults) and checks the ladder still ships a correct
  schedule for every region — launch/OOM/corruption by engine downgrade,
  hangs by checkpoint resume. Every shipped ACO schedule is re-validated
  against the DDG, so a recovery that smuggled an illegal schedule
  through would fail the proof, not pass it.
* :func:`chaos_sweep` runs a pinned list of chaos seeds at the default
  mixed fault rates and aggregates recovery statistics: how many faults
  were injected (by class), how many regions recovered with a real ACO
  result, how many shipped degraded, and the retry overhead (budget spent
  beyond the successful attempt's own cost).

Runnable as a module — CI's chaos-sweep job is exactly::

    python -m repro.resilience.chaos --seeds 11,23,37 --sizes 10,12,14

Exit status: 0 when every proof holds and every sweep region shipped a
valid schedule; 1 otherwise.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import ACOParams, GPUParams, ResilienceParams
from ..ddg.graph import DDG
from ..gpusim.faults import DEFAULT_CHAOS_RATES, FaultPlan
from ..machine.model import MachineModel
from ..machine.targets import amd_vega20
from ..schedule.validate import validate_schedule
from ..suite.patterns import random_region
from .ladder import LadderOutcome, schedule_with_resilience
from .log import ResilienceLog, resilience_log_session

#: The pinned sweep CI runs (arbitrary but fixed: changing them changes
#: which faults the sweep sees, so treat edits like baseline updates).
PINNED_SEEDS: Tuple[int, ...] = (11, 23, 37, 58, 71, 94)

#: Region sizes for the chaos suite — small on purpose: the harness is
#: about fault paths, not search quality, and must stay CI-fast.
DEFAULT_SIZES: Tuple[int, ...] = (10, 12, 14)


@dataclass
class RegionTrial:
    """One region run through the ladder under one fault plan."""

    region: str
    chaos_seed: int
    outcome_rung: str
    attempts: int
    resumed_attempts: int
    faults: Tuple[Tuple[str, str, int], ...]
    recovered: bool  # shipped a real ACO result
    schedule_valid: bool  # shipped schedule passed independent validation
    spent_seconds: float
    result_seconds: float  # 0.0 when degraded


@dataclass
class ChaosReport:
    """Aggregate of a sweep (and/or the per-class proofs)."""

    trials: List[RegionTrial] = field(default_factory=list)

    @property
    def faults_by_class(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for trial in self.trials:
            for fault_class, _rung, _attempt in trial.faults:
                counts[fault_class] = counts.get(fault_class, 0) + 1
        return counts

    @property
    def faulted_trials(self) -> List[RegionTrial]:
        return [t for t in self.trials if t.faults]

    @property
    def recovery_rate(self) -> float:
        """Fraction of faulted regions that still shipped an ACO result."""
        faulted = self.faulted_trials
        if not faulted:
            return 1.0
        return sum(1 for t in faulted if t.recovered) / len(faulted)

    @property
    def degraded(self) -> int:
        return sum(1 for t in self.trials if not t.recovered)

    @property
    def retry_overhead_seconds(self) -> float:
        """Budget spent beyond the successful attempts' own cost."""
        return sum(
            max(0.0, t.spent_seconds - t.result_seconds) for t in self.trials
        )

    @property
    def all_valid(self) -> bool:
        return all(t.schedule_valid for t in self.trials)

    def summary(self) -> str:
        per_class = ", ".join(
            "%s=%d" % (name, count)
            for name, count in sorted(self.faults_by_class.items())
        ) or "none"
        return (
            "%d trial(s), faults [%s], recovery rate %.0f%%, "
            "%d degraded, retry overhead %.3gs, schedules %s"
            % (
                len(self.trials),
                per_class,
                100.0 * self.recovery_rate,
                self.degraded,
                self.retry_overhead_seconds,
                "all valid" if self.all_valid else "INVALID",
            )
        )


def chaos_regions(
    machine: MachineModel, sizes: Sequence[int] = DEFAULT_SIZES, seed: int = 5
) -> List[DDG]:
    """The harness's region set: one random region per requested size."""
    rng = random.Random(seed)
    return [
        DDG(random_region(rng, size, name="chaos_%02d" % size))
        for size in sizes
    ]


def _scheduler(machine: MachineModel):
    from ..parallel.scheduler import ParallelACOScheduler

    # Small colony: the fault surface (launches, transfers, iterations)
    # is identical, only the search is cheaper — 4 blocks instead of the
    # production 180, and a tight iteration cap.
    return ParallelACOScheduler(
        machine,
        params=ACOParams(max_iterations=12),
        gpu_params=GPUParams(blocks=4),
    )


def _run_trial(
    machine: MachineModel,
    ddg: DDG,
    plan: Optional[FaultPlan],
    resilience: ResilienceParams,
    chaos_seed: int,
    seed: int = 0,
) -> RegionTrial:
    outcome: LadderOutcome = schedule_with_resilience(
        _scheduler(machine), ddg, seed, resilience, fault_plan=plan
    )
    recovered = outcome.result is not None
    valid = True
    if recovered:
        try:
            validate_schedule(outcome.result.schedule, ddg, machine)
        except Exception:
            valid = False
    return RegionTrial(
        region=ddg.region.name,
        chaos_seed=chaos_seed,
        outcome_rung=outcome.rung,
        attempts=outcome.attempts,
        resumed_attempts=outcome.resumed_attempts,
        faults=outcome.faults,
        recovered=recovered,
        schedule_valid=valid,
        spent_seconds=outcome.spent_seconds,
        result_seconds=outcome.result.seconds if recovered else 0.0,
    )


def fault_class_proofs(
    machine: Optional[MachineModel] = None,
    sizes: Sequence[int] = DEFAULT_SIZES,
    max_retries: int = 1,
) -> ChaosReport:
    """Force each fault class at rate 1.0 and demand full recovery.

    At rate 1.0 every GPU-rung attempt faults, so the proof exercises the
    class's whole recovery path: hang -> checkpoint resume (possibly on a
    downgraded engine), launch/OOM/corruption -> retries then engine
    downgrade to the CPU rung. A class whose faults escaped detection, or
    whose recovery shipped an invalid schedule, fails the proof.
    """
    machine = machine or amd_vega20()
    regions = chaos_regions(machine, sizes)
    report = ChaosReport()
    resilience = ResilienceParams(enabled=True, max_retries=max_retries)
    for fault_class in ("launch", "corruption", "hang", "oom"):
        plan = FaultPlan(seed=1, rates={fault_class: 1.0})
        for ddg in regions:
            with resilience_log_session(ResilienceLog()):
                trial = _run_trial(
                    machine, ddg, plan, resilience, chaos_seed=1
                )
            if not trial.faults:
                trial.schedule_valid = False  # rate-1.0 must inject
            report.trials.append(trial)
    return report


def chaos_sweep(
    seeds: Sequence[int] = PINNED_SEEDS,
    machine: Optional[MachineModel] = None,
    sizes: Sequence[int] = DEFAULT_SIZES,
    rates: Optional[Dict[str, float]] = None,
    max_retries: int = 2,
) -> ChaosReport:
    """Run every region under every chaos seed at mixed fault rates."""
    machine = machine or amd_vega20()
    regions = chaos_regions(machine, sizes)
    report = ChaosReport()
    resilience = ResilienceParams(enabled=True, max_retries=max_retries)
    for chaos_seed in seeds:
        plan = FaultPlan(seed=chaos_seed, rates=dict(rates or DEFAULT_CHAOS_RATES))
        for ddg in regions:
            with resilience_log_session(ResilienceLog()):
                report.trials.append(
                    _run_trial(machine, ddg, plan, resilience, chaos_seed)
                )
    return report


def bitcheck(
    seeds: Sequence[int],
    sizes: Sequence[int],
    out_dir: str,
) -> Tuple[bool, Dict]:
    """Record the sweep twice and diff the bundles for bit identity.

    Chaos recovery paths (retries, checkpoint resumes, engine downgrades)
    must themselves be deterministic per seed: two recordings of the same
    sweep have to produce byte-identical run bundles. On a mismatch the
    differ's first-divergence report names the exact event/iteration/draw
    where the recovery paths forked.

    Returns ``(identical, diff_report)``; the bundles (and, on mismatch,
    ``first-divergence.json``) are left in ``out_dir`` for CI artifacts.
    """
    import os

    from ..obs.diff import diff_bundles, write_report
    from ..obs.record import RunRecorder, recording_scope
    from ..telemetry import Telemetry, telemetry_session

    paths = []
    for label in ("a", "b"):
        path = os.path.join(out_dir, "chaos-%s" % label)
        recorder = RunRecorder(draws="digest")
        telemetry = Telemetry(sink=recorder.sink)
        with telemetry_session(telemetry), recording_scope(recorder):
            chaos_sweep(seeds=seeds, sizes=sizes)
        recorder.save(path)
        paths.append(path)
    report = diff_bundles(paths[0], paths[1])
    if not report["identical"]:
        write_report(report, os.path.join(out_dir, "first-divergence.json"))
    return bool(report["identical"]), report


def main(argv: Optional[Sequence[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.resilience.chaos",
        description="Chaos harness: per-class fault proofs + seed sweep.",
    )
    parser.add_argument(
        "--seeds",
        default=",".join(str(s) for s in PINNED_SEEDS),
        help="comma-separated chaos seeds for the mixed-rate sweep",
    )
    parser.add_argument(
        "--sizes",
        default=",".join(str(s) for s in DEFAULT_SIZES),
        help="comma-separated region sizes for the chaos suite",
    )
    parser.add_argument(
        "--skip-proofs",
        action="store_true",
        help="run only the mixed-rate sweep (skip the rate-1.0 proofs)",
    )
    parser.add_argument(
        "--bitcheck",
        metavar="DIR",
        default=None,
        help="additionally record the sweep twice into DIR and diff the "
        "run bundles; a mismatch writes DIR/first-divergence.json and "
        "fails the harness",
    )
    args = parser.parse_args(argv)
    seeds = [int(s) for s in args.seeds.split(",") if s.strip()]
    sizes = [int(s) for s in args.sizes.split(",") if s.strip()]

    failed = False
    if not args.skip_proofs:
        proofs = fault_class_proofs(sizes=sizes)
        print("[chaos] per-class proofs: %s" % proofs.summary())
        classes = proofs.faults_by_class
        for fault_class in ("launch", "corruption", "hang", "oom"):
            if not classes.get(fault_class):
                print("[chaos] FAIL: class %r never injected" % fault_class)
                failed = True
        if not proofs.all_valid:
            failed = True
        if proofs.recovery_rate < 1.0:
            print("[chaos] FAIL: a forced-fault region lost its ACO result")
            failed = True

    sweep = chaos_sweep(seeds=seeds, sizes=sizes)
    print("[chaos] mixed-rate sweep: %s" % sweep.summary())
    if not sweep.all_valid:
        failed = True

    if args.bitcheck:
        import os

        os.makedirs(args.bitcheck, exist_ok=True)
        identical, report = bitcheck(seeds, sizes, args.bitcheck)
        if identical:
            print("[chaos] bitcheck: recorded sweeps byte-identical")
        else:
            from ..obs.diff import render_report

            print("[chaos] FAIL: recorded sweeps diverged")
            print(render_report(report), end="")
            failed = True

    print("[chaos] %s" % ("FAILED" if failed else "OK"))
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
