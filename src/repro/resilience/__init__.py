"""Fault-injected resilience layer (repro.resilience).

The subsystem that keeps the compile pipeline alive when the simulated
device misbehaves. Four cooperating pieces:

* the **fault model** (:mod:`repro.gpusim.faults`, re-exported here) —
  deterministic, seed-driven injection of launch failures, transfer
  corruption, hangs and preallocation OOM;
* the **watchdog / deadline budget** (:mod:`.watchdog`) — cost-model-second
  budgets that stop a stuck pass cleanly with partial results;
* **checkpoint/resume** (:mod:`.checkpoint`) — colony search state
  snapshots so a retried pass resumes mid-search instead of restarting;
* the **retry-with-degradation ladder** (:mod:`.ladder`) — deterministic
  backoff with seed rotation and backend downgrade, consumed by the
  pipeline and the multi-region batch scheduler.

The ladder imports the schedulers, so it is deliberately *not* imported
here (``import repro.resilience.ladder`` directly) — this package's
``__init__`` stays import-cycle-free for the schedulers that need only
budgets and checkpoints. :mod:`.chaos` (the chaos-testing harness) follows
the same rule.
"""

from __future__ import annotations

from ..gpusim.faults import (
    DEFAULT_CHAOS_RATES,
    FAULT_CLASSES,
    FaultPlan,
    FaultyDevice,
    chaos_seed_from_env,
    fault_plan_from_env,
)
from .checkpoint import CHECKPOINT_VERSION, RegionCheckpoint
from .log import (
    ResilienceLog,
    get_resilience_log,
    reset_resilience_log,
    resilience_log_session,
)
from .watchdog import DeadlineBudget

__all__ = [
    "CHECKPOINT_VERSION",
    "DEFAULT_CHAOS_RATES",
    "DeadlineBudget",
    "FAULT_CLASSES",
    "FaultPlan",
    "FaultyDevice",
    "RegionCheckpoint",
    "ResilienceLog",
    "chaos_seed_from_env",
    "fault_plan_from_env",
    "get_resilience_log",
    "reset_resilience_log",
    "resilience_log_session",
]
