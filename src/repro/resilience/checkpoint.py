"""Checkpoint/resume of colony search state (recovery without restart).

When an attempt at a region dies mid-search — the watchdog declares the
kernel hung, or the deadline is about to expire — everything the search
has learned lives on the host: the pheromone table, the global best, the
termination-tracker counters and the per-ant RNG streams. A
:class:`RegionCheckpoint` snapshots exactly that state at an iteration
boundary so a retry *resumes* the search instead of restarting it.

Resume is **exact** when the retry runs the same engine family with the
same population (the vectorized and loop backends share draw sequences by
construction, so checkpoints transfer between them): the resumed pass
continues the interrupted pass's draw-for-draw evolution and lands on a
bit-identical final schedule — ``tests/test_resilience_checkpoint.py``
proves interrupted+resumed == uninterrupted, per seed. When the ladder
degrades across engines (parallel -> sequential) or geometries, resume is
**partial**: the pheromone table, global best and tracker state carry
over, while the RNG restarts from the attempt's seed — the search keeps
its progress, only the remaining exploration differs.

Serialization is round-trippable bit for bit: the pheromone array travels
as raw little-endian bytes (base64), RNG states as the generators' own
state dicts, and ``tests`` assert byte equality after a JSON round trip.
"""

from __future__ import annotations

import base64
import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from ..errors import ResilienceError
from ..ir.registers import RegisterClass

#: Version stamp of the serialized layout; bump on incompatible changes.
CHECKPOINT_VERSION = 1


def _encode_tau(tau: np.ndarray) -> Dict:
    array = np.ascontiguousarray(tau, dtype=np.float64)
    return {
        "shape": list(array.shape),
        "data": base64.b64encode(array.tobytes()).decode("ascii"),
    }


def _decode_tau(payload: Dict) -> np.ndarray:
    raw = base64.b64decode(payload["data"].encode("ascii"))
    array = np.frombuffer(raw, dtype=np.float64).copy()
    return array.reshape(tuple(payload["shape"]))


def _encode_peak(peak: Dict[RegisterClass, int]) -> Dict[str, int]:
    return {"%s:%s" % (cls.name, cls.prefix): int(v) for cls, v in peak.items()}


def _decode_peak(payload: Dict[str, int]) -> Dict[RegisterClass, int]:
    peak: Dict[RegisterClass, int] = {}
    for key, value in payload.items():
        name, prefix = key.rsplit(":", 1)
        peak[RegisterClass(name, prefix)] = int(value)
    return peak


@dataclass
class RegionCheckpoint:
    """Search state of one region's interrupted ACO pass.

    ``pass_index`` names the interrupted pass; when it is 2, ``pass1``
    carries the completed pass-1 result fields so resume skips pass 1
    entirely (its outputs — ``best_order``/``best_peak`` — are already
    final). ``extras`` pins pass-start-derived values (``max_length``,
    ``initial_cost``) that must not be recomputed from the improved best
    at resume time, or the resumed search would diverge.
    """

    region: str
    scheduler: str
    backend: str
    seed: int
    pass_index: int
    iteration: int
    tau: np.ndarray
    best_cost: float
    without_improvement: int
    best_order: Tuple[int, ...]
    best_peak: Dict[RegisterClass, int]
    best_cycles: Optional[Tuple[int, ...]] = None
    pass1: Optional[Dict] = None
    rng_state: Optional[list] = None
    num_ants: Optional[int] = None
    extras: Dict = field(default_factory=dict)

    # -- serialization ------------------------------------------------------

    def to_payload(self) -> Dict:
        """A JSON-serializable dict; round-trips bit-identically."""
        return {
            "checkpoint_version": CHECKPOINT_VERSION,
            "region": self.region,
            "scheduler": self.scheduler,
            "backend": self.backend,
            "seed": self.seed,
            "pass_index": self.pass_index,
            "iteration": self.iteration,
            "tau": _encode_tau(self.tau),
            "best_cost": float(self.best_cost),
            "without_improvement": self.without_improvement,
            "best_order": list(self.best_order),
            "best_peak": _encode_peak(self.best_peak),
            "best_cycles": None if self.best_cycles is None else list(self.best_cycles),
            "pass1": self.pass1,
            "rng_state": self.rng_state,
            "num_ants": self.num_ants,
            "extras": dict(self.extras),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_payload(), sort_keys=True)

    @classmethod
    def from_payload(cls, payload: Dict) -> "RegionCheckpoint":
        version = payload.get("checkpoint_version")
        if version != CHECKPOINT_VERSION:
            raise ResilienceError(
                "unsupported checkpoint version %r (supported: %d)"
                % (version, CHECKPOINT_VERSION)
            )
        return cls(
            region=payload["region"],
            scheduler=payload["scheduler"],
            backend=payload["backend"],
            seed=int(payload["seed"]),
            pass_index=int(payload["pass_index"]),
            iteration=int(payload["iteration"]),
            tau=_decode_tau(payload["tau"]),
            best_cost=float(payload["best_cost"]),
            without_improvement=int(payload["without_improvement"]),
            best_order=tuple(int(i) for i in payload["best_order"]),
            best_peak=_decode_peak(payload["best_peak"]),
            best_cycles=(
                None
                if payload.get("best_cycles") is None
                else tuple(int(c) for c in payload["best_cycles"])
            ),
            pass1=payload.get("pass1"),
            rng_state=payload.get("rng_state"),
            num_ants=payload.get("num_ants"),
            extras=dict(payload.get("extras") or {}),
        )

    @classmethod
    def from_json(cls, text: str) -> "RegionCheckpoint":
        return cls.from_payload(json.loads(text))

    # -- resume compatibility ----------------------------------------------

    def exact_rng_resume(self, num_ants: int) -> bool:
        """True when the RNG streams can continue draw-for-draw."""
        return (
            self.rng_state is not None
            and self.num_ants is not None
            and self.num_ants == num_ants
        )
