"""Deadline budgets and the watchdog (the "never hang the compile" layer).

A compiler cannot let one scheduling region stall the build, so every
region gets a **deadline budget** in cost-model seconds
(``ResilienceParams.deadline_seconds`` / the CLI's ``--deadline``). Both
ACO schedulers charge the budget inside their iteration loops — the same
modelled seconds their pass results report — and stop a pass *cleanly*
when the budget runs out: the global best so far ships as a partial
result, exactly as if the termination condition had fired early. A soft
deadline therefore degrades schedule quality, never correctness.

The **watchdog** is the hard form: when an injected hang
(:meth:`repro.gpusim.faults.FaultPlan.hang_iteration`) stops a simulated
kernel from making progress, the scheduler charges the heartbeat timeout
and raises :class:`~repro.errors.DeviceHangError` carrying a checkpoint of
the last completed iteration — a hung kernel returns no results, but the
host-side colony state (pheromone table, global best, RNG streams)
survives for the retry to resume from.

One :class:`DeadlineBudget` spans a whole region — both passes and every
retry attempt share it, so a region that keeps faulting runs out of road
and the ladder degrades it instead of retrying forever.
"""

from __future__ import annotations

from typing import Optional

from ..errors import ConfigError, DeadlineExceeded


class DeadlineBudget:
    """Cost-model-second budget for one region's scheduling.

    ``deadline`` of None means unlimited (every check passes and
    :attr:`exhausted` stays False) so an absent deadline adds no branches
    to the hot loop beyond one attribute test.
    """

    def __init__(self, deadline: Optional[float] = None):
        if deadline is not None and deadline <= 0.0:
            raise ConfigError("deadline must be positive (or None for unlimited)")
        self.deadline = deadline
        self.spent = 0.0

    @property
    def limited(self) -> bool:
        return self.deadline is not None

    @property
    def exhausted(self) -> bool:
        return self.deadline is not None and self.spent >= self.deadline

    @property
    def remaining(self) -> float:
        if self.deadline is None:
            return float("inf")
        return max(0.0, self.deadline - self.spent)

    def charge(self, seconds: float) -> None:
        """Record modelled seconds spent against the budget."""
        if seconds < 0.0:
            raise ConfigError("cannot charge negative seconds")
        self.spent += seconds

    def require(self, what: str) -> None:
        """Raise :class:`DeadlineExceeded` if nothing is left for ``what``."""
        if self.exhausted:
            raise DeadlineExceeded(
                "deadline budget exhausted before %s (spent %.3gs of %.3gs)"
                % (what, self.spent, self.deadline)
            )
