"""The process-wide resilience log (what the CLI's exit code reads).

Telemetry may be off (it is opt-in), but the CLI still has to distinguish
"compiled clean" from "compiled with degradations" from "region
unrecoverable". The ladder therefore records every fault, retry, degrade
and unrecoverable outcome into a tiny process-wide log — injectable and
resettable like the telemetry object, and empty (zero allocations beyond
the singleton) on fault-free runs.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List


@dataclass
class ResilienceLog:
    """Counters plus per-region outcome records for one run."""

    #: fault-class name -> injected-fault count.
    faults: Dict[str, int] = field(default_factory=dict)
    retries: int = 0
    resumes: int = 0
    degrades: int = 0
    deadline_trips: int = 0
    #: Regions that ended on the heuristic-only rung (shipped degraded).
    degraded_regions: List[str] = field(default_factory=list)
    #: Regions whose ladder was exhausted with degradation forbidden.
    unrecoverable_regions: List[str] = field(default_factory=list)

    def record_fault(self, fault_class: str) -> None:
        self.faults[fault_class] = self.faults.get(fault_class, 0) + 1

    @property
    def total_faults(self) -> int:
        return sum(self.faults.values())

    @property
    def eventful(self) -> bool:
        """True when anything at all happened (drives the CLI summary)."""
        return bool(
            self.faults
            or self.retries
            or self.degrades
            or self.deadline_trips
            or self.degraded_regions
            or self.unrecoverable_regions
        )

    def summary(self) -> str:
        """One-line human summary for the CLI."""
        parts = []
        if self.faults:
            per_class = ", ".join(
                "%s=%d" % (name, count) for name, count in sorted(self.faults.items())
            )
            parts.append("%d fault(s) [%s]" % (self.total_faults, per_class))
        if self.retries:
            parts.append("%d retr%s (%d resumed)"
                         % (self.retries, "y" if self.retries == 1 else "ies", self.resumes))
        if self.degrades:
            parts.append("%d degrade step(s)" % self.degrades)
        if self.deadline_trips:
            parts.append("%d deadline trip(s)" % self.deadline_trips)
        if self.degraded_regions:
            parts.append("%d region(s) shipped heuristic-only" % len(self.degraded_regions))
        if self.unrecoverable_regions:
            parts.append(
                "%d region(s) UNRECOVERABLE (%s)"
                % (
                    len(self.unrecoverable_regions),
                    ", ".join(self.unrecoverable_regions[:5]),
                )
            )
        return "; ".join(parts) if parts else "clean"


_LOG = ResilienceLog()


def get_resilience_log() -> ResilienceLog:
    """The process-wide log (the ladder's default sink)."""
    return _LOG


def reset_resilience_log() -> ResilienceLog:
    """Swap in a fresh process-wide log (the CLI calls this per run)."""
    global _LOG
    _LOG = ResilienceLog()
    return _LOG


@contextmanager
def resilience_log_session(log: ResilienceLog) -> Iterator[ResilienceLog]:
    """Temporarily install ``log`` as the process-wide log (tests)."""
    global _LOG
    previous = _LOG
    _LOG = log
    try:
        yield log
    finally:
        _LOG = previous
