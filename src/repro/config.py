"""Configuration dataclasses for the schedulers, the simulator and the suite.

The defaults reproduce the settings reported in the paper:

* 180 blocks x 64 threads = 11,520 ants per parallel iteration (Section VI-A),
* pheromone decay factor 0.8 (Section IV-A),
* termination conditions 1 / 2 / 3 for region-size classes [1-49], [50-99]
  and >= 100 instructions (Section VI-A),
* 25% of wavefronts allowed to insert optional stalls (Section V-B),
* cycle-threshold filter of 21 cycles and the post-scheduling revert filter
  (+3 occupancy vs. +63 cycles, Section VI-D).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from .errors import ConfigError

#: Region-size classes used throughout the evaluation (Section VI-A).
SIZE_CLASSES: Tuple[Tuple[int, int], ...] = ((1, 49), (50, 99), (100, 10**9))

#: Human-readable labels for :data:`SIZE_CLASSES`, matching the paper tables.
SIZE_CLASS_LABELS: Tuple[str, ...] = ("1-49", "50-99", ">=100")

#: Selectable pheromone-update strategies (see :mod:`repro.aco.strategy`):
#: the paper's Ant System rules ("as", default) and MAX-MIN Ant System
#: ("mmas": tau clamping, best-only deposit, stagnation restarts).
STRATEGY_NAMES: Tuple[str, ...] = ("as", "mmas")


def size_class_index(num_instructions: int) -> int:
    """Return the index of the size class containing ``num_instructions``."""
    for index, (low, high) in enumerate(SIZE_CLASSES):
        if low <= num_instructions <= high:
            return index
    raise ConfigError("region size %d is outside every size class" % num_instructions)


@dataclass(frozen=True)
class ACOParams:
    """Parameters of the ACO search shared by both the sequential and the
    parallel scheduler.

    The selection rule follows the Ant Colony System of Gambardella and
    Dorigo as adapted by Shobaki et al. (TACO 2022): with probability
    ``exploitation_prob`` an ant greedily picks the candidate maximizing
    ``tau * eta**heuristic_weight`` (exploitation); otherwise it samples from
    the distribution proportional to the same product (exploration).
    """

    #: Probability q0 of an exploitation (greedy) step. The Ant Colony
    #: System default (Gambardella & Dorigo) is strongly exploitative.
    exploitation_prob: float = 0.9
    #: Exponent beta applied to the guiding-heuristic value.
    heuristic_weight: float = 2.0
    #: Pheromone decay factor applied at the end of each iteration.
    decay: float = 0.8
    #: Initial value of every pheromone-table entry.
    initial_pheromone: float = 1.0
    #: Deposit scale: the iteration winner deposits ``deposit / (1 + cost)``
    #: on each of its links.
    deposit: float = 6.0
    #: Pheromone entries are clamped into [min_pheromone, max_pheromone]
    #: (MAX-MIN style, keeps exploration alive under the strong 0.8 decay).
    min_pheromone: float = 0.1
    max_pheromone: float = 16.0
    #: Iterations without improvement tolerated before terminating, one entry
    #: per size class in :data:`SIZE_CLASSES`.
    termination_conditions: Tuple[int, int, int] = (1, 2, 3)
    #: Number of ants per iteration used by the *sequential* scheduler.
    sequential_ants: int = 10
    #: Hard cap on iterations per pass (safety net; the paper relies on the
    #: stagnation condition only).
    max_iterations: int = 64
    #: Probability scale of inserting an optional stall when the stall
    #: heuristic judges one beneficial (pass 2 only).
    optional_stall_prob: float = 0.5
    #: Maximum optional stalls per schedule, as a fraction of region size.
    #: Too small a budget starves ants on pressure-tight regions with
    #: long-latency load fronts (they die instead of waiting), forcing the
    #: pass-2 fallback to the stretched pass-1 schedule.
    optional_stall_budget: float = 0.5
    #: Pheromone-update strategy: "as" (the paper's Ant System rules) or
    #: "mmas" (MAX-MIN Ant System). Overridable per scheduler via the
    #: constructor argument, REPRO_STRATEGY, or GPUParams.strategy.
    strategy: str = "as"
    #: MMAS: stagnation-limit multiplier over the paper's 1/2/3 termination
    #: conditions. Restarts need room to fire; with the paper's limits an
    #: MMAS pass would stop before its first reinitialization.
    mmas_patience: int = 4
    #: MMAS: reinitialize the table to tau_max after every this many
    #: consecutive non-improving iterations.
    mmas_reinit_stagnation: int = 2
    #: MMAS: tau_min = tau_max / (scale * num_instructions).
    mmas_tau_min_scale: float = 2.0

    def termination_condition(self, num_instructions: int) -> int:
        """Stagnation limit for a region of the given size (Section VI-A)."""
        return self.termination_conditions[size_class_index(num_instructions)]

    def validate(self) -> None:
        if not 0.0 <= self.exploitation_prob <= 1.0:
            raise ConfigError("exploitation_prob must be in [0, 1]")
        if not 0.0 < self.decay <= 1.0:
            raise ConfigError("decay must be in (0, 1]")
        if self.initial_pheromone <= 0.0:
            raise ConfigError("initial_pheromone must be positive")
        if self.min_pheromone <= 0.0 or self.max_pheromone < self.min_pheromone:
            raise ConfigError("need 0 < min_pheromone <= max_pheromone")
        if len(self.termination_conditions) != len(SIZE_CLASSES):
            raise ConfigError(
                "termination_conditions needs %d entries" % len(SIZE_CLASSES)
            )
        if any(t < 1 for t in self.termination_conditions):
            raise ConfigError("termination conditions must be >= 1")
        if self.sequential_ants < 1:
            raise ConfigError("sequential_ants must be >= 1")
        if self.max_iterations < 1:
            raise ConfigError("max_iterations must be >= 1")
        if self.strategy not in STRATEGY_NAMES:
            raise ConfigError(
                "strategy must be one of %s, got %r"
                % (", ".join(STRATEGY_NAMES), self.strategy)
            )
        if self.mmas_patience < 1:
            raise ConfigError("mmas_patience must be >= 1")
        if self.mmas_reinit_stagnation < 1:
            raise ConfigError("mmas_reinit_stagnation must be >= 1")
        if self.mmas_tau_min_scale <= 0.0:
            raise ConfigError("mmas_tau_min_scale must be positive")
        if self.strategy == "mmas" and self.decay >= 1.0:
            raise ConfigError(
                "mmas needs decay < 1 (tau_max is deposit / (1 - decay))"
            )


@dataclass(frozen=True)
class GPUParams:
    """Launch geometry and divergence/memory optimization toggles of the
    parallel scheduler (Sections IV-B, V-A and V-B)."""

    #: Blocks per kernel launch. The paper launches 3x the CU count.
    blocks: int = 180
    #: Threads per block; set to the wavefront size so a block is one
    #: wavefront and needs no block-level synchronization.
    threads_per_block: int = 64

    # --- Memory optimizations (Section V-A), togglable for Table 4.a ---
    #: Structure-of-arrays layout for per-ant state (coalesced accesses).
    soa_layout: bool = True
    #: Size fixed arrays with the transitive-closure ready-list upper bound
    #: instead of the trivial bound n.
    tight_ready_list_bound: bool = True
    #: Consolidate host->device transfers into one batched copy.
    batched_transfers: bool = True

    # --- Divergence optimizations (Section V-B), togglable for Table 4.b ---
    #: Randomize explore/exploit per wavefront instead of per thread.
    wavefront_level_choice: bool = True
    #: Fraction of wavefronts allowed to insert optional stalls (pass 2).
    stall_wavefront_fraction: float = 0.25
    #: Terminate a wavefront once any lane finishes its schedule (pass 2).
    early_wavefront_termination: bool = True
    #: Rotate guiding heuristics across wavefront groups.
    heuristic_diversity: bool = True

    #: Ant-construction engine: ``"vectorized"`` (lockstep batch engine,
    #: wave-max cost model) or ``"loop"`` (scalar per-ant reference engine,
    #: serialized-lane cost model). Both produce bit-identical seeded
    #: schedules; see repro.parallel.colony.BACKENDS.
    backend: str = "vectorized"

    #: Per-device override of the pheromone-update strategy (see
    #: :data:`STRATEGY_NAMES`); ``None`` inherits ``ACOParams.strategy``.
    strategy: Optional[str] = None

    @property
    def wavefronts(self) -> int:
        """Total wavefronts per launch (one per block by construction)."""
        return self.blocks

    @property
    def total_threads(self) -> int:
        return self.blocks * self.threads_per_block

    def validate(self, wavefront_size: int = 64) -> None:
        if self.blocks < 1:
            raise ConfigError("blocks must be >= 1")
        if self.threads_per_block != wavefront_size:
            raise ConfigError(
                "threads_per_block (%d) must equal the wavefront size (%d) to "
                "avoid block-level synchronization" % (self.threads_per_block, wavefront_size)
            )
        if not 0.0 <= self.stall_wavefront_fraction <= 1.0:
            raise ConfigError("stall_wavefront_fraction must be in [0, 1]")
        if self.backend not in ("loop", "vectorized"):
            raise ConfigError(
                "backend must be 'loop' or 'vectorized', got %r" % (self.backend,)
            )
        if self.strategy is not None and self.strategy not in STRATEGY_NAMES:
            raise ConfigError(
                "strategy must be one of %s, got %r"
                % (", ".join(STRATEGY_NAMES), self.strategy)
            )

    def without_memory_opts(self) -> "GPUParams":
        """A copy with every Section V-A optimization disabled (Table 4.a baseline)."""
        return replace_params(
            self, soa_layout=False, tight_ready_list_bound=False, batched_transfers=False
        )

    def without_divergence_opts(self) -> "GPUParams":
        """A copy with every Section V-B optimization disabled (Table 4.b baseline).

        Optional stalls stay enabled (every wavefront may insert them); the
        *restriction* to a fraction of wavefronts is the optimization.
        """
        return replace_params(
            self,
            wavefront_level_choice=False,
            stall_wavefront_fraction=1.0,
            early_wavefront_termination=False,
            heuristic_diversity=False,
        )


def replace_params(params, **changes):
    """``dataclasses.replace`` that works on any of the frozen param classes."""
    import dataclasses

    return dataclasses.replace(params, **changes)


@dataclass(frozen=True)
class FilterParams:
    """Selective-invocation filters from Section VI-D."""

    #: Pass-2 ACO runs only when heuristic length exceeds the LB by more than
    #: this many cycles. Table 7 sweeps this; 21 was best.
    cycle_threshold: int = 21
    #: Post-scheduling revert: if ACO gains at least this much occupancy ...
    revert_occupancy_gain: int = 3
    #: ... but lengthens the schedule by more than this many cycles, keep the
    #: heuristic schedule instead.
    revert_length_degradation: int = 63

    def validate(self) -> None:
        if self.cycle_threshold < 0:
            raise ConfigError("cycle_threshold must be >= 0")
        if self.revert_occupancy_gain < 0 or self.revert_length_degradation < 0:
            raise ConfigError("revert filter parameters must be >= 0")


@dataclass(frozen=True)
class ResilienceParams:
    """Fault handling: deadlines, retry ladder, checkpoints, chaos.

    All defaults are inert — no deadline, no chaos seed — and an inert
    configuration leaves every code path bit-identical to a build without
    the resilience layer (the pipeline only wraps a region in the retry
    ladder when :attr:`active` is true). ``enabled`` forces the ladder on
    or off regardless of the other knobs; leave it None for the natural
    rule "active iff a deadline or a chaos seed is set".
    """

    #: Per-region scheduling deadline in cost-model seconds (both ACO
    #: passes and every retry share one budget); None = unlimited.
    deadline_seconds: Optional[float] = None
    #: Retries per ladder rung before degrading to the next rung.
    max_retries: int = 2
    #: Permit backend downgrade (vectorized -> loop -> sequential ->
    #: heuristic). With False, a region whose retries are exhausted is
    #: recorded as unrecoverable instead of silently falling back.
    degrade: bool = True
    #: Resume retried passes from the fault checkpoint when one exists
    #: (hangs), instead of restarting the search.
    checkpoint: bool = True
    #: Chaos seed driving the deterministic fault model; None = no faults.
    chaos_seed: Optional[int] = None
    #: Force the retry ladder on/off; None = active iff deadline or chaos.
    enabled: Optional[bool] = None

    @property
    def active(self) -> bool:
        """Whether the pipeline should route regions through the ladder."""
        if self.enabled is not None:
            return bool(self.enabled)
        return self.deadline_seconds is not None or self.chaos_seed is not None

    def validate(self) -> None:
        if self.deadline_seconds is not None and not float(self.deadline_seconds) > 0.0:
            raise ConfigError("deadline_seconds must be positive (or None)")
        if self.max_retries < 0:
            raise ConfigError("max_retries must be >= 0")
        if self.chaos_seed is not None:
            int(self.chaos_seed)

    @classmethod
    def from_env(cls) -> "ResilienceParams":
        """Parameters from ``REPRO_DEADLINE`` / ``REPRO_MAX_RETRIES`` /
        ``REPRO_CHAOS`` / ``REPRO_DEGRADE`` (each optional; unset keeps
        the inert defaults)."""
        import os

        def _get(name):
            value = os.environ.get(name, "").strip()
            return value or None

        deadline = _get("REPRO_DEADLINE")
        retries = _get("REPRO_MAX_RETRIES")
        chaos = _get("REPRO_CHAOS")
        degrade = _get("REPRO_DEGRADE")
        try:
            return cls(
                deadline_seconds=float(deadline) if deadline else None,
                max_retries=int(retries) if retries else cls.max_retries,
                chaos_seed=int(chaos) if chaos else None,
                degrade=degrade not in ("0", "false", "no") if degrade else cls.degrade,
            )
        except ValueError as exc:
            raise ConfigError(
                "bad resilience environment override: %s" % exc
            ) from None


@dataclass(frozen=True)
class FleetParams:
    """Fleet sharding: how a region batch spreads over simulated workers.

    Inert by default (``num_shards = 1`` keeps the historical single-device
    batch path, byte for byte). All timing knobs are cost-model seconds —
    like everything else in the reproduction, the fleet has no wall clock.
    """

    #: Simulated shard workers a batch is partitioned across. 1 = the
    #: plain single-device :class:`repro.parallel.MultiRegionScheduler`
    #: path (no supervisor, no fleet events).
    num_shards: int = 1
    #: Supervisor heartbeat interval in cost-model seconds: the detection
    #: latency charged when a worker crashes or hangs mid-dispatch.
    heartbeat_seconds: float = 2e-3
    #: A worker whose epoch busy time exceeds this multiple of the fleet
    #: median is flagged a straggler (telemetry + dispatch demotion).
    straggler_factor: float = 2.0
    #: Restarts granted to a dead worker before it stays dead.
    max_worker_restarts: int = 1
    #: Cost-model seconds a restarted worker spends coming back.
    backoff_seconds: float = 1e-3
    #: Re-dispatches granted per region across the whole fleet before the
    #: region falls back to serial host execution (the PR 5 ladder).
    max_slot_redispatches: int = 4
    #: Seed of the worker-level fault plan (crash/hang/corrupt sites);
    #: None = fault-free fleet.
    chaos_seed: Optional[int] = None

    def validate(self) -> None:
        if self.num_shards < 1:
            raise ConfigError("num_shards must be >= 1")
        if self.heartbeat_seconds <= 0.0:
            raise ConfigError("heartbeat_seconds must be positive")
        if self.straggler_factor < 1.0:
            raise ConfigError("straggler_factor must be >= 1")
        if self.max_worker_restarts < 0:
            raise ConfigError("max_worker_restarts must be >= 0")
        if self.backoff_seconds < 0.0:
            raise ConfigError("backoff_seconds must be >= 0")
        if self.max_slot_redispatches < 1:
            raise ConfigError("max_slot_redispatches must be >= 1")
        if self.chaos_seed is not None:
            int(self.chaos_seed)

    @classmethod
    def from_env(cls) -> "FleetParams":
        """Parameters from ``REPRO_SHARDS`` / ``REPRO_FLEET_CHAOS`` (each
        optional; unset keeps the inert single-shard defaults)."""
        import os

        shards = os.environ.get("REPRO_SHARDS", "").strip()
        chaos = os.environ.get("REPRO_FLEET_CHAOS", "").strip()
        try:
            return cls(
                num_shards=int(shards) if shards else cls.num_shards,
                chaos_seed=int(chaos) if chaos else None,
            )
        except ValueError as exc:
            raise ConfigError(
                "bad fleet environment override: %s" % exc
            ) from None


@dataclass(frozen=True)
class SuiteParams:
    """Shape of the synthetic rocPRIM-like benchmark suite (Table 1)."""

    #: Number of benchmarks to generate (paper: 341 scheduling-sensitive).
    num_benchmarks: int = 341
    #: Number of distinct kernels shared by the benchmarks (paper: 269).
    num_kernels: int = 269
    #: Mean number of scheduling regions per kernel. The paper's suite has
    #: 181,883 regions over 269 kernels (~676 each); the default here is far
    #: smaller so the full pipeline runs in seconds, and experiments state
    #: their own scale.
    regions_per_kernel: int = 24
    #: Base RNG seed; every kernel derives its own stream from it.
    seed: int = 2024

    def validate(self) -> None:
        if min(self.num_benchmarks, self.num_kernels, self.regions_per_kernel) < 1:
            raise ConfigError("suite parameters must be >= 1")


@dataclass(frozen=True)
class ReproConfig:
    """Top-level bundle used by the pipeline and the experiment harness."""

    aco: ACOParams = field(default_factory=ACOParams)
    gpu: GPUParams = field(default_factory=GPUParams)
    filters: FilterParams = field(default_factory=FilterParams)
    suite: SuiteParams = field(default_factory=SuiteParams)
    resilience: ResilienceParams = field(default_factory=ResilienceParams)
    fleet: FleetParams = field(default_factory=FleetParams)

    def validate(self, wavefront_size: int = 64) -> None:
        self.aco.validate()
        self.gpu.validate(wavefront_size)
        self.filters.validate()
        self.suite.validate()
        self.resilience.validate()
        self.fleet.validate()


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean used by the speedup tables; empty input -> 1.0."""
    import math

    if not values:
        return 1.0
    if any(v <= 0.0 for v in values):
        raise ConfigError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))
