"""Benchmark execution-time modelling (Figures 4, Table 7 inputs)."""

from .exec_model import ExecutionModel, BenchmarkResult, benchmark_results, sensitive_benchmarks

__all__ = ["ExecutionModel", "BenchmarkResult", "benchmark_results", "sensitive_benchmarks"]
