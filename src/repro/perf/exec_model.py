"""The analytic kernel-execution model behind Figure 4 and Table 7.

The paper measures real benchmark throughputs; this reproduction models
them with the standard GPU latency-hiding argument:

* a kernel's issue time per work item is the dynamic-weighted schedule
  length of its regions (hot inner regions dominate);
* memory stalls are hidden by having more resident wavefronts: with
  occupancy ``occ`` out of a maximum of 10, the exposed stall fraction
  scales like ``mu * (max_occ / occ - 1)`` where ``mu`` is the kernel's
  memory intensity (streaming primitives have high ``mu`` and love
  occupancy; compute-bound ones barely care).

Throughput is ``workload_bytes / time``; only *ratios* between builds are
meaningful, which is all the evaluation uses (the absolute GB/s scale is
cosmetic and chosen to land in a plausible range).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..pipeline.compiler import CompileRun, KernelOutcome, RegionOutcome
from ..suite.rocprim import BenchmarkSpec, Suite


@dataclass(frozen=True)
class ExecutionModel:
    """Maps (occupancy, weighted length, memory intensity) to seconds."""

    #: Hardware cap on wavefronts per SIMD (Vega: 10).
    max_occupancy: int = 10
    #: Seconds per weighted-schedule-length unit per workload megabyte.
    seconds_per_cycle_mb: float = 12e-6
    #: Stall exposure when occupancy is lost, per unit of memory intensity.
    stall_exposure: float = 0.9
    #: Amplitude of the *un-modeled factors* (Section VI-E: "regressions are
    #: caused by negative side effects on un-modeled factors" such as
    #: caching). Every distinct schedule of a kernel perturbs its time by a
    #: deterministic pseudo-random factor in [-noise, +noise]; schedule
    #: changes whose modelled gain is below the noise floor can therefore
    #: regress — which is exactly what the cycle-threshold filter exists to
    #: prevent (Table 7).
    unmodeled_noise: float = 0.04

    def _schedule_jitter(
        self, kernel_outcome: KernelOutcome, pick: Callable[[RegionOutcome], object]
    ) -> float:
        if self.unmodeled_noise <= 0:
            return 1.0
        import hashlib

        signature = ";".join(
            "%s:%d:%d" % (r.region_name, pick(r).length, pick(r).occupancy)
            for r in kernel_outcome.regions
        )
        digest = hashlib.sha256(
            (kernel_outcome.kernel.name + "|" + signature).encode()
        ).digest()
        unit = int.from_bytes(digest[:8], "big") / float(2**64)  # [0, 1)
        return 1.0 + self.unmodeled_noise * (2.0 * unit - 1.0)

    def kernel_time_factor(
        self,
        kernel_outcome: KernelOutcome,
        pick: Callable[[RegionOutcome], object],
        weights: Optional[Tuple[float, ...]] = None,
    ) -> float:
        """Relative execution time of one kernel under a schedule choice."""
        occupancy = max(1, min(pick(r).occupancy for r in kernel_outcome.regions))
        weighted_length = kernel_outcome.weighted_length(pick, weights)
        mu = kernel_outcome.kernel.memory_intensity
        stall = 1.0 + self.stall_exposure * mu * (self.max_occupancy / occupancy - 1.0)
        return weighted_length * stall * self._schedule_jitter(kernel_outcome, pick)

    def benchmark_seconds(
        self,
        benchmark: BenchmarkSpec,
        kernel_outcome: KernelOutcome,
        pick: Callable[[RegionOutcome], object],
    ) -> float:
        megabytes = benchmark.workload_bytes / (1024.0 * 1024.0)
        return (
            self.kernel_time_factor(kernel_outcome, pick, benchmark.region_weights)
            * self.seconds_per_cycle_mb
            * megabytes
        )

    def benchmark_throughput(
        self,
        benchmark: BenchmarkSpec,
        kernel_outcome: KernelOutcome,
        pick: Callable[[RegionOutcome], object],
    ) -> float:
        """GB/s for one benchmark under one build's schedules."""
        seconds = self.benchmark_seconds(benchmark, kernel_outcome, pick)
        return benchmark.workload_bytes / seconds / 1e9


def _pick_final(outcome: RegionOutcome):
    return outcome.final


def _pick_heuristic(outcome: RegionOutcome):
    return outcome.heuristic


@dataclass(frozen=True)
class BenchmarkResult:
    """Throughput of one benchmark under the base and modified builds."""

    name: str
    kernel_name: str
    base_throughput: float
    aco_throughput: float

    @property
    def improvement_pct(self) -> float:
        return 100.0 * (self.aco_throughput - self.base_throughput) / self.base_throughput

    @property
    def significant(self) -> bool:
        """The paper's significance cut: an absolute difference of >= 1%."""
        return abs(self.improvement_pct) >= 1.0


def benchmark_results(
    suite: Suite,
    aco_run: CompileRun,
    model: Optional[ExecutionModel] = None,
    benchmarks: Optional[Sequence[BenchmarkSpec]] = None,
    pick_aco: Optional[Callable[[RegionOutcome], object]] = None,
    pick_base: Optional[Callable[[RegionOutcome], object]] = None,
) -> List[BenchmarkResult]:
    """Base-vs-ACO throughput for every benchmark of the suite.

    Both builds come from the same compile run: the base build uses each
    region's recorded heuristic schedule, the modified build the final one.
    ``pick_aco``/``pick_base`` override which schedule quality each build
    reads off a region outcome (Table 7 uses this to re-apply the cycle
    threshold post hoc).
    """
    model = model or ExecutionModel()
    pick_aco = pick_aco or _pick_final
    pick_base = pick_base or _pick_heuristic
    results = []
    for benchmark in benchmarks if benchmarks is not None else suite.benchmarks:
        kernel_outcome = aco_run.kernel_outcome(benchmark.kernel_name)
        results.append(
            BenchmarkResult(
                name=benchmark.name,
                kernel_name=benchmark.kernel_name,
                base_throughput=model.benchmark_throughput(
                    benchmark, kernel_outcome, pick_base
                ),
                aco_throughput=model.benchmark_throughput(
                    benchmark, kernel_outcome, pick_aco
                ),
            )
        )
    return results


def sensitive_benchmarks(
    suite: Suite,
    runs: Sequence[CompileRun],
    model: Optional[ExecutionModel] = None,
    threshold: float = 0.03,
) -> List[BenchmarkSpec]:
    """The paper's sensitivity filter (Section VI-A).

    A benchmark is scheduling-sensitive when the coefficient of variation of
    its execution times across builds (base LLVM, ACO, CP heuristic in the
    paper) is at least ``threshold`` (3%).
    """
    model = model or ExecutionModel()
    sensitive = []
    for benchmark in suite.benchmarks:
        times = []
        for run in runs:
            kernel_outcome = run.kernel_outcome(benchmark.kernel_name)
            times.append(
                model.benchmark_seconds(benchmark, kernel_outcome, _pick_final)
            )
        mean = sum(times) / len(times)
        if mean == 0:
            continue
        variance = sum((t - mean) ** 2 for t in times) / len(times)
        cov = variance**0.5 / mean
        if cov >= threshold:
            sensitive.append(benchmark)
    return sensitive
