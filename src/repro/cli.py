"""Command-line interface: ``repro <experiment> [--scale NAME]``.

``repro list`` shows the available experiments; ``repro all`` runs every
table and figure in paper order. The scale (suite size and launch
geometry) defaults to ``default`` and can also be set with the
``REPRO_SCALE`` environment variable.

Observability: ``--trace PATH`` streams every telemetry event (regions,
ACO iterations, simulated kernel launches — the schema of
:mod:`repro.telemetry.schema`) to a JSONL file and prints its profile;
``--metrics`` collects and prints the metrics registry; ``--profile``
renders the hierarchical span profile of the run's simulated time and
``--profile-stacks PATH`` writes it in collapsed-stack format for
flamegraph/speedscope tooling (see :mod:`repro.profile`). The
:mod:`repro.obs` layer adds ``--watch`` (live-style terminal dashboard),
``--openmetrics PATH`` / ``--obs-snapshot PATH`` (Prometheus text and
deterministic JSON metric exports), ``--perfetto PATH`` (Chrome
trace-event JSON, one track per region trace) and ``--slo-target``.
All of them leave results bit-identical: observability observes, it
never steers.

Backends: ``--backend loop|vectorized`` selects the parallel scheduler's
ant-construction engine (sets ``REPRO_BACKEND``). Both engines produce
bit-identical seeded schedules; they differ in which kernel the cost
accounting simulates (see :mod:`repro.parallel.colony`).

Strategies: ``--strategy as|mmas`` selects the pheromone-update rule set
for both schedulers (sets ``REPRO_STRATEGY``): the paper's Ant System
("as", default) or MAX-MIN Ant System ("mmas" — clamped pheromone,
best-only deposit, stagnation restarts; see :mod:`repro.aco.strategy`).

Verification: ``--verify`` turns on the scheduler sanitizer
(:mod:`repro.analysis`) — every shipped schedule is independently
rechecked, DDGs are linted, and the GPU simulation runs with checked SoA
accessors. Results stay bit-identical; the run only gets slower.

Resilience: ``--deadline SECONDS`` caps each region's scheduling budget,
``--chaos SEED`` injects deterministic GPU faults, and ``--max-retries N``
sizes the retry ladder (see :mod:`repro.resilience`). Exit codes encode
the outcome: 0 with a warning summary when every region shipped (even
degraded to the heuristic), 3 when any region was unrecoverable.

Fleet: ``--shards N`` partitions every multi-region batch across N
supervised shard workers (sets ``REPRO_SHARDS``; see :mod:`repro.fleet`)
— results stay bit-identical to the single-device run, only the fleet
makespan changes. ``--fleet-chaos SEED`` additionally injects
deterministic worker-level faults (crash, hang, result corruption) that
the supervisor detects and recovers from by reassigning regions (sets
``REPRO_FLEET_CHAOS``).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List


def _render(result) -> str:
    if isinstance(result, list):
        return "\n".join(table.render() for table in result)
    return result.render()


def main(argv: List[str] = None) -> int:
    from .experiments import EXPERIMENTS, SCALES, get_context

    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Instruction Scheduling for the GPU on the GPU' "
            "(CGO 2024): regenerate the paper's tables and figures on the "
            "simulated device."
        ),
    )
    parser.add_argument(
        "experiment",
        help="experiment id (%s), 'all', or 'list'" % ", ".join(sorted(EXPERIMENTS)),
    )
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default=None,
        help="experiment scale (default: $REPRO_SCALE or 'default')",
    )
    parser.add_argument(
        "--csv",
        metavar="DIR",
        default=None,
        help="also write each table as a CSV file into DIR (the paper's "
        "artifact emits spreadsheets)",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write a JSONL telemetry trace of the run to PATH and print "
        "its profile (see repro.telemetry)",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="collect telemetry metrics during the run and print them at "
        "the end",
    )
    parser.add_argument(
        "--record",
        metavar="DIR",
        default=None,
        help="record the run as a canonical bundle directory (events, "
        "metrics, schedules, RNG draw digests) diffable with "
        "python -m repro.obs.diff; also honours REPRO_RECORD and "
        "REPRO_RECORD_DRAWS=digest|full|off",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="profile the run's simulated time with the span profiler and "
        "print the span tree at the end (see repro.profile)",
    )
    parser.add_argument(
        "--profile-stacks",
        metavar="PATH",
        default=None,
        help="write the span profile in collapsed-stack format to PATH "
        "(feed to flamegraph.pl or speedscope); implies --profile",
    )
    parser.add_argument(
        "--backend",
        choices=("loop", "vectorized"),
        default=None,
        help="ant-construction engine for the parallel scheduler: the "
        "lockstep batch engine ('vectorized', default) or the scalar "
        "per-ant reference engine with the divergent cost model ('loop'); "
        "sets REPRO_BACKEND (see repro.parallel.colony)",
    )
    parser.add_argument(
        "--strategy",
        choices=("as", "mmas"),
        default=None,
        help="pheromone-update strategy for both schedulers: the paper's "
        "Ant System ('as', default) or MAX-MIN Ant System ('mmas'); sets "
        "REPRO_STRATEGY (see repro.aco.strategy)",
    )
    parser.add_argument(
        "--deadline",
        metavar="SECONDS",
        type=float,
        default=None,
        help="per-region scheduling deadline in cost-model seconds; both "
        "ACO passes and every retry share the budget, and a region that "
        "runs out ships its best-so-far schedule (sets REPRO_DEADLINE; "
        "see repro.resilience)",
    )
    parser.add_argument(
        "--max-retries",
        metavar="N",
        type=int,
        default=None,
        help="retries per resilience-ladder rung before degrading to the "
        "next engine (sets REPRO_MAX_RETRIES; only meaningful with "
        "--deadline or --chaos)",
    )
    parser.add_argument(
        "--chaos",
        metavar="SEED",
        type=int,
        default=None,
        help="inject deterministic GPU faults (launch failures, transfer "
        "corruption, hangs, OOM) driven by SEED and recover via the retry "
        "ladder (sets REPRO_CHAOS; see repro.resilience)",
    )
    parser.add_argument(
        "--no-degrade",
        action="store_true",
        help="forbid the resilience ladder's engine downgrade: a region "
        "whose retries are exhausted is reported unrecoverable (exit 3) "
        "instead of shipping its heuristic schedule (sets REPRO_DEGRADE=0)",
    )
    parser.add_argument(
        "--shards",
        metavar="N",
        type=int,
        default=None,
        help="shard every multi-region batch across N supervised fleet "
        "workers with deterministic fault recovery; results are "
        "bit-identical to the single-device run (sets REPRO_SHARDS; see "
        "repro.fleet)",
    )
    parser.add_argument(
        "--fleet-chaos",
        metavar="SEED",
        type=int,
        default=None,
        help="inject deterministic worker-level faults (crash, hang, "
        "result corruption) driven by SEED into the shard fleet; the "
        "supervisor detects and recovers every one (sets "
        "REPRO_FLEET_CHAOS; only meaningful with --shards)",
    )
    parser.add_argument(
        "--verify",
        action="store_true",
        help="run the scheduler sanitizer: independent verification of "
        "every shipped schedule, DDG/closure linting and checked SoA "
        "accessors in the GPU simulation (sets REPRO_VERIFY/REPRO_SANITIZE; "
        "see repro.analysis)",
    )
    parser.add_argument(
        "--watch",
        action="store_true",
        help="render the repro.obs terminal dashboard (throughput, latency "
        "percentiles, backend mix, SLO burn) from the run's event stream "
        "after the experiments finish",
    )
    parser.add_argument(
        "--openmetrics",
        metavar="PATH",
        default=None,
        help="export the run's aggregated metrics as Prometheus/OpenMetrics "
        "text to PATH (see repro.obs.export)",
    )
    parser.add_argument(
        "--obs-snapshot",
        metavar="PATH",
        default=None,
        help="export the deterministic metrics snapshot (sorted JSON, "
        "byte-stable across identical seeded runs) to PATH",
    )
    parser.add_argument(
        "--perfetto",
        metavar="PATH",
        default=None,
        help="export the run's traces as Chrome trace-event JSON to PATH "
        "(open in Perfetto or chrome://tracing; one track per region trace)",
    )
    parser.add_argument(
        "--slo-target",
        metavar="FRACTION",
        type=float,
        default=None,
        help="region-success SLO target for the dashboard/exports "
        "(default 0.99; a region violates by tripping its deadline or "
        "shipping degraded/unrecoverable)",
    )
    args = parser.parse_args(argv)

    if args.verify:
        import os

        os.environ["REPRO_VERIFY"] = "1"
        os.environ["REPRO_SANITIZE"] = "1"

    if args.backend:
        import os

        os.environ["REPRO_BACKEND"] = args.backend

    if args.strategy:
        import os

        os.environ["REPRO_STRATEGY"] = args.strategy

    if (
        args.deadline is not None
        or args.max_retries is not None
        or args.chaos is not None
        or args.no_degrade
    ):
        import os

        if args.deadline is not None:
            os.environ["REPRO_DEADLINE"] = repr(args.deadline)
        if args.max_retries is not None:
            os.environ["REPRO_MAX_RETRIES"] = str(args.max_retries)
        if args.chaos is not None:
            os.environ["REPRO_CHAOS"] = str(args.chaos)
        if args.no_degrade:
            os.environ["REPRO_DEGRADE"] = "0"

    if args.shards is not None or args.fleet_chaos is not None:
        import os

        if args.shards is not None:
            os.environ["REPRO_SHARDS"] = str(args.shards)
        if args.fleet_chaos is not None:
            os.environ["REPRO_FLEET_CHAOS"] = str(args.fleet_chaos)

    if args.experiment == "list":
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0

    scale = SCALES[args.scale] if args.scale else None
    context = get_context(scale)

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print("unknown experiment(s): %s" % ", ".join(unknown), file=sys.stderr)
        print("available: %s" % ", ".join(sorted(EXPERIMENTS)), file=sys.stderr)
        return 2

    csv_dir = None
    if args.csv:
        import os

        csv_dir = args.csv
        os.makedirs(csv_dir, exist_ok=True)

    from contextlib import ExitStack

    obs_requested = bool(
        args.watch or args.openmetrics or args.obs_snapshot or args.perfetto
    )
    import os

    record_path = args.record or os.environ.get("REPRO_RECORD")  # repro: noqa[DET-003]
    stack = ExitStack()
    telemetry = None
    aggregator = None
    perfetto_sink = None
    recorder = None
    if record_path:
        from .obs.record import RunRecorder, recording_scope

        recorder = RunRecorder(
            draws=os.environ.get("REPRO_RECORD_DRAWS", "digest")  # repro: noqa[DET-003]
        )
        stack.enter_context(recording_scope(recorder))
    if args.trace or args.metrics or obs_requested or recorder is not None:
        from .telemetry import (
            JSONLSink,
            MemorySink,
            Telemetry,
            TeeSink,
            telemetry_session,
        )

        sinks = []
        if args.trace:
            sinks.append(JSONLSink(args.trace))
        if obs_requested:
            from .obs import DEFAULT_SLO_TARGET, AggregatingSink, MetricsAggregator

            aggregator = MetricsAggregator(
                slo_target=(
                    args.slo_target if args.slo_target is not None
                    else DEFAULT_SLO_TARGET
                )
            )
            sinks.append(AggregatingSink(aggregator))
            if args.perfetto:
                perfetto_sink = MemorySink()
                sinks.append(perfetto_sink)
        if recorder is not None:
            sinks.append(recorder.sink)
        sink = None
        if len(sinks) == 1:
            sink = sinks[0]
        elif sinks:
            sink = TeeSink(*sinks)
        telemetry = Telemetry(sink=sink, collect_metrics=args.metrics or None)
        stack.enter_context(telemetry_session(telemetry))

    profiler = None
    if args.profile or args.profile_stacks:
        from .profile import SpanProfiler, profile_session

        profiler = SpanProfiler()
        stack.enter_context(profile_session(profiler))

    from .resilience.log import reset_resilience_log

    resilience_log = reset_resilience_log()

    with stack:
        for name in names:
            started = time.time()
            result = EXPERIMENTS[name](context)
            print(_render(result))
            if csv_dir is not None:
                import os

                tables = result if isinstance(result, list) else [result]
                for table in tables:
                    path = os.path.join(csv_dir, table.csv_filename())
                    with open(path, "w") as handle:
                        handle.write(table.to_csv())
                    print("[wrote %s]" % path)
            print("[%s finished in %.1fs]\n" % (name, time.time() - started))

    if telemetry is not None and args.metrics:
        from .telemetry.report import render_metrics

        print(render_metrics(telemetry.metrics))
    if args.trace:
        from .telemetry.report import summarize_trace

        print("[trace written to %s]" % args.trace)
        print(summarize_trace(args.trace))
    if aggregator is not None:
        if args.watch:
            from .obs import render_dashboard

            print(render_dashboard(aggregator))
        if args.openmetrics:
            from .obs import to_openmetrics

            with open(args.openmetrics, "w") as handle:
                handle.write(to_openmetrics(aggregator))
            print("[openmetrics written to %s]" % args.openmetrics)
        if args.obs_snapshot:
            from .obs import to_snapshot_json

            with open(args.obs_snapshot, "w") as handle:
                handle.write(to_snapshot_json(aggregator))
            print("[obs snapshot written to %s]" % args.obs_snapshot)
        if args.perfetto:
            from .obs import write_perfetto

            write_perfetto(args.perfetto, perfetto_sink.records)
            print("[perfetto trace written to %s]" % args.perfetto)
    if profiler is not None:
        from .profile import render_tree, write_collapsed

        print(render_tree(profiler.root))
        if args.profile_stacks:
            write_collapsed(args.profile_stacks, profiler.root)
            print("[collapsed stacks written to %s]" % args.profile_stacks)

    if recorder is not None:
        if profiler is not None:
            from .obs.record import span_tree_payload

            recorder.set_spans(span_tree_payload(profiler.root))
        recorder.save(record_path)
        print("[run bundle written to %s]" % record_path)

    if resilience_log.eventful:
        # Degraded-but-shipped compiles warn and exit 0 (every region got
        # a correct schedule); an unrecoverable region is a real failure.
        print("[resilience] %s" % resilience_log.summary(), file=sys.stderr)
        if resilience_log.unrecoverable_regions:
            return 3
    return 0


if __name__ == "__main__":
    sys.exit(main())
