"""DDG and transitive-closure invariant linting.

The schedulers assume a long list of silent structural invariants about
:class:`~repro.ddg.graph.DDG` and
:class:`~repro.ddg.closure.TransitiveClosure` — edges follow program order,
successor/predecessor lists are exact duals, reachability bitsets are the
true transitive closure, and the Section V-A ready-list bound really does
dominate every ready list the colony ever builds. This module rechecks all
of them independently (reachability is recomputed with an iterative DFS,
not the bitset sweep the closure itself uses).
"""

from __future__ import annotations

from typing import List

from ..ddg.closure import TransitiveClosure
from ..ddg.graph import DDG, DepKind
from .report import VerificationReport


def lint_ddg(ddg: DDG) -> VerificationReport:
    """Check a DDG's structural invariants."""
    report = VerificationReport("DDG for %r" % ddg.region.name)
    n = ddg.num_instructions
    report.check(
        "node-count",
        n == len(ddg.region),
        "DDG has %d nodes for %d instructions" % (n, len(ddg.region)),
    )

    succ_of = [dict(ddg.successors[i]) for i in range(n)]
    pred_of = [dict(ddg.predecessors[i]) for i in range(n)]

    for i in range(n):
        for j, latency in ddg.successors[i]:
            report.check(
                "edge-range",
                0 <= j < n and j != i,
                "edge %d -> %d leaves the region or is a self-loop" % (i, j),
            )
            if not (0 <= j < n):
                continue
            report.check(
                "program-order",
                i < j,
                "edge %d -> %d goes against program order" % (i, j),
            )
            report.check(
                "latency-sanity",
                latency >= 0,
                "edge %d -> %d has negative latency %d" % (i, j, latency),
            )
            report.check(
                "duality",
                pred_of[j].get(i) == latency,
                "edge %d -> %d (latency %d) missing or mislabelled in the "
                "predecessor list" % (i, j, latency),
            )
        for p, latency in ddg.predecessors[i]:
            report.check(
                "duality",
                0 <= p < n and succ_of[p].get(i) == latency,
                "predecessor edge %d -> %d (latency %d) missing from the "
                "successor list" % (p, i, latency),
            )

    # Merged lists carry the max latency over parallel raw edges, and every
    # raw edge must be represented.
    merged = {}
    for edge in ddg.edges:
        report.check(
            "raw-edge-kind",
            isinstance(edge.kind, DepKind),
            "edge %d -> %d has unknown kind %r" % (edge.src, edge.dst, edge.kind),
        )
        if edge.kind is DepKind.FLOW:
            report.check(
                "flow-latency",
                edge.latency >= 1,
                "flow edge %d -> %d has latency %d < 1"
                % (edge.src, edge.dst, edge.latency),
            )
        key = (edge.src, edge.dst)
        merged[key] = max(merged.get(key, 0), edge.latency)
    for (src, dst), latency in merged.items():
        report.check(
            "merge-consistency",
            0 <= src < n and succ_of[src].get(dst) == latency,
            "merged edge %d -> %d should carry latency %d; successor list "
            "says %r" % (src, dst, latency, succ_of[src].get(dst) if src < n else None),
        )

    # Derived fields.
    report.check(
        "pred-counts",
        tuple(ddg.num_predecessors) == tuple(len(p) for p in ddg.predecessors),
        "num_predecessors disagrees with the predecessor lists",
    )
    report.check(
        "roots",
        tuple(ddg.roots) == tuple(i for i in range(n) if not ddg.predecessors[i]),
        "roots list disagrees with the predecessor lists",
    )
    report.check(
        "leaves",
        tuple(ddg.leaves) == tuple(i for i in range(n) if not ddg.successors[i]),
        "leaves list disagrees with the successor lists",
    )
    return report


def _reachable_bitsets(ddg: DDG) -> List[int]:
    """Reachability recomputed by per-node iterative DFS (the referee)."""
    n = ddg.num_instructions
    out = [0] * n
    for start in range(n):
        seen = 0
        stack = [dst for dst, _lat in ddg.successors[start]]
        while stack:
            node = stack.pop()
            bit = 1 << node
            if seen & bit:
                continue
            seen |= bit
            stack.extend(dst for dst, _lat in ddg.successors[node])
        out[start] = seen
    return out


def lint_closure(closure: TransitiveClosure, ddg=None) -> VerificationReport:
    """Check a closure's bitsets against an independent recomputation."""
    if ddg is None:
        ddg = closure.ddg
    report = VerificationReport("closure for %r" % ddg.region.name)
    n = closure.num_instructions
    report.check(
        "node-count",
        n == ddg.num_instructions,
        "closure covers %d nodes for a %d-node DDG" % (n, ddg.num_instructions),
    )
    all_mask = (1 << n) - 1
    truth = _reachable_bitsets(ddg)
    for i in range(n):
        desc = closure.descendants[i]
        anc = closure.ancestors[i]
        report.check(
            "irreflexive",
            not (desc >> i) & 1 and not (anc >> i) & 1,
            "instruction %d reaches itself" % i,
        )
        report.check(
            "antisymmetry",
            desc & anc == 0,
            "instruction %d has a node that is both ancestor and descendant "
            "(dependence cycle)" % i,
        )
        report.check(
            "transitivity",
            desc == truth[i],
            "descendants[%d] disagrees with DFS reachability" % i,
        )
        report.check(
            "program-order",
            desc & ((1 << (i + 1)) - 1) == 0,
            "instruction %d reaches an earlier instruction" % i,
        )
        report.check(
            "independence",
            closure.independent[i] == all_mask & ~(desc | anc | (1 << i)),
            "independent[%d] disagrees with the reachability bitsets" % i,
        )
    # Duality needs the full ancestor matrix: j in desc[i] <=> i in anc[j].
    for i in range(n):
        desc = closure.descendants[i]
        ok = all(
            ((closure.ancestors[j] >> i) & 1) == ((desc >> j) & 1)
            for j in range(n)
        )
        report.check(
            "duality",
            ok,
            "descendants[%d] and the ancestor bitsets disagree" % i,
        )
    return report


def max_antichain_size(closure: TransitiveClosure) -> int:
    """Largest pairwise-independent set, by brute-force enumeration.

    Exponential — only for cross-checking ``ready_list_upper_bound`` on
    small DDGs in tests.
    """
    n = closure.num_instructions
    best = 0

    def extend(candidates: List[int], size: int) -> None:
        nonlocal best
        if size + len(candidates) <= best:
            return
        best = max(best, size)
        for pos, node in enumerate(candidates):
            rest = [
                other
                for other in candidates[pos + 1:]
                if closure.are_independent(node, other)
            ]
            extend(rest, size + 1)

    extend(list(range(n)), 0)
    return best


def audit_ready_bound(
    closure: TransitiveClosure, observed_peak: int
) -> VerificationReport:
    """Check an observed ready-list peak against the Section V-A bound.

    ``observed_peak`` is the largest available-list length any ant ever
    held (the colony's ``ready_peak``, exported on ``kernel_launch``
    events); the transitive-closure bound must dominate it.
    """
    report = VerificationReport("ready-list bound")
    bound = closure.ready_list_upper_bound()
    report.stats["bound"] = bound
    report.stats["observed_peak"] = observed_peak
    report.check(
        "ready-bound",
        0 <= observed_peak <= bound,
        "observed ready-list peak %d exceeds the closure bound %d"
        % (observed_peak, bound),
    )
    return report
