"""The multi-pass analysis engine.

Pass 1 (**index**) walks the requested paths, parses every ``*.py`` into a
:class:`~repro.analysis.static.core.FileContext` and records per-line
suppressions. Pass 2 (**file rules**) runs every file-scoped rule over
every parsed file. Pass 3 (**project rules**) runs project-scoped rules
(the import-layering contract) over the whole index, so they can resolve
relative imports and see the module graph at once. Pass 4 (**triage**)
fingerprints each finding, drops suppressed ones, and splits the rest into
*new* versus *baselined* (plus *stale* baseline entries that no longer
match anything — the signal that debt was paid and the baseline can
shrink).

Suppressions
------------

A finding is suppressed when its physical line carries::

    # repro: noqa             (suppresses every rule on the line)
    # repro: noqa[DET-002]    (suppresses the listed rule ids only)

The legacy ``# lint: allow`` marker keeps working, but only for the
migrated legacy rule (``DET-001``) — new rules require the explicit,
rule-addressed form so suppressions stay auditable.

Unparsable files are reported through the reserved engine rule ``SYN-001``
(severity error): an analyzer that silently skips what it cannot parse
would report "clean" exactly when the tree is most broken.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .baseline import Baseline, BaselineEntry, finding_fingerprint
from .core import (
    Finding,
    FileContext,
    ProjectIndex,
    Rule,
    all_rules,
    iter_python_files,
)

#: Reserved rule id for unparsable files (emitted by the engine itself).
SYNTAX_RULE_ID = "SYN-001"

_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[([A-Za-z0-9_\-,\s]+)\])?")
_LEGACY_ALLOW_RE = re.compile(r"#\s*lint:\s*allow\s*$")

#: Rules the legacy ``# lint: allow`` marker still silences.
_LEGACY_ALLOW_RULES = frozenset({"DET-001", SYNTAX_RULE_ID})


@dataclass
class Suppressions:
    """Per-line suppression state of one file."""

    #: line -> None (suppress all rules) or the set of suppressed rule ids.
    noqa: Dict[int, Optional[Set[str]]] = field(default_factory=dict)
    legacy_allow: Set[int] = field(default_factory=set)

    def suppresses(self, finding: Finding) -> bool:
        if finding.line in self.legacy_allow and finding.rule_id in _LEGACY_ALLOW_RULES:
            return True
        if finding.line not in self.noqa:
            return False
        rules = self.noqa[finding.line]
        return rules is None or finding.rule_id in rules


def scan_suppressions(source: str) -> Suppressions:
    sup = Suppressions()
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _NOQA_RE.search(line)
        if match:
            listed = match.group(1)
            if listed is None:
                sup.noqa[lineno] = None
            else:
                ids = {part.strip().upper() for part in listed.split(",") if part.strip()}
                existing = sup.noqa.get(lineno)
                if lineno in sup.noqa and existing is None:
                    pass  # blanket noqa already wins
                else:
                    merged = set(existing or ())
                    merged.update(ids)
                    sup.noqa[lineno] = merged
        if _LEGACY_ALLOW_RE.search(line):
            sup.legacy_allow.add(lineno)
    return sup


@dataclass
class AnalysisReport:
    """Outcome of one analyzer run."""

    #: Findings not covered by the baseline — these fail the scan.
    findings: List[Finding]
    #: Findings matched (and silenced) by baseline entries.
    baselined: List[Finding]
    #: Findings silenced by ``# repro: noqa`` / ``# lint: allow``.
    suppressed: List[Finding]
    #: Baseline entries that matched nothing — ready to be removed.
    stale_baseline: List[BaselineEntry]
    files_scanned: int
    rules_run: List[str]
    baseline_path: Optional[str] = None

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0

    def all_raw_findings(self) -> List[Finding]:
        """New + baselined (what ``--write-baseline`` snapshots)."""
        merged = list(self.findings) + list(self.baselined)
        merged.sort(key=Finding.sort_key)
        return merged


def parse_file(path: str, root: str) -> Tuple[Optional[FileContext], Optional[Finding]]:
    """Parse one file into a context, or a SYN-001 finding on failure."""
    import os

    rel = os.path.relpath(path, root).replace(os.sep, "/")
    try:
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
    except OSError as exc:
        return None, Finding(
            rule_id=SYNTAX_RULE_ID, path=path, rel=rel, line=0, col=0,
            message="unreadable file: %s" % exc, severity="error",
            code="SYN001",
        )
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return None, Finding(
            rule_id=SYNTAX_RULE_ID, path=path, rel=rel,
            line=exc.lineno or 0, col=exc.offset or 0,
            message="syntax error: %s" % exc.msg, severity="error",
            code="SYN001",
        )
    ctx = FileContext(
        path=path, root=root, rel=rel, source=source, tree=tree,
        lines=source.splitlines(),
    )
    return ctx, None


def _select_rules(
    rules: Optional[Sequence[Rule]],
    select: Optional[Sequence[str]],
    ignore: Optional[Sequence[str]],
) -> List[Rule]:
    active = list(rules) if rules is not None else all_rules()
    if select:
        wanted = {rule_id.upper() for rule_id in select}
        active = [r for r in active if r.rule_id in wanted]
    if ignore:
        dropped = {rule_id.upper() for rule_id in ignore}
        active = [r for r in active if r.rule_id not in dropped]
    return active


def analyze_paths(
    paths: Sequence[str],
    rules: Optional[Sequence[Rule]] = None,
    baseline: Optional[Baseline] = None,
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> AnalysisReport:
    """Run the full multi-pass analysis over ``paths``."""
    active = _select_rules(rules, select, ignore)
    file_rules = [r for r in active if r.scope == "file"]
    project_rules = [r for r in active if r.scope == "project"]

    # Pass 1: index.
    contexts: List[FileContext] = []
    raw_findings: List[Finding] = []
    suppressions: Dict[str, Suppressions] = {}
    for path, root in iter_python_files(paths):
        ctx, syn = parse_file(path, root)
        if syn is not None:
            if _syntax_rule_active(select, ignore):
                raw_findings.append(syn)
            continue
        contexts.append(ctx)
        suppressions[ctx.path] = scan_suppressions(ctx.source)

    # Pass 2: file-scoped rules.
    for ctx in contexts:
        for rule in file_rules:
            raw_findings.extend(rule.check_file(ctx))

    # Pass 3: project-scoped rules.
    if project_rules:
        index = ProjectIndex(files=contexts)
        for rule in project_rules:
            raw_findings.extend(rule.check_project(index))

    # Pass 4: triage (fingerprint, suppress, baseline-match).
    raw_findings.sort(key=Finding.sort_key)
    lines_by_path = {ctx.path: ctx.lines for ctx in contexts}
    ordinals: Dict[Tuple[str, str, str, str], int] = {}
    new: List[Finding] = []
    matched: List[Finding] = []
    suppressed: List[Finding] = []
    seen_fingerprints: Set[str] = set()
    for finding in raw_findings:
        lines = lines_by_path.get(finding.path, [])
        line_text = (
            lines[finding.line - 1] if 0 < finding.line <= len(lines) else ""
        )
        key = (finding.rule_id, finding.rel, finding.code, line_text.strip())
        ordinal = ordinals.get(key, 0)
        ordinals[key] = ordinal + 1
        finding.fingerprint = finding_fingerprint(finding, line_text, ordinal)

        sup = suppressions.get(finding.path)
        if sup is not None and sup.suppresses(finding):
            suppressed.append(finding)
            continue
        seen_fingerprints.add(finding.fingerprint)
        if baseline is not None and finding.fingerprint in baseline:
            matched.append(finding)
        else:
            new.append(finding)

    stale: List[BaselineEntry] = []
    if baseline is not None:
        stale = [
            entry
            for entry in baseline.entries
            if entry.fingerprint not in seen_fingerprints
        ]

    return AnalysisReport(
        findings=new,
        baselined=matched,
        suppressed=suppressed,
        stale_baseline=stale,
        files_scanned=len(contexts),
        rules_run=[r.rule_id for r in active],
        baseline_path=baseline.path if baseline is not None else None,
    )


def _syntax_rule_active(
    select: Optional[Sequence[str]], ignore: Optional[Sequence[str]]
) -> bool:
    if select and SYNTAX_RULE_ID not in {s.upper() for s in select}:
        return False
    if ignore and SYNTAX_RULE_ID in {s.upper() for s in ignore}:
        return False
    return True
