"""Core model of the static analyzer: findings, rules, and the registry.

The framework is deliberately dependency-free (stdlib ``ast`` only) so the
self-scan can run in any environment that can import Python source — CI,
pre-commit, or a bare container without numpy.

Three concepts:

* a :class:`Finding` is one diagnostic at one source location, tagged with
  the stable :class:`Rule` id that produced it;
* a :class:`Rule` is a plugin checked against either one file at a time
  (``scope = "file"``) or the whole scanned tree at once
  (``scope = "project"`` — e.g. the import-layering contract);
* the registry maps stable rule ids to rule classes. Rule ids are part of
  the repo's public contract: suppressions (``# repro: noqa[DET-002]``)
  and baseline entries refer to them, so an id is never renamed or reused.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Type

#: Finding severities, most severe first. SARIF levels map error->error,
#: warning->warning, advice->note.
SEVERITIES: Tuple[str, ...] = ("error", "warning", "advice")

#: Package sub-paths whose code runs inside kernel/ant construction and is
#: held to the strictest determinism discipline (mirrors the legacy lint).
KERNEL_PATHS: Tuple[str, ...] = (
    "aco", "parallel", "gpusim", "rp", "schedule", "ddg", "heuristics",
)


def dotted_name(node: ast.AST) -> str:
    """The dotted name of an attribute chain (``np.random.seed``), or ''."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


@dataclass
class Finding:
    """One diagnostic: a rule firing at a source location.

    ``code`` carries a sub-code within a composite rule (the migrated
    legacy lint reports its historical RNG001..TIME001 codes through
    DET-001); for single-check rules it equals the rule id. The engine
    fills ``fingerprint`` (see :mod:`repro.analysis.static.baseline`) after
    the rule returns.
    """

    rule_id: str
    path: str
    rel: str
    line: int
    col: int
    message: str
    severity: str = "error"
    code: str = ""
    fingerprint: str = ""

    def __post_init__(self) -> None:
        if not self.code:
            self.code = self.rule_id

    def __str__(self) -> str:
        return "%s:%d:%d: %s %s" % (
            self.path, self.line, self.col, self.rule_id, self.message,
        )

    def sort_key(self) -> Tuple[str, int, int, str, str]:
        return (self.rel, self.line, self.col, self.rule_id, self.message)


@dataclass
class FileContext:
    """One parsed source file, as seen by file-scoped rules."""

    #: Path as the caller spelled it (used in diagnostics).
    path: str
    #: Scan root the file was found under (anchors :attr:`rel`).
    root: str
    #: Root-relative posix path (``aco/ant.py``) — rules scope on this.
    rel: str
    source: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)

    @property
    def parts(self) -> Tuple[str, ...]:
        return tuple(self.rel.split("/"))

    @property
    def package_head(self) -> str:
        """First package segment under the scanned tree (``aco``, ``obs``).

        A scan rooted above the package (``src`` or a site-packages dir)
        yields paths like ``repro/aco/ant.py``; the synthetic heads are
        stripped so rules see the same heads either way.
        """
        parts = self.parts
        while parts and parts[0] in ("src", "repro"):
            parts = parts[1:]
        return parts[0] if len(parts) > 1 else ""

    @property
    def module_rel(self) -> str:
        """Package-relative module path (``aco/ant.py``), heads stripped."""
        parts = self.parts
        while parts and parts[0] in ("src", "repro"):
            parts = parts[1:]
        return "/".join(parts)

    @property
    def in_kernel_path(self) -> bool:
        return any(p in KERNEL_PATHS for p in self.parts)

    def finding(
        self,
        rule: "Rule",
        node: ast.AST,
        message: str,
        code: str = "",
    ) -> Finding:
        return Finding(
            rule_id=rule.rule_id,
            path=self.path,
            rel=self.rel,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            message=message,
            severity=rule.severity,
            code=code or rule.rule_id,
        )


@dataclass
class ProjectIndex:
    """Everything the engine parsed, for project-scoped rules."""

    files: List[FileContext]

    def by_module(self) -> Dict[str, FileContext]:
        return {ctx.module_rel: ctx for ctx in self.files}


class Rule:
    """Base class for rule plugins.

    Subclasses set the class attributes and override :meth:`check_file`
    (``scope = "file"``) or :meth:`check_project` (``scope = "project"``).
    ``rule_id`` is stable forever; ``rationale`` explains *why* the checked
    property matters for the reproduction (it is shown by ``--list-rules``
    and embedded in SARIF output so review tooling can surface it).
    """

    rule_id: str = ""
    name: str = ""
    severity: str = "error"
    summary: str = ""
    rationale: str = ""
    scope: str = "file"

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        return ()

    def check_project(self, index: ProjectIndex) -> Iterable[Finding]:
        return ()


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the registry (ids must be unique)."""
    rule_id = rule_cls.rule_id
    if not rule_id:
        raise ValueError("rule %r has no rule_id" % (rule_cls.__name__,))
    if rule_cls.severity not in SEVERITIES:
        raise ValueError(
            "rule %s severity %r not in %r"
            % (rule_id, rule_cls.severity, SEVERITIES)
        )
    existing = _REGISTRY.get(rule_id)
    if existing is not None and existing is not rule_cls:
        raise ValueError("duplicate rule id %s" % rule_id)
    _REGISTRY[rule_id] = rule_cls
    return rule_cls


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, sorted by id."""
    _load_builtin_rules()
    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


def rule_ids() -> List[str]:
    _load_builtin_rules()
    return sorted(_REGISTRY)


def get_rule(rule_id: str) -> Optional[Type[Rule]]:
    _load_builtin_rules()
    return _REGISTRY.get(rule_id)


def _load_builtin_rules() -> None:
    """Import the builtin rule modules (idempotent; registration happens
    at import time via the :func:`register` decorator)."""
    from . import rules  # noqa: F401  (import for side effect)


def iter_python_files(paths: Iterable[str]) -> Iterator[Tuple[str, str]]:
    """Yield ``(file, root)`` pairs under each requested path.

    Mirrors the legacy lint's walk: a file argument is its own root's
    child; a directory argument anchors the relative paths of everything
    under it. Deterministic order (sorted names) so reports, fingerprints
    and baselines are byte-stable.
    """
    for path in paths:
        if os.path.isfile(path):
            yield path, os.path.dirname(path) or "."
        else:
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames.sort()
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        yield os.path.join(dirpath, name), path


def default_target() -> str:
    """The installed ``repro`` package directory (the self-scan target)."""
    here = os.path.dirname(os.path.abspath(__file__))  # .../repro/analysis/static
    return os.path.dirname(os.path.dirname(here))
