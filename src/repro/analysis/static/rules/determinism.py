"""``DET-002`` / ``DET-003`` / ``DET-004`` — determinism hazards beyond
the legacy lint.

The sequential and parallel schedulers must replay bit-for-bit from a
seed, across backends, shards, and fault retries. Three hazard classes
the legacy lint never covered:

* **unordered iteration** (``DET-002``): iterating a ``set`` in a
  kernel/ant path makes downstream decisions depend on hash order — for
  strings that order changes per process (hash randomization), the exact
  failure mode that makes parallel ACO runs "work on my machine";
* **environment reads** (``DET-003``): ``os.environ`` consulted outside
  ``repro.config`` creates hidden inputs the seed does not capture, so
  two runs with equal seeds can diverge because a shell exported a var;
* **wall-clock dates** (``DET-004``): ``datetime.now()`` and friends
  anywhere in the library leak real time into outputs that must be
  byte-stable (bench fingerprints, baselines, goldens);
* **unordered merges** (``DET-005``): a function named like
  ``merge``/``reduce``/``combine`` iterating an unordered collection —
  the exact hazard class that would silently break the fleet layer's
  bit-identical shard merge, so it is policed everywhere, not just in
  kernel paths.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Iterator

from ..core import Finding, FileContext, Rule, dotted_name, register


def _iteration_sites(tree: ast.AST) -> Iterator[ast.expr]:
    """Every expression something iterates over: for-loops, comprehensions."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node.iter
        elif isinstance(node, ast.comprehension):
            yield node.iter


def _is_set_expression(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        return name.split(".")[-1] in ("set", "frozenset")
    return False


@register
class UnorderedIterationRule(Rule):
    rule_id = "DET-002"
    name = "unordered-set-iteration"
    severity = "error"
    summary = "Iteration over a set in a kernel/ant path"
    rationale = (
        "Set iteration order follows hash order; for str keys it changes "
        "per process under hash randomization. Any scheduling or RNG "
        "decision fed by such a loop breaks seeded replay across "
        "processes, shards and retries. Use sorted(...) or "
        "dict.fromkeys(...) (insertion-ordered dedup) instead."
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if not ctx.in_kernel_path:
            return
        for iter_expr in _iteration_sites(ctx.tree):
            if _is_set_expression(iter_expr):
                yield ctx.finding(
                    self,
                    iter_expr,
                    "iteration over a set in a kernel/ant path; order is "
                    "hash-dependent — use sorted(...) or dict.fromkeys(...)",
                )


@register
class EnvironmentReadRule(Rule):
    rule_id = "DET-003"
    name = "environment-read-outside-config"
    severity = "warning"
    summary = "os.environ read outside repro.config"
    rationale = (
        "Environment variables are inputs the seed does not capture. "
        "Every sanctioned runtime knob flows through repro.config (or a "
        "documented gateway carrying an explicit suppression); scattered "
        "os.environ reads make a run's behaviour depend on shell state "
        "that no fingerprint or checkpoint records."
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.module_rel == "config.py":
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name in ("os.getenv", "os.environ.get", "os.environb.get"):
                    yield ctx.finding(
                        self,
                        node,
                        "%s() outside repro.config; route the knob through "
                        "repro.config or mark a documented gateway" % name,
                    )
            elif isinstance(node, ast.Subscript) and isinstance(
                node.ctx, ast.Load
            ):
                name = dotted_name(node.value)
                if name in ("os.environ", "os.environb"):
                    yield ctx.finding(
                        self,
                        node,
                        "%s[...] read outside repro.config; route the knob "
                        "through repro.config or mark a documented gateway"
                        % name,
                    )


_WALL_CLOCK_TAILS = frozenset({"now", "utcnow", "today"})
_WALL_CLOCK_HEADS = frozenset({"datetime", "date"})


@register
class WallClockDateRule(Rule):
    rule_id = "DET-004"
    name = "wall-clock-datetime"
    severity = "error"
    summary = "datetime.now()/utcnow()/date.today() anywhere in the library"
    rationale = (
        "All simulated time comes from the deterministic cost models and "
        "all artifacts (bench JSON, baselines, goldens, traces) must be "
        "byte-stable across runs; a wall-clock date embedded anywhere "
        "breaks byte-for-byte reproducibility. The legacy TIME001 only "
        "guarded time.time() in kernel paths — this covers datetime "
        "everywhere."
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if not name:
                continue
            parts = name.split(".")
            if parts[-1] in _WALL_CLOCK_TAILS and any(
                p in _WALL_CLOCK_HEADS for p in parts[:-1]
            ):
                yield ctx.finding(
                    self,
                    node,
                    "wall-clock %s(); deterministic artifacts must not "
                    "embed real dates" % name,
                )


#: Function names that mark a reduce path (substring match, any casing).
_MERGE_NAME = re.compile(r"merge|reduce|combine", re.IGNORECASE)

#: Method tails whose call result is an unordered set, regardless of how
#: the receiver was built (``a.union(b)`` has set iteration order).
_SET_OP_TAILS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference"}
)


def _is_unordered_expression(node: ast.expr) -> bool:
    """Set-typed by construction: literals, comprehensions, set()/frozenset()
    calls, and set-operation method calls."""
    if _is_set_expression(node):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        return node.func.attr in _SET_OP_TAILS
    return False


@register
class UnorderedMergeRule(Rule):
    rule_id = "DET-005"
    name = "unordered-merge-iteration"
    severity = "error"
    summary = "Unordered-collection iteration inside a merge/reduce/combine"
    rationale = (
        "A merge must be a deterministic reduce: the fleet layer's "
        "bit-identity contract (sharded result == single-device result) "
        "holds only if every merge/reduce/combine walks its inputs in a "
        "stable order. Iterating a set (or a set-operation result) inside "
        "such a function makes the merged output depend on hash order — "
        "per-process for str keys. Key the inputs and walk an explicit "
        "index order (range/sorted) instead."
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        reported = set()  # a merge nested in a merge reports each site once
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not _MERGE_NAME.search(node.name):
                continue
            for iter_expr in _iteration_sites(node):
                if id(iter_expr) in reported:
                    continue
                if _is_unordered_expression(iter_expr):
                    reported.add(id(iter_expr))
                    yield ctx.finding(
                        self,
                        iter_expr,
                        "iteration over an unordered collection inside %r; "
                        "a merge/reduce must walk a stable order — use "
                        "sorted(...) or explicit indices" % node.name,
                    )
