"""``DIV-201`` / ``DIV-202`` — lockstep-divergence hazards in the
vectorized engine.

The vectorized colony is the static twin of the differential harness: it
must execute every construction step as whole-population array operations
(one virtual instruction per wavefront), exactly like the paper's HIP
kernel. Two Python-level patterns silently break that model without
breaking correctness-at-a-glance:

* a **per-lane Python loop** (``for a in range(self.num_ants)``) executes
  lanes sequentially host-side — the cost model keeps charging lockstep
  prices for what is now divergent serial work, so the construct-speedup
  benchmark and Table 4 ablations report fiction;
* **lane-array aliasing** (``self.dead = self.active``) makes two pieces
  of per-ant state share one buffer; a later in-place update mutates both,
  which is precisely the cross-ant aliasing class the runtime sanitizer
  hunts dynamically (PR 2) — this is its compile-time arm.

Scope: the lockstep hot-path modules listed in ``_HOT_MODULES``. The loop
backend (``parallel/loop.py``) is exempt by design — its whole point is
per-lane scalar execution charged at divergent prices.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..core import Finding, FileContext, Rule, register

#: Lockstep hot-path modules (package-relative). loop.py is deliberately
#: absent: the scalar reference engine is *supposed* to run per-lane.
_HOT_MODULES = frozenset({"parallel/vectorized.py"})

#: Names that identify the population/lane axis in iteration expressions.
_LANE_AXIS_NAMES = frozenset({"num_ants", "_ants", "num_lanes", "lane_ids"})


def _mentions_lane_axis(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id in _LANE_AXIS_NAMES:
            return True
        if isinstance(sub, ast.Attribute) and sub.attr in _LANE_AXIS_NAMES:
            return True
    return False


@register
class PerLaneLoopRule(Rule):
    rule_id = "DIV-201"
    name = "per-lane-python-loop"
    severity = "error"
    summary = "Python loop over the ant/lane axis in a lockstep hot path"
    rationale = (
        "The vectorized engine's cost model charges each step as one "
        "lockstep array operation per wavefront. A host-side Python loop "
        "over ants executes lanes serially while still being billed "
        "lockstep prices, so BENCH_backend speedups and the Table 4 "
        "divergence ablations stop measuring anything real. Express the "
        "step as a whole-population numpy operation, or put it in the "
        "loop backend where serialized-lane charging applies."
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.module_rel not in _HOT_MODULES:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if _mentions_lane_axis(node.iter):
                    yield ctx.finding(
                        self,
                        node,
                        "Python loop over the lane axis in a lockstep hot "
                        "path; use a whole-population array operation",
                    )
            elif isinstance(node, ast.comprehension):
                if _mentions_lane_axis(node.iter):
                    yield ctx.finding(
                        self,
                        node.iter,
                        "comprehension over the lane axis in a lockstep hot "
                        "path; use a whole-population array operation",
                    )


@register
class LaneArrayAliasingRule(Rule):
    rule_id = "DIV-202"
    name = "lane-array-aliasing"
    severity = "error"
    summary = "self.X = self.Y aliasing between per-ant state arrays"
    rationale = (
        "Binding one per-ant SoA attribute to another shares a single "
        "numpy buffer between two logical states; the next in-place "
        "update (self.X[...] = ...) silently mutates both — cross-ant "
        "state bleed that only surfaces as schedules differing between "
        "backends many steps later. Copy explicitly (self.Y.copy()) or "
        "write through a slice (self.X[:] = self.Y)."
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.module_rel not in _HOT_MODULES:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Assign):
                continue
            value = node.value
            if not (
                isinstance(value, ast.Attribute)
                and isinstance(value.value, ast.Name)
                and value.value.id == "self"
            ):
                continue
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    yield ctx.finding(
                        self,
                        node,
                        "self.%s = self.%s aliases two state attributes to "
                        "one buffer; use .copy() or a slice assignment"
                        % (target.attr, value.attr),
                    )
