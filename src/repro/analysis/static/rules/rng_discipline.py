"""``RNG-101`` / ``RNG-102`` — the spawn-indexed stream discipline.

PR 4's backend-equivalence proof rests on one invariant: every random
decision in the colonies comes from :class:`repro.parallel.rng.AntRngStreams`,
where ant ``i`` owns spawn child ``i`` of the launch seed. A generator
constructed anywhere else in ``repro.aco`` / ``repro.parallel`` creates a
parallel universe of randomness the differential harness cannot see, and
an ad-hoc ``.spawn()`` re-derives the stream topology in a second place
where it can silently drift from the one the checkpoints serialize.

Designated owners (exempt): ``parallel/rng.py`` (the stream family) and
``aco/seeding.py`` (the sequential engine's single sanctioned
``random.Random`` construction point).
"""

from __future__ import annotations

import ast
from typing import Iterable, Set

from ..core import Finding, FileContext, Rule, dotted_name, register

#: Packages under the stream discipline.
_SCOPED_HEADS = frozenset({"aco", "parallel"})

#: Module paths allowed to construct generators / spawn streams.
_OWNER_MODULES = frozenset({"parallel/rng.py", "aco/seeding.py"})

#: Dotted constructor names that mint a fresh generator.
_CONSTRUCTOR_TAILS = frozenset({"Random", "default_rng", "Generator", "SeedSequence"})


def _generator_aliases(tree: ast.AST) -> Set[str]:
    """Local names bound to generator constructors via from-imports."""
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if module in ("random", "numpy.random"):
                for alias in node.names:
                    if alias.name in _CONSTRUCTOR_TAILS:
                        aliases.add(alias.asname or alias.name)
    return aliases


@register
class NakedGeneratorConstructionRule(Rule):
    rule_id = "RNG-101"
    name = "naked-generator-construction"
    severity = "error"
    summary = (
        "RNG generator constructed in repro.aco/repro.parallel outside "
        "the designated stream modules"
    )
    rationale = (
        "Backend bit-equivalence holds because ant i's draw sequence "
        "depends only on (seed, i) via AntRngStreams' spawn indexing. A "
        "random.Random/default_rng/SeedSequence constructed elsewhere in "
        "the scheduler packages draws from a stream no harness tracks and "
        "no checkpoint restores. Route construction through "
        "parallel/rng.py or aco/seeding.py."
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.package_head not in _SCOPED_HEADS:
            return
        if ctx.module_rel in _OWNER_MODULES:
            return
        aliases = _generator_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if not name:
                continue
            parts = name.split(".")
            tail = parts[-1]
            if tail not in _CONSTRUCTOR_TAILS:
                continue
            # Dotted spellings: random.Random, np.random.default_rng,
            # numpy.random.SeedSequence; bare spellings cover from-imports.
            dotted_hit = len(parts) >= 2 and parts[-2] == "random"
            bare_hit = len(parts) == 1 and name in aliases
            if dotted_hit or bare_hit:
                yield ctx.finding(
                    self,
                    node,
                    "%s(...) constructed outside the designated stream "
                    "modules; draw through AntRngStreams (parallel/rng.py) "
                    "or aco.seeding.launch_rng" % name,
                )


@register
class StreamSpawnOutsideOwnerRule(Rule):
    rule_id = "RNG-102"
    name = "stream-spawn-outside-owner"
    severity = "error"
    summary = ".spawn() called outside parallel/rng.py"
    rationale = (
        "Spawn indexing IS the equivalence contract: ant i owns child i, "
        "wavefront leaders are the lane-0 streams, and checkpoints "
        "serialize exactly that topology. A second spawn site re-derives "
        "the tree independently and drifts from what resume/restore "
        "expects, breaking draw-for-draw checkpoint recovery."
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.package_head not in _SCOPED_HEADS:
            return
        if ctx.module_rel in _OWNER_MODULES:
            return
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "spawn"
            ):
                yield ctx.finding(
                    self,
                    node,
                    ".spawn() outside parallel/rng.py; stream topology is "
                    "owned by AntRngStreams",
                )
