"""Builtin rule plugins.

Importing this package registers every builtin rule with the framework
registry (:func:`repro.analysis.static.core.register` runs at class
definition time). Third-party or repo-local rules can call ``register``
themselves; the engine picks up whatever the registry holds.

Rule id scheme — a stable family prefix plus a number that is never
reused:

========  ============================================================
``DET-``  determinism hazards (wall clock, global RNG state, unordered
          iteration, environment reads)
``RNG-``  RNG stream discipline (all draws via AntRngStreams)
``DIV-``  lockstep-divergence hazards in the vectorized hot path
``ACC-``  simulated-time accounting discipline
``LAY-``  import-layering contract between packages
``OBS-``  observability discipline (all events via Telemetry.emit)
``SYN-``  reserved for the engine (unparsable files)
========  ============================================================
"""

from . import (
    accounting,
    determinism,
    divergence,
    layering,
    legacy,
    observability,
    rng_discipline,
)

__all__ = [
    "accounting",
    "determinism",
    "divergence",
    "layering",
    "legacy",
    "observability",
    "rng_discipline",
]
