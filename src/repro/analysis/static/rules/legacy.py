"""``DET-001`` — the migrated AST determinism lint (PR 2).

This is the original ``repro.analysis.lint`` checker, registered as the
framework's first rule. Its historical sub-codes are preserved verbatim in
each finding's ``code`` field (and message prefix) so existing tooling and
muscle memory keep working:

``RNG001``  module-level ``random.*`` call in a kernel/ant path;
``RNG002``  legacy global ``numpy.random.*`` call anywhere;
``RNG003``  ``numpy.random.default_rng()`` without a seed in a kernel path;
``RNG004``  global reseeding (``random.seed`` / ``numpy.random.seed``);
``TEL001``  a telemetry module imports an RNG module;
``TEL002``  a telemetry module imports scheduler/cost state;
``TIME001`` wall-clock reads in a kernel/ant path.

``repro.analysis.lint`` remains importable and runnable as a deprecation
shim delegating here.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Tuple

from ..core import Finding, FileContext, Rule, dotted_name, register

#: Module-level ``random`` functions that hit the global (unseeded) RNG.
STDLIB_RNG_FUNCS = frozenset(
    {
        "random", "randint", "randrange", "choice", "choices", "shuffle",
        "sample", "uniform", "triangular", "gauss", "normalvariate",
        "expovariate", "betavariate", "getrandbits", "vonmisesvariate",
        "paretovariate", "weibullvariate", "lognormvariate",
    }
)

#: Legacy global-state ``numpy.random`` functions.
NUMPY_RNG_FUNCS = frozenset(
    {
        "rand", "randn", "randint", "random", "random_sample", "ranf",
        "sample", "choice", "shuffle", "permutation", "uniform", "normal",
        "standard_normal", "exponential", "poisson", "beta", "binomial",
    }
)

#: Package heads telemetry must never import (scheduler/cost state).
TELEMETRY_FORBIDDEN_STATE = frozenset({"aco", "parallel", "rp", "gpusim"})
WALL_CLOCK_FUNCS = frozenset({"time", "monotonic", "perf_counter", "time_ns"})


class _LegacyChecker(ast.NodeVisitor):
    """The PR-2 determinism checker, emitting (node, subcode, message)."""

    def __init__(self, ctx: FileContext):
        self.ctx = ctx
        self.numpy_aliases = {"numpy"}
        parts = ctx.parts
        self.in_kernel_path = ctx.in_kernel_path
        self.in_telemetry = "telemetry" in parts
        self.hits: List[Tuple[ast.AST, str, str]] = []

    def _flag(self, node: ast.AST, code: str, message: str) -> None:
        self.hits.append((node, code, message))

    # -- imports -------------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "numpy":
                self.numpy_aliases.add(alias.asname or "numpy")
            if self.in_telemetry and alias.name.split(".")[0] == "random":
                self._flag(node, "TEL001", "telemetry imports the random module")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        if self.in_telemetry:
            if module.split(".")[0] == "random" or module.startswith(
                "numpy.random"
            ):
                self._flag(node, "TEL001", "telemetry imports an RNG module")
            # Both absolute (repro.parallel.colony) and relative
            # (..parallel.colony, any level) spellings resolve to a head
            # package; flag the scheduler-state ones.
            base = module[len("repro."):] if module.startswith("repro.") else module
            if base.split(".")[0] in TELEMETRY_FORBIDDEN_STATE:
                self._flag(
                    node,
                    "TEL002",
                    "telemetry imports scheduler state (%s); telemetry "
                    "must observe, never steer" % (("." * node.level) + module),
                )
        self.generic_visit(node)

    # -- calls ---------------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        name = dotted_name(node.func)
        if name:
            head, _, tail = name.partition(".")
            # stdlib: random.<func>()
            if head == "random" and tail in STDLIB_RNG_FUNCS:
                if tail == "seed":
                    pass  # handled below as RNG004
                elif self.in_kernel_path:
                    self._flag(
                        node,
                        "RNG001",
                        "module-level random.%s() in a kernel/ant path; "
                        "draw from an injected random.Random" % tail,
                    )
            if name in ("random.seed",):
                self._flag(node, "RNG004", "global random.seed() forbidden")
            # numpy: np.random.<func>()
            parts = name.split(".")
            if len(parts) >= 3 and parts[0] in self.numpy_aliases and parts[1] == "random":
                func = parts[2]
                if func == "seed":
                    self._flag(node, "RNG004", "global numpy.random.seed() forbidden")
                elif func in NUMPY_RNG_FUNCS:
                    self._flag(
                        node,
                        "RNG002",
                        "legacy global numpy.random.%s(); use "
                        "numpy.random.default_rng(seed)" % func,
                    )
                elif (
                    func == "default_rng"
                    and self.in_kernel_path
                    and not node.args
                    and not node.keywords
                ):
                    self._flag(
                        node,
                        "RNG003",
                        "numpy.random.default_rng() without a seed in a "
                        "kernel/ant path",
                    )
            # wall clock
            if (
                self.in_kernel_path
                and head == "time"
                and tail in WALL_CLOCK_FUNCS
            ):
                self._flag(
                    node,
                    "TIME001",
                    "wall-clock time.%s() in a kernel/ant path; use the "
                    "deterministic cost models" % tail,
                )
        self.generic_visit(node)


@register
class LegacyDeterminismRule(Rule):
    rule_id = "DET-001"
    name = "legacy-determinism-lint"
    severity = "error"
    summary = (
        "Composite determinism lint migrated from repro.analysis.lint "
        "(sub-codes RNG001-RNG004, TEL001-TEL002, TIME001)"
    )
    rationale = (
        "Bit-identical seeded schedules are the repo's headline property; "
        "one module-level random call, a global reseed, or a telemetry "
        "module peeking at scheduler state silently breaks it. These are "
        "the original PR-2 lint checks, kept under their historical "
        "sub-codes."
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        checker = _LegacyChecker(ctx)
        checker.visit(ctx.tree)
        for node, code, message in checker.hits:
            yield ctx.finding(self, node, "%s %s" % (code, message), code=code)
