"""``ACC-301`` / ``ACC-302`` — simulated-time accounting discipline.

Every simulated second in the system must flow through an auditable
charging primitive: :class:`repro.gpusim.kernel.KernelAccounting`'s
``charge_*`` methods on the device side, the span profiler's
``charge_leaf`` on the host side, and
:class:`repro.timing.HostSecondsLedger` for host-side accumulation. That
single-funnel property is what makes the deadline watchdog's budget, the
profiler's >=95% leaf-attribution check, and the 1-ULP spent/seconds
agreement (PR 5) provable at all — a stray ``foo.compute_cycles += x`` or
a hand-rolled ``seconds += y`` local is time the watchdog never sees and
the profiler cannot attribute.

Owner modules (exempt): ``gpusim/kernel.py`` and ``gpusim/device.py``
(the accounting itself), ``timing.py`` (cost models and the ledger), and
everything under ``profile/`` (span trees and attribution own their
``*_seconds`` fields).
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Tuple

from ..core import Finding, FileContext, Rule, register

#: Modules that own accounting state and may mutate it directly.
_OWNER_PREFIXES = ("gpusim/", "profile/")
_OWNER_MODULES = frozenset({"timing.py"})

#: Packages whose hand-rolled seconds accumulators ACC-302 polices (the
#: scheduler hot paths whose time feeds budgets, telemetry and benches).
_ACCUMULATOR_HEADS = frozenset({"aco", "parallel", "gpusim"})


def _is_owner(ctx: FileContext) -> bool:
    rel = ctx.module_rel
    return rel in _OWNER_MODULES or rel.startswith(_OWNER_PREFIXES)


def _cycles_or_seconds(name: str) -> bool:
    return name.endswith("_cycles") or name.endswith("_seconds") or name == "wavefront_cycles"


def _assignment_targets(node: ast.AST) -> Iterator[Tuple[ast.AST, ast.expr]]:
    """(statement, target) pairs for plain and augmented assignments."""
    if isinstance(node, ast.Assign):
        for target in node.targets:
            yield node, target
    elif isinstance(node, ast.AugAssign):
        yield node, node.target


@register
class AccountingAttributeWriteRule(Rule):
    rule_id = "ACC-301"
    name = "accounting-attribute-write"
    severity = "error"
    summary = (
        "*_cycles/*_seconds attribute mutated outside the accounting owners"
    )
    rationale = (
        "KernelAccounting's category counters and the profiler's span "
        "seconds are the ground truth every budget, SLO and bench "
        "baseline reads. A write from outside the owning module bypasses "
        "the charge_* funnel: the mutation is never split per category, "
        "never reaches kernel_launch telemetry, and never counts against "
        "a deadline budget. Call charge_compute/charge_memory/"
        "charge_alloc/charge_uniform_cycles (or charge_leaf) instead."
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if _is_owner(ctx):
            return
        for node in ast.walk(ctx.tree):
            for stmt, target in _assignment_targets(node):
                if isinstance(target, ast.Attribute) and _cycles_or_seconds(
                    target.attr
                ):
                    yield ctx.finding(
                        self,
                        stmt,
                        "direct write to .%s outside the accounting owner "
                        "modules; route through a charge_* primitive"
                        % target.attr,
                    )


@register
class HandRolledSecondsAccumulatorRule(Rule):
    rule_id = "ACC-302"
    name = "hand-rolled-seconds-accumulator"
    severity = "warning"
    summary = (
        "Local 'seconds +=' accumulation in a scheduler package instead of "
        "HostSecondsLedger"
    )
    rationale = (
        "A bare local accumulating simulated seconds is invisible "
        "accounting: nothing asserts it is non-negative, nothing ties it "
        "to the budget charge cadence, and each site re-implements the "
        "same summation by hand. repro.timing.HostSecondsLedger is the "
        "one sanctioned accumulator — same float addition order, so "
        "adopting it is bit-identical, but every charge passes one "
        "audited funnel."
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.package_head not in _ACCUMULATOR_HEADS or _is_owner(ctx):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.AugAssign):
                continue
            target = node.target
            if isinstance(target, ast.Name) and (
                target.id == "seconds" or target.id.endswith("_seconds")
            ):
                yield ctx.finding(
                    self,
                    node,
                    "hand-rolled accumulator '%s += ...'; use "
                    "repro.timing.HostSecondsLedger.charge()" % target.id,
                )
