"""``OBS-501`` — telemetry events go through ``Telemetry.emit``.

The telemetry schema's guarantees — monotonic ``seq``, ``v`` version
stamp, ambient trace-context stamping, event validation — all live in one
funnel: :meth:`repro.telemetry.core.Telemetry.emit`. A hand-rolled event
dict written straight to a sink bypasses every one of them: it carries no
sequence number (breaking causal ordering and the differ's bisection), no
trace correlation, and no schema check. The run-bundle differ and the
metrics aggregator both key on those envelope fields, so an unfunneled
event is invisible to them at best and corrupts the trace at worst.

Designated owner (exempt): ``telemetry/core.py``, where ``emit`` builds
the envelope.
"""

from __future__ import annotations

import ast
from typing import Iterable, Set

from ..core import Finding, FileContext, Rule, register

#: The envelope keys only Telemetry.emit may stamp.
_ENVELOPE_KEYS = frozenset({"v", "seq", "event"})

#: Module paths allowed to build the envelope by hand.
_OWNER_MODULES = frozenset({"telemetry/core.py"})


def _literal_keys(node: ast.Dict) -> Set[str]:
    return {
        key.value
        for key in node.keys
        if isinstance(key, ast.Constant) and isinstance(key.value, str)
    }


@register
class HandRolledTelemetryEventRule(Rule):
    rule_id = "OBS-501"
    name = "hand-rolled-telemetry-event"
    severity = "error"
    summary = (
        "telemetry event dict built outside Telemetry.emit (hand-rolled "
        "envelope or raw sink write)"
    )
    rationale = (
        "Telemetry.emit is the only constructor that stamps the schema "
        "version, the monotonic seq, and the ambient trace context, then "
        "validates the record. An event dict assembled by hand and handed "
        "to a sink skips all of that: it breaks the differ's "
        "prefix-bisection over seq, escapes the metrics aggregator's "
        "handlers, and fragments trace correlation. Emit through "
        "Telemetry.emit (or extend it) instead."
    )

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.module_rel in _OWNER_MODULES:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Dict):
                if _ENVELOPE_KEYS <= _literal_keys(node):
                    yield ctx.finding(
                        self,
                        node,
                        "dict literal spells the telemetry envelope "
                        "('v'/'seq'/'event'); only Telemetry.emit may "
                        "build event records",
                    )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "write"
                and node.args
                and isinstance(node.args[0], ast.Dict)
                and "event" in _literal_keys(node.args[0])
            ):
                yield ctx.finding(
                    self,
                    node,
                    ".write() of a hand-rolled event dict; route it "
                    "through Telemetry.emit so it gets a seq, a version "
                    "stamp, and trace context",
                )
