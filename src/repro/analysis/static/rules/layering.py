"""``LAY-401`` — the import-layering contract.

The package graph has load-bearing direction: ``gpusim`` is the device
substrate every scheduler stacks on, so it must never reach up into
``aco``/``parallel``; the observation packages (``telemetry``, ``obs``,
``profile``) must observe without steering, so they may not import
scheduler or pipeline state; ``analysis`` recertifies schedules
independently, so it must not import the engines it checks. ROADMAP item
5's ``ExecutionSubstrate`` refactor only stays tractable if these edges
stay one-directional — this rule is its enforcement arm, the static twin
of the legacy TEL002 check generalized to every package.

The contract below lists, per package head, the heads it must never
import (absolute ``repro.x`` or relative ``..x`` spellings both resolve).
A package absent from the table is unconstrained (the top-layer harness
packages: ``pipeline`` consumers, ``experiments``, ``cli``, ``bench``,
``perf``). Runs as a project-scoped pass so it sees the whole module
index at once.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..core import Finding, FileContext, ProjectIndex, Rule, dotted_name, register

_TOP = frozenset({"pipeline", "experiments", "bench", "cli", "exact", "viz"})
_SCHEDULERS = frozenset({"aco", "parallel"})
_OBSERVERS = frozenset({"obs", "telemetry", "profile"})

#: head -> heads it must never import. Kept in sync with DESIGN.md §13.
CONTRACT: Dict[str, FrozenSet[str]] = {
    # Foundation: IR imports nothing but errors.
    "ir": frozenset(
        {"aco", "parallel", "pipeline", "gpusim", "resilience", "heuristics",
         "schedule", "rp", "ddg", "machine", "suite", "analysis"}
    ) | _TOP | _OBSERVERS,
    "ddg": frozenset(
        {"aco", "parallel", "pipeline", "gpusim", "resilience", "heuristics",
         "schedule", "rp", "suite", "analysis"}
    ) | _TOP | _OBSERVERS,
    "machine": frozenset(
        {"aco", "parallel", "pipeline", "gpusim", "resilience", "heuristics",
         "schedule", "rp", "ddg", "suite", "analysis"}
    ) | _TOP | _OBSERVERS,
    "schedule": frozenset(
        {"aco", "parallel", "pipeline", "gpusim", "resilience", "heuristics",
         "rp", "suite"}
    ) | _TOP | _OBSERVERS,
    "rp": frozenset(
        {"aco", "parallel", "pipeline", "gpusim", "resilience", "heuristics",
         "suite"}
    ) | _TOP | _OBSERVERS,
    "heuristics": frozenset(
        {"aco", "parallel", "pipeline", "gpusim", "resilience", "suite"}
    ) | _TOP | _OBSERVERS,
    "suite": frozenset(
        {"aco", "parallel", "pipeline", "gpusim", "resilience", "heuristics",
         "schedule", "rp", "ddg"}
    ) | _TOP | _OBSERVERS,
    # The device substrate: schedulers stack on it, never the reverse.
    "gpusim": frozenset(
        {"aco", "parallel", "pipeline", "resilience", "heuristics",
         "schedule", "rp", "ddg", "suite", "analysis"}
    ) | _TOP,
    # Observation-only packages: observe, never steer.
    "telemetry": frozenset(
        {"gpusim", "pipeline", "resilience", "heuristics", "schedule",
         "rp", "ddg", "suite"}
    ) | _SCHEDULERS | _TOP,
    "obs": frozenset(
        {"gpusim", "pipeline", "resilience", "heuristics", "schedule",
         "rp", "ddg", "suite"}
    ) | _SCHEDULERS | _TOP,
    "profile": frozenset(
        {"gpusim", "pipeline", "resilience", "heuristics", "schedule",
         "rp", "ddg", "suite"}
    ) | _SCHEDULERS | _TOP,
    # Independent verification must not import the engines it certifies.
    "analysis": frozenset({"gpusim", "resilience", "suite"}) | _SCHEDULERS | _TOP,
    # Schedulers: sequential engine knows nothing of the parallel one.
    "aco": frozenset({"parallel", "gpusim", "suite"}) | _TOP,
    "parallel": frozenset({"suite"}) | _TOP,
    "resilience": _TOP,
    "exact": frozenset(
        {"aco", "parallel", "pipeline", "gpusim", "resilience", "suite"}
    ) | _OBSERVERS,
    "viz": frozenset(
        {"aco", "parallel", "pipeline", "gpusim", "resilience",
         "experiments", "bench", "cli"}
    ),
}


def _module_parts(ctx: FileContext) -> List[str]:
    """Synthetic absolute module parts, rooted at ``repro``."""
    rel = ctx.module_rel
    parts = rel[:-3].split("/") if rel.endswith(".py") else rel.split("/")
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ["repro"] + [p for p in parts if p]


def _resolve_import(
    ctx: FileContext, node: ast.stmt
) -> Iterable[Tuple[str, str]]:
    """Yield ``(imported_head, spelled)`` for repro-internal imports."""
    module_parts = _module_parts(ctx)
    is_package = ctx.rel.endswith("__init__.py")
    package_parts = module_parts if is_package else module_parts[:-1]

    if isinstance(node, ast.Import):
        for alias in node.names:
            parts = alias.name.split(".")
            if parts[0] == "repro" and len(parts) > 1:
                yield parts[1], alias.name
    elif isinstance(node, ast.ImportFrom):
        if node.level == 0:
            parts = (node.module or "").split(".")
            if parts and parts[0] == "repro" and len(parts) > 1:
                yield parts[1], node.module or ""
            return
        anchor = package_parts[: len(package_parts) - (node.level - 1)]
        if not anchor:
            return
        spelled_prefix = "." * node.level + (node.module or "")
        if node.module:
            target = anchor + node.module.split(".")
            if len(target) > 1 and target[0] == "repro":
                yield target[1], spelled_prefix
        else:
            # ``from . import x, y`` — each alias is its own module.
            for alias in node.names:
                target = anchor + [alias.name]
                if len(target) > 1 and target[0] == "repro":
                    yield target[1], spelled_prefix + " import " + alias.name


def _head_of(ctx: FileContext) -> Optional[str]:
    head = ctx.package_head
    return head or None


def _typing_only_imports(tree: ast.Module) -> Set[ast.stmt]:
    """Import nodes living under ``if TYPE_CHECKING:`` — exempt.

    A typing-only import creates no runtime coupling: the module is never
    loaded, so no back-edge exists in the import graph the contract
    protects. (The annotation itself is a string under
    ``from __future__ import annotations``.)
    """
    exempt: Set[ast.stmt] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.If):
            continue
        test = node.test
        name = test.id if isinstance(test, ast.Name) else dotted_name(test)
        if name in ("TYPE_CHECKING", "typing.TYPE_CHECKING"):
            for stmt in node.body:
                for sub in ast.walk(stmt):
                    if isinstance(sub, (ast.Import, ast.ImportFrom)):
                        exempt.add(sub)
    return exempt


@register
class ImportLayeringRule(Rule):
    rule_id = "LAY-401"
    name = "import-layering-contract"
    severity = "error"
    scope = "project"
    summary = "Package imports a head its layer contract forbids"
    rationale = (
        "gpusim is the substrate under every scheduler, the observation "
        "packages (telemetry/obs/profile) must observe without steering, "
        "and repro.analysis recertifies results independently of the "
        "engines it checks. Each of those properties is an import "
        "direction; once one back-edge lands, the ExecutionSubstrate "
        "seam (ROADMAP item 5) and the observation-neutrality guarantees "
        "rot silently. The contract table lists the forbidden edges."
    )

    def check_project(self, index: ProjectIndex) -> Iterable[Finding]:
        for ctx in index.files:
            head = _head_of(ctx)
            if head is None:
                continue
            forbidden = CONTRACT.get(head)
            if not forbidden:
                continue
            typing_only = _typing_only_imports(ctx.tree)
            for node in ast.walk(ctx.tree):
                if not isinstance(node, (ast.Import, ast.ImportFrom)):
                    continue
                if node in typing_only:
                    continue
                for imported_head, spelled in _resolve_import(ctx, node):
                    if imported_head == head:
                        continue
                    if imported_head in forbidden:
                        yield ctx.finding(
                            self,
                            node,
                            "%s imports %s (%r); the layering contract "
                            "forbids this edge — see DESIGN.md §13"
                            % (head, imported_head, spelled),
                        )
