"""Committed baseline of grandfathered findings.

A baseline lets the analyzer gate CI at *zero new findings* from day one
without first fixing every historical violation: known findings are
recorded with a content fingerprint and silently matched on later runs,
while anything not in the file fails the scan. The committed file is a
ratchet — CI separately checks it only ever shrinks (see the
``static-analysis`` job), so debt is paid down, never added to.

Fingerprints are line-content based, not line-number based: a finding is
``sha256(rule id | relative path | sub-code | stripped source line |
occurrence ordinal)``. Inserting or deleting unrelated lines above a
violation does not invalidate its baseline entry; editing the violating
line itself does (the finding then resurfaces as new, which is the
intended nudge to fix rather than re-baseline it).
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ...errors import AnalysisError
from .core import Finding

#: Discovered upward from the scan target (repo root holds the real one).
BASELINE_FILENAME = ".repro-static-baseline.json"

_FORMAT_VERSION = 1


def finding_fingerprint(finding: Finding, line_text: str, ordinal: int) -> str:
    """Stable content hash for one finding (see module docstring)."""
    payload = "|".join(
        [
            finding.rule_id,
            finding.rel,
            finding.code,
            line_text.strip(),
            str(ordinal),
        ]
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class BaselineEntry:
    fingerprint: str
    rule: str
    path: str
    line: int
    message: str
    justification: str = ""

    def to_json(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "fingerprint": self.fingerprint,
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }
        if self.justification:
            record["justification"] = self.justification
        return record


class Baseline:
    """An in-memory baseline: a set of fingerprints plus their metadata."""

    def __init__(self, entries: Sequence[BaselineEntry] = (), path: Optional[str] = None):
        self.path = path
        self.entries: List[BaselineEntry] = list(entries)
        self._by_fingerprint = {e.fingerprint: e for e in self.entries}

    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._by_fingerprint

    def get(self, fingerprint: str) -> Optional[BaselineEntry]:
        return self._by_fingerprint.get(fingerprint)

    def fingerprints(self) -> List[str]:
        return sorted(self._by_fingerprint)

    # -- persistence ---------------------------------------------------------

    @classmethod
    def load(cls, path: str) -> "Baseline":
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError) as exc:
            raise AnalysisError("cannot read baseline %s: %s" % (path, exc)) from None
        if payload.get("version") != _FORMAT_VERSION:
            raise AnalysisError(
                "baseline %s has version %r, expected %d"
                % (path, payload.get("version"), _FORMAT_VERSION)
            )
        entries = [
            BaselineEntry(
                fingerprint=str(rec["fingerprint"]),
                rule=str(rec["rule"]),
                path=str(rec["path"]),
                line=int(rec.get("line", 0)),
                message=str(rec.get("message", "")),
                justification=str(rec.get("justification", "")),
            )
            for rec in payload.get("findings", [])
        ]
        return cls(entries, path=path)

    @classmethod
    def from_findings(cls, findings: Sequence[Finding], path: Optional[str] = None) -> "Baseline":
        entries = [
            BaselineEntry(
                fingerprint=f.fingerprint,
                rule=f.rule_id,
                path=f.rel,
                line=f.line,
                message=f.message,
            )
            for f in sorted(findings, key=Finding.sort_key)
        ]
        return cls(entries, path=path)

    def save(self, path: Optional[str] = None) -> str:
        """Write the baseline (sorted, trailing newline — byte-stable)."""
        target = path or self.path
        if not target:
            raise AnalysisError("no baseline path to write to")
        payload = {
            "version": _FORMAT_VERSION,
            "tool": "repro.analysis.static",
            "findings": [
                e.to_json()
                for e in sorted(
                    self.entries, key=lambda e: (e.path, e.rule, e.line, e.fingerprint)
                )
            ],
        }
        with open(target, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        return target


def discover_baseline(start: str, max_levels: int = 8) -> Optional[str]:
    """Walk upward from ``start`` looking for :data:`BASELINE_FILENAME`.

    ``python -m repro.analysis.static src/repro`` from a repo checkout
    finds the repo root's committed baseline this way without any flag.
    """
    current = os.path.abspath(start)
    if os.path.isfile(current):
        current = os.path.dirname(current)
    for _ in range(max_levels):
        candidate = os.path.join(current, BASELINE_FILENAME)
        if os.path.isfile(candidate):
            return candidate
        parent = os.path.dirname(current)
        if parent == current:
            break
        current = parent
    return None


def assert_shrunk(old: Baseline, new: Baseline) -> List[BaselineEntry]:
    """Entries present in ``new`` but not in ``old`` (the ratchet check).

    An empty return means the baseline only shrank (or stayed equal) —
    the CI job fails when this is non-empty.
    """
    old_fps = set(old.fingerprints())
    return [e for e in new.entries if e.fingerprint not in old_fps]
