"""Report renderers: human text, machine JSON, and SARIF 2.1.0.

All three render the same :class:`~repro.analysis.static.engine.AnalysisReport`.
The JSON and SARIF forms are deterministic (sorted findings, sorted keys)
so CI artifacts diff cleanly between runs on the same tree.
"""

from __future__ import annotations

import json
from typing import Dict, List

from .core import Finding, all_rules
from .engine import AnalysisReport

#: SARIF has no "advice"; map to its nearest level.
_SARIF_LEVELS = {"error": "error", "warning": "warning", "advice": "note"}

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_text(report: AnalysisReport, verbose: bool = False) -> str:
    """The default terminal report: findings then a one-line summary."""
    out: List[str] = []
    for finding in report.findings:
        out.append(str(finding))
    if verbose and report.baselined:
        out.append("")
        out.append("baselined (matched %s):" % (report.baseline_path or "baseline"))
        for finding in report.baselined:
            out.append("  " + str(finding))
    if report.stale_baseline:
        out.append("")
        out.append(
            "stale baseline entries (fixed findings — remove them with "
            "--write-baseline):"
        )
        for entry in report.stale_baseline:
            out.append(
                "  %s %s %s:%d" % (entry.fingerprint, entry.rule, entry.path, entry.line)
            )
    out.append("")
    if report.findings:
        out.append(
            "%d finding(s) in %d file(s) [%d baselined, %d suppressed]"
            % (
                len(report.findings),
                report.files_scanned,
                len(report.baselined),
                len(report.suppressed),
            )
        )
    else:
        out.append(
            "static analysis: clean (%d file(s), %d rule(s), %d baselined, "
            "%d suppressed)"
            % (
                report.files_scanned,
                len(report.rules_run),
                len(report.baselined),
                len(report.suppressed),
            )
        )
    return "\n".join(out).lstrip("\n")


def _finding_json(finding: Finding) -> Dict[str, object]:
    return {
        "rule": finding.rule_id,
        "code": finding.code,
        "severity": finding.severity,
        "path": finding.rel,
        "line": finding.line,
        "col": finding.col,
        "message": finding.message,
        "fingerprint": finding.fingerprint,
    }


def render_json(report: AnalysisReport) -> str:
    payload = {
        "tool": "repro.analysis.static",
        "files_scanned": report.files_scanned,
        "rules_run": list(report.rules_run),
        "baseline": report.baseline_path,
        "findings": [_finding_json(f) for f in report.findings],
        "baselined": [_finding_json(f) for f in report.baselined],
        "suppressed": [_finding_json(f) for f in report.suppressed],
        "stale_baseline": [e.to_json() for e in report.stale_baseline],
        "exit_code": report.exit_code,
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def render_sarif(report: AnalysisReport) -> str:
    """SARIF 2.1.0 with the full rule catalog in the tool descriptor.

    Only *new* (unbaselined, unsuppressed) findings become results —
    matching what fails the scan — and each carries its baseline
    fingerprint so uploads correlate across commits.
    """
    rules_meta = [
        {
            "id": rule.rule_id,
            "name": rule.name,
            "shortDescription": {"text": rule.summary},
            "fullDescription": {"text": rule.rationale},
            "defaultConfiguration": {"level": _SARIF_LEVELS[rule.severity]},
        }
        for rule in all_rules()
    ]
    results = [
        {
            "ruleId": finding.rule_id,
            "level": _SARIF_LEVELS.get(finding.severity, "warning"),
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": finding.rel},
                        "region": {
                            "startLine": max(finding.line, 1),
                            "startColumn": finding.col + 1,
                        },
                    }
                }
            ],
            "partialFingerprints": {"reproStatic/v1": finding.fingerprint},
            "properties": {"code": finding.code},
        }
        for finding in report.findings
    ]
    payload = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.analysis.static",
                        "informationUri": "https://example.invalid/repro",
                        "rules": rules_meta,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


RENDERERS = {
    "text": render_text,
    "json": render_json,
    "sarif": render_sarif,
}
