"""``repro.analysis.static`` — rule-based static analysis of the repro tree.

A multi-pass AST analyzer that *proves* the repo's reproducibility
disciplines instead of documenting them: determinism hazards (DET-*),
RNG stream discipline (RNG-*), lockstep-divergence hazards (DIV-*),
simulated-time accounting (ACC-*), and the import-layering contract
(LAY-*). The migrated legacy determinism lint lives on as composite rule
``DET-001``; ``repro.analysis.lint`` remains as a thin deprecation shim.

Typical use::

    python -m repro.analysis.static src/repro            # self-scan
    python -m repro.analysis.static --list-rules         # rule catalog
    python -m repro.analysis.static --format sarif ...   # CI upload

Findings are silenced either inline (``# repro: noqa[RULE-ID]``) or via
the committed baseline file (``.repro-static-baseline.json``), which CI
only ever lets shrink. See DESIGN.md §13 for the full rule catalog.
"""

from .baseline import (
    BASELINE_FILENAME,
    Baseline,
    BaselineEntry,
    assert_shrunk,
    discover_baseline,
    finding_fingerprint,
)
from .cli import main
from .core import (
    Finding,
    FileContext,
    ProjectIndex,
    Rule,
    all_rules,
    default_target,
    get_rule,
    iter_python_files,
    register,
    rule_ids,
)
from .engine import (
    SYNTAX_RULE_ID,
    AnalysisReport,
    analyze_paths,
    parse_file,
    scan_suppressions,
)
from .reporters import render_json, render_sarif, render_text

__all__ = [
    "AnalysisReport",
    "BASELINE_FILENAME",
    "Baseline",
    "BaselineEntry",
    "FileContext",
    "Finding",
    "ProjectIndex",
    "Rule",
    "SYNTAX_RULE_ID",
    "all_rules",
    "analyze_paths",
    "assert_shrunk",
    "default_target",
    "discover_baseline",
    "finding_fingerprint",
    "get_rule",
    "iter_python_files",
    "main",
    "parse_file",
    "register",
    "render_json",
    "render_sarif",
    "render_text",
    "rule_ids",
    "scan_suppressions",
]
