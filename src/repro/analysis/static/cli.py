"""Command line front end: ``python -m repro.analysis.static``.

Exit codes: 0 — clean (no unbaselined findings); 1 — findings; 2 — usage
or configuration error (bad rule id, unreadable baseline).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from ...errors import AnalysisError
from .baseline import Baseline, assert_shrunk, discover_baseline
from .core import all_rules, default_target, rule_ids
from .engine import SYNTAX_RULE_ID, analyze_paths
from .reporters import render_json, render_sarif, render_text


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.static",
        description=(
            "Rule-based static analyzer proving determinism, RNG, "
            "divergence, accounting and layering discipline at the AST "
            "level."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to scan (default: the repro package)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="primary report format (default: text)",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        help="write the primary report to FILE instead of stdout",
    )
    parser.add_argument(
        "--sarif",
        metavar="FILE",
        help="additionally write a SARIF 2.1.0 report to FILE",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help=(
            "baseline file to match findings against (default: discover "
            ".repro-static-baseline.json upward from the first scan path)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline; report every finding as new",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help=(
            "snapshot all current findings into the baseline file and exit "
            "0; stale entries are dropped"
        ),
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="RULE",
        help="run only these rule ids (repeatable, comma-separated ok)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        metavar="RULE",
        help="skip these rule ids (repeatable, comma-separated ok)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog (id, severity, summary, rationale)",
    )
    parser.add_argument(
        "--assert-shrunk-from",
        metavar="OLD_BASELINE",
        help=(
            "fail (exit 1) if the current baseline contains entries absent "
            "from OLD_BASELINE — the CI ratchet check"
        ),
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="also list baseline-matched findings in text output",
    )
    return parser


def _split_rule_args(values: Optional[List[str]]) -> Optional[List[str]]:
    if not values:
        return None
    out: List[str] = []
    for value in values:
        out.extend(part.strip().upper() for part in value.split(",") if part.strip())
    return out or None


def _list_rules() -> str:
    lines: List[str] = []
    for rule in all_rules():
        lines.append(
            "%s  [%s, %s scope]  %s" % (rule.rule_id, rule.severity, rule.scope, rule.summary)
        )
        lines.append("    %s" % rule.rationale)
    lines.append("%s  [error, engine]  unparsable or unreadable source file" % SYNTAX_RULE_ID)
    lines.append(
        "    An analyzer that silently skips what it cannot parse reports "
        "'clean' exactly when the tree is most broken."
    )
    return "\n".join(lines)


def _validate_rule_ids(requested: Optional[List[str]]) -> Optional[str]:
    if not requested:
        return None
    known = set(rule_ids()) | {SYNTAX_RULE_ID}
    for rule_id in requested:
        if rule_id not in known:
            return rule_id
    return None


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    select = _split_rule_args(args.select)
    ignore = _split_rule_args(args.ignore)
    for requested in (select, ignore):
        unknown = _validate_rule_ids(requested)
        if unknown is not None:
            print("error: unknown rule id %r" % unknown, file=sys.stderr)
            return 2

    paths = args.paths or [default_target()]

    baseline: Optional[Baseline] = None
    baseline_path: Optional[str] = None
    if not args.no_baseline:
        baseline_path = args.baseline or discover_baseline(paths[0])
        if baseline_path is not None and not (
            args.write_baseline and not os.path.isfile(baseline_path)
        ):
            try:
                baseline = Baseline.load(baseline_path)
            except AnalysisError as exc:
                print("error: %s" % exc, file=sys.stderr)
                return 2

    try:
        report = analyze_paths(
            paths,
            baseline=None if args.write_baseline else baseline,
            select=select,
            ignore=ignore,
        )
    except AnalysisError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2

    if args.write_baseline:
        target = args.baseline or baseline_path
        if target is None:
            print(
                "error: no baseline file found to write; pass --baseline FILE",
                file=sys.stderr,
            )
            return 2
        snapshot = Baseline.from_findings(report.all_raw_findings(), path=target)
        snapshot.save()
        print(
            "wrote %d finding(s) to %s" % (len(snapshot), target),
            file=sys.stderr,
        )
        return 0

    if args.assert_shrunk_from:
        try:
            old = Baseline.load(args.assert_shrunk_from)
        except AnalysisError as exc:
            print("error: %s" % exc, file=sys.stderr)
            return 2
        current = (
            baseline
            if baseline is not None
            else Baseline.from_findings(report.all_raw_findings())
        )
        grown = assert_shrunk(old, current)
        if grown:
            for entry in grown:
                print(
                    "baseline grew: %s %s %s:%d"
                    % (entry.fingerprint, entry.rule, entry.path, entry.line),
                    file=sys.stderr,
                )
            return 1

    if args.format == "json":
        rendered = render_json(report)
    elif args.format == "sarif":
        rendered = render_sarif(report)
    else:
        rendered = render_text(report, verbose=args.verbose)

    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered if rendered.endswith("\n") else rendered + "\n")
    else:
        print(rendered, end="" if rendered.endswith("\n") else "\n")

    if args.sarif:
        with open(args.sarif, "w", encoding="utf-8") as handle:
            handle.write(render_sarif(report))

    return report.exit_code


if __name__ == "__main__":
    sys.exit(main())
