"""Independent schedule verification (the ``-verify-machineinstrs`` analogue).

This module rechecks everything a :class:`~repro.schedule.schedule.Schedule`
claims, *without trusting any of the machinery that produced it*:

* **structural completeness** — every instruction issued exactly once, a
  cycle for each instruction, no negative cycles, no forged issue order;
* **dependence/latency legality** — every DDG edge satisfied (program-order
  only when ``respect_latencies=False``, matching pass-1 schedules);
* **issue-width** — no cycle issues more than the machine allows;
* **stall classification** — every empty cycle is classified *necessary*
  (some dependence forces it) or *optional* (an unissued instruction could
  legally have filled it);
* **APRP recertification** — peak register pressure is recomputed with an
  interval-based liveness algorithm deliberately different from the
  incremental :class:`~repro.rp.tracker.PressureTracker`, and must
  bit-match :func:`repro.rp.liveness.peak_pressure`, the scheduler's
  claimed peak, the claimed RP cost, and (for pass-2 schedules) stay within
  the pass-1 APRP target.

The recomputation shares the tracker's liveness convention (Section II-A /
Figure 1): a register is born at its defining instruction (live-ins at
entry), dies at its last use unless live-out, last-uses close before the
same slot's defs open, and a dead definition still occupies its register
for the one slot where it issues.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Mapping, Optional, Sequence

from ..ddg.graph import DDG
from ..ir.block import SchedulingRegion
from ..ir.registers import RegisterClass
from ..machine.model import MachineModel
from ..rp.liveness import peak_pressure
from .report import VerificationReport


# -- independent liveness ----------------------------------------------------


def recompute_peak_pressure(
    region: SchedulingRegion, order: Sequence[int]
) -> Dict[RegisterClass, int]:
    """Per-class PRP of ``order``, recomputed from live intervals.

    Unlike the incremental tracker, this derives each register's live
    sample-range in closed form from its def/use positions and counts
    interval overlap per sample point. Sample point ``-1`` is region entry
    (live-ins only); sample ``k`` is "right after the k-th issued
    instruction", with last-uses closed and the slot's defs open.
    """
    n = len(region)
    position = {inst_index: pos for pos, inst_index in enumerate(order)}

    # Def positions and use-occurrence positions per register, in issue order.
    def_positions: Dict[object, list] = {}
    use_positions: Dict[object, list] = {}
    for inst in region:
        pos = position[inst.index]
        for reg in inst.uses:
            use_positions.setdefault(reg, []).append(pos)
        for reg in inst.defs:
            def_positions.setdefault(reg, []).append(pos)

    classes = region.register_classes()
    counts = [{cls: 0 for cls in classes} for _ in range(n + 1)]

    def mark_live(reg, sample: int) -> None:
        counts[sample + 1][reg.reg_class] += 1

    for reg in region.all_registers:
        defs = sorted(def_positions.get(reg, ()))
        uses = sorted(use_positions.get(reg, ()))
        live_in = reg in region.live_in
        live_out = reg in region.live_out
        def_set = set(defs)
        born = -1 if live_in else (defs[0] if defs else None)
        if born is None:
            continue  # never defined, never live-in: cannot become live
        if born == -1:
            mark_live(reg, -1)
        for sample in range(n):
            if sample < born:
                continue
            remaining = sum(1 for u in uses if u > sample)
            alive = (
                live_out
                or remaining > 0
                or sample in def_set
                or (not uses and not defs)  # untouched live-in: never killed
                or (not uses and live_in and defs and sample < defs[0])
            )
            if alive:
                mark_live(reg, sample)

    peak = {cls: 0 for cls in classes}
    for sample_counts in counts:
        for cls, value in sample_counts.items():
            if value > peak[cls]:
                peak[cls] = value
    return peak


# -- stall classification ----------------------------------------------------


def classify_stalls(schedule, ddg: DDG) -> Dict[str, int]:
    """Split the schedule's empty cycles into necessary vs. optional.

    A stall cycle ``c`` is *necessary* when every instruction issued after
    ``c`` has a predecessor whose latency (or issue position) keeps it out
    of ``c``; otherwise some instruction could legally have filled the
    cycle and the stall is *optional* (inserted by the pass-2 heuristic).
    """
    cycles = schedule.cycles
    used = set(cycles)
    necessary = optional = 0
    length = max(cycles) + 1 if cycles else 0
    for c in range(length):
        if c in used:
            continue
        movable = False
        for j in range(ddg.num_instructions):
            if cycles[j] <= c:
                continue
            if all(cycles[p] + lat <= c for p, lat in ddg.predecessors[j]):
                movable = True
                break
        if movable:
            optional += 1
        else:
            necessary += 1
    return {"necessary_stalls": necessary, "optional_stalls": optional}


# -- order verification ------------------------------------------------------


def verify_order(ddg: DDG, order: Sequence[int]) -> VerificationReport:
    """Check a raw instruction order (a pass-1 product) against its DDG."""
    report = VerificationReport("order for %r" % ddg.region.name)
    n = ddg.num_instructions
    counts = Counter(order)
    missing = [i for i in range(n) if counts.get(i, 0) == 0]
    duplicated = sorted(i for i, c in counts.items() if c > 1)
    alien = sorted(i for i in counts if not (0 <= i < n))
    report.check(
        "missing-instruction",
        not missing,
        "instruction(s) never issued: %s" % missing[:8],
    )
    report.check(
        "duplicate-issue",
        not duplicated,
        "instruction(s) issued more than once: %s" % duplicated[:8],
    )
    report.check(
        "alien-instruction",
        not alien,
        "order references instruction(s) outside the region: %s" % alien[:8],
    )
    if report.ok:
        position = {index: pos for pos, index in enumerate(order)}
        for src in range(n):
            for dst, _lat in ddg.successors[src]:
                report.check(
                    "order-dependence",
                    position[src] < position[dst],
                    "dependence %s -> %s issued out of order"
                    % (ddg.region[src].label, ddg.region[dst].label),
                )
    return report


# -- schedule verification ---------------------------------------------------


def verify_schedule(
    schedule,
    ddg: DDG,
    machine: Optional[MachineModel] = None,
    respect_latencies: bool = True,
    expected_peak: Optional[Mapping[RegisterClass, int]] = None,
    expected_rp_cost: Optional[int] = None,
    target_aprp: Optional[Mapping[RegisterClass, int]] = None,
) -> VerificationReport:
    """Independently recheck every invariant of a complete schedule.

    ``expected_peak`` / ``expected_rp_cost`` are the producing scheduler's
    claims (recertified against the from-scratch recomputation);
    ``target_aprp`` is the pass-1 APRP target a pass-2 schedule must never
    exceed. ``schedule`` is duck-typed (``region`` + ``cycles`` suffice) so
    corrupted or forged objects can be fed to the verifier in tests.
    """
    region = ddg.region
    report = VerificationReport("schedule for %r" % region.name)

    report.check(
        "region-mismatch",
        schedule.region == region,
        "schedule region %r does not match DDG region %r"
        % (getattr(schedule.region, "name", schedule.region), region.name),
    )

    cycles = tuple(schedule.cycles)
    n = ddg.num_instructions
    if not report.check(
        "incomplete",
        len(cycles) == n,
        "schedule assigns %d cycle(s) for %d instruction(s)" % (len(cycles), n),
    ):
        return report
    report.check(
        "negative-cycle",
        all(c >= 0 for c in cycles),
        "schedule contains negative cycle assignments",
    )

    order = getattr(schedule, "order", None)
    if order is None:
        order = tuple(
            index
            for _c, index in sorted((c, i) for i, c in enumerate(cycles))
        )
    report.check(
        "duplicate-issue",
        sorted(order) == list(range(n)),
        "issue order is not a permutation of the region's instructions",
    )
    if not report.ok:
        return report

    claimed_length = getattr(schedule, "length", None)
    true_length = max(cycles) + 1 if cycles else 0
    if claimed_length is not None:
        report.check(
            "length-mismatch",
            claimed_length == true_length,
            "schedule claims length %d; cycles say %d"
            % (claimed_length, true_length),
        )

    # Dependence / latency legality.
    for src in range(n):
        for dst, latency in ddg.successors[src]:
            required = latency if respect_latencies else 1
            report.check(
                "latency" if respect_latencies else "dependence",
                cycles[dst] - cycles[src] >= required,
                "dependence %s -> %s needs %d cycle(s); got %d"
                % (
                    region[src].label,
                    region[dst].label,
                    required,
                    cycles[dst] - cycles[src],
                ),
            )

    # Issue width.
    issue_width = machine.issue_width if machine is not None else 1
    per_cycle = Counter(cycles)
    for cycle, count in sorted(per_cycle.items()):
        if count > issue_width:
            report.add_violation(
                "issue-width",
                "cycle %d issues %d instruction(s); issue width is %d"
                % (cycle, count, issue_width),
            )

    # Stall classification (informational; stats only).
    report.stats.update(classify_stalls(schedule, ddg))

    # APRP recertification from scratch.
    recertified = recompute_peak_pressure(region, order)
    report.stats["recertified_peak"] = dict(recertified)
    tracker_peak = peak_pressure(schedule) if hasattr(schedule, "order") else None
    if tracker_peak is not None:
        report.check(
            "liveness-mismatch",
            recertified == tracker_peak,
            "interval liveness says %r; rp tracker says %r"
            % (recertified, tracker_peak),
        )
    if expected_peak is not None:
        report.check(
            "claimed-peak",
            dict(expected_peak) == recertified,
            "scheduler claimed peak %r; recertified peak is %r"
            % (dict(expected_peak), recertified),
        )
    if machine is not None:
        from ..rp.cost import rp_cost

        recertified_cost = rp_cost(recertified, machine)
        report.stats["recertified_rp_cost"] = recertified_cost
        report.stats["recertified_aprp"] = machine.aprp(recertified)
        if expected_rp_cost is not None:
            report.check(
                "claimed-cost",
                expected_rp_cost == recertified_cost,
                "scheduler claimed RP cost %d; recertified cost is %d"
                % (expected_rp_cost, recertified_cost),
            )
        if target_aprp is not None:
            aprp = machine.aprp(recertified)
            for cls, limit in target_aprp.items():
                report.check(
                    "aprp-target",
                    aprp.get(cls, 0) <= limit,
                    "pass-2 APRP %d for %s exceeds the pass-1 target %d"
                    % (aprp.get(cls, 0), cls, limit),
                )
    return report


def verify_aco_result(
    result,
    ddg: DDG,
    machine: MachineModel,
    target_aprp: Optional[Mapping[RegisterClass, int]] = None,
) -> VerificationReport:
    """Recheck a two-pass ACO result: legality plus all of its claims."""
    return verify_schedule(
        result.schedule,
        ddg,
        machine,
        respect_latencies=True,
        expected_peak=result.peak,
        expected_rp_cost=result.rp_cost_value,
        target_aprp=target_aprp,
    )
