"""The gpusim sanitizer: checked SoA accessors and lockstep invariants.

Section V-A replaces device-side dynamic allocation with fixed-capacity
structure-of-arrays buffers indexed by computed offsets — exactly the kind
of code where an off-by-one silently corrupts a *neighbouring ant's* state
instead of faulting (the GPU-ACO failure mode Skinderowicz documents).
When sanitize mode is on (``REPRO_SANITIZE=1``, ``--verify``, or an
explicit ``verify=True`` on the parallel scheduler), the colony:

* wraps its per-ant state arrays in :class:`CheckedArray`, which rejects
  *negative* computed indices (numpy would silently wrap them to the end
  of the buffer — the Python analogue of an out-of-bounds device read);
* runs :meth:`ColonySanitizer.check_step` after every lockstep step,
  which audits the available-list bound of Section V-A, the ``-1`` poison
  discipline on uninitialized slots, per-ant consistency between the
  available list and the issued prefix (a cross-ant write would break
  these with overwhelming probability), and non-negative counters;
* asserts wavefront-uniform explore/exploit draws whenever the
  wavefront-level-choice divergence optimization claims uniformity.

All failures raise :class:`~repro.errors.SanitizerError` immediately —
a sanitizer that reports late is a sanitizer that gets ignored.
"""

from __future__ import annotations

import os
from typing import Optional

import numpy as np

from ..errors import SanitizerError

_TRUTHY = ("1", "true", "yes", "on")


def sanitize_enabled() -> bool:
    """True when ``REPRO_SANITIZE`` (or ``REPRO_VERIFY``) is set."""
    return (
        # Documented gateway: enables *checks only*, never steers results.
        os.environ.get("REPRO_SANITIZE", "").lower() in _TRUTHY  # repro: noqa[DET-003]
        or verification_enabled()
    )


def verification_enabled() -> bool:
    """True when ``REPRO_VERIFY`` is set (the ``--verify`` CLI flag)."""
    # Documented gateway: enables *checks only*, never steers results.
    return os.environ.get("REPRO_VERIFY", "").lower() in _TRUTHY  # repro: noqa[DET-003]


# -- checked arrays ----------------------------------------------------------


class CheckedArray(np.ndarray):
    """An ndarray that refuses negative computed indices.

    Negative indices are Python sugar, but in SoA kernel code a computed
    index of ``-1`` is an uninitialized-slot read that numpy would quietly
    wrap to the *last* element. The sanitizer's arrays raise instead.
    Slices, masks and ``None`` axes pass through untouched.
    """

    _name = "array"

    def __array_finalize__(self, obj):
        if obj is not None:
            self._name = getattr(obj, "_name", "array")

    def _check_key(self, key) -> None:
        parts = key if isinstance(key, tuple) else (key,)
        for part in parts:
            if part is None or part is Ellipsis or isinstance(part, slice):
                continue
            if isinstance(part, (bool, np.bool_)):
                continue
            if isinstance(part, (int, np.integer)):
                if part < 0:
                    raise SanitizerError(
                        "negative index %d into %s (uninitialized-slot read?)"
                        % (int(part), self._name)
                    )
                continue
            arr = np.asarray(part)
            if arr.dtype == bool or arr.size == 0:
                continue
            if np.issubdtype(arr.dtype, np.integer) and int(arr.min()) < 0:
                raise SanitizerError(
                    "negative index %d into %s (uninitialized-slot read?)"
                    % (int(arr.min()), self._name)
                )

    def __getitem__(self, key):
        self._check_key(key)
        return super().__getitem__(key)

    def __setitem__(self, key, value):
        self._check_key(key)
        super().__setitem__(key, value)


def checked(array: np.ndarray, name: str) -> CheckedArray:
    """Wrap ``array`` (shared memory, no copy) in a named CheckedArray."""
    view = array.view(CheckedArray)
    view._name = name
    return view


# -- the colony sanitizer ----------------------------------------------------


class ColonySanitizer:
    """Lockstep invariant checks for the vectorized colony."""

    def __init__(self):
        self.steps_checked = 0

    # -- one-time layout audit ----------------------------------------------

    def audit_layout(self, colony) -> None:
        """Check that per-ant rows occupy disjoint memory (no aliasing)."""
        for name in ("avail_ids", "avail_release", "pred_remaining",
                     "remaining_uses", "order_buf", "cycles_buf"):
            arr = getattr(colony, name)
            if arr.ndim != 2 or arr.shape[0] != colony.num_ants:
                raise SanitizerError(
                    "%s is not a per-ant 2-D array (shape %r for %d ants)"
                    % (name, arr.shape, colony.num_ants)
                )
            row_bytes = arr.shape[1] * arr.itemsize
            if arr.shape[0] > 1 and abs(arr.strides[0]) < row_bytes:
                raise SanitizerError(
                    "%s rows overlap in memory (stride %d < row size %d): "
                    "ants share state" % (name, arr.strides[0], row_bytes)
                )
        cap = colony.data.ready_capacity
        if colony.avail_ids.shape[1] != cap:
            raise SanitizerError(
                "available-list width %d does not match the declared "
                "capacity %d" % (colony.avail_ids.shape[1], cap)
            )

    # -- divergence uniformity ----------------------------------------------

    def check_exploit_uniform(
        self, exploit: np.ndarray, num_wavefronts: int, wavefront_size: int
    ) -> None:
        """Wavefront-level draws must be identical across a wavefront's lanes."""
        lanes = np.asarray(exploit).reshape(num_wavefronts, wavefront_size)
        uniform = (lanes == lanes[:, :1]).all(axis=1)
        if not uniform.all():
            bad = int(np.flatnonzero(~uniform)[0])
            raise SanitizerError(
                "wavefront %d mixes explore and exploit lanes although "
                "wavefront-level choice is on" % bad
            )

    # -- per-step state audit ------------------------------------------------

    def check_step(self, colony) -> None:
        """Audit the SoA state after one lockstep construction step."""
        self.steps_checked += 1
        d = colony.data
        cap = d.ready_capacity
        n = d.num_instructions
        avail_len = np.asarray(colony.avail_len)
        avail_ids = np.asarray(colony.avail_ids)
        order_buf = np.asarray(colony.order_buf)
        scheduled = np.asarray(colony.scheduled)

        if avail_len.min() < 0:
            raise SanitizerError("negative available-list length")
        peak = int(avail_len.max())
        if peak > cap:
            raise SanitizerError(
                "available list grew to %d entries; the Section V-A bound "
                "sized the buffer at %d" % (peak, cap)
            )
        cols = np.arange(avail_ids.shape[1])[None, :]
        valid = cols < avail_len[:, None]
        ids = avail_ids[valid]
        if ids.size and (ids.min() < 0 or ids.max() >= n):
            raise SanitizerError(
                "available list holds instruction id outside [0, %d)" % n
            )
        poison = avail_ids[~valid]
        if poison.size and (poison != -1).any():
            raise SanitizerError(
                "slot beyond the available-list length is not poisoned "
                "(-1): stale or cross-ant write"
            )
        if scheduled.min() < 0 or scheduled.max() > n:
            raise SanitizerError("scheduled-instruction counter out of range")
        issued_valid = np.arange(order_buf.shape[1])[None, :] < scheduled[:, None]
        issued = np.where(issued_valid, order_buf, -1)
        if (np.where(issued_valid, issued, 0) < 0).any() or issued.max() >= n:
            raise SanitizerError(
                "issued prefix of order_buf holds an invalid instruction id"
            )
        if (np.where(issued_valid, -1, order_buf) != -1).any():
            raise SanitizerError(
                "order_buf beyond the issued prefix is not poisoned (-1)"
            )
        # Per-ant disjointness and uniqueness: a cross-ant or double write
        # shows up as a duplicate id within one ant's issued+available set.
        marks = np.zeros((colony.num_ants, n), dtype=np.int32)
        ants = np.nonzero(issued_valid)[0]
        np.add.at(marks, (ants, order_buf[issued_valid]), 1)
        vants = np.nonzero(valid)[0]
        np.add.at(marks, (vants, avail_ids[valid]), 1)
        if marks.max() > 1:
            ant, inst = np.unravel_index(int(np.argmax(marks)), marks.shape)
            raise SanitizerError(
                "instruction %d appears %d times in ant %d's issued/"
                "available state (cross-ant aliasing or duplicate issue)"
                % (int(inst), int(marks[ant, inst]), int(ant))
            )
        if np.asarray(colony.pred_remaining).min() < 0:
            raise SanitizerError("negative unscheduled-predecessor counter")
        if np.asarray(colony.current).min() < 0:
            raise SanitizerError("negative register-pressure counter")

    # -- end of iteration ----------------------------------------------------

    def check_iteration_end(self, colony, winner: Optional[int]) -> None:
        """The winning ant's order must be a complete permutation."""
        if winner is None:
            return
        n = colony.data.num_instructions
        order = np.asarray(colony.order_buf)[winner]
        if sorted(int(i) for i in order) != list(range(n)):
            raise SanitizerError(
                "winning ant %d produced an incomplete or duplicated "
                "instruction order" % winner
            )
