"""Static analysis and independent verification (the scheduler sanitizer).

The paper's correctness rests on invariants nothing used to recheck: every
ant-built schedule must be DDG-legal, pass-2 APRP must never exceed the
pass-1 target, and the SoA ready lists must never outgrow the
transitive-closure bound of Section V-A. This package recertifies all of
them from scratch — the ``-verify-machineinstrs`` of this reproduction:

* :mod:`~repro.analysis.verifier` — independent schedule verification and
  APRP recertification (:func:`verify_schedule`, :func:`verify_order`,
  :func:`verify_aco_result`, :func:`recompute_peak_pressure`);
* :mod:`~repro.analysis.ddg_lint` — DDG/closure structural linting and the
  ready-list bound audit (:func:`lint_ddg`, :func:`lint_closure`,
  :func:`audit_ready_bound`);
* :mod:`~repro.analysis.sanitizer` — the gpusim sanitizer mode
  (``REPRO_SANITIZE=1``): checked SoA accessors, poison discipline,
  cross-ant aliasing and wavefront-uniformity checks;
* :mod:`~repro.analysis.static` — the rule-based static analyzer
  (``python -m repro.analysis.static``): determinism, RNG discipline,
  lockstep-divergence, accounting and import-layering rules, with inline
  suppressions, a committed baseline and text/JSON/SARIF reports;
* :mod:`~repro.analysis.lint` — deprecation shim for the original AST
  determinism lint, now rule ``DET-001`` of the static analyzer
  (``python -m repro.analysis.lint`` still works).

Both ACO schedulers, the compile pipeline and the CLI expose the layer
behind a ``verify`` flag (``--verify`` / ``REPRO_VERIFY=1``).
"""

from .ddg_lint import audit_ready_bound, lint_closure, lint_ddg, max_antichain_size
from .report import VerificationReport, Violation
from .sanitizer import (
    CheckedArray,
    ColonySanitizer,
    checked,
    sanitize_enabled,
    verification_enabled,
)
from .verifier import (
    classify_stalls,
    recompute_peak_pressure,
    verify_aco_result,
    verify_order,
    verify_schedule,
)

__all__ = [
    "VerificationReport",
    "Violation",
    "verify_schedule",
    "verify_order",
    "verify_aco_result",
    "recompute_peak_pressure",
    "classify_stalls",
    "lint_ddg",
    "lint_closure",
    "audit_ready_bound",
    "max_antichain_size",
    "CheckedArray",
    "ColonySanitizer",
    "checked",
    "sanitize_enabled",
    "verification_enabled",
]
