"""Violation records and verification reports.

Every checker in :mod:`repro.analysis` accumulates its findings into a
:class:`VerificationReport` instead of raising on the first problem, so a
single pass over a schedule or DDG reports *everything* that is wrong with
it (the fault-injection tests rely on precise violation codes). Callers
that want fail-fast semantics use :meth:`VerificationReport.raise_if_failed`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..errors import VerificationError


@dataclass(frozen=True)
class Violation:
    """One invariant violation found by a verification pass.

    ``code`` is a stable kebab-case identifier (tests match on it);
    ``message`` is the human-readable explanation.
    """

    code: str
    message: str

    def __str__(self) -> str:
        return "[%s] %s" % (self.code, self.message)


@dataclass
class VerificationReport:
    """The outcome of one verification pass.

    ``checks`` counts the individual invariants evaluated (for telemetry
    and for "this actually checked something" assertions in tests);
    ``stats`` carries derived observations that are not pass/fail, e.g.
    the necessary/optional stall split or the recertified peak pressure.
    """

    subject: str
    checks: int = 0
    violations: List[Violation] = field(default_factory=list)
    stats: Dict[str, object] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def check(self, code: str, condition: bool, message: str) -> bool:
        """Record one invariant evaluation; returns ``condition``."""
        self.checks += 1
        if not condition:
            self.violations.append(Violation(code, message))
        return condition

    def add_violation(self, code: str, message: str) -> None:
        self.checks += 1
        self.violations.append(Violation(code, message))

    def codes(self) -> Tuple[str, ...]:
        return tuple(v.code for v in self.violations)

    def merge(self, other: "VerificationReport") -> "VerificationReport":
        self.checks += other.checks
        self.violations.extend(other.violations)
        self.stats.update(other.stats)
        return self

    def publish(self, telemetry, region: str) -> "VerificationReport":
        """Export this report as a ``verify`` trace event + verify.* metrics.

        ``telemetry`` is duck-typed (:class:`repro.telemetry.Telemetry`) so
        this module needs no telemetry import.
        """
        telemetry.emit(
            "verify",
            region=region,
            checks=self.checks,
            violations=len(self.violations),
        )
        if telemetry.collect_metrics:
            metrics = telemetry.metrics
            metrics.counter("verify.checks").inc(self.checks)
            metrics.counter("verify.violations").inc(len(self.violations))
        return self

    def raise_if_failed(self) -> None:
        """Raise :class:`VerificationError` when any violation was found."""
        if self.violations:
            lines = "\n  ".join(str(v) for v in self.violations)
            raise VerificationError(
                "%s failed verification (%d violation(s)):\n  %s"
                % (self.subject, len(self.violations), lines),
                violations=self.violations,
            )

    def __repr__(self) -> str:
        return "VerificationReport(%r, checks=%d, violations=%d)" % (
            self.subject,
            self.checks,
            len(self.violations),
        )
