"""Deprecation shim: the determinism lint moved into the static analyzer.

The original AST determinism lint (PR 2) now lives in
:mod:`repro.analysis.static` as composite rule ``DET-001``, alongside the
newer rule families (DET-*, RNG-*, DIV-*, ACC-*, LAY-*). This module keeps
the historical public surface working — ``LintViolation``, ``lint_file``,
``run_lint``, ``iter_python_files``, ``default_target``, ``main`` and
``python -m repro.analysis.lint`` — by delegating to the framework, running
only the migrated rule. Sub-codes (``RNG001`` .. ``TIME001``, ``SYN001``)
and the ``# lint: allow`` suppression marker are preserved.

Prefer ``python -m repro.analysis.static`` for new work: it runs the full
rule catalog, understands ``# repro: noqa[RULE-ID]`` suppressions and the
committed baseline, and emits JSON/SARIF for CI.
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from .static.core import KERNEL_PATHS, iter_python_files as _iter_files
from .static.engine import parse_file, scan_suppressions
from .static.rules.legacy import LegacyDeterminismRule

__all__ = [
    "KERNEL_PATHS",
    "LintViolation",
    "default_target",
    "iter_python_files",
    "lint_file",
    "main",
    "run_lint",
]

_DEPRECATION_NOTE = (
    "note: repro.analysis.lint is a compatibility shim; the lint now runs "
    "as rule DET-001 of `python -m repro.analysis.static`"
)


@dataclass(frozen=True)
class LintViolation:
    path: str
    line: int
    col: int
    code: str
    message: str

    def __str__(self) -> str:
        return "%s:%d:%d: %s %s" % (
            self.path, self.line, self.col, self.code, self.message,
        )


def lint_file(path: str, root: str) -> List[LintViolation]:
    """Lint one Python file; ``root`` anchors the package-relative path."""
    ctx, syntax_error = parse_file(path, root)
    if syntax_error is not None:
        return [
            LintViolation(
                syntax_error.path,
                syntax_error.line,
                syntax_error.col,
                "SYN001",
                syntax_error.message,
            )
        ]
    assert ctx is not None
    suppressions = scan_suppressions(ctx.source)
    violations: List[LintViolation] = []
    for finding in LegacyDeterminismRule().check_file(ctx):
        if suppressions.suppresses(finding):
            continue
        # DET-001 findings carry "SUBCODE message"; the legacy surface
        # reports the sub-code and the bare message separately.
        message = finding.message
        prefix = finding.code + " "
        if message.startswith(prefix):
            message = message[len(prefix):]
        violations.append(
            LintViolation(finding.path, finding.line, finding.col, finding.code, message)
        )
    return violations


def iter_python_files(paths: Sequence[str]) -> Iterable[Tuple[str, str]]:
    """Yield (file, root) pairs under each requested path."""
    return _iter_files(paths)


def default_target() -> str:
    """The installed ``repro`` package directory."""
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def run_lint(paths: Sequence[str]) -> List[LintViolation]:
    violations: List[LintViolation] = []
    for path, root in iter_python_files(paths):
        violations.extend(lint_file(path, root))
    return violations


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    paths = args or [default_target()]
    print(_DEPRECATION_NOTE, file=sys.stderr)
    violations = run_lint(paths)
    for violation in violations:
        print(violation)
    if violations:
        print("%d determinism-lint violation(s)" % len(violations))
        return 1
    print("determinism lint: clean (%s)" % ", ".join(paths))
    return 0


if __name__ == "__main__":
    sys.exit(main())
