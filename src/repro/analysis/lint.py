"""AST-based determinism lint: ``python -m repro.analysis.lint``.

The reproduction's headline property is bit-for-bit determinism: the same
seed must give the same schedules, and telemetry must observe without
steering. Both are easy to break with one careless line — a module-level
``random.random()`` in an ant path, a ``np.random.seed`` anywhere, a
telemetry helper that peeks at scheduler state. This lint enforces the
discipline statically:

``RNG001``  call of a module-level ``random.*`` function (unseeded global
            RNG) inside a kernel/ant path — inject a ``random.Random``;
``RNG002``  call of a legacy global ``numpy.random.*`` function anywhere —
            use ``numpy.random.default_rng(seed)``;
``RNG003``  ``numpy.random.default_rng()`` called without a seed inside a
            kernel/ant path;
``RNG004``  global reseeding (``random.seed`` / ``numpy.random.seed``)
            anywhere in the library;
``TEL001``  a telemetry module imports an RNG module;
``TEL002``  a telemetry module imports scheduler/cost state
            (``repro.aco`` / ``repro.parallel`` / ``repro.rp`` /
            ``repro.gpusim``) — telemetry must stay observation-only;
``TIME001`` wall-clock reads (``time.time`` etc.) in a kernel/ant path —
            time must come from the deterministic cost models.

A line ending in ``# lint: allow`` is exempt. Exit status is the number of
files with violations (0 = clean).
"""

from __future__ import annotations

import ast
import os
import sys
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

#: Package sub-paths whose code runs inside kernel/ant construction and
#: must only draw randomness from injected generators.
KERNEL_PATHS: Tuple[str, ...] = (
    "aco", "parallel", "gpusim", "rp", "schedule", "ddg", "heuristics",
)

#: Module-level ``random`` functions that hit the global (unseeded) RNG.
_STDLIB_RNG_FUNCS = frozenset(
    {
        "random", "randint", "randrange", "choice", "choices", "shuffle",
        "sample", "uniform", "triangular", "gauss", "normalvariate",
        "expovariate", "betavariate", "getrandbits", "vonmisesvariate",
        "paretovariate", "weibullvariate", "lognormvariate",
    }
)

#: Legacy global-state ``numpy.random`` functions.
_NUMPY_RNG_FUNCS = frozenset(
    {
        "rand", "randn", "randint", "random", "random_sample", "ranf",
        "sample", "choice", "shuffle", "permutation", "uniform", "normal",
        "standard_normal", "exponential", "poisson", "beta", "binomial",
    }
)

_RNG_MODULES = frozenset({"random", "numpy.random"})
#: Package heads telemetry must never import (scheduler/cost state).
_TELEMETRY_FORBIDDEN_STATE = frozenset({"aco", "parallel", "rp", "gpusim"})
_WALL_CLOCK_FUNCS = frozenset({"time", "monotonic", "perf_counter", "time_ns"})


@dataclass(frozen=True)
class LintViolation:
    path: str
    line: int
    col: int
    code: str
    message: str

    def __str__(self) -> str:
        return "%s:%d:%d: %s %s" % (
            self.path, self.line, self.col, self.code, self.message,
        )


def _dotted(node: ast.AST) -> str:
    """The dotted name of an attribute chain (``np.random.seed``), or ''."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


class _Checker(ast.NodeVisitor):
    def __init__(self, path: str, rel: str, allowed_lines: frozenset):
        self.path = path
        self.rel = rel.replace(os.sep, "/")
        self.allowed_lines = allowed_lines
        self.violations: List[LintViolation] = []
        self.numpy_aliases = {"numpy"}
        parts = self.rel.split("/")
        self.in_kernel_path = any(p in KERNEL_PATHS for p in parts)
        self.in_telemetry = "telemetry" in parts

    def _flag(self, node: ast.AST, code: str, message: str) -> None:
        if node.lineno in self.allowed_lines:
            return
        self.violations.append(
            LintViolation(self.path, node.lineno, node.col_offset, code, message)
        )

    # -- imports -------------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "numpy":
                self.numpy_aliases.add(alias.asname or "numpy")
            if self.in_telemetry and alias.name.split(".")[0] == "random":
                self._flag(node, "TEL001", "telemetry imports the random module")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        if self.in_telemetry:
            if module.split(".")[0] == "random" or module.startswith(
                "numpy.random"
            ):
                self._flag(node, "TEL001", "telemetry imports an RNG module")
            # Both absolute (repro.parallel.colony) and relative
            # (..parallel.colony, any level) spellings resolve to a head
            # package; flag the scheduler-state ones.
            base = module[len("repro."):] if module.startswith("repro.") else module
            if base.split(".")[0] in _TELEMETRY_FORBIDDEN_STATE:
                self._flag(
                    node,
                    "TEL002",
                    "telemetry imports scheduler state (%s); telemetry "
                    "must observe, never steer" % (("." * node.level) + module),
                )
        self.generic_visit(node)

    # -- calls ---------------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        name = _dotted(node.func)
        if name:
            head, _, tail = name.partition(".")
            # stdlib: random.<func>()
            if head == "random" and tail in _STDLIB_RNG_FUNCS:
                if tail == "seed":
                    pass  # handled below as RNG004
                elif self.in_kernel_path:
                    self._flag(
                        node,
                        "RNG001",
                        "module-level random.%s() in a kernel/ant path; "
                        "draw from an injected random.Random" % tail,
                    )
            if name in ("random.seed",):
                self._flag(node, "RNG004", "global random.seed() forbidden")
            # numpy: np.random.<func>()
            parts = name.split(".")
            if len(parts) >= 3 and parts[0] in self.numpy_aliases and parts[1] == "random":
                func = parts[2]
                if func == "seed":
                    self._flag(node, "RNG004", "global numpy.random.seed() forbidden")
                elif func in _NUMPY_RNG_FUNCS:
                    self._flag(
                        node,
                        "RNG002",
                        "legacy global numpy.random.%s(); use "
                        "numpy.random.default_rng(seed)" % func,
                    )
                elif (
                    func == "default_rng"
                    and self.in_kernel_path
                    and not node.args
                    and not node.keywords
                ):
                    self._flag(
                        node,
                        "RNG003",
                        "numpy.random.default_rng() without a seed in a "
                        "kernel/ant path",
                    )
            # wall clock
            if (
                self.in_kernel_path
                and head == "time"
                and tail in _WALL_CLOCK_FUNCS
            ):
                self._flag(
                    node,
                    "TIME001",
                    "wall-clock time.%s() in a kernel/ant path; use the "
                    "deterministic cost models" % tail,
                )
        self.generic_visit(node)


def _allowed_lines(source: str) -> frozenset:
    allowed = set()
    for lineno, line in enumerate(source.splitlines(), start=1):
        stripped = line.rstrip()
        if stripped.endswith("# lint: allow"):
            allowed.add(lineno)
    return frozenset(allowed)


def lint_file(path: str, root: str) -> List[LintViolation]:
    """Lint one Python file; ``root`` anchors the package-relative path."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            LintViolation(path, exc.lineno or 0, exc.offset or 0, "SYN001",
                          "syntax error: %s" % exc.msg)
        ]
    rel = os.path.relpath(path, root)
    checker = _Checker(path, rel, _allowed_lines(source))
    checker.visit(tree)
    return checker.violations


def iter_python_files(paths: Sequence[str]) -> Iterable[Tuple[str, str]]:
    """Yield (file, root) pairs under each requested path."""
    for path in paths:
        if os.path.isfile(path):
            yield path, os.path.dirname(path) or "."
        else:
            for dirpath, _dirnames, filenames in os.walk(path):
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        yield os.path.join(dirpath, name), path


def default_target() -> str:
    """The installed ``repro`` package directory."""
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def run_lint(paths: Sequence[str]) -> List[LintViolation]:
    violations: List[LintViolation] = []
    for path, root in iter_python_files(paths):
        violations.extend(lint_file(path, root))
    return violations


def main(argv: Sequence[str] = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    paths = args or [default_target()]
    violations = run_lint(paths)
    for violation in violations:
        print(violation)
    if violations:
        print("%d determinism-lint violation(s)" % len(violations))
        return 1
    print("determinism lint: clean (%s)" % ", ".join(paths))
    return 0


if __name__ == "__main__":
    sys.exit(main())
