"""Register-pressure cost functions and schedule quality.

The RP pass minimizes an APRP-based scalar cost (Section II-A). Occupancy on
the GPU is the *minimum* over the register files, so the cost is
lexicographic — first the occupancy deficit, then the summed APRP as a
tie-breaker that rewards moving a file closer to its next occupancy step:

``cost = (max_occupancy - occupancy) * OCCUPANCY_WEIGHT + sum_of_APRP``

Because APRP is a step function of PRP, schedules whose pressure differences
cannot change occupancy compare equal, exactly the property the paper
introduces APRP for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from ..ddg.lower_bounds import RegionBounds
from ..ir.registers import RegisterClass
from ..machine.model import MachineModel
from ..schedule.schedule import Schedule
from .liveness import peak_pressure

#: Weight of one occupancy step in the scalar RP cost. Larger than any
#: realistic APRP sum, so occupancy always dominates.
OCCUPANCY_WEIGHT = 10_000


def rp_cost(pressure: Mapping[RegisterClass, int], machine: MachineModel) -> int:
    """Scalar RP cost of a per-class peak pressure (lower is better)."""
    occupancy = machine.occupancy_for_pressure(pressure)
    aprp = machine.aprp(pressure)
    return (machine.max_occupancy - occupancy) * OCCUPANCY_WEIGHT + sum(aprp.values())


def rp_cost_lower_bound(bounds: RegionBounds, machine: MachineModel) -> int:
    """The RP cost of the per-class pressure lower bounds.

    APRP and occupancy are monotone in pressure, so this is a sound lower
    bound on any schedule's RP cost; reaching it terminates the RP pass.
    """
    return rp_cost(bounds.pressure_dict, machine)


@dataclass(frozen=True)
class ScheduleQuality:
    """Everything the evaluation reports about one schedule."""

    length: int
    peak_pressure: Tuple[Tuple[RegisterClass, int], ...]
    aprp: Tuple[Tuple[RegisterClass, int], ...]
    occupancy: int
    rp_cost: int

    @property
    def pressure_dict(self) -> Dict[RegisterClass, int]:
        return dict(self.peak_pressure)

    @property
    def aprp_dict(self) -> Dict[RegisterClass, int]:
        return dict(self.aprp)

    def dominates(self, other: "ScheduleQuality") -> bool:
        """Weak Pareto dominance: at least as good on both objectives."""
        return self.rp_cost <= other.rp_cost and self.length <= other.length


def evaluate_schedule(schedule: Schedule, machine: MachineModel) -> ScheduleQuality:
    """Compute the full quality record of a schedule."""
    prp = peak_pressure(schedule)
    aprp = machine.aprp(prp)
    occupancy = machine.occupancy_for_pressure(prp)
    return ScheduleQuality(
        length=schedule.length,
        peak_pressure=tuple(sorted(prp.items(), key=lambda kv: kv[0].name)),
        aprp=tuple(sorted(aprp.items(), key=lambda kv: kv[0].name)),
        occupancy=occupancy,
        rp_cost=rp_cost(prp, machine),
    )
