"""Register-pressure analysis: liveness profiles, the incremental tracker
used inside every scheduler, and the PRP/APRP cost functions."""

from .liveness import pressure_profile, peak_pressure
from .tracker import PressureTracker
from .cost import rp_cost, rp_cost_lower_bound, ScheduleQuality, evaluate_schedule

__all__ = [
    "pressure_profile",
    "peak_pressure",
    "PressureTracker",
    "rp_cost",
    "rp_cost_lower_bound",
    "ScheduleQuality",
    "evaluate_schedule",
]
