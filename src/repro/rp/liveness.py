"""Whole-schedule liveness: pressure profiles and peak pressure.

These functions re-derive pressure from a complete :class:`Schedule` (the
tracker in :mod:`repro.rp.tracker` does the same incrementally during
construction); the test suite cross-checks the two against each other.
"""

from __future__ import annotations

from typing import Dict, List

from ..ir.registers import RegisterClass
from ..schedule.schedule import Schedule
from .tracker import PressureTracker


def pressure_profile(schedule: Schedule) -> Dict[RegisterClass, List[int]]:
    """Per-class pressure after each issue slot, in issue order.

    Entry ``k`` of each list is the number of live registers of that class
    right after the ``k``-th issued instruction (stall cycles do not change
    pressure and are not represented).
    """
    region = schedule.region
    tracker = PressureTracker(region)
    profile: Dict[RegisterClass, List[int]] = {cls: [] for cls in tracker.classes}
    for index in schedule.order:
        tracker.schedule(region[index])
        for cls in tracker.classes:
            profile[cls].append(tracker.current[cls])
    return profile


def peak_pressure(schedule: Schedule) -> Dict[RegisterClass, int]:
    """Per-class PRP of a complete schedule."""
    region = schedule.region
    tracker = PressureTracker(region)
    for index in schedule.order:
        tracker.schedule(region[index])
    return tracker.peak_pressure()
