"""Incremental register-pressure tracking.

Every scheduler in this library (the greedy baselines, the sequential ACO
ants and the vectorized parallel colony) builds schedules one instruction at
a time and needs the running register pressure in O(defs + uses) per step.
:class:`PressureTracker` provides exactly that.

Liveness convention (matches Section II-A and the Figure 1 walk-through):

* a register becomes live when its defining instruction issues (live-in
  registers are live from the start);
* it dies at its last use, unless it is live-out (then it never dies inside
  the region);
* last-uses close **before** the same instruction's defs open: pressure is
  sampled *between* instructions, so an instruction whose destination can
  reuse one of its killed sources does not transiently need both registers.
  This matches the paper's Figure 1 (the schedule C, D, F, ... has PRP 3:
  F's definition opens only after C's and D's ranges close) and LLVM's
  kill-before-def convention;
* a definition with no uses and not live-out still occupies a register at
  its defining instruction, so it counts toward the peak at that point and
  dies immediately.

Regions are expected to be SSA-like (each virtual register defined by one
instruction); for regions with redefinitions the tracker treats all uses of
a register name as one live range, which over-approximates pressure — the
same conservative choice LLVM's pre-RA scheduler makes for un-renamed
registers.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from ..ir.block import SchedulingRegion
from ..ir.instructions import Instruction
from ..ir.registers import RegisterClass, VirtualRegister


class PressureTracker:
    """Running per-class register pressure over a partial schedule."""

    __slots__ = (
        "region",
        "classes",
        "_remaining_uses",
        "_live",
        "current",
        "peak",
        "_total_use_counts",
    )

    def __init__(self, region: SchedulingRegion):
        self.region = region
        self.classes: Tuple[RegisterClass, ...] = region.register_classes()
        self._total_use_counts: Dict[VirtualRegister, int] = {}
        for inst in region:
            for reg in inst.uses:
                self._total_use_counts[reg] = self._total_use_counts.get(reg, 0) + 1
        self.reset()

    def reset(self) -> None:
        """Restart tracking from the empty schedule."""
        self._remaining_uses = dict(self._total_use_counts)
        self._live: Dict[VirtualRegister, bool] = {}
        self.current: Dict[RegisterClass, int] = {cls: 0 for cls in self.classes}
        self.peak: Dict[RegisterClass, int] = {cls: 0 for cls in self.classes}
        for reg in self.region.live_in:
            self._make_live(reg)
        self._update_peak()

    # -- internals -----------------------------------------------------------

    def _make_live(self, reg: VirtualRegister) -> None:
        if not self._live.get(reg, False):
            self._live[reg] = True
            self.current[reg.reg_class] = self.current.get(reg.reg_class, 0) + 1

    def _kill(self, reg: VirtualRegister) -> None:
        if self._live.get(reg, False):
            self._live[reg] = False
            self.current[reg.reg_class] -= 1

    def _update_peak(self) -> None:
        for cls, value in self.current.items():
            if value > self.peak.get(cls, 0):
                self.peak[cls] = value

    # -- the scheduling step ---------------------------------------------------

    def schedule(self, inst: Instruction) -> None:
        """Account for issuing ``inst`` (exhausted uses close, then defs open)."""
        for reg in inst.uses:
            remaining = self._remaining_uses.get(reg, 0) - 1
            self._remaining_uses[reg] = remaining
            if remaining == 0 and reg not in self.region.live_out and reg not in inst.defs:
                self._kill(reg)
        dead_defs = []
        for reg in inst.defs:
            self._make_live(reg)
            if (
                self._remaining_uses.get(reg, 0) == 0
                and reg not in self.region.live_out
            ):
                dead_defs.append(reg)
        # The defs are live at this point even if they die immediately.
        self._update_peak()
        for reg in dead_defs:
            self._kill(reg)

    def pressure_if_scheduled(self, inst: Instruction) -> Dict[RegisterClass, int]:
        """The per-class pressure right after ``inst`` would issue.

        Used by the ACO guiding heuristics and the optional-stall heuristic
        to preview an instruction's pressure impact without committing.
        """
        result = dict(self.current)
        for reg in inst.defs:
            if not self._live.get(reg, False):
                result[reg.reg_class] = result.get(reg.reg_class, 0) + 1
        for reg in inst.uses:
            if (
                self._remaining_uses.get(reg, 0) == 1
                and reg not in self.region.live_out
                and self._live.get(reg, False)
                and reg not in inst.defs
            ):
                result[reg.reg_class] -= 1
        return result

    def pressure_delta(self, inst: Instruction) -> int:
        """Net change in total pressure (all classes) if ``inst`` issued now."""
        preview = self.pressure_if_scheduled(inst)
        return sum(preview.values()) - sum(self.current.values())

    def closes_ranges(self, inst: Instruction) -> int:
        """How many live ranges ``inst`` would close (the LUC heuristic input)."""
        closing = 0
        # dict.fromkeys, not set(): insertion-ordered dedup keeps the loop
        # independent of hash order (static analysis rule DET-002).
        for reg in dict.fromkeys(inst.uses):
            if (
                self._remaining_uses.get(reg, 0) == 1
                and reg not in self.region.live_out
                and self._live.get(reg, False)
            ):
                closing += 1
        return closing

    # -- results ----------------------------------------------------------------

    def peak_pressure(self) -> Dict[RegisterClass, int]:
        """Per-class PRP of everything scheduled so far."""
        return dict(self.peak)

    def live_registers(self) -> Iterable[VirtualRegister]:
        return tuple(reg for reg, live in self._live.items() if live)
