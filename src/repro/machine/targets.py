"""Built-in scheduling targets.

:func:`amd_vega20` models the AMD Radeon VII (gfx906 / Vega 20) used in the
paper: 256 VGPRs per SIMD lane allocated in granules of 4 and 800 usable
SGPRs per SIMD allocated in granules of 16, with a hardware cap of 10
wavefronts per SIMD. The VGPR table reproduces the paper's example exactly:
PRP <= 24 gives occupancy 10 and PRP in [25, 28] gives occupancy 9.

:func:`simple_test_target` is a tiny target with small occupancy steps used
throughout the test suite so unit tests can exercise occupancy boundaries
with single-digit register counts.
"""

from __future__ import annotations

from ..ir.registers import SGPR, VGPR
from .model import MachineModel
from .occupancy import OccupancyTable

_MAX_WAVES = 10


def _granular_table(total: int, granule: int, max_waves: int) -> OccupancyTable:
    """Derive a pressure -> occupancy table from a register-file budget.

    For each occupancy level ``w`` the largest allocatable pressure is
    ``floor(total / w)`` rounded down to the allocation granule.
    """
    breakpoints = []
    previous_pressure = 0
    for waves in range(max_waves, 0, -1):
        pressure = (total // waves) // granule * granule
        if pressure <= previous_pressure:
            continue
        breakpoints.append((pressure, waves))
        previous_pressure = pressure
    return OccupancyTable(breakpoints)


def amd_vega20() -> MachineModel:
    """The Radeon VII (gfx906) model used for all headline experiments."""
    vgpr_table = _granular_table(total=256, granule=4, max_waves=_MAX_WAVES)
    sgpr_table = _granular_table(total=800, granule=16, max_waves=_MAX_WAVES)
    return MachineModel(
        name="amd-vega20",
        occupancy_tables={VGPR: vgpr_table, SGPR: sgpr_table},
        issue_width=1,
        wavefront_size=64,
    )


def simple_test_target() -> MachineModel:
    """A miniature target: VGPR steps at 3/4/6/8, SGPR steps at 6/8/12/16."""
    vgpr_table = OccupancyTable([(3, 4), (4, 3), (6, 2), (8, 1)])
    sgpr_table = OccupancyTable([(6, 4), (8, 3), (12, 2), (16, 1)])
    return MachineModel(
        name="simple-test",
        occupancy_tables={VGPR: vgpr_table, SGPR: sgpr_table},
        issue_width=1,
        wavefront_size=4,
    )
