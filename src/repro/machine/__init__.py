"""Target machine models: issue model, occupancy tables and APRP.

The experimental results of the paper use a single-issue machine model that
captures latencies (Section II-A) plus the AMD GPU's occupancy rules: the
peak register pressure of a kernel determines how many wavefronts can be
resident per SIMD unit. :class:`~repro.machine.occupancy.OccupancyTable`
encodes a register-file's pressure -> occupancy mapping and the derived
*adjusted peak register pressure* (APRP) cost function.
"""

from .occupancy import OccupancyTable
from .model import MachineModel
from .targets import amd_vega20, simple_test_target

__all__ = ["OccupancyTable", "MachineModel", "amd_vega20", "simple_test_target"]
