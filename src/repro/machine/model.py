"""The scheduler-facing machine model.

Bundles the issue model (single-issue by default, matching the paper's
evaluation) with one occupancy table per register class. Register classes
without a table (none on the built-in targets) do not constrain occupancy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from ..errors import MachineModelError
from ..ir.registers import RegisterClass
from .occupancy import OccupancyTable


@dataclass(frozen=True)
class MachineModel:
    """A scheduling target.

    ``issue_width`` is the number of instructions issued per cycle; the
    paper's experiments use 1, and all built-in targets follow suit, but the
    schedulers honor larger widths.
    """

    name: str
    occupancy_tables: Mapping[RegisterClass, OccupancyTable]
    issue_width: int = 1
    wavefront_size: int = 64

    def __post_init__(self):
        if self.issue_width < 1:
            raise MachineModelError("issue_width must be >= 1")
        if self.wavefront_size < 1:
            raise MachineModelError("wavefront_size must be >= 1")
        if not self.occupancy_tables:
            raise MachineModelError("a machine model needs occupancy tables")
        object.__setattr__(self, "occupancy_tables", dict(self.occupancy_tables))

    @property
    def max_occupancy(self) -> int:
        return min(t.max_occupancy for t in self.occupancy_tables.values())

    def table_for(self, cls: RegisterClass) -> OccupancyTable:
        try:
            return self.occupancy_tables[cls]
        except KeyError:
            raise MachineModelError(
                "no occupancy table for register class %s on %s" % (cls, self.name)
            ) from None

    def occupancy_for_pressure(self, pressure: Mapping[RegisterClass, int]) -> int:
        """Kernel occupancy: the minimum over all constrained register files."""
        occ = self.max_occupancy
        for cls, table in self.occupancy_tables.items():
            occ = min(occ, table.occupancy(pressure.get(cls, 0)))
        return occ

    def aprp(self, pressure: Mapping[RegisterClass, int]) -> Dict[RegisterClass, int]:
        """Adjusted PRP of each constrained class (Section II-A)."""
        return {
            cls: table.aprp(pressure.get(cls, 0))
            for cls, table in self.occupancy_tables.items()
        }

    def classes(self) -> Tuple[RegisterClass, ...]:
        return tuple(self.occupancy_tables)
