"""Occupancy tables and the APRP cost function (Section II-A).

An :class:`OccupancyTable` maps a register file's peak register pressure
(PRP) to the SIMD *occupancy* it permits — the number of wavefronts that can
be resident on each SIMD unit. The mapping is a step function: many PRP
values give the same occupancy. The *adjusted* PRP (APRP) of a PRP value
``x`` is the **largest** PRP giving the same occupancy as ``x``; optimizing
APRP instead of PRP stops the scheduler from chasing pressure reductions
that cannot change occupancy. On the paper's AMD GPU, PRP in [1, 24] VGPRs
maps to APRP 24 (occupancy 10) and PRP in [25, 28] maps to APRP 28
(occupancy 9).
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..errors import MachineModelError


class OccupancyTable:
    """A pressure -> occupancy step function for one register class.

    ``breakpoints`` is a sequence of ``(max_pressure, occupancy)`` pairs with
    strictly increasing ``max_pressure`` and strictly decreasing positive
    ``occupancy``: pressure up to ``breakpoints[0].max_pressure`` yields
    ``breakpoints[0].occupancy``, and so on. Pressure beyond the last
    breakpoint yields occupancy 0 (the kernel would not fit; pressure that
    high forces spilling, which pre-allocation scheduling tries to avoid).
    """

    def __init__(self, breakpoints: Sequence[Tuple[int, int]]):
        points = tuple((int(p), int(o)) for p, o in breakpoints)
        if not points:
            raise MachineModelError("occupancy table needs at least one breakpoint")
        for (p1, o1), (p2, o2) in zip(points, points[1:]):
            if p2 <= p1:
                raise MachineModelError("breakpoint pressures must strictly increase")
            if o2 >= o1:
                raise MachineModelError("occupancy must strictly decrease")
        if points[-1][1] <= 0:
            raise MachineModelError("occupancies must be positive")
        if points[0][0] < 1:
            raise MachineModelError("first breakpoint pressure must be >= 1")
        self.breakpoints = points

    @property
    def max_occupancy(self) -> int:
        return self.breakpoints[0][1]

    @property
    def max_pressure(self) -> int:
        """The largest pressure that still fits (occupancy >= 1)."""
        return self.breakpoints[-1][0]

    def occupancy(self, pressure: int) -> int:
        """Occupancy permitted by ``pressure``; 0 when it does not fit."""
        if pressure < 0:
            raise MachineModelError("pressure must be >= 0")
        for max_pressure, occ in self.breakpoints:
            if pressure <= max_pressure:
                return occ
        return 0

    def aprp(self, pressure: int) -> int:
        """Adjusted PRP: the largest pressure with the same occupancy.

        Pressure beyond the table is its own APRP (every extra register is
        equally bad once occupancy has hit zero, but keeping the value
        monotone preserves comparisons between two over-budget schedules).
        """
        if pressure < 0:
            raise MachineModelError("pressure must be >= 0")
        for max_pressure, _occ in self.breakpoints:
            if pressure <= max_pressure:
                return max_pressure
        return pressure

    def __repr__(self) -> str:
        return "OccupancyTable(%r)" % (self.breakpoints,)
