"""Fault-tolerant fleet sharding for multi-region batches.

Splits one :class:`~repro.parallel.MultiRegionScheduler` batch across N
supervised shard workers with deterministic recovery — crash/hang/corrupt
workers are detected (cost-model heartbeats, integrity digests, the PR 2
verifier), their regions re-dispatched, and the merged result is
bit-identical to the single-device run for any shard count and any
eventually-recovering fault plan. ``python -m repro.fleet.chaos`` proves
it under forced faults.
"""

from .partition import merge_shard_results, partition_shards
from .supervisor import HOST_WORKER, FleetResult, FleetSupervisor
from .worker import ShardReturn, ShardWorker, outcome_digest

__all__ = [
    "FleetResult",
    "FleetSupervisor",
    "HOST_WORKER",
    "ShardReturn",
    "ShardWorker",
    "merge_shard_results",
    "outcome_digest",
    "partition_shards",
]
