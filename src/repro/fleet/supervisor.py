"""The fleet supervisor: epochs, heartbeats, recovery, deterministic merge.

:class:`FleetSupervisor` partitions one region batch across N simulated
:class:`~repro.fleet.worker.ShardWorker` processes and supervises them to
completion. All supervision time is **cost-model seconds** — heartbeat
detection latency, restart backoff, epoch makespans — there is no wall
clock anywhere (DET-004 holds here like everywhere else).

The loop is an epoch state machine:

1. Alive workers are ordered (straggler-demoted ones last) and the
   pending slots are round-robined over them in slot order
   (:func:`~repro.fleet.partition.partition_shards`).
2. Each worker drains its queue. Per dispatch the worker-level fault
   sites fire deterministically at ``(worker, dispatch)``:
   a **crash** kills the worker (detection = one missed heartbeat; the
   in-flight slot and the unattempted queue go back to pending), a
   **hang** wedges it (the heartbeat watchdog pays the same detection
   latency, then the worker is killed), a **corrupt** return completes
   but fails the supervisor's integrity digest / PR 2 verifier check and
   the slot is re-dispatched while the worker survives.
3. The epoch's fleet time is the *maximum* worker busy time (workers run
   concurrently); a worker whose busy time exceeds
   ``straggler_factor x median`` is flagged and demoted.
4. Dead workers restart after ``backoff_seconds`` while they have
   restarts left. A slot that exhausts ``max_slot_redispatches`` — or a
   fleet with no revivable worker — falls back to **serial host
   execution** of the very same slot runner.

Correctness rests on one invariant, enforced upstream: a slot's outcome
is a pure function of ``(ddg, seed, blocks, params, fault_plan,
resilience)`` and the block partition is computed once over the whole
batch. Re-dispatch therefore *re-runs*, never *re-computes differently*;
the merge (:func:`~repro.fleet.partition.merge_shard_results`) reassembles
slots in stable index order; and the final
:class:`~repro.parallel.multi_region.BatchResult` is assembled by the same
reduce the single-device path uses — so for any shard count and any
eventually-recovering fault plan the fleet result is bit-identical to the
single-device run. Fleet-specific timing lives on :class:`FleetResult`,
outside the differential surface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.verifier import verify_schedule
from ..config import FleetParams, ResilienceParams
from ..errors import GPUSimError, WorkerCrash, WorkerHang
from ..gpusim.faults import WORKER_FAULT_CLASSES, FaultPlan
from ..obs.record import get_recorder
from ..parallel.multi_region import (
    BatchItem,
    BatchResult,
    MultiRegionScheduler,
    SlotOutcome,
)
from ..profile import get_profiler
from ..timing import HostSecondsLedger
from .partition import merge_shard_results, partition_shards
from .worker import ShardReturn, ShardWorker, outcome_digest

__all__ = ["FleetSupervisor", "FleetResult"]

#: Worker id recorded for slots rescued by the serial host fallback.
HOST_WORKER = -1


def _median(values: Sequence[float]) -> float:
    """Deterministic median (mean of middle pair on even counts)."""
    ordered = sorted(values)
    if not ordered:
        return 0.0
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


@dataclass
class FleetResult:
    """One supervised fleet run: the merged batch plus the recovery story.

    ``batch`` is bit-identical to what the single-device path produces
    for the same inputs — everything fleet-specific (makespan, recovery
    accounting) lives in the other fields, outside the differential
    surface.
    """

    batch: BatchResult
    num_shards: int
    #: Supervised makespan in cost-model seconds: epoch maxima plus
    #: detection/backoff penalties plus the serial host fallback.
    fleet_seconds: float
    #: Serial host-fallback seconds (subset of ``fleet_seconds``).
    serial_seconds: float
    epochs: int
    dispatches: int
    reassignments: int
    #: Regions that needed recovery (re-dispatch or host fallback).
    recovered_regions: int
    host_fallback_regions: int
    worker_faults: Dict[str, int] = field(default_factory=dict)
    stragglers: int = 0
    restarts: int = 0

    @property
    def scaling_efficiency(self) -> float:
        """Fault-free ideal: unbatched work divided by shards x makespan."""
        denominator = self.num_shards * self.fleet_seconds
        if denominator <= 0.0:
            return 1.0
        return self.batch.unbatched_seconds / denominator


class FleetSupervisor:
    """Supervises N shard workers over one batch (see module docstring)."""

    def __init__(
        self,
        scheduler: MultiRegionScheduler,
        params: Optional[FleetParams] = None,
        worker_faults: Optional[FaultPlan] = None,
    ):
        self.scheduler = scheduler
        self.params = params or FleetParams()
        self.params.validate()
        if worker_faults is None and self.params.chaos_seed is not None:
            worker_faults = FaultPlan.worker_plan(self.params.chaos_seed)
        self.worker_faults = worker_faults

    # -- result acceptance ---------------------------------------------------

    def _returned_corrupt(self, ret: ShardReturn, item: BatchItem) -> bool:
        """Integrity + semantic screening of one shard return.

        The digest compare catches any in-transit perturbation; the PR 2
        verifier independently re-certifies the schedule against the
        region's DDG, so a corrupt payload can never merge silently.
        """
        if ret.digest != outcome_digest(ret.outcome):
            return True
        result = ret.outcome.result
        if result is None:
            return False
        report = verify_schedule(result.schedule, item.ddg, self.scheduler.machine)
        return not report.ok

    # -- the supervised run --------------------------------------------------

    def schedule_batch(
        self,
        items: Sequence[BatchItem],
        fault_plan: Optional[FaultPlan] = None,
        resilience: Optional[ResilienceParams] = None,
    ) -> FleetResult:
        """Run ``items`` across the fleet; always returns a complete merge."""
        if not items:
            raise GPUSimError("empty batch")
        params = self.params
        # The block partition is computed ONCE over the whole batch — the
        # single most load-bearing line for bit-identity (see module doc).
        blocks = self.scheduler._partition_blocks(items)
        tele = self.scheduler.telemetry
        tele.emit(
            "fleet_start", num_shards=params.num_shards, num_regions=len(items)
        )
        tele.emit(
            "batch_start", num_regions=len(items), blocks_per_region=list(blocks)
        )

        workers = [
            ShardWorker(i, self.scheduler, self.worker_faults)
            for i in range(params.num_shards)
        ]
        recorder = get_recorder()
        resolved: List[Tuple[int, SlotOutcome]] = []
        redispatches = [0] * len(items)
        pending = list(range(len(items)))
        host_slots: List[int] = []
        fleet_seconds = 0.0
        epoch = 0
        dispatches = 0
        reassignments = 0
        stragglers = 0
        restarts = 0
        fault_counts = {name: 0 for name in WORKER_FAULT_CLASSES}

        def reassign(slot: int, from_worker: int) -> None:
            nonlocal reassignments
            reassignments += 1
            tele.emit(
                "reassign",
                region=items[slot].ddg.region.name,
                from_worker=from_worker,
                epoch=epoch,
            )

        prof = get_profiler()
        with prof.span("fleet", "batch"):
            while pending:
                alive = [w for w in workers if w.alive]
                if not alive:
                    # Fleet exhausted: everything left goes to the host.
                    for slot in pending:
                        reassign(slot, HOST_WORKER)
                    host_slots.extend(pending)
                    pending = []
                    break
                epoch += 1
                order = sorted(alive, key=lambda w: (w.demoted, w.id))
                queues = partition_shards(pending, len(order))
                pending = []
                busys: List[float] = []
                for worker, queue in zip(order, queues):
                    busy = worker.head_start
                    worker.head_start = 0.0
                    for position, slot in enumerate(queue):
                        item = items[slot]
                        dispatches += 1
                        tele.emit(
                            "shard_dispatch",
                            worker=worker.id,
                            region=item.ddg.region.name,
                            dispatch=worker.dispatches,
                            blocks=blocks[slot],
                        )
                        try:
                            ret = worker.run_dispatch(
                                slot,
                                item,
                                blocks[slot],
                                fault_plan=fault_plan,
                                resilience=resilience,
                            )
                        except (WorkerCrash, WorkerHang) as exc:
                            # Detection latency: one missed heartbeat — the
                            # crash is silent, the hang stops answering.
                            busy += params.heartbeat_seconds
                            fault_counts[exc.fault_class] += 1
                            tele.emit(
                                "worker_fault",
                                worker=worker.id,
                                fault_class=exc.fault_class,
                                dispatch=worker.dispatches - 1,
                                seconds=params.heartbeat_seconds,
                            )
                            worker.alive = False
                            # The in-flight slot burned a dispatch; the
                            # unattempted rest of the queue did not.
                            redispatches[slot] += 1
                            for lost in [slot] + list(queue[position + 1:]):
                                reassign(lost, worker.id)
                                pending.append(lost)
                            break
                        busy += ret.outcome.seconds
                        if self._returned_corrupt(ret, item):
                            fault_counts["worker_corrupt"] += 1
                            tele.emit(
                                "worker_fault",
                                worker=worker.id,
                                fault_class="worker_corrupt",
                                dispatch=ret.dispatch,
                                seconds=ret.outcome.seconds,
                            )
                            redispatches[slot] += 1
                            reassign(slot, worker.id)
                            pending.append(slot)
                            continue
                        resolved.append((slot, ret.outcome))
                        if recorder is not None:
                            recorder.record_schedule(
                                "shard",
                                region=item.ddg.region.name,
                                seed=item.seed,
                                slot=slot,
                                worker=worker.id,
                                dispatch=ret.dispatch,
                                blocks=blocks[slot],
                                error=ret.outcome.error,
                            )
                    busys.append(busy)
                fleet_seconds += max(busys) if busys else 0.0
                # Straggler screening: epoch busy time far above the fleet
                # median flags the worker and demotes it in dispatch order
                # (identity-only — demotion never changes results).
                median = _median(busys)
                if median > 0.0 and len(busys) > 1:
                    for worker, busy in zip(order, busys):
                        if busy > params.straggler_factor * median:
                            stragglers += 1
                            worker.demoted = True
                            tele.emit(
                                "straggler",
                                worker=worker.id,
                                epoch=epoch,
                                busy_seconds=busy,
                                median_seconds=median,
                            )
                # Bounded restarts: a dead worker comes back next epoch
                # after its backoff, until its restart budget runs dry.
                for worker in workers:
                    if not worker.alive and worker.restarts < params.max_worker_restarts:
                        worker.restarts += 1
                        worker.alive = True
                        worker.head_start = params.backoff_seconds
                        restarts += 1
                        tele.emit(
                            "worker_restart",
                            worker=worker.id,
                            restarts=worker.restarts,
                            backoff_seconds=params.backoff_seconds,
                        )
                # Slots out of re-dispatch budget fall back to the host.
                still_pending: List[int] = []
                for slot in sorted(pending):
                    if redispatches[slot] >= params.max_slot_redispatches:
                        host_slots.append(slot)
                    else:
                        still_pending.append(slot)
                pending = still_pending

        # Serial host fallback: the same pure slot runner, no workers —
        # the last rung under the per-region resilience ladder.
        host = HostSecondsLedger()
        for slot in sorted(host_slots):
            item = items[slot]
            outcome = self.scheduler.run_slot(
                item, blocks[slot], fault_plan=fault_plan, resilience=resilience
            )
            host.charge(outcome.seconds)
            resolved.append((slot, outcome))
            if recorder is not None:
                recorder.record_schedule(
                    "shard",
                    region=item.ddg.region.name,
                    seed=item.seed,
                    slot=slot,
                    worker=HOST_WORKER,
                    dispatch=0,
                    blocks=blocks[slot],
                    error=outcome.error,
                )
        fleet_seconds += host.total

        outcomes = merge_shard_results(len(items), resolved)
        batch = self.scheduler.assemble_batch(items, blocks, outcomes)

        host_set = [False] * len(items)
        for slot in host_slots:
            host_set[slot] = True
        recovered = sum(
            1
            for slot in range(len(items))
            if redispatches[slot] > 0 or host_set[slot]
        )
        tele.emit(
            "fleet_end",
            num_shards=params.num_shards,
            num_regions=len(items),
            seconds=fleet_seconds,
            recovered_regions=recovered,
            reassignments=reassignments,
        )
        return FleetResult(
            batch=batch,
            num_shards=params.num_shards,
            fleet_seconds=fleet_seconds,
            serial_seconds=host.total,
            epochs=epoch,
            dispatches=dispatches,
            reassignments=reassignments,
            recovered_regions=recovered,
            host_fallback_regions=len(host_slots),
            worker_faults=dict(
                (name, fault_counts[name]) for name in WORKER_FAULT_CLASSES
            ),
            stragglers=stragglers,
            restarts=restarts,
        )
