"""The simulated shard worker: one device, one fault surface, zero identity
leakage into results.

A :class:`ShardWorker` owns its own :class:`~repro.gpusim.device.GPUDevice`
clone (identical geometry and cost model — a fleet is N copies of the same
card) and runs batch slots through the shared slot runner
(:meth:`repro.parallel.MultiRegionScheduler.run_slot`) under a
:func:`~repro.obs.context.worker_scope`, so every event the slot emits is
stamped with the worker's id while the slot's *result* stays a pure
function of the region inputs. That separation — identity in telemetry,
never in computation — is what lets the supervisor re-dispatch a slot to
any other worker (or the serial host) and get a bit-identical outcome.

Worker-level hazards come from the :class:`~repro.gpusim.faults.FaultPlan`
worker sites, keyed by ``(worker_id, dispatch_index)``:

* ``worker_crash`` — raised as :class:`~repro.errors.WorkerCrash` before
  any slot work happens (the process died);
* ``worker_hang``  — raised as :class:`~repro.errors.WorkerHang` (wedged;
  the supervisor's heartbeat watchdog pays the detection latency);
* ``worker_corrupt`` — the slot *completes* but its returned payload is
  perturbed after the integrity digest was taken, so the supervisor's
  checksum compare and the PR 2 schedule verifier both catch it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import Optional

from ..config import ResilienceParams
from ..errors import WorkerCrash, WorkerHang
from ..gpusim.faults import FaultPlan
from ..obs.context import worker_scope
from ..parallel.multi_region import BatchItem, MultiRegionScheduler, SlotOutcome
from ..schedule.schedule import Schedule

__all__ = ["ShardWorker", "ShardReturn", "outcome_digest"]


def outcome_digest(outcome: SlotOutcome) -> str:
    """Integrity checksum of one slot outcome (order-insensitive of caller).

    Covers everything the merge consumes — the schedule's cycle vector,
    the error string, the attempt count and the shipping backend — so any
    in-transit perturbation of the payload flips the digest even when the
    perturbed schedule happens to still be *legal*.
    """
    parts = [
        outcome.error or "",
        str(outcome.attempts),
        outcome.final_backend or "",
    ]
    result = outcome.result
    if result is not None:
        parts.append(",".join(str(c) for c in result.schedule.cycles))
        parts.append(str(result.rp_cost_value))
    payload = "\x1f".join(parts).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()[:16]


def _corrupt(outcome: SlotOutcome) -> SlotOutcome:
    """A deterministically perturbed copy of ``outcome`` (simulated bit rot).

    A result's schedule gets its cycle vector reversed — for any region
    with at least one dependency that is an illegal schedule the verifier
    rejects; the integrity digest catches the degenerate dependency-free
    case. A result-less outcome gets its error string garbled instead.
    """
    result = outcome.result
    if result is not None:
        schedule = result.schedule
        bad = Schedule(schedule.region, tuple(reversed(schedule.cycles)))
        return replace(outcome, result=replace(result, schedule=bad))
    return replace(outcome, error=(outcome.error or "") + " \x00corrupt")


@dataclass
class ShardReturn:
    """What one dispatch hands back to the supervisor.

    ``digest`` was computed by the worker *before* any in-transit
    corruption — the supervisor recomputes it from ``outcome`` and a
    mismatch convicts the payload.
    """

    slot: int
    worker: int
    dispatch: int
    outcome: SlotOutcome
    digest: str


class ShardWorker:
    """One supervised shard worker (simulated process + device).

    Mutable supervisor-side bookkeeping lives here — aliveness, restart
    count, the lifetime dispatch counter the fault sites key on, and the
    straggler demotion flag. None of it is visible to slot computation.
    """

    def __init__(
        self,
        worker_id: int,
        scheduler: MultiRegionScheduler,
        worker_faults: Optional[FaultPlan] = None,
    ):
        self.id = int(worker_id)
        # The worker's own device: identical geometry/cost model, separate
        # object — a fleet is N copies of the same card.
        self.scheduler = MultiRegionScheduler(
            scheduler.machine,
            params=scheduler.params,
            gpu_params=scheduler.gpu_params,
            device=replace(scheduler.device),
            telemetry=scheduler._telemetry,
        )
        self.worker_faults = worker_faults
        self.alive = True
        self.restarts = 0
        self.dispatches = 0
        self.demoted = False
        #: Busy-time head start in the next epoch (a restart's backoff).
        self.head_start = 0.0

    def run_dispatch(
        self,
        slot: int,
        item: BatchItem,
        blocks: int,
        fault_plan: Optional[FaultPlan] = None,
        resilience: Optional[ResilienceParams] = None,
    ) -> ShardReturn:
        """Run one slot on this worker; raise on a worker-level fault.

        ``fault_plan`` is the *region-level* plan (shared fleet-wide, sites
        keyed by region — worker-independent); ``self.worker_faults`` is
        the worker-level plan keyed by ``(worker, dispatch)``. Crash and
        hang fire before slot work; corruption fires after, perturbing the
        payload but not the digest.
        """
        dispatch = self.dispatches
        self.dispatches += 1
        plan = self.worker_faults
        if plan is not None and plan.worker_crashes(self.id, dispatch):
            raise WorkerCrash(
                "injected worker crash: worker %d dispatch %d" % (self.id, dispatch)
            )
        if plan is not None and plan.worker_hangs(self.id, dispatch):
            raise WorkerHang(
                "injected worker hang: worker %d dispatch %d" % (self.id, dispatch)
            )
        with worker_scope(self.id):
            outcome = self.scheduler.run_slot(
                item, blocks, fault_plan=fault_plan, resilience=resilience
            )
        digest = outcome_digest(outcome)
        if plan is not None and plan.worker_corrupts(self.id, dispatch):
            outcome = _corrupt(outcome)
        return ShardReturn(
            slot=slot, worker=self.id, dispatch=dispatch,
            outcome=outcome, digest=digest,
        )
