"""Deterministic shard partitioning and the merge reduce.

Two tiny pure functions carry the fleet's whole correctness story:

* :func:`partition_shards` — round-robin assignment of batch slots to
  shards, **in slot order**. It never looks at region contents, worker
  history or timing, so the assignment for a given ``(slots, num_shards)``
  is always the same — and because a slot's *result* is independent of
  which worker runs it (see
  :meth:`repro.parallel.MultiRegionScheduler.run_slot`), the assignment
  does not need to be stable across fault recoveries, only deterministic.

* :func:`merge_shard_results` — the deterministic reduce. Resolved slot
  outcomes arrive in whatever order recovery produced them; the merge
  re-assembles them by **explicit slot index** (``range(num_slots)``),
  never by iterating an unordered collection, so the merged tuple is
  bit-identical for any shard count and any recovery history. Duplicate
  or missing slots are a :class:`~repro.errors.FleetError` — a merge must
  account for every region exactly once.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple, TypeVar

from ..errors import FleetError

T = TypeVar("T")

__all__ = ["partition_shards", "merge_shard_results"]


def partition_shards(slots: Sequence[int], num_shards: int) -> List[List[int]]:
    """Round-robin split of ``slots`` across ``num_shards`` queues.

    Slot order is preserved within each queue (shard ``i`` gets
    ``slots[i]``, ``slots[i + num_shards]``, ...). Shards beyond the slot
    count come back empty — a two-region batch on an eight-worker fleet
    just idles six workers.
    """
    if num_shards < 1:
        raise FleetError("num_shards must be >= 1, got %d" % num_shards)
    queues: List[List[int]] = [[] for _ in range(num_shards)]
    for position, slot in enumerate(slots):
        queues[position % num_shards].append(int(slot))
    return queues


def merge_shard_results(
    num_slots: int, resolved: Iterable[Tuple[int, T]]
) -> List[T]:
    """Reduce resolved ``(slot_index, outcome)`` pairs into slot order.

    The reduce is deterministic by construction: outcomes are keyed by
    slot index on the way in (any arrival order) and read back by an
    explicit ``range(num_slots)`` walk — no unordered-collection
    iteration anywhere (the DET-005 rule this module is the poster child
    for). Raises :class:`FleetError` on a duplicate, out-of-range or
    missing slot; a merge that cannot account for every region exactly
    once must not ship.
    """
    if num_slots < 0:
        raise FleetError("num_slots must be >= 0, got %d" % num_slots)
    by_slot: Dict[int, T] = {}
    for slot, outcome in resolved:
        slot = int(slot)
        if not 0 <= slot < num_slots:
            raise FleetError(
                "merge saw out-of-range slot %d (batch has %d)" % (slot, num_slots)
            )
        if slot in by_slot:
            raise FleetError("merge saw slot %d twice" % slot)
        by_slot[slot] = outcome
    missing = [index for index in range(num_slots) if index not in by_slot]
    if missing:
        raise FleetError(
            "merge missing slot(s): %s" % ", ".join(str(i) for i in missing)
        )
    return [by_slot[index] for index in range(num_slots)]
