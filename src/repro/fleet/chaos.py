"""Fleet chaos harness: prove worker-fault detection -> reassignment ->
recovery -> bit-identical merge.

Three deterministic modes:

* :func:`fault_class_proofs` forces each worker fault class
  (``worker_crash``/``worker_hang``/``worker_corrupt``) at rate 1.0 —
  every dispatch faults — and demands that the fleet still resolves every
  region (through reassignment, bounded restarts and the serial host
  fallback) with a merged batch **bit-identical** to the single-device
  run. A class whose faults escaped detection, or whose recovery shipped
  a different result, fails the proof.
* :func:`chaos_sweep` runs pinned chaos seeds at the default mixed worker
  rates across several shard counts and aggregates recovery statistics.
* :func:`bitcheck` records one chaotic fleet run twice and diffs the run
  bundles (events, metrics, schedules — including the ``shards`` level —
  and RNG draws) down to the first divergence.

Runnable as a module — CI's fleet-chaos job is exactly::

    python -m repro.fleet.chaos --out fleet-proof/proof.json --bitcheck fleet-proof

Exit status: 0 when every proof holds, every sweep trial recovered and
merged bit-identically, and (with ``--bitcheck``) the recordings match;
1 otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import ACOParams, FleetParams, GPUParams
from ..gpusim.faults import DEFAULT_WORKER_CHAOS_RATES, WORKER_FAULT_CLASSES, FaultPlan
from ..machine.model import MachineModel
from ..machine.targets import amd_vega20
from ..parallel.multi_region import BatchItem, BatchResult, MultiRegionScheduler
from ..resilience.chaos import chaos_regions
from ..schedule.validate import validate_schedule
from .supervisor import FleetResult, FleetSupervisor

#: The pinned sweep CI runs (fixed on purpose: changing them changes which
#: worker faults the sweep sees, so treat edits like baseline updates).
PINNED_SEEDS: Tuple[int, ...] = (11, 23, 37, 58, 71, 94)

#: Region sizes of the harness batch — small and uneven on purpose: the
#: harness is about the supervision paths, not search quality.
DEFAULT_SIZES: Tuple[int, ...] = (8, 10, 12, 9)

#: Shard counts the sweep exercises.
DEFAULT_SHARDS: Tuple[int, ...] = (2, 4)


def fleet_items(
    machine: MachineModel, sizes: Sequence[int] = DEFAULT_SIZES, seed: int = 5
) -> List[BatchItem]:
    """The harness batch: one random region per size, seeded per slot."""
    return [
        BatchItem(ddg, seed=7 + index)
        for index, ddg in enumerate(chaos_regions(machine, sizes, seed=seed))
    ]


def fleet_scheduler(machine: MachineModel) -> MultiRegionScheduler:
    # Small colony, small launch: the supervision surface (dispatches,
    # heartbeats, reassignment, merge) is identical, only cheaper.
    return MultiRegionScheduler(
        machine,
        params=ACOParams(max_iterations=8),
        gpu_params=GPUParams(blocks=8),
    )


def batches_identical(single: BatchResult, fleet: BatchResult) -> bool:
    """Bitwise result comparison: every differential-surface field equal."""
    if (
        single.seconds != fleet.seconds
        or single.unbatched_seconds != fleet.unbatched_seconds
        or single.blocks_per_region != fleet.blocks_per_region
        or single.errors != fleet.errors
        or single.attempts != fleet.attempts
        or single.final_backends != fleet.final_backends
        or len(single.results) != len(fleet.results)
    ):
        return False
    for a, b in zip(single.results, fleet.results):
        if (a is None) != (b is None):
            return False
        if a is None:
            continue
        if (
            a.schedule != b.schedule
            or a.rp_cost_value != b.rp_cost_value
            or a.seconds != b.seconds
        ):
            return False
    return True


@dataclass
class FleetTrial:
    """One chaotic fleet run compared against the single-device truth."""

    chaos_seed: int
    num_shards: int
    fault_counts: Dict[str, int]
    reassignments: int
    restarts: int
    host_fallback_regions: int
    recovered_regions: int
    resolved: bool  # every slot merged exactly once
    identical: bool  # merged batch bit-identical to single-device
    schedules_valid: bool  # every shipped schedule re-validated
    fleet_seconds: float
    batch_seconds: float

    @property
    def faulted(self) -> bool:
        return any(self.fault_counts.values())

    @property
    def ok(self) -> bool:
        return self.resolved and self.identical and self.schedules_valid


@dataclass
class FleetChaosReport:
    """Aggregate of the proofs and/or the sweep."""

    trials: List[FleetTrial] = field(default_factory=list)

    @property
    def faults_by_class(self) -> Dict[str, int]:
        counts = {name: 0 for name in WORKER_FAULT_CLASSES}
        for trial in self.trials:
            for name in WORKER_FAULT_CLASSES:
                counts[name] += trial.fault_counts.get(name, 0)
        return counts

    @property
    def faulted_trials(self) -> List[FleetTrial]:
        return [t for t in self.trials if t.faulted]

    @property
    def recovery_rate(self) -> float:
        """Fraction of faulted trials that fully recovered bit-identically."""
        faulted = self.faulted_trials
        if not faulted:
            return 1.0
        return sum(1 for t in faulted if t.ok) / len(faulted)

    @property
    def all_ok(self) -> bool:
        return all(t.ok for t in self.trials)

    @property
    def reassignments(self) -> int:
        return sum(t.reassignments for t in self.trials)

    def summary(self) -> str:
        per_class = ", ".join(
            "%s=%d" % (name, count)
            for name, count in sorted(self.faults_by_class.items())
        )
        return (
            "%d trial(s), worker faults [%s], %d reassignment(s), "
            "recovery rate %.0f%%, merges %s"
            % (
                len(self.trials),
                per_class,
                self.reassignments,
                100.0 * self.recovery_rate,
                "all bit-identical" if self.all_ok else "DIVERGED",
            )
        )

    def to_json(self) -> Dict:
        """Deterministic JSON payload (the CI recovery-proof artifact)."""
        return {
            "trials": [
                {
                    "chaos_seed": t.chaos_seed,
                    "num_shards": t.num_shards,
                    "fault_counts": {
                        name: t.fault_counts.get(name, 0)
                        for name in WORKER_FAULT_CLASSES
                    },
                    "reassignments": t.reassignments,
                    "restarts": t.restarts,
                    "host_fallback_regions": t.host_fallback_regions,
                    "recovered_regions": t.recovered_regions,
                    "resolved": t.resolved,
                    "identical": t.identical,
                    "schedules_valid": t.schedules_valid,
                    "fleet_seconds": t.fleet_seconds,
                    "batch_seconds": t.batch_seconds,
                }
                for t in self.trials
            ],
            "faults_by_class": self.faults_by_class,
            "reassignments": self.reassignments,
            "recovery_rate": self.recovery_rate,
            "all_ok": self.all_ok,
        }


def _run_trial(
    machine: MachineModel,
    items: Sequence[BatchItem],
    single: BatchResult,
    num_shards: int,
    worker_faults: Optional[FaultPlan],
    chaos_seed: int,
) -> FleetTrial:
    scheduler = fleet_scheduler(machine)
    fleet: FleetResult = FleetSupervisor(
        scheduler,
        FleetParams(num_shards=num_shards),
        worker_faults=worker_faults,
    ).schedule_batch(items)
    batch = fleet.batch
    resolved = len(batch.results) == len(items)
    valid = True
    for item, result in zip(items, batch.results):
        if result is None:
            valid = False
            continue
        try:
            validate_schedule(result.schedule, item.ddg, machine)
        except Exception:
            valid = False
    return FleetTrial(
        chaos_seed=chaos_seed,
        num_shards=num_shards,
        fault_counts=dict(fleet.worker_faults),
        reassignments=fleet.reassignments,
        restarts=fleet.restarts,
        host_fallback_regions=fleet.host_fallback_regions,
        recovered_regions=fleet.recovered_regions,
        resolved=resolved,
        identical=batches_identical(single, batch),
        schedules_valid=valid,
        fleet_seconds=fleet.fleet_seconds,
        batch_seconds=batch.seconds,
    )


def fault_class_proofs(
    machine: Optional[MachineModel] = None,
    sizes: Sequence[int] = DEFAULT_SIZES,
    num_shards: int = 2,
) -> FleetChaosReport:
    """Force each worker fault class at rate 1.0; demand full recovery.

    At rate 1.0 every dispatch faults, so every region must travel the
    class's whole recovery path — crash/hang: detection, reassignment,
    bounded restarts, then serial host fallback; corrupt: integrity/
    verifier rejection and re-dispatch — and the merged batch must still
    be bit-identical to the single-device run.
    """
    machine = machine or amd_vega20()
    items = fleet_items(machine, sizes)
    single = fleet_scheduler(machine).schedule_batch(items)
    report = FleetChaosReport()
    for fault_class in WORKER_FAULT_CLASSES:
        plan = FaultPlan(seed=1, rates={fault_class: 1.0})
        trial = _run_trial(machine, items, single, num_shards, plan, chaos_seed=1)
        if not trial.fault_counts.get(fault_class):
            trial.schedules_valid = False  # rate-1.0 must inject
        report.trials.append(trial)
    return report


def chaos_sweep(
    seeds: Sequence[int] = PINNED_SEEDS,
    machine: Optional[MachineModel] = None,
    sizes: Sequence[int] = DEFAULT_SIZES,
    shards: Sequence[int] = DEFAULT_SHARDS,
    rates: Optional[Dict[str, float]] = None,
) -> FleetChaosReport:
    """Chaotic fleet runs across seeds x shard counts at mixed rates."""
    machine = machine or amd_vega20()
    items = fleet_items(machine, sizes)
    single = fleet_scheduler(machine).schedule_batch(items)
    report = FleetChaosReport()
    for chaos_seed in seeds:
        plan = FaultPlan(
            seed=chaos_seed, rates=dict(rates or DEFAULT_WORKER_CHAOS_RATES)
        )
        for num_shards in shards:
            report.trials.append(
                _run_trial(machine, items, single, num_shards, plan, chaos_seed)
            )
    return report


def bitcheck(
    seed: int,
    sizes: Sequence[int],
    num_shards: int,
    out_dir: str,
) -> Tuple[bool, Dict]:
    """Record one chaotic fleet run twice and diff the bundles.

    The fleet's recovery paths (reassignment order, restarts, host
    fallback) must themselves be deterministic: two recordings of the
    same chaotic run have to produce byte-identical run bundles —
    including the ``shards`` schedule entries, so a divergence names the
    exact slot/worker/dispatch where supervision forked.
    """
    import os

    from ..obs.diff import diff_bundles, write_report
    from ..obs.record import RunRecorder, recording_scope
    from ..telemetry import Telemetry, telemetry_session

    machine = amd_vega20()
    items = fleet_items(machine, sizes)
    plan = FaultPlan.worker_plan(seed)
    paths = []
    for label in ("a", "b"):
        path = os.path.join(out_dir, "fleet-%s" % label)
        recorder = RunRecorder(draws="digest")
        telemetry = Telemetry(sink=recorder.sink)
        with telemetry_session(telemetry), recording_scope(recorder):
            FleetSupervisor(
                fleet_scheduler(machine),
                FleetParams(num_shards=num_shards),
                worker_faults=plan,
            ).schedule_batch(items)
        recorder.save(path)
        paths.append(path)
    report = diff_bundles(paths[0], paths[1])
    if not report["identical"]:
        write_report(report, os.path.join(out_dir, "first-divergence.json"))
    return bool(report["identical"]), report


def main(argv: Optional[Sequence[str]] = None) -> int:
    import argparse
    import json

    parser = argparse.ArgumentParser(
        prog="python -m repro.fleet.chaos",
        description="Fleet chaos: worker-fault proofs + seed sweep + bitcheck.",
    )
    parser.add_argument(
        "--seeds",
        default=",".join(str(s) for s in PINNED_SEEDS),
        help="comma-separated worker chaos seeds for the mixed-rate sweep",
    )
    parser.add_argument(
        "--sizes",
        default=",".join(str(s) for s in DEFAULT_SIZES),
        help="comma-separated region sizes for the harness batch",
    )
    parser.add_argument(
        "--shards",
        default=",".join(str(s) for s in DEFAULT_SHARDS),
        help="comma-separated shard counts for the sweep",
    )
    parser.add_argument(
        "--skip-proofs",
        action="store_true",
        help="run only the mixed-rate sweep (skip the rate-1.0 proofs)",
    )
    parser.add_argument(
        "--out",
        metavar="FILE",
        default=None,
        help="write the recovery-proof JSON artifact to FILE",
    )
    parser.add_argument(
        "--bitcheck",
        metavar="DIR",
        default=None,
        help="record one chaotic fleet run twice into DIR and diff the "
        "bundles; a mismatch writes DIR/first-divergence.json and fails",
    )
    args = parser.parse_args(argv)
    seeds = [int(s) for s in args.seeds.split(",") if s.strip()]
    sizes = [int(s) for s in args.sizes.split(",") if s.strip()]
    shards = [int(s) for s in args.shards.split(",") if s.strip()]

    failed = False
    payload: Dict = {}
    if not args.skip_proofs:
        proofs = fault_class_proofs(sizes=sizes, num_shards=min(shards))
        print("[fleet-chaos] per-class proofs: %s" % proofs.summary())
        classes = proofs.faults_by_class
        for fault_class in WORKER_FAULT_CLASSES:
            if not classes.get(fault_class):
                print("[fleet-chaos] FAIL: class %r never injected" % fault_class)
                failed = True
        if proofs.recovery_rate < 1.0 or not proofs.all_ok:
            print("[fleet-chaos] FAIL: a forced-fault fleet run diverged")
            failed = True
        payload["proofs"] = proofs.to_json()

    sweep = chaos_sweep(seeds=seeds, sizes=sizes, shards=shards)
    print("[fleet-chaos] mixed-rate sweep: %s" % sweep.summary())
    if not sweep.all_ok:
        failed = True
    payload["sweep"] = sweep.to_json()

    if args.bitcheck:
        import os

        os.makedirs(args.bitcheck, exist_ok=True)
        identical, report = bitcheck(seeds[0], sizes, min(shards), args.bitcheck)
        payload["bitcheck_identical"] = identical
        if identical:
            print("[fleet-chaos] bitcheck: recorded fleet runs byte-identical")
        else:
            from ..obs.diff import render_report

            print("[fleet-chaos] FAIL: recorded fleet runs diverged")
            print(render_report(report), end="")
            failed = True

    if args.out:
        import os

        payload["ok"] = not failed
        directory = os.path.dirname(args.out)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(args.out, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("[fleet-chaos] recovery proof written to %s" % args.out)

    print("[fleet-chaos] %s" % ("FAILED" if failed else "OK"))
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
