"""Benchmark trajectory: append-only ``BENCH_history.jsonl``.

Every ``python -m repro.bench --history PATH`` run appends one line
summarizing the run — git revision, cost-model digest, scale, and every
bench metric value — so the perf trajectory accumulates across commits
instead of living only in the latest ``BENCH_*.json``. Entries are
wall-clock-free: two history appends of the same tree at the same scale
are byte-identical, and the ordering *is* the chronology (append order =
run order), matching the repo's no-timestamps discipline.

``python -m repro.bench.history PATH`` renders a tiny trend report:
latest entry vs. the oldest comparable one, flagging moves against each
metric's gated direction.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Optional, Sequence, Tuple

#: Version stamp of one history line.
HISTORY_SCHEMA = 1

#: Default history file name (appended next to the bench --out directory).
DEFAULT_HISTORY = "BENCH_history.jsonl"


def history_entry(payloads: Sequence[Dict]) -> Dict:
    """One history line summarizing a bench run's payloads.

    Carries the shared fingerprint identity (git revision + cost-model
    digest + scale) and the full metric dict of every bench — value, unit
    and gating direction — but no wall-clock fields.
    """
    fingerprint: Dict = payloads[0].get("fingerprint", {}) if payloads else {}
    return {
        "history_schema": HISTORY_SCHEMA,
        "scale": payloads[0].get("scale") if payloads else None,
        "git": fingerprint.get("git"),
        "cost_model_digest": fingerprint.get("cost_model_digest"),
        "benches": {
            p["name"]: {
                name: dict(spec) for name, spec in sorted(p["metrics"].items())
            }
            for p in payloads
        },
    }


def append_history(path: str, payloads: Sequence[Dict]) -> Dict:
    """Append one :func:`history_entry` line to ``path``; returns the entry."""
    entry = history_entry(payloads)
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "a") as handle:
        handle.write(json.dumps(entry, sort_keys=True))
        handle.write("\n")
    return entry


def load_history(path: str) -> Tuple[List[Dict], int]:
    """Read a history file leniently: ``(entries, skipped_lines)``."""
    entries: List[Dict] = []
    skipped = 0
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except ValueError:
                skipped += 1
                continue
            if isinstance(entry, dict) and "benches" in entry:
                entries.append(entry)
            else:
                skipped += 1
    return entries, skipped


def _short_git(entry: Dict) -> str:
    git = entry.get("git")
    return str(git)[:10] if git else "(no git)"


def render_trend(entries: Sequence[Dict], scale: Optional[str] = None) -> str:
    """Latest entry vs. the oldest same-scale one, per gated metric.

    Metrics with direction ``info`` are skipped; a move against the gated
    direction is flagged with ``!``.
    """
    if scale is not None:
        entries = [e for e in entries if e.get("scale") == scale]
    if not entries:
        return "(no history entries)\n"
    latest = entries[-1]
    baseline = next(
        (e for e in entries if e.get("scale") == latest.get("scale")), latest
    )
    lines = [
        "bench history: %d entr%s at scale %r, %s .. %s"
        % (
            len(entries),
            "y" if len(entries) == 1 else "ies",
            latest.get("scale"),
            _short_git(baseline),
            _short_git(latest),
        )
    ]
    for bench in sorted(latest.get("benches", {})):
        new_metrics = latest["benches"][bench]
        old_metrics = baseline.get("benches", {}).get(bench, {})
        for name in sorted(new_metrics):
            spec = new_metrics[name]
            direction = spec.get("direction", "info")
            if direction == "info":
                continue
            new_value = spec.get("value")
            old_spec = old_metrics.get(name, {})
            old_value = old_spec.get("value")
            label = "%s.%s" % (bench, name)
            if old_value in (None, new_value) or latest is baseline:
                lines.append(
                    "  %-44s %12.4g %s [%s]"
                    % (label, new_value, spec.get("unit", ""), direction)
                )
                continue
            delta = new_value - old_value
            pct = (100.0 * delta / old_value) if old_value else float("inf")
            worse = (direction == "lower" and delta > 0) or (
                direction == "higher" and delta < 0
            )
            lines.append(
                "  %-44s %12.4g -> %-12.4g (%+.2f%%) [%s]%s"
                % (label, old_value, new_value, pct, direction,
                   "  !" if worse else "")
            )
    return "\n".join(lines) + "\n"


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.history",
        description="Render the trend report of a BENCH_history.jsonl file.",
    )
    parser.add_argument("history", help="path to a BENCH_history.jsonl file")
    parser.add_argument(
        "--scale", default=None, help="restrict the trend to one scale"
    )
    args = parser.parse_args(argv)
    if not os.path.exists(args.history):
        print("error: no history file at %s" % args.history, file=sys.stderr)
        return 2
    entries, skipped = load_history(args.history)
    if skipped:
        print(
            "warning: skipped %d malformed history line(s)" % skipped,
            file=sys.stderr,
        )
    print(render_trend(entries, scale=args.scale), end="")
    return 0


if __name__ == "__main__":
    sys.exit(main())
