"""Environment/configuration fingerprinting for BENCH_*.json.

The fingerprint answers "what produced these numbers?" without breaking
bit-stability: it records the interpreter, the library versions, the
experiment-scale parameters and a digest of the calibration constants in
:mod:`repro.timing` — but never a wall-clock timestamp, so re-running the
same revision yields byte-identical files. The git revision is best-effort
(read from ``.git`` directly; absent outside a checkout) and comparison
never keys on it.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import platform
import sys
from typing import Dict, Optional

from ..experiments.common import ExperimentScale
from ..timing import DEFAULT_COMPILE_TIME, DEFAULT_CPU_COST, DEFAULT_GPU_COST


def cost_model_digest() -> str:
    """A short stable hash of every calibration constant in repro.timing."""
    parts = []
    for model in (DEFAULT_CPU_COST, DEFAULT_GPU_COST, DEFAULT_COMPILE_TIME):
        for field in dataclasses.fields(model):
            parts.append("%s.%s=%r" % (
                type(model).__name__, field.name, getattr(model, field.name),
            ))
    blob = ";".join(sorted(parts)).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()[:16]


def git_revision(repo_dir: Optional[str] = None) -> Optional[str]:
    """The checked-out commit, read from ``.git`` without spawning git."""
    if repo_dir is None:
        # src/repro/bench/fingerprint.py -> repo root is three levels up
        # from the package directory.
        here = os.path.dirname(os.path.abspath(__file__))
        repo_dir = os.path.dirname(os.path.dirname(os.path.dirname(here)))
    head_path = os.path.join(repo_dir, ".git", "HEAD")
    try:
        with open(head_path, "r", encoding="utf-8") as handle:
            head = handle.read().strip()
        if head.startswith("ref:"):
            ref = head.split(None, 1)[1]
            ref_path = os.path.join(repo_dir, ".git", *ref.split("/"))
            if os.path.exists(ref_path):
                with open(ref_path, "r", encoding="utf-8") as handle:
                    return handle.read().strip()
            packed = os.path.join(repo_dir, ".git", "packed-refs")
            if os.path.exists(packed):
                with open(packed, "r", encoding="utf-8") as handle:
                    for line in handle:
                        if line.strip().endswith(ref):
                            return line.split()[0]
            return None
        return head or None
    except OSError:
        return None


def environment_fingerprint(scale: ExperimentScale) -> Dict[str, object]:
    try:
        import numpy

        numpy_version = numpy.__version__
    except Exception:  # pragma: no cover - numpy is a hard dependency
        numpy_version = None
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "numpy": numpy_version,
        "platform": sys.platform,
        "machine": platform.machine(),
        "git": git_revision(),
        "cost_model_digest": cost_model_digest(),
        "scale": {
            "name": scale.name,
            "num_benchmarks": scale.suite.num_benchmarks,
            "num_kernels": scale.suite.num_kernels,
            "regions_per_kernel": scale.suite.regions_per_kernel,
            "seed": scale.suite.seed,
            "max_region_size": scale.max_region_size,
            "blocks": scale.gpu.blocks,
            "large_region_floor": scale.large_region_floor,
        },
    }
