"""The continuous-benchmark registry and BENCH_*.json writer.

Each bench extracts a handful of *scalar* metrics from the shared
:class:`repro.experiments.common.ExperimentContext` — the same cached
compile runs the tables and figures read — and the runner serializes them
to a versioned ``BENCH_<name>.json``. Because every simulated second in
this reproduction is deterministic, the files are bit-stable for a given
scale and code revision: any diff against a committed baseline is a real
behavior change, not noise, which is what makes threshold-based CI gating
(see :mod:`repro.bench.compare`) meaningful at all.

Metric schema (``bench_schema`` 1)::

    {"bench_schema": 1, "name": "table2", "scale": "test",
     "fingerprint": {...}, "metrics": {"<metric>": {
         "value": <float>, "unit": "<unit>", "direction": "lower|higher|info"}}}

``direction`` drives regression comparison: ``lower`` means smaller is
better (times), ``higher`` means bigger is better (speedups, improvement
percentages) and ``info`` is recorded but never gated (counts, coverage).
"""

from __future__ import annotations

import json
import math
import os
from contextlib import ExitStack
from typing import Callable, Dict, List, Optional

from ..config import geometric_mean
from ..errors import BenchError
from ..experiments.common import (
    ExperimentContext,
    thresholded_compile_seconds,
)
from ..pipeline.stats import improvement_statistics
from ..profile import attribution, get_profiler
from ..telemetry import get_telemetry
from .fingerprint import environment_fingerprint

#: Version of the BENCH_*.json layout.
BENCH_SCHEMA = 1

#: The production cycle threshold used by the compile-time and
#: execution-time experiments (Table 5 / Figure 4).
PRODUCTION_THRESHOLD = 21


def metric(value: float, unit: str, direction: str = "info") -> Dict[str, object]:
    if direction not in ("lower", "higher", "info"):
        raise BenchError("bad metric direction %r" % direction)
    return {"value": float(value), "unit": unit, "direction": direction}


# -- bench extractors ----------------------------------------------------------


def bench_table2(context: ExperimentContext) -> Dict[str, Dict[str, object]]:
    """Table 2: schedule-quality improvement of parallel ACO vs. AMD."""
    stats = improvement_statistics(context.run("parallel"))
    return {
        "pass1_regions": metric(stats.pass1_regions, "regions"),
        "pass2_regions": metric(stats.pass2_regions, "regions"),
        "overall_occupancy_increase_pct": metric(
            stats.overall_occupancy_increase_pct, "pct", "higher"
        ),
        "max_occupancy_increase_pct": metric(
            stats.max_occupancy_increase_pct, "pct", "higher"
        ),
        "overall_length_reduction_pct": metric(
            stats.overall_length_reduction_pct, "pct", "higher"
        ),
        "max_length_reduction_pct": metric(
            stats.max_length_reduction_pct, "pct", "higher"
        ),
    }


def bench_table3(context: ExperimentContext) -> Dict[str, Dict[str, object]]:
    """Table 3: parallel-over-sequential scheduling speedup per pass."""
    records = context.speedup_records()
    out: Dict[str, Dict[str, object]] = {}
    for pass_index in (1, 2):
        speedups = [r.speedup for r in records if r.pass_index == pass_index]
        out["pass%d_comparable_regions" % pass_index] = metric(
            len(speedups), "regions"
        )
        if speedups:
            out["pass%d_geomean_speedup" % pass_index] = metric(
                geometric_mean(speedups), "x", "higher"
            )
            out["pass%d_max_speedup" % pass_index] = metric(
                max(speedups), "x", "higher"
            )
    return out


def bench_table5(context: ExperimentContext) -> Dict[str, Dict[str, object]]:
    """Table 5: total compile times at the production cycle threshold."""
    base = context.run("baseline").total_seconds
    seq = thresholded_compile_seconds(
        context, context.run("sequential"), PRODUCTION_THRESHOLD
    )
    par = thresholded_compile_seconds(
        context, context.run("parallel"), PRODUCTION_THRESHOLD
    )
    out = {
        "base_compile_seconds": metric(base, "s", "lower"),
        "sequential_compile_seconds": metric(seq, "s", "lower"),
        "parallel_compile_seconds": metric(par, "s", "lower"),
    }
    if base > 0:
        out["sequential_overhead_pct"] = metric(
            100.0 * (seq - base) / base, "pct", "lower"
        )
        out["parallel_overhead_pct"] = metric(
            100.0 * (par - base) / base, "pct", "lower"
        )
    if seq > 0:
        out["parallel_vs_sequential_reduction_pct"] = metric(
            100.0 * (seq - par) / seq, "pct", "higher"
        )
    return out


def bench_fig4(context: ExperimentContext) -> Dict[str, Dict[str, object]]:
    """Figure 4: modelled execution-time speedup of the benchmarks."""
    from ..experiments.common import threshold_pick
    from ..perf.exec_model import (
        ExecutionModel,
        benchmark_results,
        sensitive_benchmarks,
    )

    suite = context.suite
    model = ExecutionModel()
    runs = [context.run("baseline"), context.run("parallel"), context.run("cp")]
    sensitive = sensitive_benchmarks(suite, runs, model)
    pick, _invoked = threshold_pick(context, PRODUCTION_THRESHOLD)
    results = benchmark_results(
        suite, context.run("parallel"), model, benchmarks=sensitive, pick_aco=pick
    )
    significant = [r for r in results if r.significant]
    ratios = [r.aco_throughput / r.base_throughput for r in significant]
    geomean_pct = (
        100.0 * (math.exp(sum(math.log(x) for x in ratios) / len(ratios)) - 1.0)
        if ratios
        else 0.0
    )
    improvements = [r.improvement_pct for r in significant if r.improvement_pct > 0]
    regressions = [-r.improvement_pct for r in results if r.improvement_pct < 0]
    return {
        "significant_benchmarks": metric(len(significant), "benchmarks"),
        "geomean_improvement_pct": metric(geomean_pct, "pct", "higher"),
        "max_improvement_pct": metric(
            max(improvements, default=0.0), "pct", "higher"
        ),
        "max_regression_pct": metric(max(regressions, default=0.0), "pct", "lower"),
    }


#: Table-2-scale duel regions for ``bench_backend``: one per paper size
#: class (1-49, 50-99, and the >=100 band clipped to the scale's cap).
_BACKEND_DUEL_REGIONS = (("reduce", 3, 30), ("sort", 5, 55), ("stencil", 1, 80))


def _construct_stats(context: ExperimentContext, backend: str):
    """Schedule the duel regions with one backend; return the construction
    hot path's cost-model totals (summed over launches).

    "Construction" is the per-step work the backends execute differently —
    the compute/memory/alloc attribution of each kernel launch; the
    wavefront-uniform overhead (reduction, pheromone, barriers) is
    identical by construction and excluded.
    """
    import random

    from ..ddg import DDG
    from ..parallel import ParallelACOScheduler
    from ..suite.patterns import pattern_region
    from ..telemetry import MemorySink, Telemetry

    sink = MemorySink()
    scheduler = ParallelACOScheduler(
        context.machine,
        params=context.scale.aco,
        gpu_params=context.scale.gpu,
        telemetry=Telemetry(sink=sink),
        backend=backend,
    )
    orders = []
    for pattern, seed, size in _BACKEND_DUEL_REGIONS:
        region = pattern_region(pattern, random.Random(seed), size)
        result = scheduler.schedule(DDG(region), seed=context.scale.suite.seed)
        orders.append(tuple(result.schedule.order))
    construct = sum(
        r["compute_seconds"] + r["memory_seconds"] + r["alloc_seconds"]
        for r in sink.by_type("kernel_launch")
    )
    iterations = sum(r["iterations"] for r in sink.by_type("kernel_launch"))
    return construct, iterations, orders


def bench_backend(context: ExperimentContext) -> Dict[str, Dict[str, object]]:
    """Backend duel: vectorized vs. loop ant construction on Table-2-scale
    regions — same decisions, different simulated kernels.

    ``construct_speedup`` is the headline: cost-model seconds per
    iteration of the loop backend's divergent serialized-lane kernel over
    the vectorized backend's lockstep kernel (the paper's Section V
    argument as a measurement; the acceptance floor is 3x).
    """
    vec_seconds, vec_iters, vec_orders = _construct_stats(context, "vectorized")
    loop_seconds, loop_iters, loop_orders = _construct_stats(context, "loop")
    vec_per_iter = vec_seconds / max(vec_iters, 1)
    loop_per_iter = loop_seconds / max(loop_iters, 1)
    return {
        "duel_regions": metric(len(_BACKEND_DUEL_REGIONS), "regions"),
        "iterations": metric(vec_iters, "iterations"),
        "schedules_identical": metric(
            1.0 if (vec_orders == loop_orders and vec_iters == loop_iters) else 0.0,
            "bool",
            "higher",
        ),
        "vectorized_construct_seconds_per_iteration": metric(
            vec_per_iter, "s", "lower"
        ),
        "loop_construct_seconds_per_iteration": metric(loop_per_iter, "s"),
        "construct_speedup": metric(
            loop_per_iter / vec_per_iter if vec_per_iter > 0 else 0.0,
            "x",
            "higher",
        ),
    }


def bench_resilience(context: ExperimentContext) -> Dict[str, Dict[str, object]]:
    """Resilience: chaos-sweep recovery rate and retry overhead.

    Runs the chaos harness's pinned mixed-rate sweep on its own small
    region set (independent of the shared compile runs — fault handling,
    not search quality). Deterministic like everything else here: the
    same seeds inject the same faults, so ``recovery_rate_pct`` dropping
    below baseline means a recovery path broke.
    """
    from ..resilience.chaos import chaos_sweep

    # Doubled fault rates vs. the default chaos profile: the bench wants a
    # dense, still-deterministic fault sample, not a realistic one.
    report = chaos_sweep(
        seeds=(11, 23, 37),
        sizes=(10, 12),
        rates={"launch": 0.25, "corruption": 0.25, "hang": 0.25, "oom": 0.15},
    )
    faulted = report.faulted_trials
    return {
        "trials": metric(len(report.trials), "regions"),
        "faulted_trials": metric(len(faulted), "regions"),
        "faults_injected": metric(
            sum(report.faults_by_class.values()), "faults"
        ),
        "recovery_rate_pct": metric(
            100.0 * report.recovery_rate, "pct", "higher"
        ),
        "degraded_regions": metric(report.degraded, "regions", "lower"),
        "retry_overhead_seconds": metric(
            report.retry_overhead_seconds, "s", "lower"
        ),
        "schedules_valid": metric(
            1.0 if report.all_valid else 0.0, "bool", "higher"
        ),
    }


def bench_obs(context: ExperimentContext) -> Dict[str, Dict[str, object]]:
    """Observability: aggregation overhead and trace-context coverage.

    Compiles the shared suite once with a :class:`repro.obs` aggregating
    sink attached and reports what the observability layer *cost* (in
    modeled seconds — the aggregator has no wall clock) and what it
    *covered* (every region one trace, every event stamped). The gate is
    the overhead ratio: aggregation must stay well under the telemetry
    emit cost it piggybacks on (<5% is the design target).

    Runs under an inert profiler on a fresh pipeline: the bench must not
    charge spans into the run-wide profiler that ``bench_profile``
    reconciles, nor disturb the context's cached runs.
    """
    from ..obs.aggregate import AggregatingSink, MetricsAggregator
    from ..pipeline.compiler import CompilePipeline
    from ..profile import NullProfiler, profile_session
    from ..telemetry import Telemetry

    aggregator = MetricsAggregator()
    telemetry = Telemetry(sink=AggregatingSink(aggregator), collect_metrics=False)
    pipeline = CompilePipeline(
        context.machine,
        scheduler=context.parallel_scheduler(),
        filters=context.filters_for_stats,
        baseline=context.baseline_scheduler(),
        telemetry=telemetry,
    )
    with profile_session(NullProfiler()):
        pipeline.compile_suite(context.suite)

    snapshot_bytes = len(aggregator.snapshot_json().encode("utf-8"))
    updates_per_event = (
        aggregator.updates / aggregator.events if aggregator.events else 0.0
    )
    return {
        "trace_events": metric(aggregator.events, "events"),
        "aggregator_updates": metric(aggregator.updates, "updates"),
        "updates_per_event": metric(updates_per_event, "ratio", "lower"),
        "modeled_overhead_pct": metric(
            aggregator.modeled_overhead_pct(), "pct", "lower"
        ),
        "snapshot_bytes": metric(snapshot_bytes, "bytes"),
        "distinct_traces": metric(aggregator.traces, "traces"),
        "regions_aggregated": metric(aggregator.regions, "regions"),
    }


#: Scenario-diversity regions: one pinned (family, seed, size) per hostile
#: generator family, sized to stress the advertised failure mode while
#: staying fast at test scale (``giant`` is clipped well below its 1024
#: default; the nightly pytest sweep covers the full-size regions).
_SCENARIO_REGIONS = (
    ("giant", 0, 160),
    ("pressure_cliff", 0, 64),
    ("long_chain", 0, 48),
    ("fanout", 0, 96),
)


def bench_scenarios(context: ExperimentContext) -> Dict[str, Dict[str, object]]:
    """Scenario diversity: hostile-workload families under AS and MMAS.

    Schedules every hostile family with both pheromone strategies on the
    parallel scheduler and records the landing costs. Two gates fall out:
    per-family cost regressions (a generator or strategy change that makes
    any hostile region schedule worse), and the AS-vs-MMAS duel summary
    (how often MMAS matches or beats the Ant System floor on rp cost).
    Everything is pinned-seed deterministic, so the committed baseline is
    byte-stable.
    """
    from ..ddg import DDG
    from ..parallel import ParallelACOScheduler
    from ..suite.hostile import hostile_region

    strategies = ("as", "mmas")
    schedulers = {
        name: ParallelACOScheduler(
            context.machine,
            params=context.scale.aco,
            gpu_params=context.scale.gpu,
            strategy=name,
        )
        for name in strategies
    }
    out: Dict[str, Dict[str, object]] = {
        "families": metric(len(_SCENARIO_REGIONS), "families"),
    }
    mmas_ties_or_wins = 0
    for family, seed, size in _SCENARIO_REGIONS:
        ddg = DDG(hostile_region(family, seed=seed, size=size))
        costs = {}
        for name in strategies:
            result = schedulers[name].schedule(ddg, seed=context.scale.suite.seed)
            costs[name] = result
            out["%s_%s_rp_cost" % (family, name)] = metric(
                result.rp_cost_value, "cost", "lower"
            )
            out["%s_%s_length" % (family, name)] = metric(
                result.length, "cycles", "lower"
            )
        if costs["mmas"].rp_cost_value <= costs["as"].rp_cost_value:
            mmas_ties_or_wins += 1
    out["mmas_ties_or_wins_rp"] = metric(
        mmas_ties_or_wins, "families", "higher"
    )
    return out


def bench_fleet(context: ExperimentContext) -> Dict[str, Dict[str, object]]:
    """Fleet sharding: scaling efficiency, chaos recovery, bit-identity.

    Runs the fleet harness batch fault-free at N in {1, 2, 4} and records
    the makespans and scaling efficiencies, then replays the pinned
    worker-chaos sweep and records recovery statistics and the recovery
    overhead in simulated seconds (chaotic makespan minus the fault-free
    makespan at the same shard count). ``identical_to_single_device`` is
    the headline gate: every fleet merge — fault-free or chaotic — must
    be bit-identical to the single-device run.

    Isolated under an inert profiler and a private telemetry session so
    the fleet runs don't perturb the cumulative counters ``bench_profile``
    reconciles.
    """
    from ..config import FleetParams
    from ..fleet import FleetSupervisor
    from ..fleet.chaos import (
        DEFAULT_SHARDS,
        batches_identical,
        chaos_sweep,
        fleet_items,
        fleet_scheduler,
    )
    from ..profile import NullProfiler, profile_session
    from ..telemetry import Telemetry, telemetry_session

    machine = context.machine
    out: Dict[str, Dict[str, object]] = {}
    with ExitStack() as stack:
        stack.enter_context(profile_session(NullProfiler()))
        stack.enter_context(telemetry_session(Telemetry(collect_metrics=False)))

        items = fleet_items(machine)
        single = fleet_scheduler(machine).schedule_batch(items)
        out["regions"] = metric(len(items), "regions")
        out["single_device_seconds"] = metric(single.seconds, "s", "lower")

        identical = True
        faultfree_makespans: Dict[int, float] = {}
        for num_shards in DEFAULT_SHARDS:
            fleet = FleetSupervisor(
                fleet_scheduler(machine), FleetParams(num_shards=num_shards)
            ).schedule_batch(items)
            identical = identical and batches_identical(single, fleet.batch)
            faultfree_makespans[num_shards] = fleet.fleet_seconds
            out["shards%d_makespan_seconds" % num_shards] = metric(
                fleet.fleet_seconds, "s", "lower"
            )
            out["shards%d_scaling_efficiency" % num_shards] = metric(
                fleet.scaling_efficiency, "ratio", "higher"
            )

        sweep = chaos_sweep(seeds=(11, 23), machine=machine)
        identical = identical and sweep.all_ok
        overhead = sum(
            max(0.0, t.fleet_seconds - faultfree_makespans[t.num_shards])
            for t in sweep.trials
        )
    out["chaos_trials"] = metric(len(sweep.trials), "runs")
    out["worker_faults_injected"] = metric(
        sum(sweep.faults_by_class.values()), "faults"
    )
    out["reassignments"] = metric(sweep.reassignments, "reassignments")
    out["recovery_rate_pct"] = metric(
        100.0 * sweep.recovery_rate, "pct", "higher"
    )
    out["chaos_recovery_overhead_seconds"] = metric(overhead, "s", "lower")
    out["identical_to_single_device"] = metric(
        1.0 if identical else 0.0, "bool", "higher"
    )
    return out


def bench_profile(context: ExperimentContext) -> Dict[str, Dict[str, object]]:
    """Profiler self-check plus kernel cost attribution rollups.

    Runs last: it reads the span profiler and telemetry metrics the runner
    installed before the other benches populated the context, and reconciles
    the profiled seconds against the compile runs that actually executed.
    """
    prof = get_profiler()
    out: Dict[str, Dict[str, object]] = {}
    if prof.enabled:
        att = attribution(prof.root)
        run_seconds = sum(
            run.total_seconds for run in context.computed_runs().values()
        )
        out["profiled_total_seconds"] = metric(att.total_seconds, "s")
        out["leaf_attribution_fraction"] = metric(att.fraction, "ratio", "higher")
        if run_seconds > 0:
            out["profile_coverage_fraction"] = metric(
                att.total_seconds / run_seconds, "ratio", "higher"
            )
    tele = get_telemetry()
    if tele.collect_metrics:
        for name in (
            "gpusim.launches",
            "gpusim.kernel_us",
            "gpusim.transfer_us",
            "gpusim.launch_us",
            "gpusim.compute_cycles",
            "gpusim.memory_cycles",
            "gpusim.uniform_cycles",
            "seq.steps",
            "seq.ready_scans",
        ):
            m = tele.metrics.get(name)
            if m is not None:
                out[name.replace(".", "_")] = metric(m.value, "count")
    return out


#: Name -> extractor. Order matters: ``profile`` reconciles against the
#: context state the earlier benches produced, so it stays last.
BENCHES: Dict[str, Callable[[ExperimentContext], Dict[str, Dict[str, object]]]] = {
    "table2": bench_table2,
    "table3": bench_table3,
    "table5": bench_table5,
    "fig4": bench_fig4,
    "backend": bench_backend,
    "resilience": bench_resilience,
    "obs": bench_obs,
    "scenarios": bench_scenarios,
    "fleet": bench_fleet,
    "profile": bench_profile,
}


# -- serialization -------------------------------------------------------------


def bench_payload(
    name: str,
    context: ExperimentContext,
    metrics: Dict[str, Dict[str, object]],
    fingerprint: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    return {
        "bench_schema": BENCH_SCHEMA,
        "name": name,
        "scale": context.scale.name,
        "fingerprint": fingerprint
        if fingerprint is not None
        else environment_fingerprint(context.scale),
        "metrics": metrics,
    }


def bench_filename(name: str) -> str:
    return "BENCH_%s.json" % name


def write_bench(out_dir: str, payload: Dict[str, object]) -> str:
    """Write one bench payload; returns the file path."""
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, bench_filename(str(payload["name"])))
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def run_benches(
    context: ExperimentContext,
    names: Optional[List[str]] = None,
    fingerprint: Optional[Dict[str, object]] = None,
) -> List[Dict[str, object]]:
    """Run the selected benches (all by default, registry order)."""
    selected = list(BENCHES) if not names else list(names)
    unknown = [n for n in selected if n not in BENCHES]
    if unknown:
        raise BenchError(
            "unknown bench(es): %s (choose from %s)"
            % (", ".join(unknown), ", ".join(BENCHES))
        )
    if fingerprint is None:
        fingerprint = environment_fingerprint(context.scale)
    payloads = []
    for name in BENCHES:  # registry order, not selection order
        if name not in selected:
            continue
        metrics = BENCHES[name](context)
        payloads.append(bench_payload(name, context, metrics, fingerprint))
    return payloads
