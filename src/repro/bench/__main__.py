"""``python -m repro.bench`` — the continuous-benchmark runner.

Runs the registered benches at one experiment scale under a live span
profiler and metric-collecting telemetry, writes ``BENCH_<name>.json``
files, and (with ``--baseline``) gates against a committed baseline
directory: exit 0 when clean, 1 on regression, 2 on usage error.

Typical CI invocation::

    PYTHONPATH=src python -m repro.bench --scale test --out bench-out \\
        --baseline benchmarks/baselines/test
"""

from __future__ import annotations

import argparse
import os
import sys
from contextlib import ExitStack
from typing import List, Optional

from ..errors import BenchError, ReproError
from ..experiments.common import SCALES, ExperimentContext
from ..profile import SpanProfiler, profile_session
from ..telemetry import Telemetry, telemetry_session
from .compare import (
    DEFAULT_THRESHOLD_PCT,
    compare_payloads,
    load_bench_dir,
    render_deltas,
)
from .core import BENCHES, run_benches, write_bench


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Run the continuous benchmarks and emit BENCH_*.json.",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default="test",
        help="experiment scale to run at (default: test)",
    )
    parser.add_argument(
        "--out",
        default="bench-out",
        help="directory for BENCH_*.json files (default: bench-out)",
    )
    parser.add_argument(
        "--bench",
        action="append",
        choices=sorted(BENCHES),
        help="run only this bench (repeatable; default: all)",
    )
    parser.add_argument(
        "--baseline",
        help="directory of baseline BENCH_*.json files to gate against",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD_PCT,
        help="regression tolerance in percent (default: %(default)s)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available benches and exit"
    )
    parser.add_argument(
        "--history",
        metavar="PATH",
        default=None,
        help="append this run's summary (git rev + fingerprint + metric "
        "values, no wall clock) to a BENCH_history.jsonl trajectory and "
        "print its trend report",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list:
        for name, func in BENCHES.items():
            doc = (func.__doc__ or "").strip().splitlines()
            print("%-10s %s" % (name, doc[0] if doc else ""))
        return 0
    if args.threshold < 0:
        print("error: --threshold must be >= 0", file=sys.stderr)
        return 2

    scale = SCALES[args.scale]
    profiler = SpanProfiler()
    # REPRO_RECORD captures the bench run as a diffable bundle — the same
    # hook contract as REPRO_TRACE/REPRO_PROFILE (env-only, no new flag).
    record_path = os.environ.get("REPRO_RECORD")  # repro: noqa[DET-003]
    recorder = None
    if record_path:
        from ..obs.record import RunRecorder, recording_scope

        recorder = RunRecorder(
            draws=os.environ.get("REPRO_RECORD_DRAWS", "digest")  # repro: noqa[DET-003]
        )
        telemetry = Telemetry(sink=recorder.sink, collect_metrics=True)
    else:
        telemetry = Telemetry(collect_metrics=True)
    try:
        with ExitStack() as stack:
            stack.enter_context(telemetry_session(telemetry))
            stack.enter_context(profile_session(profiler))
            if recorder is not None:
                stack.enter_context(recording_scope(recorder))
            context = ExperimentContext(scale, telemetry=telemetry)
            payloads = run_benches(context, names=args.bench)
        if recorder is not None:
            from ..obs.record import span_tree_payload

            recorder.set_spans(span_tree_payload(profiler.root))
            recorder.save(record_path)
            print("recorded run bundle at %s" % record_path)
        for payload in payloads:
            path = write_bench(args.out, payload)
            print("wrote %s (%d metrics)" % (path, len(payload["metrics"])))

        if args.history:
            from .history import append_history, load_history, render_trend

            append_history(args.history, payloads)
            entries, _skipped = load_history(args.history)
            print("appended history entry #%d to %s" % (len(entries), args.history))
            print(render_trend(entries, scale=args.scale), end="")

        if args.baseline:
            baseline = load_bench_dir(args.baseline)
            if args.bench:
                # Partial runs gate only against the benches they ran.
                selected = set(args.bench)
                baseline = [p for p in baseline if p["name"] in selected]
            deltas = compare_payloads(payloads, baseline, args.threshold)
            print(render_deltas(deltas))
            if any(d.regression for d in deltas):
                print(
                    "FAIL: regression(s) beyond %.1f%% of baseline"
                    % args.threshold,
                    file=sys.stderr,
                )
                return 1
            print("baseline check passed")
    except BenchError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    except ReproError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
