"""Continuous-benchmark harness (``python -m repro.bench``).

Extracts scalar metrics from the experiment pipelines, writes versioned
``BENCH_<name>.json`` files and gates them against committed baselines —
see :mod:`repro.bench.core`, :mod:`repro.bench.fingerprint` and
:mod:`repro.bench.compare`.
"""

from .compare import (
    DEFAULT_THRESHOLD_PCT,
    Delta,
    compare_metrics,
    compare_payloads,
    load_bench,
    load_bench_dir,
    render_deltas,
)
from .core import (
    BENCH_SCHEMA,
    BENCHES,
    PRODUCTION_THRESHOLD,
    bench_filename,
    bench_payload,
    metric,
    run_benches,
    write_bench,
)
from .fingerprint import cost_model_digest, environment_fingerprint, git_revision

__all__ = [
    "BENCH_SCHEMA",
    "BENCHES",
    "DEFAULT_THRESHOLD_PCT",
    "PRODUCTION_THRESHOLD",
    "Delta",
    "bench_filename",
    "bench_payload",
    "compare_metrics",
    "compare_payloads",
    "cost_model_digest",
    "environment_fingerprint",
    "git_revision",
    "load_bench",
    "load_bench_dir",
    "metric",
    "render_deltas",
    "run_benches",
    "write_bench",
]
