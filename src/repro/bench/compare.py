"""Baseline comparison and regression gating for BENCH_*.json files.

A *regression* is a gated metric (direction ``lower`` or ``higher``) that
moved in the bad direction by more than ``threshold_pct`` percent of the
baseline value, or a bench/metric that the baseline has and the current
run lost. ``info`` metrics are reported when they drift but never gate.

Because the simulation is deterministic, the threshold is not there to
absorb noise — it is the *tolerance policy*: how much modelled compile
time or schedule quality the project is willing to trade in one PR before
CI demands an explicit baseline update.
"""

from __future__ import annotations

import glob
import json
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import BenchError
from .core import BENCH_SCHEMA

#: Default regression tolerance, percent of the baseline value.
DEFAULT_THRESHOLD_PCT = 10.0


@dataclass(frozen=True)
class Delta:
    """One metric's movement between baseline and current."""

    bench: str
    name: str
    direction: str
    baseline: Optional[float]
    current: Optional[float]
    delta_pct: Optional[float]
    regression: bool
    note: str = ""

    def describe(self) -> str:
        tag = "REGRESSION" if self.regression else "ok"
        if self.note:
            return "%-10s %s/%s: %s" % (tag, self.bench, self.name, self.note)
        return "%-10s %s/%s: %.6g -> %.6g (%+.2f%%, %s is better)" % (
            tag,
            self.bench,
            self.name,
            self.baseline,
            self.current,
            self.delta_pct,
            self.direction,
        )


def load_bench(path: str) -> Dict[str, object]:
    """Load and schema-check one BENCH_*.json file."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as exc:
        raise BenchError("cannot read bench file %s: %s" % (path, exc)) from exc
    if not isinstance(payload, dict) or payload.get("bench_schema") != BENCH_SCHEMA:
        raise BenchError(
            "%s: not a bench_schema=%d file (got %r)"
            % (path, BENCH_SCHEMA, payload.get("bench_schema") if isinstance(payload, dict) else type(payload).__name__)
        )
    if "name" not in payload or not isinstance(payload.get("metrics"), dict):
        raise BenchError("%s: missing name/metrics" % path)
    return payload


def _metric_value(entry) -> Tuple[float, str]:
    return float(entry["value"]), str(entry.get("direction", "info"))


def compare_metrics(
    bench: str,
    current: Dict[str, Dict[str, object]],
    baseline: Dict[str, Dict[str, object]],
    threshold_pct: float = DEFAULT_THRESHOLD_PCT,
) -> List[Delta]:
    """Compare one bench's metric dicts; baseline drives the iteration."""
    deltas: List[Delta] = []
    for name in sorted(baseline):
        base_value, direction = _metric_value(baseline[name])
        if name not in current:
            deltas.append(
                Delta(
                    bench, name, direction, base_value, None, None,
                    regression=direction != "info",
                    note="metric missing from current run",
                )
            )
            continue
        cur_value, _cur_direction = _metric_value(current[name])
        denom = abs(base_value) if base_value != 0 else 1.0
        delta_pct = 100.0 * (cur_value - base_value) / denom
        if direction == "lower":
            regressed = delta_pct > threshold_pct
        elif direction == "higher":
            regressed = delta_pct < -threshold_pct
        else:
            regressed = False
        deltas.append(
            Delta(bench, name, direction, base_value, cur_value, delta_pct, regressed)
        )
    return deltas


def compare_payloads(
    current: List[Dict[str, object]],
    baseline: List[Dict[str, object]],
    threshold_pct: float = DEFAULT_THRESHOLD_PCT,
) -> List[Delta]:
    """Compare two bench-payload sets (a whole baseline is authoritative)."""
    current_by_name = {str(p["name"]): p for p in current}
    deltas: List[Delta] = []
    for base in baseline:
        name = str(base["name"])
        cur = current_by_name.get(name)
        if cur is None:
            deltas.append(
                Delta(
                    name, "*", "info", None, None, None,
                    regression=True,
                    note="bench missing from current run",
                )
            )
            continue
        deltas.extend(
            compare_metrics(name, cur["metrics"], base["metrics"], threshold_pct)
        )
    return deltas


def load_bench_dir(directory: str) -> List[Dict[str, object]]:
    """Every BENCH_*.json in ``directory``, sorted by name."""
    paths = sorted(glob.glob(os.path.join(directory, "BENCH_*.json")))
    if not paths:
        raise BenchError("no BENCH_*.json files in %s" % directory)
    return [load_bench(path) for path in paths]


def render_deltas(deltas: List[Delta], show_ok: bool = True) -> str:
    lines = []
    regressions = [d for d in deltas if d.regression]
    for delta in deltas:
        if delta.regression or show_ok:
            lines.append(delta.describe())
    lines.append(
        "%d metric(s) compared, %d regression(s)" % (len(deltas), len(regressions))
    )
    return "\n".join(lines)
