"""Data dependence graphs and their analyses.

This package provides:

* :class:`~repro.ddg.graph.DDG` — flow/anti/output dependences with
  latencies, built from a :class:`~repro.ir.block.SchedulingRegion`;
* :class:`~repro.ddg.closure.TransitiveClosure` — bitset closure, pairwise
  independence queries and the tight ready-list upper bound of Section V-A;
* :mod:`~repro.ddg.analysis` — latency-weighted depth/height and the
  critical path;
* :mod:`~repro.ddg.lower_bounds` — the schedule-length and register-pressure
  lower bounds that gate ACO invocation and terminate the search.
"""

from .graph import DDG, Dependence, DepKind
from .closure import TransitiveClosure
from .analysis import CriticalPathInfo, critical_path_info
from .lower_bounds import length_lower_bound, pressure_lower_bounds, RegionBounds, region_bounds

__all__ = [
    "DDG",
    "Dependence",
    "DepKind",
    "TransitiveClosure",
    "CriticalPathInfo",
    "critical_path_info",
    "length_lower_bound",
    "pressure_lower_bounds",
    "RegionBounds",
    "region_bounds",
]
