"""Lower bounds used to gate and terminate the ACO search.

The pipeline (Section VI-A of the paper) compares every heuristic schedule
against a precomputed lower bound: if the heuristic already meets the LB the
schedule is provably optimal and ACO is skipped; during the search, hitting
the LB terminates the kernel early.

* **Schedule length LB** — ``max(critical path length, n)`` on a
  single-issue machine (``n`` instructions need ``n`` issue slots; no
  schedule beats the latency-weighted critical path).
* **Register-pressure LB (per class)** — the maximum of
  ``|live_in|``, ``|live_out|``, ``max_i |uses(i)|`` and
  ``max_i |defs(i) plus the live-through uses of i|``: whichever cycle
  instruction ``i`` issues in, every register it reads is live just before
  it and every register it writes is live just after, so these counts are
  unavoidable. These are sound but not tight; a tighter bound would only
  make ACO run *less* often, so soundness is what matters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..ir.block import SchedulingRegion
from ..ir.registers import RegisterClass
from .analysis import critical_path_info
from .graph import DDG


def length_lower_bound(ddg: DDG) -> int:
    """Schedule-length LB for a single-issue machine."""
    info = critical_path_info(ddg)
    return max(info.critical_path_length, ddg.num_instructions)


def pressure_lower_bounds(region: SchedulingRegion) -> Dict[RegisterClass, int]:
    """A sound per-class PRP lower bound (see module docstring)."""
    classes = region.register_classes()
    bounds: Dict[RegisterClass, int] = {}
    for cls in classes:
        live_in = sum(1 for r in region.live_in if r.reg_class is cls)
        live_out = sum(1 for r in region.live_out if r.reg_class is cls)
        bound = max(live_in, live_out)
        for inst in region:
            uses = sum(1 for r in inst.uses if r.reg_class is cls)
            defs = sum(1 for r in inst.defs if r.reg_class is cls)
            # Just after `inst` issues its defs are live together with any of
            # its uses that still have a later consumer (a successor reads
            # them) or are live-out.
            live_through = 0
            for reg in inst.uses:
                if reg.reg_class is not cls:
                    continue
                if reg in region.live_out:
                    live_through += 1
                    continue
                if any(
                    other.index != inst.index and other.index > inst.index
                    and reg in other.uses
                    for other in region
                ):
                    live_through += 1
            bound = max(bound, uses, defs + live_through)
        bounds[cls] = bound
    return bounds


@dataclass(frozen=True)
class RegionBounds:
    """All LBs of one region, computed once and shared by both passes."""

    length: int
    pressure: Tuple[Tuple[RegisterClass, int], ...]

    def pressure_of(self, cls: RegisterClass) -> int:
        for klass, bound in self.pressure:
            if klass is cls:
                return bound
        return 0

    @property
    def pressure_dict(self) -> Dict[RegisterClass, int]:
        return dict(self.pressure)


def region_bounds(ddg: DDG) -> RegionBounds:
    """Compute :class:`RegionBounds` for the region of ``ddg``."""
    pressure = pressure_lower_bounds(ddg.region)
    return RegionBounds(
        length=length_lower_bound(ddg),
        pressure=tuple(sorted(pressure.items(), key=lambda kv: kv[0].name)),
    )
