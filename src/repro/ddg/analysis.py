"""Latency-weighted depth/height analysis and the critical path.

Definitions (single-issue machine, cycles numbered from 0):

* ``earliest_start[i]`` — the earliest cycle instruction ``i`` could issue if
  latency were the only constraint: ``max over preds p of
  earliest_start[p] + latency(p, i)`` (0 for roots).
* ``height[i]`` — the latency-weighted longest path from ``i`` to any leaf,
  counting ``i``'s own issue cycle: ``1`` for leaves, else ``max over succs s
  of latency(i, s) + height[s]``. This is the classic Critical-Path priority.
* ``critical_path_length`` — ``max_i earliest_start[i] + 1``: no legal
  schedule can be shorter, regardless of issue width.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from .graph import DDG


@dataclass(frozen=True)
class CriticalPathInfo:
    """Depth, height and critical-path data of one DDG."""

    earliest_start: Tuple[int, ...]
    height: Tuple[int, ...]
    critical_path_length: int

    def is_on_critical_path(self, i: int) -> bool:
        """True iff ``i`` lies on some longest latency-weighted path."""
        return self.earliest_start[i] + self.height[i] == self.critical_path_length


def critical_path_info(ddg: DDG) -> CriticalPathInfo:
    """Compute :class:`CriticalPathInfo` in one forward and one backward sweep."""
    n = ddg.num_instructions
    earliest = [0] * n
    for i in range(n):  # program order is topological
        for pred, latency in ddg.predecessors[i]:
            candidate = earliest[pred] + latency
            if candidate > earliest[i]:
                earliest[i] = candidate
    height = [1] * n
    for i in range(n - 1, -1, -1):
        for succ, latency in ddg.successors[i]:
            candidate = latency + height[succ]
            if candidate > height[i]:
                height[i] = candidate
    critical = max((earliest[i] + 1 for i in range(n)), default=0)
    return CriticalPathInfo(tuple(earliest), tuple(height), critical)
