"""Data dependence graph construction.

Nodes are the instructions of one scheduling region (identified by their
program-order index). Edges are the three classic kinds of register
dependences, each carrying a latency constraint
``cycle(dst) >= cycle(src) + latency``:

* **flow** (read-after-write): latency = the producer's instruction latency
  (at least 1);
* **anti** (write-after-read) and **output** (write-after-write): latency 1 —
  the machine issues in order within a cycle slot, so "strictly later" is
  enough.

Program order is a topological order of the DDG by construction, which the
analyses rely on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..errors import DDGError
from ..ir.block import SchedulingRegion


class DepKind(enum.Enum):
    """Kind of a register dependence."""

    FLOW = "flow"
    ANTI = "anti"
    OUTPUT = "output"


@dataclass(frozen=True)
class Dependence:
    """A single dependence edge ``src -> dst`` with its latency."""

    src: int
    dst: int
    latency: int
    kind: DepKind

    def __post_init__(self):
        if self.src == self.dst:
            raise DDGError("self-dependence on instruction %d" % self.src)
        if self.latency < 0:
            raise DDGError("negative edge latency")


class DDG:
    """The dependence graph of one scheduling region.

    ``successors[i]`` / ``predecessors[i]`` hold ``(neighbor, latency)``
    pairs with at most one entry per neighbor (the maximum latency over all
    parallel edges — only the tightest constraint matters for scheduling).
    The full multi-edge list is kept in ``edges`` for inspection.
    """

    def __init__(self, region: SchedulingRegion):
        self.region = region
        n = len(region)
        self.num_instructions = n
        self.edges: List[Dependence] = []
        self._succ_latency: List[Dict[int, int]] = [dict() for _ in range(n)]
        self._pred_latency: List[Dict[int, int]] = [dict() for _ in range(n)]
        self._build()
        self.successors: List[Tuple[Tuple[int, int], ...]] = [
            tuple(sorted(d.items())) for d in self._succ_latency
        ]
        self.predecessors: List[Tuple[Tuple[int, int], ...]] = [
            tuple(sorted(d.items())) for d in self._pred_latency
        ]
        self.num_predecessors: Tuple[int, ...] = tuple(len(p) for p in self.predecessors)
        self.roots: Tuple[int, ...] = tuple(
            i for i in range(n) if not self.predecessors[i]
        )
        self.leaves: Tuple[int, ...] = tuple(
            i for i in range(n) if not self.successors[i]
        )

    # -- construction -------------------------------------------------------

    def _add_edge(self, src: int, dst: int, latency: int, kind: DepKind) -> None:
        if src >= dst:
            raise DDGError(
                "dependence %d -> %d goes against program order" % (src, dst)
            )
        self.edges.append(Dependence(src, dst, latency, kind))
        if self._succ_latency[src].get(dst, -1) < latency:
            self._succ_latency[src][dst] = latency
            self._pred_latency[dst][src] = latency

    def _build(self) -> None:
        last_def: Dict = {}
        uses_since_def: Dict = {}
        for inst in self.region:
            index = inst.index
            for reg in inst.uses:
                producer = last_def.get(reg)
                if producer is not None:
                    flow_latency = max(1, self.region[producer].latency)
                    self._add_edge(producer, index, flow_latency, DepKind.FLOW)
                uses_since_def.setdefault(reg, []).append(index)
            for reg in inst.defs:
                for reader in uses_since_def.get(reg, ()):
                    if reader != index:
                        self._add_edge(reader, index, 1, DepKind.ANTI)
                previous = last_def.get(reg)
                if previous is not None:
                    self._add_edge(previous, index, 1, DepKind.OUTPUT)
                last_def[reg] = index
                uses_since_def[reg] = []

    # -- queries ------------------------------------------------------------

    def latency(self, src: int, dst: int) -> int:
        """The (merged) latency of edge ``src -> dst``; raises if absent."""
        try:
            return self._succ_latency[src][dst]
        except KeyError:
            raise DDGError("no dependence %d -> %d" % (src, dst)) from None

    def has_edge(self, src: int, dst: int) -> bool:
        return dst in self._succ_latency[src]

    @property
    def num_edges(self) -> int:
        """Number of merged edges (parallel edges counted once)."""
        return sum(len(s) for s in self._succ_latency)

    def max_successor_count(self) -> int:
        """The largest successor list — a divergence driver in Section V-B."""
        return max((len(s) for s in self.successors), default=0)

    def __repr__(self) -> str:
        return "DDG(%r, %d nodes, %d edges)" % (
            self.region.name,
            self.num_instructions,
            self.num_edges,
        )
