"""Transitive closure of a DDG, as bitsets.

Section V-A of the paper uses the closure for two purposes that we
reproduce:

* pairwise *independence* queries (neither instruction reaches the other),
* the **tight upper bound on the ready-list size**: the instructions in a
  ready list are pairwise independent, so ``1 + max_i |independent(i)|``
  bounds how large any ready list can ever grow — usually far below the
  trivial bound ``n``. The parallel scheduler sizes its fixed ready-list
  arrays with this bound.

Bitsets are plain Python integers (bit ``j`` of ``descendants[i]`` set iff
``i`` transitively reaches ``j``), which makes the closure O(n^2 / 64) words
and the queries single operations.
"""

from __future__ import annotations

from typing import List

from .graph import DDG


def _popcount(value: int) -> int:
    try:
        return value.bit_count()  # Python >= 3.10
    except AttributeError:  # pragma: no cover - exercised only on 3.9
        return bin(value).count("1")


class TransitiveClosure:
    """Reachability bitsets of a DDG plus independence queries."""

    def __init__(self, ddg: DDG):
        self.ddg = ddg
        n = ddg.num_instructions
        self.num_instructions = n

        descendants: List[int] = [0] * n
        # Program order is topological; sweep backwards so successors'
        # descendant sets are complete when a node is processed.
        for i in range(n - 1, -1, -1):
            mask = 0
            for succ, _lat in ddg.successors[i]:
                mask |= (1 << succ) | descendants[succ]
            descendants[i] = mask
        ancestors: List[int] = [0] * n
        for i in range(n):
            mask = 0
            for pred, _lat in ddg.predecessors[i]:
                mask |= (1 << pred) | ancestors[pred]
            ancestors[i] = mask

        self.descendants = descendants
        self.ancestors = ancestors
        all_mask = (1 << n) - 1
        self.independent = [
            all_mask & ~(descendants[i] | ancestors[i] | (1 << i)) for i in range(n)
        ]

    # -- queries ------------------------------------------------------------

    def reaches(self, src: int, dst: int) -> bool:
        """True iff there is a dependence path from ``src`` to ``dst``."""
        return bool(self.descendants[src] >> dst & 1)

    def are_independent(self, a: int, b: int) -> bool:
        """True iff neither instruction transitively depends on the other."""
        return a != b and not self.reaches(a, b) and not self.reaches(b, a)

    def independent_count(self, i: int) -> int:
        """How many instructions are independent of instruction ``i``."""
        return _popcount(self.independent[i])

    def max_independent_count(self) -> int:
        return max(
            (self.independent_count(i) for i in range(self.num_instructions)),
            default=0,
        )

    def ready_list_upper_bound(self) -> int:
        """The tight ready-list bound of Section V-A.

        Every instruction in a ready list is independent of every other, so
        a list containing instruction ``i`` holds at most ``1 +
        independent_count(i)`` entries. On the paper's Figure 1 DDG this
        gives 5 where the trivial bound is 7.
        """
        if self.num_instructions == 0:
            return 0
        return 1 + self.max_independent_count()
