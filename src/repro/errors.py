"""Exception hierarchy for the repro package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming mistakes (``TypeError`` and friends propagate).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class IRError(ReproError):
    """Malformed IR: unknown opcode, duplicate definition, bad register."""


class ParseError(IRError):
    """The textual region format could not be parsed."""

    def __init__(self, message: str, line: int = 0):
        self.line = line
        if line:
            message = "line {}: {}".format(line, message)
        super().__init__(message)


class DDGError(ReproError):
    """Dependence-graph construction or analysis failure (e.g. a cycle)."""


class ScheduleError(ReproError):
    """An illegal schedule: dependence, latency or issue-limit violation."""


class MachineModelError(ReproError):
    """Inconsistent machine description (e.g. a non-monotone occupancy table)."""


class ConfigError(ReproError):
    """Invalid configuration parameters."""


class GPUSimError(ReproError):
    """SIMT simulator misuse (bad launch geometry, lane mismatch, ...)."""


class PipelineError(ReproError):
    """Compile-pipeline failure."""


class TelemetryError(ReproError):
    """Telemetry misuse: bad metric kinds, schema-invalid trace records."""


class ProfileError(ReproError):
    """Span-profiler misuse (corrupted span stack)."""


class BenchError(ReproError):
    """Continuous-benchmark harness failure (bad BENCH file, bad baseline)."""


class AnalysisError(ReproError):
    """Static-analysis / verification layer failure (repro.analysis)."""


class VerificationError(AnalysisError):
    """An independent verification pass found one or more violations."""

    def __init__(self, message: str, violations=()):
        self.violations = tuple(violations)
        super().__init__(message)


class SanitizerError(AnalysisError):
    """The gpusim sanitizer caught a memory/uniformity invariant violation."""
