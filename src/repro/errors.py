"""Exception hierarchy for the repro package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming mistakes (``TypeError`` and friends propagate).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class IRError(ReproError):
    """Malformed IR: unknown opcode, duplicate definition, bad register."""


class ParseError(IRError):
    """The textual region format could not be parsed."""

    def __init__(self, message: str, line: int = 0):
        self.line = line
        if line:
            message = "line {}: {}".format(line, message)
        super().__init__(message)


class DDGError(ReproError):
    """Dependence-graph construction or analysis failure (e.g. a cycle)."""


class ScheduleError(ReproError):
    """An illegal schedule: dependence, latency or issue-limit violation."""


class MachineModelError(ReproError):
    """Inconsistent machine description (e.g. a non-monotone occupancy table)."""


class ConfigError(ReproError):
    """Invalid configuration parameters."""


class GPUSimError(ReproError):
    """SIMT simulator misuse (bad launch geometry, lane mismatch, ...)."""


class PipelineError(ReproError):
    """Compile-pipeline failure."""


class TelemetryError(ReproError):
    """Telemetry misuse: bad metric kinds, schema-invalid trace records."""


class ProfileError(ReproError):
    """Span-profiler misuse (corrupted span stack)."""


class BenchError(ReproError):
    """Continuous-benchmark harness failure (bad BENCH file, bad baseline)."""


class AnalysisError(ReproError):
    """Static-analysis / verification layer failure (repro.analysis)."""


class VerificationError(AnalysisError):
    """An independent verification pass found one or more violations."""

    def __init__(self, message: str, violations=()):
        self.violations = tuple(violations)
        super().__init__(message)


class SanitizerError(AnalysisError):
    """The gpusim sanitizer caught a memory/uniformity invariant violation."""


class ResilienceError(ReproError):
    """Base class of the fault/recovery layer (repro.resilience).

    Everything under here is *survivable by design*: the compile pipeline's
    retry ladder catches ``ResilienceError`` (and only it) around a region,
    retries with a rotated seed or a downgraded backend, and falls back to
    the heuristic schedule rather than failing the compile.
    """


class InjectedFault(ResilienceError):
    """An injected (simulated) GPU fault.

    ``fault_class`` names the fault taxonomy entry (see
    :class:`repro.gpusim.faults.FaultClass`); ``seconds`` is the modelled
    time the failed attempt burned before the fault surfaced, which the
    retry ladder charges against the region's deadline budget.
    """

    fault_class = "fault"

    def __init__(self, message: str, seconds: float = 0.0, checkpoint=None):
        self.seconds = float(seconds)
        self.checkpoint = checkpoint
        super().__init__(message)


class KernelLaunchError(InjectedFault):
    """The scheduling kernel's launch returned an error (bad cooperative
    launch, driver hiccup): nothing ran, only the launch overhead is lost."""

    fault_class = "launch"


class DeviceOOMError(InjectedFault):
    """The Section V-A preallocation of per-ant device state failed: the
    device-side allocation limit rejected the request before any launch."""

    fault_class = "oom"


class CorruptionDetected(InjectedFault):
    """The copy-back integrity check found a corrupted transfer.

    The host<->device copies carry a checksum; a corrupted region image or
    result buffer fails the compare at copy-back, so a corrupted search is
    detected *before* its schedule can ship — never silently wrong. The
    attempt's state is untrusted, so no checkpoint accompanies this fault.
    """

    fault_class = "corruption"


class DeviceHangError(InjectedFault):
    """The watchdog declared the kernel hung (no heartbeat within budget).

    The host-side colony state at the last completed iteration survives in
    ``checkpoint`` (pheromone table, global best, RNG streams), so a retry
    resumes mid-search instead of restarting.
    """

    fault_class = "hang"


class WorkerCrash(InjectedFault):
    """A simulated shard worker died mid-dispatch (process loss).

    Everything the worker was holding — its current region and its queued
    regions — is gone; the fleet supervisor re-dispatches the work to the
    surviving workers. The crash itself burns only the detection latency
    (the supervisor's next missed heartbeat).
    """

    fault_class = "worker_crash"


class WorkerHang(InjectedFault):
    """A simulated shard worker stopped heartbeating (wedged, not dead).

    Detected by the supervisor's cost-model-denominated heartbeat: after
    ``heartbeat_seconds`` of silence the worker is declared hung, killed,
    and its regions re-dispatched. The detection latency is charged to the
    fleet's makespan.
    """

    fault_class = "worker_hang"


class ShardResultCorrupt(InjectedFault):
    """A shard worker returned a corrupt region result.

    Detected by the supervisor's independent verification (the PR 2
    schedule verifier) before the result can merge — never silently wrong.
    The worker survives (corruption is per-result, not per-process); the
    region is re-dispatched.
    """

    fault_class = "worker_corrupt"


class FleetError(ReproError):
    """Fleet-shard layer misuse (bad shard count, incomplete merge)."""


class DeadlineExceeded(ResilienceError):
    """A region's deadline budget ran out before an attempt could start."""


class RegionUnrecoverable(ResilienceError):
    """The retry ladder exhausted every permitted rung for a region.

    Carries ``causes`` — one entry per failed attempt — so the caller can
    report what was tried. The pipeline still ships the heuristic schedule
    (a region never takes the compile down), but records the region as an
    error; the CLI maps any unrecoverable region to a nonzero exit.
    """

    def __init__(self, message: str, causes=(), spent_seconds: float = 0.0):
        self.causes = tuple(causes)
        # Data field on an exception, not an accounting mutation: the value
        # was already charged by the ladder before being carried here.
        self.spent_seconds = float(spent_seconds)  # repro: noqa[ACC-301]
        super().__init__(message)
