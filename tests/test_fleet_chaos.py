"""Tests for the fleet chaos harness (the CI fleet-chaos job's engine)."""

import json

import pytest

from repro.fleet.chaos import (
    FleetChaosReport,
    FleetTrial,
    chaos_sweep,
    fault_class_proofs,
    fleet_items,
    main,
)
from repro.gpusim.faults import WORKER_FAULT_CLASSES
from repro.machine import amd_vega20


@pytest.fixture(scope="module")
def machine():
    return amd_vega20()


def test_harness_batch_is_deterministic(machine):
    a = fleet_items(machine, sizes=(8, 10))
    b = fleet_items(machine, sizes=(8, 10))
    assert [item.ddg.region.name for item in a] == [
        item.ddg.region.name for item in b
    ]
    assert [item.seed for item in a] == [7, 8]


def test_fault_class_proofs_cover_every_class(machine):
    report = fault_class_proofs(machine, sizes=(8, 10), num_shards=2)
    assert set(report.faults_by_class) == set(WORKER_FAULT_CLASSES)
    assert all(count > 0 for count in report.faults_by_class.values())
    assert report.recovery_rate == 1.0
    assert report.all_ok


def test_sweep_is_deterministic(machine):
    a = chaos_sweep(seeds=(11,), machine=machine, sizes=(8, 10), shards=(2,))
    b = chaos_sweep(seeds=(11,), machine=machine, sizes=(8, 10), shards=(2,))
    assert [t.fault_counts for t in a.trials] == [t.fault_counts for t in b.trials]
    assert [t.fleet_seconds for t in a.trials] == [
        t.fleet_seconds for t in b.trials
    ]
    assert a.all_ok and b.all_ok


def test_report_aggregation():
    def trial(fault_counts, identical):
        return FleetTrial(
            chaos_seed=1, num_shards=2, fault_counts=fault_counts,
            reassignments=sum(fault_counts.values()), restarts=0,
            host_fallback_regions=0, recovered_regions=0, resolved=True,
            identical=identical, schedules_valid=True,
            fleet_seconds=2.0, batch_seconds=1.0,
        )

    report = FleetChaosReport(trials=[
        trial({}, True),
        trial({"worker_crash": 2}, True),
        trial({"worker_hang": 1}, False),
    ])
    assert report.faults_by_class["worker_crash"] == 2
    assert report.faults_by_class["worker_hang"] == 1
    assert len(report.faulted_trials) == 2
    assert report.recovery_rate == 0.5
    assert not report.all_ok
    assert report.reassignments == 3
    assert "DIVERGED" in report.summary()
    payload = report.to_json()
    assert payload["recovery_rate"] == 0.5
    assert len(payload["trials"]) == 3


def test_main_writes_proof_and_exits_zero(tmp_path, capsys):
    out = str(tmp_path / "proof" / "fleet-proof.json")
    code = main(["--seeds", "11", "--sizes", "8,10", "--shards", "2", "--out", out])
    captured = capsys.readouterr().out
    assert code == 0
    assert "OK" in captured
    with open(out) as handle:
        payload = json.load(handle)
    assert payload["ok"] is True
    assert payload["proofs"]["recovery_rate"] == 1.0
    assert payload["sweep"]["all_ok"] is True


def test_main_bitcheck_passes(tmp_path, capsys):
    code = main([
        "--seeds", "11", "--sizes", "8,10", "--shards", "2",
        "--skip-proofs", "--bitcheck", str(tmp_path / "bitcheck"),
    ])
    assert code == 0
    assert "byte-identical" in capsys.readouterr().out
