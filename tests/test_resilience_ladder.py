"""Tests for the retry ladder, pipeline integration, batches and the CLI."""

import pytest

from repro.aco import SequentialACOScheduler
from repro.config import ACOParams, FilterParams, GPUParams, ResilienceParams
from repro.ddg import DDG
from repro.errors import RegionUnrecoverable
from repro.gpusim.faults import FaultPlan
from repro.machine import amd_vega20
from repro.parallel import BatchItem, MultiRegionScheduler, ParallelACOScheduler
from repro.pipeline import CompilePipeline, FilterDecision
from repro.resilience.ladder import (
    HEURISTIC_RUNG,
    ladder_rungs,
    schedule_with_resilience,
)
from repro.resilience.log import ResilienceLog, resilience_log_session
from repro.schedule import validate_schedule
from repro.telemetry import MemorySink, Telemetry

from conftest import make_region


@pytest.fixture(scope="module")
def machine():
    return amd_vega20()


@pytest.fixture(scope="module")
def ddg():
    return DDG(make_region("stencil", 4, 14))


@pytest.fixture(autouse=True)
def _clean_resilience_env(monkeypatch):
    for name in ("REPRO_DEADLINE", "REPRO_MAX_RETRIES", "REPRO_CHAOS", "REPRO_DEGRADE"):
        monkeypatch.setenv(name, "")


def parallel(machine, **kw):
    return ParallelACOScheduler(
        machine,
        params=ACOParams(max_iterations=12),
        gpu_params=GPUParams(blocks=4),
        **kw,
    )


class TestRungs:
    def test_vectorized_entry(self, machine):
        assert ladder_rungs(parallel(machine)) == (
            "vectorized", "loop", "sequential", HEURISTIC_RUNG,
        )

    def test_loop_entry(self, machine):
        assert ladder_rungs(parallel(machine, backend="loop")) == (
            "loop", "sequential", HEURISTIC_RUNG,
        )

    def test_sequential_entry(self, machine):
        assert ladder_rungs(SequentialACOScheduler(machine)) == (
            "sequential", HEURISTIC_RUNG,
        )


class TestLadder:
    def test_clean_run_single_attempt(self, machine, ddg):
        with resilience_log_session(ResilienceLog()) as log:
            outcome = schedule_with_resilience(
                parallel(machine), ddg, 5, ResilienceParams(enabled=True)
            )
        assert outcome.clean
        assert outcome.rung == "vectorized"
        assert outcome.attempts == 1
        assert not log.eventful

    def test_launch_faults_degrade_to_cpu(self, machine, ddg):
        """Rate-1.0 launch failures kill both GPU engines; the CPU rung
        (no device, no fault sites) rescues the region."""
        sink = MemorySink()
        with resilience_log_session(ResilienceLog()) as log:
            outcome = schedule_with_resilience(
                parallel(machine, telemetry=Telemetry(sink=sink)),
                ddg, 5, ResilienceParams(enabled=True, max_retries=1),
                fault_plan=FaultPlan(seed=1, rates={"launch": 1.0}),
            )
        assert outcome.result is not None
        assert outcome.rung == "sequential"
        # Two attempts each on the vectorized and loop rungs, all faulted.
        assert [f[0] for f in outcome.faults] == ["launch"] * 4
        assert [f[1] for f in outcome.faults] == [
            "vectorized", "vectorized", "loop", "loop",
        ]
        assert log.faults == {"launch": 4}
        assert log.degrades == 2
        assert len(sink.by_type("fault")) == 4
        assert len(sink.by_type("degrade")) == 2
        assert len(sink.by_type("retry")) == outcome.attempts - 1
        validate_schedule(outcome.result.schedule, ddg, machine)

    def test_oom_rescued_by_sequential(self, machine, ddg):
        with resilience_log_session(ResilienceLog()):
            outcome = schedule_with_resilience(
                parallel(machine), ddg, 5,
                ResilienceParams(enabled=True, max_retries=0),
                fault_plan=FaultPlan(seed=1, rates={"oom": 1.0}),
            )
        assert outcome.result is not None
        assert outcome.rung == "sequential"
        assert all(f[0] == "oom" for f in outcome.faults)

    def test_hang_recovers_by_resume(self, machine, ddg):
        with resilience_log_session(ResilienceLog()) as log:
            outcome = schedule_with_resilience(
                parallel(machine), ddg, 5,
                ResilienceParams(enabled=True, max_retries=2),
                fault_plan=FaultPlan(seed=1, rates={"hang": 1.0}),
            )
        assert outcome.result is not None
        assert outcome.resumed_attempts >= 1
        assert log.resumes >= 1
        validate_schedule(outcome.result.schedule, ddg, machine)

    def test_no_degrade_raises_unrecoverable(self, machine, ddg):
        resilience = ResilienceParams(enabled=True, max_retries=1, degrade=False)
        with resilience_log_session(ResilienceLog()) as log:
            with pytest.raises(RegionUnrecoverable) as info:
                schedule_with_resilience(
                    parallel(machine), ddg, 5, resilience,
                    fault_plan=FaultPlan(seed=1, rates={"launch": 1.0}),
                )
        assert len(info.value.causes) == 2  # 1 + max_retries attempts
        assert info.value.spent_seconds > 0.0
        assert log.unrecoverable_regions == [ddg.region.name]

    def test_exhausted_budget_goes_straight_to_heuristic(self, machine, ddg):
        """Faults that burn the whole deadline skip the remaining engine
        rungs — no attempt can succeed with an exhausted budget."""
        launch_cost = parallel(machine).device.cost.launch_overhead
        resilience = ResilienceParams(
            enabled=True, max_retries=0, deadline_seconds=launch_cost * 0.5
        )
        with resilience_log_session(ResilienceLog()) as log:
            outcome = schedule_with_resilience(
                parallel(machine), ddg, 5, resilience,
                fault_plan=FaultPlan(seed=1, rates={"launch": 1.0}),
            )
        assert outcome.degraded
        assert outcome.rung == HEURISTIC_RUNG
        assert log.degraded_regions == [ddg.region.name]

    def test_seed_rotation_redraws_fault_sites(self, machine, ddg):
        """With a 50% launch rate, retries must eventually pass — the
        attempt number is part of the fault site."""
        with resilience_log_session(ResilienceLog()):
            outcome = schedule_with_resilience(
                parallel(machine), ddg, 5,
                ResilienceParams(enabled=True, max_retries=3),
                fault_plan=FaultPlan(seed=12, rates={"launch": 0.5}),
            )
        assert outcome.result is not None


class TestPipeline:
    def _pipeline(self, machine, resilience=None):
        return CompilePipeline(
            machine,
            scheduler=parallel(machine),
            filters=FilterParams(cycle_threshold=0),
            resilience=resilience,
        )

    def test_fault_free_ladder_is_bit_identical(self, machine):
        """Resilience enabled but no faults/deadline: every region's
        outcome matches the plain pipeline exactly."""
        regions = [DDG(make_region("reduce", s, 12 + s)) for s in range(3)]
        plain = self._pipeline(machine)
        laddered = self._pipeline(machine, ResilienceParams(enabled=True))
        for ddg in regions:
            a = plain.compile_region(ddg, seed=7)
            with resilience_log_session(ResilienceLog()) as log:
                b = laddered.compile_region(ddg, seed=7)
            assert b.decision == a.decision
            assert b.schedule.cycles == a.schedule.cycles
            assert b.scheduling_seconds == pytest.approx(
                a.scheduling_seconds, rel=1e-9
            )
            assert not log.eventful

    def test_chaos_compile_ships_every_region(self, machine):
        """Under heavy chaos every region still gets a legal schedule."""
        resilience = ResilienceParams(enabled=True, chaos_seed=42, max_retries=2)
        pipeline = self._pipeline(machine, resilience)
        with resilience_log_session(ResilienceLog()):
            for s in range(3):
                ddg = DDG(make_region("sort", s, 12 + s))
                outcome = pipeline.compile_region(ddg, seed=s)
                assert outcome.schedule is not None
                validate_schedule(outcome.schedule, ddg, machine)
                assert isinstance(outcome.decision, FilterDecision)

    def test_degraded_region_ships_heuristic(self, machine, monkeypatch):
        """Guaranteed faults + a budget too small to survive them degrade
        the region to its heuristic schedule, and the decision says so."""
        import repro.resilience.ladder as ladder_mod

        monkeypatch.setattr(
            ladder_mod.FaultPlan,
            "from_seed",
            classmethod(lambda cls, seed, rates=None: FaultPlan(
                seed=seed, rates={"launch": 1.0}
            )),
        )
        launch_cost = parallel(machine).device.cost.launch_overhead
        resilience = ResilienceParams(
            enabled=True,
            max_retries=0,
            deadline_seconds=launch_cost * 0.5,
            chaos_seed=1,
        )
        pipeline = self._pipeline(machine, resilience)
        ddg = DDG(make_region("stencil", 4, 14))
        with resilience_log_session(ResilienceLog()) as log:
            outcome = pipeline.compile_region(ddg, seed=5)
        assert outcome.decision is FilterDecision.DEGRADED
        assert ddg.region.name in log.degraded_regions
        assert outcome.schedule is not None
        validate_schedule(outcome.schedule, ddg, machine)

    def test_unrecoverable_decision(self, machine, monkeypatch):
        """degrade=False + guaranteed faults -> UNRECOVERABLE decision,
        heuristic schedule still shipped."""
        resilience = ResilienceParams(
            enabled=True, max_retries=0, degrade=False, chaos_seed=1
        )
        pipeline = self._pipeline(machine, resilience)
        # Guarantee the fault: make the ladder's derived plan all-launch.
        import repro.resilience.ladder as ladder_mod

        monkeypatch.setattr(
            ladder_mod.FaultPlan,
            "from_seed",
            classmethod(lambda cls, seed, rates=None: FaultPlan(
                seed=seed, rates={"launch": 1.0}
            )),
        )
        ddg = DDG(make_region("stencil", 4, 14))
        with resilience_log_session(ResilienceLog()) as log:
            outcome = pipeline.compile_region(ddg, seed=5)
        assert outcome.decision is FilterDecision.UNRECOVERABLE
        assert outcome.schedule is not None  # the heuristic still ships
        validate_schedule(outcome.schedule, ddg, machine)
        assert log.unrecoverable_regions == [ddg.region.name]


class TestMultiRegionBatches:
    def _items(self, count=3):
        return [
            BatchItem(ddg=DDG(make_region("reduce", s, 10 + s)), seed=s)
            for s in range(count)
        ]

    def test_fault_free_batch_keeps_historical_shape(self, machine):
        batch = MultiRegionScheduler(machine).schedule_batch(self._items())
        assert batch.errors == (None, None, None)
        assert batch.failed_regions == 0
        assert len(batch.scheduled) == 3

    def test_failed_region_does_not_abort_batch(self, machine):
        plan = FaultPlan(seed=1, rates={"launch": 1.0})
        with resilience_log_session(ResilienceLog()) as log:
            batch = MultiRegionScheduler(machine).schedule_batch(
                self._items(), fault_plan=plan
            )
        assert batch.failed_regions == 3
        assert all(e and e.startswith("launch:") for e in batch.errors)
        assert log.faults.get("launch") == 3
        assert batch.scheduled == ()

    def test_resilient_batch_rescues_every_region(self, machine):
        plan = FaultPlan(seed=1, rates={"launch": 1.0})
        resilience = ResilienceParams(enabled=True, max_retries=1)
        with resilience_log_session(ResilienceLog()) as log:
            batch = MultiRegionScheduler(machine).schedule_batch(
                self._items(), fault_plan=plan, resilience=resilience
            )
        assert batch.failed_regions == 0
        assert batch.errors == (None, None, None)
        assert log.degrades >= 3
        # CPU rescues count as serial host time.
        assert batch.seconds > 0.0
        for item, result in zip(self._items(), batch.results):
            validate_schedule(result.schedule, item.ddg, machine)
