"""Tests for deadline enforcement and the hang watchdog in both schedulers."""

import pytest

from repro.aco import SequentialACOScheduler
from repro.config import ACOParams, GPUParams
from repro.ddg import DDG
from repro.errors import DeviceHangError
from repro.gpusim.faults import FaultPlan
from repro.machine import amd_vega20
from repro.parallel import ParallelACOScheduler
from repro.resilience.log import ResilienceLog, resilience_log_session
from repro.resilience.watchdog import DeadlineBudget
from repro.schedule import validate_schedule

from conftest import make_region


@pytest.fixture(scope="module")
def machine():
    return amd_vega20()


@pytest.fixture(scope="module")
def ddg():
    return DDG(make_region("reduce", 3, 14))


def parallel(machine, **kw):
    return ParallelACOScheduler(
        machine,
        params=ACOParams(max_iterations=12),
        gpu_params=GPUParams(blocks=4),
        **kw,
    )


def sequential(machine, **kw):
    return SequentialACOScheduler(machine, params=ACOParams(max_iterations=12), **kw)


class TestSoftDeadline:
    @pytest.mark.parametrize("build", [parallel, sequential], ids=["parallel", "sequential"])
    def test_generous_budget_changes_nothing(self, machine, ddg, build):
        """With room to spare, the budgeted run is bit-identical and the
        schedulers' self-charged spend equals their reported seconds."""
        scheduler = build(machine)
        plain = scheduler.schedule(ddg, seed=5)
        budget = DeadlineBudget(1e6)
        budgeted = scheduler.schedule(ddg, seed=5, budget=budget)
        assert budgeted.schedule.cycles == plain.schedule.cycles
        assert budgeted.seconds == plain.seconds
        # The schedulers charge the budget themselves from the same cost
        # model; incremental charging may reassociate the float sum, so
        # allow rounding noise but nothing more.
        assert budget.spent == pytest.approx(budgeted.seconds, rel=1e-9)
        assert not (budgeted.pass1.deadline_hit or budgeted.pass2.deadline_hit)

    @pytest.mark.parametrize("build", [parallel, sequential], ids=["parallel", "sequential"])
    def test_tight_budget_trips_cleanly(self, machine, ddg, build):
        """A starved region stops early with a partial-but-legal result."""
        scheduler = build(machine)
        plain = scheduler.schedule(ddg, seed=5)
        budget = DeadlineBudget(plain.seconds / 10.0)
        with resilience_log_session(ResilienceLog()) as log:
            partial = scheduler.schedule(ddg, seed=5, budget=budget)
        assert partial.pass1.deadline_hit or partial.pass2.deadline_hit
        assert log.deadline_trips >= 1
        assert partial.seconds <= plain.seconds
        validate_schedule(partial.schedule, ddg, machine)

    def test_deadline_emits_telemetry(self, machine, ddg):
        from repro.telemetry import MemorySink, Telemetry

        sink = MemorySink()
        scheduler = parallel(machine, telemetry=Telemetry(sink=sink))
        plain = scheduler.schedule(ddg, seed=5)
        with resilience_log_session(ResilienceLog()):
            scheduler.schedule(
                ddg, seed=5, budget=DeadlineBudget(plain.seconds / 10.0)
            )
        events = sink.by_type("deadline")
        assert events
        assert all(e["deadline_seconds"] > 0 for e in events)
        assert all(e["spent_seconds"] >= e["deadline_seconds"] for e in events)


class TestWatchdog:
    def test_hang_raises_with_checkpoint(self, machine, ddg):
        scheduler = parallel(machine)
        plan = FaultPlan(seed=1, rates={"hang": 1.0})
        budget = DeadlineBudget(1e6)
        with resilience_log_session(ResilienceLog()):
            with pytest.raises(DeviceHangError) as info:
                scheduler.schedule(ddg, seed=5, fault_plan=plan, budget=budget)
        exc = info.value
        assert exc.checkpoint is not None
        assert exc.checkpoint.region == ddg.region.name
        assert exc.seconds > 0.0
        # The hang burned real budget: at least the heartbeat timeout.
        assert budget.spent >= plan.hang_seconds

    def test_hang_checkpoint_names_engine(self, machine, ddg):
        scheduler = parallel(machine)
        plan = FaultPlan(seed=1, rates={"hang": 1.0})
        with pytest.raises(DeviceHangError) as info:
            scheduler.schedule(ddg, seed=5, fault_plan=plan)
        cp = info.value.checkpoint
        assert cp.backend == scheduler.backend
        assert cp.seed == 5
        assert cp.num_ants == scheduler.gpu_params.total_threads

    def test_fault_free_run_ignores_plan(self, machine, ddg):
        """An all-zero-rate plan must not perturb the schedule at all."""
        scheduler = parallel(machine)
        plain = scheduler.schedule(ddg, seed=5)
        nulled = scheduler.schedule(ddg, seed=5, fault_plan=FaultPlan(seed=1))
        assert nulled.schedule.cycles == plain.schedule.cycles
        assert nulled.seconds == plain.seconds
