"""Tests for repro.ir.block and repro.ir.builder."""

import pytest
from hypothesis import given

from repro.errors import IRError
from repro.ir.block import SchedulingRegion
from repro.ir.builder import RegionBuilder, figure1_region
from repro.ir.instructions import Instruction, opcode
from repro.ir.registers import SGPR, VGPR, sreg, vreg

from strategies import regions


class TestSchedulingRegion:
    def test_empty_rejected(self):
        with pytest.raises(IRError):
            SchedulingRegion([])

    def test_indices_must_be_contiguous(self):
        good = [Instruction(0, opcode("v_add")), Instruction(1, opcode("v_add"))]
        SchedulingRegion(good)
        bad = [Instruction(0, opcode("v_add")), Instruction(2, opcode("v_add"))]
        with pytest.raises(IRError):
            SchedulingRegion(bad)

    def test_upward_exposed_uses_become_live_in(self):
        region = SchedulingRegion(
            [Instruction(0, opcode("v_add"), defs=(vreg(1),), uses=(vreg(0),))]
        )
        assert region.live_in == {vreg(0)}

    def test_explicit_live_in_must_cover_exposed(self):
        insts = [Instruction(0, opcode("v_add"), defs=(vreg(1),), uses=(vreg(0),))]
        with pytest.raises(IRError):
            SchedulingRegion(insts, live_in=[vreg(9)])

    def test_live_out_must_be_defined_or_live_in(self):
        insts = [Instruction(0, opcode("v_add"), defs=(vreg(1),))]
        SchedulingRegion(insts, live_out=[vreg(1)])
        with pytest.raises(IRError):
            SchedulingRegion(insts, live_out=[vreg(5)])

    def test_accessors(self, fig1_region):
        assert len(fig1_region) == 7
        assert fig1_region.size == 7
        assert fig1_region[0].label == "A"
        assert [i.label for i in fig1_region] == list("ABCDEFG")

    def test_register_classes_are_stable(self, fig1_region):
        assert fig1_region.register_classes() == (VGPR,)

    def test_definer_and_users(self, fig1_region):
        definer = fig1_region.definer_of(vreg(1))
        assert definer is not None and definer.label == "A"
        users = fig1_region.users_of(vreg(1))
        assert [u.label for u in users] == ["E"]
        assert fig1_region.definer_of(vreg(99)) is None

    def test_equality_and_hash(self, fig1_region):
        other = figure1_region()
        assert fig1_region == other
        assert hash(fig1_region) == hash(other)

    def test_defined_and_used_registers(self, fig1_region):
        assert vreg(7) in fig1_region.defined_registers
        assert vreg(1) in fig1_region.used_registers


class TestRegionBuilder:
    def test_builds_incrementally(self):
        b = RegionBuilder("t")
        b.inst("global_load", defs=["v0"])
        b.inst("v_add", defs=["v1"], uses=["v0"])
        region = b.build()
        assert region.size == 2
        assert region.name == "t"

    def test_accepts_register_objects(self):
        b = RegionBuilder("t")
        b.inst("v_add", defs=[vreg(0)], uses=[sreg(0)])
        region = b.build()
        assert sreg(0) in region.live_in

    def test_live_out_recorded(self):
        b = RegionBuilder("t")
        b.inst("v_add", defs=["v0"])
        region = b.live_out("v0").build()
        assert region.live_out == {vreg(0)}

    def test_explicit_live_in_extends_inferred(self):
        b = RegionBuilder("t")
        b.inst("v_add", defs=["v1"], uses=["v0"])
        b.live_in("s5")
        region = b.build()
        assert region.live_in == {vreg(0), sreg(5)}

    def test_empty_build_rejected(self):
        with pytest.raises(IRError):
            RegionBuilder("t").build()

    def test_mixed_register_classes(self):
        b = RegionBuilder("t")
        b.inst("s_load_dword", defs=["s0"])
        b.inst("v_add", defs=["v0"], uses=["s0"])
        region = b.build()
        assert region.register_classes() == (SGPR, VGPR)


class TestFigure1:
    def test_shape(self, fig1_region):
        assert fig1_region.size == 7
        assert fig1_region.live_out == {vreg(7)}

    def test_latencies_match_paper(self, fig1_region):
        by_label = {i.label: i for i in fig1_region}
        assert by_label["A"].latency == 3
        assert by_label["B"].latency == 1
        assert by_label["C"].latency == 5
        assert by_label["D"].latency == 4

    @given(regions())
    def test_generated_regions_are_well_formed(self, region):
        # Construction itself enforces the invariants; spot-check the core.
        assert region.size >= 1
        defined = set()
        for inst in region:
            for reg in inst.uses:
                assert reg in defined or reg in region.live_in
            defined.update(inst.defs)
