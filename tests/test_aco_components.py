"""Tests for the ACO building blocks: pheromone, selection, stalls,
termination."""

import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.aco import PheromoneTable, roulette_index, select_index
from repro.aco.stalls import OptionalStallHeuristic, pressure_excess
from repro.aco.termination import TerminationTracker
from repro.config import ACOParams
from repro.errors import ConfigError
from repro.ir.registers import SGPR, VGPR


class TestPheromoneTable:
    def test_shape_and_init(self):
        params = ACOParams(initial_pheromone=2.5)
        table = PheromoneTable(5, params)
        assert table.tau.shape == (6, 5)
        assert np.all(table.tau == 2.5)
        assert table.start_row == 5

    def test_row_minus_one_is_start(self):
        table = PheromoneTable(3, ACOParams())
        assert np.array_equal(table.row(-1), table.row(3))

    def test_decay_clamps_at_min(self):
        params = ACOParams(decay=0.5, min_pheromone=0.4, initial_pheromone=1.0)
        table = PheromoneTable(3, params)
        table.decay()
        assert np.all(table.tau == 0.5)
        table.decay()
        assert np.all(table.tau == 0.4)  # clamped

    def test_deposit_reinforces_links(self):
        params = ACOParams(initial_pheromone=1.0, deposit=6.0)
        table = PheromoneTable(3, params)
        table.deposit([2, 0, 1], cost=2.0)
        amount = 6.0 / 3.0
        assert table.tau[3, 2] == pytest.approx(1.0 + amount)  # start -> 2
        assert table.tau[2, 0] == pytest.approx(1.0 + amount)
        assert table.tau[0, 1] == pytest.approx(1.0 + amount)
        assert table.tau[1, 0] == 1.0  # untouched link

    def test_deposit_clamps_at_max(self):
        params = ACOParams(max_pheromone=1.5, deposit=100.0)
        table = PheromoneTable(2, params)
        table.deposit([0, 1], cost=0.0)
        assert table.tau[2, 0] == 1.5

    def test_cheaper_winner_deposits_more(self):
        params = ACOParams()
        a = PheromoneTable(2, params)
        b = PheromoneTable(2, params)
        a.deposit([0, 1], cost=0.0)
        b.deposit([0, 1], cost=10.0)
        assert a.tau[2, 0] > b.tau[2, 0]

    def test_copy_is_independent(self):
        table = PheromoneTable(2, ACOParams())
        clone = table.copy()
        table.deposit([0, 1], cost=0.0)
        assert clone.tau[2, 0] == ACOParams().initial_pheromone

    def test_zero_instructions_rejected(self):
        with pytest.raises(ConfigError):
            PheromoneTable(0, ACOParams())


class TestSelection:
    def test_exploit_picks_argmax(self):
        rng = random.Random(0)
        assert select_index([1.0, 5.0, 2.0], rng, exploit=True) == 1

    def test_explore_respects_distribution(self):
        rng = random.Random(0)
        counts = [0, 0]
        for _ in range(2000):
            counts[roulette_index([1.0, 9.0], rng)] += 1
        assert 0.82 < counts[1] / 2000 < 0.97

    def test_all_zero_scores_uniform(self):
        rng = random.Random(0)
        picks = {roulette_index([0.0, 0.0, 0.0], rng) for _ in range(50)}
        assert picks == {0, 1, 2}

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            select_index([], random.Random(0), exploit=True)

    @given(
        st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=10),
        st.integers(min_value=0, max_value=1000),
    )
    def test_selection_in_range(self, scores, seed):
        rng = random.Random(seed)
        for exploit in (True, False):
            assert 0 <= select_index(scores, rng, exploit) < len(scores)


class TestPressureExcess:
    def test_positive_when_over(self):
        assert pressure_excess({VGPR: 5}, {VGPR: 3}) == 2

    def test_zero_at_boundary(self):
        assert pressure_excess({VGPR: 3}, {VGPR: 3}) == 0

    def test_negative_when_under(self):
        assert pressure_excess({VGPR: 1}, {VGPR: 3}) == -2

    def test_worst_class_wins(self):
        assert pressure_excess({VGPR: 1, SGPR: 9}, {VGPR: 3, SGPR: 4}) == 5

    def test_empty_target(self):
        assert pressure_excess({VGPR: 7}, {}) == 0


class TestOptionalStallHeuristic:
    def test_budget_scales_with_region(self):
        params = ACOParams(optional_stall_budget=0.25)
        assert OptionalStallHeuristic(params, 100).max_optional_stalls == 25
        assert OptionalStallHeuristic(params, 1).max_optional_stalls == 1

    def test_budget_factor_fades(self):
        heuristic = OptionalStallHeuristic(ACOParams(), 40)
        full = heuristic._budget_factor(0)
        spent = heuristic._budget_factor(heuristic.max_optional_stalls)
        assert full == 1.0
        assert spent == 0.0


class TestTerminationTracker:
    def test_lb_stops(self):
        tracker = TerminationTracker(lower_bound=10, stagnation_limit=3, best_cost=15)
        tracker.record_iteration(10)
        assert tracker.hit_lower_bound
        assert tracker.should_stop()

    def test_stagnation_stops(self):
        tracker = TerminationTracker(lower_bound=0, stagnation_limit=2, best_cost=15)
        assert tracker.record_iteration(12) is True
        assert not tracker.should_stop()
        assert tracker.record_iteration(12) is False
        assert not tracker.should_stop()
        assert tracker.record_iteration(13) is False
        assert tracker.should_stop()
        assert tracker.iterations == 3

    def test_improvement_resets_stagnation(self):
        tracker = TerminationTracker(lower_bound=0, stagnation_limit=2, best_cost=15)
        tracker.record_iteration(15)
        tracker.record_iteration(14)
        assert tracker.iterations_without_improvement == 0
