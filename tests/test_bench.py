"""Tests for the continuous-benchmark harness (repro.bench)."""

import json

import pytest

from repro.bench import (
    BENCH_SCHEMA,
    compare_metrics,
    compare_payloads,
    environment_fingerprint,
    load_bench,
    load_bench_dir,
    metric,
    run_benches,
    write_bench,
)
from repro.bench import bench_filename as _bench_filename
from repro.bench import bench_payload as _bench_payload
from repro.bench import __main__ as bench_main
from repro.bench import core as bench_core
from repro.bench.fingerprint import cost_model_digest
from repro.errors import BenchError
from repro.experiments.common import SCALES, ExperimentContext


@pytest.fixture()
def context():
    return ExperimentContext(SCALES["test"])


def _fake_metrics(value=10.0):
    return {
        "time_s": metric(value, "s", "lower"),
        "speedup": metric(2.0, "x", "higher"),
        "count": metric(7, "items"),
    }


@pytest.fixture()
def fake_benches(monkeypatch):
    """Replace the registry with cheap extractors (no compile runs)."""
    benches = {
        "alpha": lambda context: _fake_metrics(10.0),
        "beta": lambda context: {"speedup": metric(3.0, "x", "higher")},
    }
    monkeypatch.setattr(bench_core, "BENCHES", benches)
    monkeypatch.setattr(bench_main, "BENCHES", benches)
    return benches


class TestMetricAndPayload:
    def test_metric_validates_direction(self):
        with pytest.raises(BenchError):
            metric(1.0, "s", "sideways")

    def test_payload_shape(self, context):
        payload = _bench_payload("alpha", context, _fake_metrics())
        assert payload["bench_schema"] == BENCH_SCHEMA
        assert payload["name"] == "alpha"
        assert payload["scale"] == "test"
        assert payload["fingerprint"]["scale"]["name"] == "test"
        assert "time_s" in payload["metrics"]

    def test_fingerprint_is_deterministic(self, context):
        a = environment_fingerprint(context.scale)
        b = environment_fingerprint(context.scale)
        assert a == b  # no wall-clock anywhere
        assert len(cost_model_digest()) == 16

    def test_write_and_load_roundtrip(self, context, tmp_path):
        payload = _bench_payload("alpha", context, _fake_metrics())
        path = write_bench(str(tmp_path), payload)
        assert path.endswith(_bench_filename("alpha"))
        assert load_bench(path) == payload

    def test_load_rejects_non_bench_files(self, tmp_path):
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text('{"not": "a bench"}')
        with pytest.raises(BenchError):
            load_bench(str(bad))
        truncated = tmp_path / "BENCH_trunc.json"
        truncated.write_text('{"bench_schema": 1, "name"')
        with pytest.raises(BenchError):
            load_bench(str(truncated))

    def test_load_dir_requires_files(self, tmp_path):
        with pytest.raises(BenchError):
            load_bench_dir(str(tmp_path))


class TestCompare:
    def test_identical_is_clean(self):
        deltas = compare_metrics("b", _fake_metrics(), _fake_metrics())
        assert not any(d.regression for d in deltas)

    def test_lower_direction_regresses_upward(self):
        current = _fake_metrics(11.5)  # +15% on a lower-is-better metric
        deltas = compare_metrics("b", current, _fake_metrics(10.0), threshold_pct=10.0)
        bad = [d for d in deltas if d.regression]
        assert [d.name for d in bad] == ["time_s"]
        assert bad[0].delta_pct == pytest.approx(15.0)

    def test_within_threshold_passes(self):
        current = _fake_metrics(10.5)  # +5% < 10%
        deltas = compare_metrics("b", current, _fake_metrics(10.0), threshold_pct=10.0)
        assert not any(d.regression for d in deltas)

    def test_higher_direction_regresses_downward(self):
        base = {"speedup": metric(2.0, "x", "higher")}
        current = {"speedup": metric(1.5, "x", "higher")}  # -25%
        deltas = compare_metrics("b", current, base, threshold_pct=10.0)
        assert deltas[0].regression

    def test_info_never_gates(self):
        base = {"count": metric(100, "items")}
        current = {"count": metric(1, "items")}
        deltas = compare_metrics("b", current, base)
        assert not deltas[0].regression

    def test_missing_metric_is_regression(self):
        deltas = compare_metrics("b", {}, {"time_s": metric(1.0, "s", "lower")})
        assert deltas[0].regression
        assert "missing" in deltas[0].note

    def test_missing_bench_is_regression(self, context):
        base = [_bench_payload("alpha", context, _fake_metrics())]
        deltas = compare_payloads([], base)
        assert deltas[0].regression

    def test_zero_baseline_uses_unit_denominator(self):
        base = {"time_s": metric(0.0, "s", "lower")}
        current = {"time_s": metric(0.05, "s", "lower")}
        deltas = compare_metrics("b", current, base, threshold_pct=10.0)
        assert deltas[0].delta_pct == pytest.approx(5.0)
        assert not deltas[0].regression


class TestRunBenches:
    def test_unknown_bench_rejected(self, context):
        with pytest.raises(BenchError):
            run_benches(context, names=["nope"])

    def test_fake_registry_runs_in_order(self, context, fake_benches):
        payloads = run_benches(context, names=["beta", "alpha"])
        assert [p["name"] for p in payloads] == ["alpha", "beta"]  # registry order

    def test_real_table2_extractor(self, context):
        metrics = bench_core.bench_table2(context)
        assert metrics["overall_length_reduction_pct"]["direction"] == "higher"
        assert metrics["pass2_regions"]["value"] > 0


class TestMain:
    def test_list(self, capsys, fake_benches):
        assert bench_main.main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "alpha" in out and "beta" in out

    def test_writes_files_and_gates(self, tmp_path, fake_benches):
        out1 = tmp_path / "run1"
        assert bench_main.main(["--scale", "test", "--out", str(out1)]) == 0
        assert sorted(p.name for p in out1.glob("BENCH_*.json")) == [
            "BENCH_alpha.json",
            "BENCH_beta.json",
        ]
        # Self-comparison is clean.
        out2 = tmp_path / "run2"
        assert (
            bench_main.main(
                ["--scale", "test", "--out", str(out2), "--baseline", str(out1)]
            )
            == 0
        )

    def test_injected_regression_fails(self, tmp_path, fake_benches):
        base_dir = tmp_path / "base"
        assert bench_main.main(["--scale", "test", "--out", str(base_dir)]) == 0
        # Doctor the baseline so the (deterministic) current run looks worse.
        path = base_dir / "BENCH_alpha.json"
        payload = json.loads(path.read_text())
        payload["metrics"]["time_s"]["value"] *= 0.8  # current now +25%
        path.write_text(json.dumps(payload))
        code = bench_main.main(
            ["--scale", "test", "--out", str(tmp_path / "cur"),
             "--baseline", str(base_dir)]
        )
        assert code == 1

    def test_usage_errors_exit_2(self, tmp_path, fake_benches):
        assert bench_main.main(["--threshold", "-1", "--out", str(tmp_path)]) == 2
        assert (
            bench_main.main(
                ["--scale", "test", "--out", str(tmp_path / "o"),
                 "--baseline", str(tmp_path / "empty")]
            )
            == 2
        )
