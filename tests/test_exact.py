"""Tests for the exact B&B solvers, plus ground-truth validation of the
heuristic and ACO schedulers against certified optima on tiny regions."""

import pytest
from hypothesis import given, settings

from repro.aco import SequentialACOScheduler
from repro.config import ACOParams, GPUParams
from repro.ddg import DDG, region_bounds
from repro.exact import ExactLimits, min_length_schedule, min_pressure_order
from repro.exact.bnb import ExactSolverError
from repro.heuristics import AMDMaxOccupancyScheduler, CriticalPathHeuristic, list_schedule
from repro.ir.registers import VGPR
from repro.machine import amd_vega20, simple_test_target
from repro.parallel import ParallelACOScheduler
from repro.rp import peak_pressure, rp_cost
from repro.schedule import Schedule, validate_schedule

from strategies import ddgs, make_region


class TestMinPressureOrder:
    def test_figure1_optimum_is_3(self, fig1_ddg, tiny_machine):
        order, cost = min_pressure_order(fig1_ddg, tiny_machine)
        schedule = Schedule.from_order(fig1_ddg.region, order)
        validate_schedule(schedule, fig1_ddg, respect_latencies=False)
        assert peak_pressure(schedule)[VGPR] == 3
        assert cost == rp_cost(peak_pressure(schedule), tiny_machine)

    def test_matches_reported_cost(self, fig1_ddg, vega):
        order, cost = min_pressure_order(fig1_ddg, vega)
        schedule = Schedule.from_order(fig1_ddg.region, order)
        assert rp_cost(peak_pressure(schedule), vega) == cost

    def test_region_size_limit(self, vega):
        ddg = DDG(make_region("transform", 1, 30))
        with pytest.raises(ExactSolverError):
            min_pressure_order(ddg, vega, ExactLimits(max_instructions=16))

    @given(ddgs(max_size=9))
    @settings(max_examples=15, deadline=None)
    def test_no_order_beats_the_optimum(self, ddg):
        """Exhaustive cross-check: greedy and ACO pass-1 costs are always
        >= the certified optimum."""
        machine = simple_test_target()
        _order, optimum = min_pressure_order(ddg, machine)
        amd = AMDMaxOccupancyScheduler(machine)
        assert amd.rp_cost_of(amd.order_only(ddg)) >= optimum
        result = SequentialACOScheduler(machine).schedule(ddg, seed=5)
        assert rp_cost(result.peak, machine) >= optimum


class TestMinLengthSchedule:
    def test_figure1_unconstrained(self, fig1_ddg, tiny_machine):
        schedule = min_length_schedule(fig1_ddg, tiny_machine)
        validate_schedule(schedule, fig1_ddg, tiny_machine)
        assert schedule.length == 8

    def test_figure1_with_pressure_3(self, fig1_ddg, tiny_machine):
        """The pass-2 optimum under the pass-1 pressure: one extra cycle."""
        schedule = min_length_schedule(fig1_ddg, tiny_machine, {VGPR: 3})
        validate_schedule(schedule, fig1_ddg, tiny_machine)
        assert schedule.length == 9
        assert peak_pressure(schedule)[VGPR] == 3

    def test_tightening_pressure_never_shortens(self, fig1_ddg, tiny_machine):
        loose = min_length_schedule(fig1_ddg, tiny_machine, {VGPR: 5})
        tight = min_length_schedule(fig1_ddg, tiny_machine, {VGPR: 3})
        assert tight.length >= loose.length

    def test_infeasible_target(self, fig1_ddg, tiny_machine):
        with pytest.raises(ExactSolverError):
            min_length_schedule(fig1_ddg, tiny_machine, {VGPR: 1})

    def test_respects_length_lower_bound(self, fig1_ddg, vega):
        schedule = min_length_schedule(fig1_ddg, vega)
        assert schedule.length >= region_bounds(fig1_ddg).length

    @given(ddgs(max_size=9))
    @settings(max_examples=10, deadline=None)
    def test_greedy_never_beats_the_optimum(self, ddg):
        machine = amd_vega20()
        optimum = min_length_schedule(ddg, machine)
        greedy = list_schedule(ddg, machine, heuristic=CriticalPathHeuristic())
        assert greedy.length >= optimum.length

    @given(ddgs(max_size=8))
    @settings(max_examples=8, deadline=None)
    def test_aco_never_beats_the_optimum(self, ddg):
        """End-to-end sanity: ACO results are bounded by certified optima on
        both objectives."""
        machine = simple_test_target()
        _order, rp_optimum = min_pressure_order(ddg, machine)
        result = ParallelACOScheduler(
            machine, gpu_params=GPUParams(blocks=1)
        ).schedule(ddg, seed=2)
        assert rp_cost(result.peak, machine) >= rp_optimum
        target = machine.aprp(result.peak)
        optimum = min_length_schedule(ddg, machine, dict(target))
        assert result.length >= optimum.length


class TestACOFindsOptimaOften:
    """Not a guarantee, but the headline quality claim: on tiny regions the
    colony should reach the certified optimum almost always."""

    def test_pass1_optimality_rate(self, tiny_machine):
        hits = 0
        total = 8
        for seed in range(total):
            ddg = DDG(make_region("sort", seed, 9))
            _order, optimum = min_pressure_order(ddg, tiny_machine)
            result = ParallelACOScheduler(
                tiny_machine, gpu_params=GPUParams(blocks=2)
            ).schedule(ddg, seed=seed)
            if rp_cost(result.peak, tiny_machine) == optimum:
                hits += 1
        assert hits >= total // 2
