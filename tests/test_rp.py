"""Tests for repro.rp: the tracker, liveness and the cost functions."""

import pytest
from hypothesis import given, settings

from repro.ddg import DDG, region_bounds
from repro.heuristics import LastUseCountHeuristic, order_schedule
from repro.ir.builder import RegionBuilder, figure1_region
from repro.ir.registers import SGPR, VGPR
from repro.machine import amd_vega20, simple_test_target
from repro.rp import (
    PressureTracker,
    evaluate_schedule,
    peak_pressure,
    pressure_profile,
    rp_cost,
    rp_cost_lower_bound,
)
from repro.rp.cost import OCCUPANCY_WEIGHT
from repro.schedule import Schedule

from strategies import regions


class TestTrackerFigure1:
    """The paper's Figure 1 PRP walk-through, exactly."""

    def test_ant1_prp_4(self, fig1_region):
        schedule = Schedule.from_order(fig1_region, [0, 1, 2, 3, 4, 5, 6])
        assert peak_pressure(schedule)[VGPR] == 4

    def test_ant2_prp_3(self, fig1_region):
        # C D F A B E G: F closes C's and D's ranges (kill-before-def).
        schedule = Schedule.from_order(fig1_region, [2, 3, 5, 0, 1, 4, 6])
        assert peak_pressure(schedule)[VGPR] == 3

    def test_profile_matches_narrative(self, fig1_region):
        schedule = Schedule.from_order(fig1_region, [2, 3, 5, 0, 1, 4, 6])
        profile = pressure_profile(fig1_region and schedule)[VGPR]
        # After C, D, F, A, B, E, G.
        assert profile == [1, 2, 1, 2, 3, 2, 1]


class TestTrackerMechanics:
    def test_live_in_counts_from_start(self):
        b = RegionBuilder("li")
        b.inst("op1", defs=["v1"], uses=["v0"])
        region = b.build()
        tracker = PressureTracker(region)
        assert tracker.current[VGPR] == 1  # v0 live-in

    def test_live_out_never_dies(self):
        b = RegionBuilder("lo")
        b.inst("op1", defs=["v0"])
        b.inst("op1", defs=["v1"], uses=["v0"])
        region = b.live_out("v0", "v1").build()
        tracker = PressureTracker(region)
        tracker.schedule(region[0])
        tracker.schedule(region[1])  # v0's last use, but v0 is live-out
        assert tracker.current[VGPR] == 2
        assert set(tracker.live_registers()) == set(region.live_out)

    def test_dead_def_counts_toward_peak_then_dies(self):
        b = RegionBuilder("dd")
        b.inst("op1", defs=["v0"])
        b.inst("op1", defs=["v1"])  # v1 never used, not live-out
        region = b.live_out("v0").build()
        tracker = PressureTracker(region)
        tracker.schedule(region[0])
        tracker.schedule(region[1])
        assert tracker.peak[VGPR] == 2  # dead def was momentarily live
        assert tracker.current[VGPR] == 1

    def test_kill_before_def_allows_register_reuse(self):
        b = RegionBuilder("kbd")
        b.inst("op1", defs=["v0"])
        b.inst("op1", defs=["v1"], uses=["v0"])  # v0 dies here, v1 opens
        region = b.live_out("v1").build()
        tracker = PressureTracker(region)
        tracker.schedule(region[0])
        tracker.schedule(region[1])
        assert tracker.peak[VGPR] == 1

    def test_use_in_own_defs_survives(self):
        b = RegionBuilder("acc")
        b.inst("op1", defs=["v0"])
        b.inst("op1", defs=["v0"], uses=["v0"])  # accumulate in place
        region = b.live_out("v0").build()
        tracker = PressureTracker(region)
        tracker.schedule(region[0])
        tracker.schedule(region[1])
        assert tracker.current[VGPR] == 1
        assert tracker.peak[VGPR] == 1

    def test_reset(self, fig1_region):
        tracker = PressureTracker(fig1_region)
        for inst in fig1_region:
            tracker.schedule(inst)
        tracker.reset()
        assert tracker.current[VGPR] == 0
        assert tracker.peak[VGPR] == 0

    def test_preview_matches_commit(self, fig1_region):
        """pressure_if_scheduled must agree with actually scheduling.

        Figure 1 has no dead defs, so the at-issue preview and the
        post-instruction pressure coincide exactly.
        """
        tracker = PressureTracker(fig1_region)
        for inst in fig1_region:  # program order is legal
            preview = tracker.pressure_if_scheduled(inst)
            tracker.schedule(inst)
            assert tracker.current == preview

    @given(regions())
    @settings(max_examples=40, deadline=None)
    def test_preview_brackets_commit_property(self, region):
        """The preview is the at-issue pressure: at least the committed
        between-instruction pressure (dead defs die right after the sample)
        and never above the running peak."""
        tracker = PressureTracker(region)
        for inst in region:
            preview = tracker.pressure_if_scheduled(inst)
            dead_defs = {
                cls: sum(
                    1
                    for reg in inst.defs
                    if reg.reg_class is cls
                    and reg not in region.live_out
                    and not any(other.reads(reg) for other in region)
                )
                for cls in tracker.classes
            }
            tracker.schedule(inst)
            for cls, value in tracker.current.items():
                assert preview.get(cls, 0) == value + dead_defs.get(cls, 0)
                assert tracker.peak[cls] >= preview.get(cls, 0)

    def test_closes_ranges(self, fig1_region):
        tracker = PressureTracker(fig1_region)
        by_label = {i.label: i for i in fig1_region}
        tracker.schedule(by_label["C"])
        tracker.schedule(by_label["D"])
        assert tracker.closes_ranges(by_label["F"]) == 2

    def test_live_registers(self, fig1_region):
        tracker = PressureTracker(fig1_region)
        tracker.schedule(fig1_region[0])
        assert len(tuple(tracker.live_registers())) == 1


class TestPeakInvariance:
    @given(regions())
    @settings(max_examples=30, deadline=None)
    def test_peak_depends_only_on_order(self, region):
        """Inserting stalls never changes pressure."""
        ddg = DDG(region)
        schedule = order_schedule(ddg, heuristic=LastUseCountHeuristic())
        stretched = Schedule(
            region, [c * 3 for c in schedule.cycles]
        )  # same order, stalls everywhere
        assert peak_pressure(schedule) == peak_pressure(stretched)


class TestCost:
    def test_occupancy_dominates(self):
        vega = amd_vega20()
        low_occ = rp_cost({VGPR: 30}, vega)  # occupancy 8
        high_occ = rp_cost({VGPR: 24}, vega)  # occupancy 10
        assert low_occ - high_occ >= OCCUPANCY_WEIGHT

    def test_same_occupancy_compares_equal_via_aprp(self):
        vega = amd_vega20()
        assert rp_cost({VGPR: 3}, vega) == rp_cost({VGPR: 24}, vega)

    def test_lower_bound_is_sound(self, fig1_ddg):
        tiny = simple_test_target()
        bounds = region_bounds(fig1_ddg)
        lb = rp_cost_lower_bound(bounds, tiny)
        for order in ([0, 1, 2, 3, 4, 5, 6], [2, 3, 5, 0, 1, 4, 6]):
            schedule = Schedule.from_order(fig1_ddg.region, order)
            assert rp_cost(peak_pressure(schedule), tiny) >= lb

    def test_evaluate_schedule(self, fig1_region):
        vega = amd_vega20()
        schedule = Schedule.from_order(fig1_region, [2, 3, 5, 0, 1, 4, 6])
        quality = evaluate_schedule(schedule, vega)
        assert quality.length == 7
        assert quality.pressure_dict[VGPR] == 3
        assert quality.occupancy == 10
        assert quality.aprp_dict[VGPR] == 24

    def test_dominates(self, fig1_region):
        vega = amd_vega20()
        good = evaluate_schedule(
            Schedule.from_order(fig1_region, [2, 3, 5, 0, 1, 4, 6]), vega
        )
        bad = evaluate_schedule(
            Schedule(fig1_region, [0, 1, 2, 3, 8, 9, 10]), vega
        )
        assert good.dominates(bad)
        assert not bad.dominates(good)
